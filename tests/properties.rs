//! Cross-crate property tests: pipeline invariants over generated inputs.

use cbvr::core::KeyframeConfig;
use cbvr::keyframe::extract_keyframes;
use cbvr::prelude::*;
use proptest::prelude::*;

fn generator(w: u32, h: u32) -> VideoGenerator {
    VideoGenerator::new(GeneratorConfig {
        width: w,
        height: h,
        shots_per_video: 2,
        min_shot_frames: 3,
        max_shot_frames: 5,
        ..GeneratorConfig::default()
    })
    .unwrap()
}

fn arb_category() -> impl Strategy<Value = Category> {
    prop_oneof![
        Just(Category::ELearning),
        Just(Category::Sports),
        Just(Category::Cartoon),
        Just(Category::Movie),
        Just(Category::News),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn vsc_round_trips_every_codec_and_category(
        category in arb_category(),
        seed in 0u64..1000,
        codec in prop_oneof![Just(FrameCodec::Raw), Just(FrameCodec::Rle), Just(FrameCodec::Delta)],
    ) {
        let clip = generator(40, 30).generate(category, seed).unwrap();
        let bytes = encode_vsc(&clip, codec);
        let back = decode_vsc(&bytes).unwrap();
        prop_assert_eq!(back, clip);
    }

    #[test]
    fn keyframes_are_strictly_increasing_and_bounded(
        category in arb_category(),
        seed in 0u64..1000,
        threshold in 0.0f64..3000.0,
    ) {
        let clip = generator(40, 30).generate(category, seed).unwrap();
        let config = KeyframeConfig { threshold, ..KeyframeConfig::default() };
        let kfs = extract_keyframes(&clip, &config);
        prop_assert!(!kfs.is_empty(), "at least one key frame always survives");
        prop_assert!(kfs.len() <= clip.frame_count());
        prop_assert_eq!(kfs[0].index, 0, "the first frame anchors the first run");
        for pair in kfs.windows(2) {
            prop_assert!(pair[0].index < pair[1].index);
        }
    }

    #[test]
    fn feature_strings_round_trip_for_generated_frames(
        category in arb_category(),
        seed in 0u64..1000,
    ) {
        let clip = generator(40, 30).generate(category, seed).unwrap();
        let set = FeatureSet::extract(clip.frame(0).unwrap());
        let strings = set.to_feature_strings();
        let back = FeatureSet::from_feature_strings(
            strings.iter().map(|(k, s)| (*k, s.as_str())),
        ).unwrap();
        for kind in FeatureKind::ALL {
            prop_assert!(set.distance(&back, kind) < 1e-9, "{} drifted", kind);
        }
    }

    #[test]
    fn query_scores_are_sorted_and_bounded(
        category in arb_category(),
        probe_category in arb_category(),
        seed in 0u64..100,
    ) {
        let g = generator(40, 30);
        let mut db = CbvrDatabase::in_memory().unwrap();
        let clip = g.generate(category, seed).unwrap();
        ingest_video(&mut db, "v", &clip, &IngestConfig::default()).unwrap();
        let engine = QueryEngine::from_database(&mut db).unwrap();

        let probe = g.generate(probe_category, seed + 5000).unwrap();
        let results = engine.query_frame(
            probe.frame(0).unwrap(),
            &QueryOptions { k: 50, use_index: false, ..Default::default() },
        );
        prop_assert!(!results.is_empty());
        for m in &results {
            prop_assert!((0.0..=1.0).contains(&m.score), "score {}", m.score);
        }
        for pair in results.windows(2) {
            prop_assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn index_pruning_never_invents_results(
        category in arb_category(),
        seed in 0u64..100,
    ) {
        let g = generator(40, 30);
        let mut db = CbvrDatabase::in_memory().unwrap();
        for s in 0..2u64 {
            let clip = g.generate(category, seed + s).unwrap();
            ingest_video(&mut db, &format!("v{s}"), &clip, &IngestConfig::default()).unwrap();
        }
        let engine = QueryEngine::from_database(&mut db).unwrap();
        let probe = g.generate(category, seed + 900).unwrap();
        let frame = probe.frame(0).unwrap();

        let pruned: Vec<u64> = engine
            .query_frame(frame, &QueryOptions { k: 100, use_index: true, ..Default::default() })
            .into_iter()
            .map(|m| m.i_id)
            .collect();
        let full: std::collections::HashSet<u64> = engine
            .query_frame(frame, &QueryOptions { k: 100, use_index: false, ..Default::default() })
            .into_iter()
            .map(|m| m.i_id)
            .collect();
        for i_id in &pruned {
            prop_assert!(full.contains(i_id), "pruned result {i_id} not in the full ranking");
        }
    }

    #[test]
    fn ingest_is_deterministic(
        category in arb_category(),
        seed in 0u64..100,
    ) {
        let g = generator(40, 30);
        let clip = g.generate(category, seed).unwrap();
        let mut db1 = CbvrDatabase::in_memory().unwrap();
        let mut db2 = CbvrDatabase::in_memory().unwrap();
        let r1 = ingest_video(&mut db1, "v", &clip, &IngestConfig::default()).unwrap();
        let r2 = ingest_video(&mut db2, "v", &clip, &IngestConfig::default()).unwrap();
        prop_assert_eq!(&r1.keyframe_indices, &r2.keyframe_indices);
        prop_assert_eq!(&r1.ranges, &r2.ranges);
        // Stored rows are byte-identical.
        let row1 = db1.get_key_frame(r1.keyframe_ids[0]).unwrap();
        let row2 = db2.get_key_frame(r2.keyframe_ids[0]).unwrap();
        prop_assert_eq!(row1.sch, row2.sch);
        prop_assert_eq!(row1.gabor, row2.gabor);
        prop_assert_eq!(row1.min, row2.min);
        prop_assert_eq!(row1.max, row2.max);
    }
}

// ---- pure-kernel properties (no corpus generation) ---------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dtw_is_symmetric_and_nonnegative(
        a in proptest::collection::vec(-100.0f64..100.0, 1..20),
        b in proptest::collection::vec(-100.0f64..100.0, 1..20),
    ) {
        use cbvr::core::dtw::dtw_distance;
        let d_ab = dtw_distance(&a, &b, |x, y| (x - y).abs());
        let d_ba = dtw_distance(&b, &a, |x, y| (x - y).abs());
        prop_assert!((d_ab - d_ba).abs() < 1e-9, "{d_ab} vs {d_ba}");
        prop_assert!(d_ab >= 0.0);
        // Identity.
        prop_assert!(dtw_distance(&a, &a, |x, y| (x - y).abs()) < 1e-12);
    }

    #[test]
    fn dtw_banded_never_underestimates_much(
        a in proptest::collection::vec(-50.0f64..50.0, 2..24),
        b in proptest::collection::vec(-50.0f64..50.0, 2..24),
        band in 1usize..8,
    ) {
        use cbvr::core::dtw::{dtw_distance, dtw_distance_banded};
        let full = dtw_distance(&a, &b, |x, y| (x - y).abs());
        let banded = dtw_distance_banded(&a, &b, band, |x, y| (x - y).abs());
        // A band constrains the warping path, so banded cost ≥ full cost
        // (it may fall back to full DTW, which is equality).
        prop_assert!(banded >= full - 1e-9, "banded {banded} < full {full}");
    }

    #[test]
    fn combined_weights_stay_in_unit_interval(
        sims in proptest::collection::vec(0.0f64..1.0, 7),
        raw_weights in proptest::collection::vec(0.0f64..10.0, 7),
    ) {
        let pairs: Vec<(FeatureKind, f64)> = FeatureKind::ALL
            .iter()
            .zip(&raw_weights)
            .map(|(&k, &w)| (k, w))
            .collect();
        let weights = FeatureWeights::from_pairs(&pairs);
        let sim_of = |kind: FeatureKind| {
            let idx = FeatureKind::ALL.iter().position(|&k| k == kind).unwrap();
            sims[idx]
        };
        let combined = weights.combine(sim_of);
        prop_assert!((0.0..=1.0).contains(&combined), "combined {combined}");
        // Bounded by the extreme similarities when any weight is active.
        if weights.total() > 0.0 {
            let lo = sims.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = sims.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(combined >= lo - 1e-9 && combined <= hi + 1e-9);
        }
    }

    #[test]
    fn range_keys_partition_under_paper_finder(
        intensities in proptest::collection::vec(any::<u8>(), 1..200),
    ) {
        use cbvr::imgproc::Histogram256;
        use cbvr::index::paper_range;
        let mut h = Histogram256::new();
        for v in &intensities {
            h.record(*v);
        }
        let r = paper_range(&h);
        // The produced range is one of Fig. 7's dyadic nodes.
        prop_assert!(matches!(r.width(), 32 | 64 | 128), "width {}", r.width());
        prop_assert_eq!(r.min as u16 % r.width(), 0, "alignment");
        // And it always overlaps itself and the full axis.
        prop_assert!(r.overlaps(r));
        prop_assert!(cbvr::index::RangeKey::new(0, 255).contains(r));
    }

    #[test]
    fn vjp_quality_ladder_is_monotone_in_size(
        seed in any::<u64>(),
    ) {
        use cbvr::imgproc::codec::vjp;
        // A deterministic photo-like frame from the seed.
        let img = RgbImage::from_fn(40, 32, |x, y| {
            let s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            Rgb::new(
                (128.0 + 80.0 * ((x as f64) * 0.3 + s as f64 % 7.0).sin()) as u8,
                (128.0 + 60.0 * ((y as f64) * 0.2 + s as f64 % 5.0).cos()) as u8,
                ((x * y) as u8).wrapping_add(s as u8),
            )
        })
        .unwrap();
        let lo = vjp::encode(&img, 10);
        let hi = vjp::encode(&img, 95);
        prop_assert!(lo.len() <= hi.len(), "lo {} hi {}", lo.len(), hi.len());
        // Both decode to the right dimensions.
        prop_assert_eq!(vjp::decode(&lo).unwrap().dimensions(), (40, 32));
        prop_assert_eq!(vjp::decode(&hi).unwrap().dimensions(), (40, 32));
    }
}
