//! Whole-system integration: generate → ingest through the on-disk
//! storage engine → reopen → query, spanning every crate.

use cbvr::core::KeyframeConfig;
use cbvr::prelude::*;
use cbvr::storage::CbvrDatabase as Db;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cbvr-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_generator() -> VideoGenerator {
    VideoGenerator::new(GeneratorConfig {
        width: 64,
        height: 48,
        shots_per_video: 3,
        min_shot_frames: 4,
        max_shot_frames: 6,
        ..GeneratorConfig::default()
    })
    .unwrap()
}

#[test]
fn ingest_reopen_query_across_processes_worth_of_state() {
    let dir = temp_dir("e2e");
    let generator = small_generator();
    let config = IngestConfig { timestamp: 1_751_700_000, ..IngestConfig::default() };

    let mut expected = Vec::new();
    {
        let mut db = Db::open_dir(&dir).unwrap();
        for category in [Category::Sports, Category::Movie, Category::News] {
            for seed in 0..2u64 {
                let clip = generator.generate(category, seed).unwrap();
                let name = format!("{}_{seed}", category.name());
                let report = ingest_video(&mut db, &name, &clip, &config).unwrap();
                expected.push((report.v_id, category));
            }
        }
    } // drop = close

    // Reopen from disk; catalog loads from stored feature strings.
    let mut db = Db::open_dir(&dir).unwrap();
    assert_eq!(db.video_count().unwrap(), 6);
    let engine = QueryEngine::from_database(&mut db).unwrap();
    assert!(!engine.is_empty());
    assert_eq!(engine.video_ids().len(), 6);

    // Query with an unseen same-category clip's frame.
    let probe = generator.generate(Category::Movie, 50).unwrap();
    let results =
        engine.query_frame(probe.frame(0).unwrap(), &QueryOptions { k: 3, ..Default::default() });
    assert!(!results.is_empty());
    let top_category = expected.iter().find(|(v, _)| *v == results[0].v_id).unwrap().1;
    assert_eq!(top_category, Category::Movie, "top match should be a movie: {results:?}");

    // The stored container of the top match still decodes.
    let full = db.get_video(results[0].v_id).unwrap();
    let bytes = db.read_video_bytes(&full.row).unwrap();
    let clip = decode_vsc(&bytes).unwrap();
    assert!(clip.frame_count() > 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clip_query_finds_the_exact_source_video() {
    let mut db = CbvrDatabase::in_memory().unwrap();
    let generator = small_generator();
    let config = IngestConfig::default();
    let mut ids = Vec::new();
    for seed in 0..3u64 {
        let clip = generator.generate(Category::Cartoon, seed).unwrap();
        let report = ingest_video(&mut db, &format!("c{seed}"), &clip, &config).unwrap();
        ids.push(report.v_id);
    }
    let engine = QueryEngine::from_database(&mut db).unwrap();

    // Querying with the ingested clip itself must put it first with ~zero
    // DTW distance.
    let target = generator.generate(Category::Cartoon, 1).unwrap();
    let matches = engine.query_video(&target, &KeyframeConfig::default(), &QueryOptions::default());
    assert_eq!(matches[0].v_id, ids[1], "{matches:?}");
    assert!(matches[0].distance < 1e-9);
    if matches.len() > 1 {
        assert!(matches[1].distance > matches[0].distance);
    }
}

#[test]
fn feature_strings_survive_storage_byte_exact_ranking() {
    // The engine built from the database (string round trip) must rank a
    // self-query identically to one built in memory.
    let mut db = CbvrDatabase::in_memory().unwrap();
    let generator = small_generator();
    let clip = generator.generate(Category::News, 4).unwrap();
    let report = ingest_video(&mut db, "news", &clip, &IngestConfig::default()).unwrap();
    let engine = QueryEngine::from_database(&mut db).unwrap();

    let kf_index = report.keyframe_indices[0];
    let frame = clip.frame(kf_index).unwrap();
    let results = engine.query_frame(frame, &QueryOptions::default());
    assert_eq!(results[0].i_id, report.keyframe_ids[0]);
    assert!(
        (results[0].score - 1.0).abs() < 1e-6,
        "stored features should reproduce a perfect self-match, got {}",
        results[0].score
    );
}

#[test]
fn deleting_a_video_removes_it_from_future_queries() {
    let mut db = CbvrDatabase::in_memory().unwrap();
    let generator = small_generator();
    let config = IngestConfig::default();
    let a = ingest_video(&mut db, "keep", &generator.generate(Category::Sports, 1).unwrap(), &config)
        .unwrap();
    let b = ingest_video(&mut db, "drop", &generator.generate(Category::Sports, 2).unwrap(), &config)
        .unwrap();

    db.delete_video(b.v_id).unwrap();
    let engine = QueryEngine::from_database(&mut db).unwrap();
    assert_eq!(engine.video_ids(), vec![a.v_id]);
    let probe = generator.generate(Category::Sports, 3).unwrap();
    let results = engine.query_frame(probe.frame(0).unwrap(), &QueryOptions::default());
    assert!(results.iter().all(|m| m.v_id == a.v_id));
}

#[test]
fn metadata_and_content_queries_agree_on_names() {
    let mut db = CbvrDatabase::in_memory().unwrap();
    let generator = small_generator();
    let config = IngestConfig::default();
    for seed in 0..2u64 {
        let clip = generator.generate(Category::ELearning, seed).unwrap();
        ingest_video(&mut db, &format!("lecture_{seed:02}"), &clip, &config).unwrap();
    }
    let engine = QueryEngine::from_database(&mut db).unwrap();
    let by_name = engine.find_videos_by_name("LECTURE");
    assert_eq!(by_name.len(), 2);
    for (v_id, name) in by_name {
        assert_eq!(engine.video_name(v_id).as_deref(), Some(name.as_str()));
    }
}
