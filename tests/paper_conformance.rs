//! Conformance to the paper's published artifacts: Fig. 8 string formats,
//! §4.2's exact thresholds and quirks, §4.1's threshold semantics, and
//! the Fig. 1/§3.4 schema shape.

use cbvr::features::correlogram::AutoColorCorrelogram;
use cbvr::features::gabor::{GaborTexture, DIM as GABOR_DIM};
use cbvr::features::naive::NaiveSignature;
use cbvr::features::tamura::{TamuraTexture, DIM as TAMURA_DIM};
use cbvr::imgproc::Histogram256;
use cbvr::index::{paper_range, FIRST_LEVEL_THRESHOLD, LOWER_LEVEL_THRESHOLD};
use cbvr::keyframe::KeyframeConfig;
use cbvr::prelude::*;

fn sample_frame() -> RgbImage {
    let generator = VideoGenerator::new(GeneratorConfig::default()).unwrap();
    generator.generate(Category::Movie, 8).unwrap().frame(0).unwrap().clone()
}

#[test]
fn fig8_histogram_string_format() {
    // `Histogram : RGB 256 <counts>` — header plus exactly 256 values.
    let set = FeatureSet::extract(&sample_frame());
    let s = set.histogram.to_feature_string();
    let tokens: Vec<&str> = s.split_whitespace().collect();
    assert_eq!(tokens[0], "RGB");
    assert_eq!(tokens[1], "256");
    assert_eq!(tokens.len(), 2 + 256);
}

#[test]
fn fig8_gabor_has_sixty_values() {
    // The Fig. 8 output starts `gabor 60 ...` — M=5 scales × N=6
    // orientations × (mean, std).
    assert_eq!(GABOR_DIM, 60);
    let g = GaborTexture::extract(&sample_frame());
    let s = g.to_feature_string();
    let tokens: Vec<&str> = s.split_whitespace().collect();
    assert_eq!(tokens[0], "gabor");
    assert_eq!(tokens[1], "60");
    assert_eq!(tokens.len(), 2 + 60);
}

#[test]
fn fig8_tamura_has_eighteen_values() {
    // `Tamura 18 <coarseness> <contrast> <16 directionality bins>`.
    assert_eq!(TAMURA_DIM, 18);
    let t = TamuraTexture::extract(&sample_frame());
    let tokens: Vec<String> = t.to_feature_string().split_whitespace().map(String::from).collect();
    assert_eq!(tokens[0], "Tamura");
    assert_eq!(tokens[1], "18");
    assert_eq!(tokens.len(), 2 + 18);
}

#[test]
fn fig8_acc_header_is_max_distance_four() {
    let acc = AutoColorCorrelogram::extract(&sample_frame());
    let s = acc.to_feature_string();
    assert!(s.starts_with("ACC 4 "), "{}", &s[..20.min(s.len())]);
}

#[test]
fn fig8_naive_vector_uses_java_awt_color_syntax() {
    let n = NaiveSignature::extract(&sample_frame());
    let s = n.to_feature_string();
    assert!(s.starts_with("NaiveVector java.awt.Color[r="), "{}", &s[..40.min(s.len())]);
    // 25 color tokens.
    assert_eq!(s.matches("java.awt.Color[").count(), 25);
    // And it parses the paper's own example line.
    let paper_line = "NaiveVector java.awt.Color[r=0,g=0,b=0] java.awt.Color[r=0,g=0,b=0] \
                      java.awt.Color[r=0,g=0,b=0] java.awt.Color[r=0,g=2,b=1] \
                      java.awt.Color[r=159,g=172,b=164] java.awt.Color[r=62,g=49,b=29] \
                      java.awt.Color[r=68,g=54,b=33] java.awt.Color[r=111,g=92,b=64] \
                      java.awt.Color[r=166,g=179,b=165] java.awt.Color[r=119,g=125,b=113] \
                      java.awt.Color[r=183,g=151,b=135] java.awt.Color[r=139,g=111,b=89] \
                      java.awt.Color[r=167,g=137,b=115] java.awt.Color[r=150,g=131,b=107] \
                      java.awt.Color[r=132,g=113,b=80] java.awt.Color[r=156,g=124,b=102] \
                      java.awt.Color[r=75,g=61,b=36] java.awt.Color[r=168,g=136,b=114] \
                      java.awt.Color[r=155,g=129,b=110] java.awt.Color[r=125,g=110,b=79] \
                      java.awt.Color[r=58,g=32,b=30] java.awt.Color[r=69,g=53,b=38] \
                      java.awt.Color[r=66,g=59,b=42] java.awt.Color[r=97,g=107,b=100] \
                      java.awt.Color[r=163,g=168,b=152]";
    let parsed = NaiveSignature::parse(paper_line).unwrap();
    assert_eq!(parsed.colors()[4], Rgb::new(159, 172, 164));
}

#[test]
fn section_4_2_thresholds_are_55_then_60() {
    assert_eq!(FIRST_LEVEL_THRESHOLD, 55.0);
    assert_eq!(LOWER_LEVEL_THRESHOLD, 60.0);
}

#[test]
fn section_4_2_first_level_quirk_defaults_to_upper_half() {
    // When the lower half holds ≤ 55% the pseudocode's else-branch takes
    // [128,255] unconditionally — even for a perfectly balanced image.
    let mut h = Histogram256::new();
    for v in [10u8, 200] {
        for _ in 0..50 {
            h.record(v);
        }
    }
    let r = paper_range(&h);
    assert_eq!((r.min, r.max), (128, 255));
}

#[test]
fn section_4_2_example_output_min0_max127_is_reachable() {
    // The Fig. 8 example reports `min = 0, max=127`: 70% of mass in the
    // lower half, split across its quarters so no deeper level wins.
    let mut h = Histogram256::new();
    for _ in 0..35 {
        h.record(20);
    }
    for _ in 0..35 {
        h.record(100);
    }
    for _ in 0..30 {
        h.record(200);
    }
    let r = paper_range(&h);
    assert_eq!((r.min, r.max), (0, 127));
}

#[test]
fn section_4_1_default_threshold_is_800() {
    assert_eq!(KeyframeConfig::default().threshold, 800.0);
}

#[test]
fn schema_key_frames_row_carries_every_paper_column() {
    // §3.4: i_id, i_name, image, min, max, sch, glcm, gabor, tamura,
    // majorregions, v_id — plus the documented extension columns.
    let mut db = CbvrDatabase::in_memory().unwrap();
    let generator = VideoGenerator::new(GeneratorConfig {
        width: 48,
        height: 36,
        shots_per_video: 2,
        min_shot_frames: 3,
        max_shot_frames: 4,
        ..GeneratorConfig::default()
    })
    .unwrap();
    let clip = generator.generate(Category::News, 1).unwrap();
    let report = ingest_video(&mut db, "news.vsc", &clip, &IngestConfig::default()).unwrap();
    let row = db.get_key_frame(report.keyframe_ids[0]).unwrap();

    assert!(row.i_name.starts_with("v1_kf_"));
    assert!(!row.image.is_empty());
    assert!(row.min <= row.max);
    assert!(row.sch.starts_with("RGB 256"));
    assert!(row.glcm.starts_with("GLCM "));
    assert!(row.gabor.starts_with("gabor 60"));
    assert!(row.tamura.starts_with("Tamura 18"));
    assert!(row.acc.starts_with("ACC 4"));
    assert!(row.naive.starts_with("NaiveVector"));
    assert!(row.srg.starts_with("SRG "));
    assert_eq!(row.v_id, report.v_id);
    // MAJORREGIONS mirrors the SRG string's third value.
    let major: u32 = row.srg.split_whitespace().nth(3).unwrap().parse().unwrap();
    assert_eq!(row.majorregions, major);
}

#[test]
fn fig1_video_store_schema_round_trips() {
    // Video_store(v_id, v_name, video, stream, dostore).
    let mut db = CbvrDatabase::in_memory().unwrap();
    let record = VideoRecord {
        v_name: "named.vsc".into(),
        video: vec![1, 2, 3],
        stream: vec![4, 5],
        dostore: 1_751_700_000,
    };
    let v_id = db.insert_video(&record).unwrap();
    let full = db.get_video(v_id).unwrap();
    assert_eq!(full.v_name, "named.vsc");
    assert_eq!(full.row.dostore, 1_751_700_000);
    assert_eq!(db.read_video_bytes(&full.row).unwrap(), vec![1, 2, 3]);
    assert_eq!(db.read_stream_bytes(&full.row).unwrap(), vec![4, 5]);
}
