//! Failure injection through the public API: commits are atomic under
//! crashes at every write of the commit protocol.

use cbvr::prelude::*;
use cbvr::storage::backend::MemBackend;
use cbvr::storage::CbvrDatabase as Db;

fn clip(seed: u64) -> Video {
    VideoGenerator::new(GeneratorConfig {
        width: 48,
        height: 36,
        shots_per_video: 2,
        min_shot_frames: 3,
        max_shot_frames: 4,
        ..GeneratorConfig::default()
    })
    .unwrap()
    .generate(Category::Cartoon, seed)
    .unwrap()
}

/// Which file the injected crash hits.
#[derive(Copy, Clone, Debug)]
enum CrashTarget {
    /// The WAL: a torn record must roll the whole batch back.
    Wal,
    /// The data file: the synced WAL record must replay on reopen.
    Data,
}

/// Crash the chosen backend after `budget` writes during the second
/// ingest and verify the database recovers to a consistent state: the
/// first video is always intact and the second is either fully present
/// or fully absent.
fn crash_at(target: CrashTarget, budget: u64) -> (usize, usize) {
    let data = MemBackend::new();
    let wal = MemBackend::new();
    let faults = match target {
        CrashTarget::Wal => wal.faults(),
        CrashTarget::Data => data.faults(),
    };
    let config = IngestConfig::default();

    {
        let mut db = Db::on_backends(data.share(), wal.share()).unwrap();
        ingest_video(&mut db, "stable", &clip(1), &config).unwrap();
        faults.fail_after_writes(budget);
        let _ = ingest_video(&mut db, "doomed", &clip(2), &config);
    }
    faults.heal();

    let mut db = Db::on_backends(data.share(), wal.share()).unwrap();
    let videos = db.list_videos().unwrap();
    assert!(
        videos.iter().any(|(_, name, _)| name == "stable"),
        "pre-crash video lost at budget {budget}"
    );
    // Whatever survived must be fully readable.
    let mut keyframes = 0usize;
    for (v_id, name, _) in &videos {
        let full = db.get_video(*v_id).unwrap();
        let bytes = db.read_video_bytes(&full.row).unwrap();
        let decoded = decode_vsc(&bytes).unwrap();
        assert!(decoded.frame_count() > 0, "{name} corrupted at budget {budget}");
        let kf_ids = db.key_frames_of_video(*v_id).unwrap();
        for i_id in &kf_ids {
            let row = db.get_key_frame(*i_id).unwrap();
            let image = db.read_image_bytes(&row).unwrap();
            cbvr::imgproc::decode_auto(&image).unwrap();
        }
        keyframes += kf_ids.len();
    }
    (videos.len(), keyframes)
}

#[test]
fn torn_wal_rolls_the_batch_back() {
    // Crashing inside the WAL append (budget 0 = the first append write
    // fails) must lose exactly the doomed video; a huge budget commits.
    let mut saw_rollback = false;
    let mut saw_commit = false;
    for budget in [0u64, 1, 100_000] {
        let (videos, _) = crash_at(CrashTarget::Wal, budget);
        match videos {
            1 => saw_rollback = true,
            2 => saw_commit = true,
            other => panic!("impossible video count {other} at WAL budget {budget}"),
        }
    }
    assert!(saw_rollback, "a torn WAL record should lose the doomed video");
    assert!(saw_commit, "a large budget should let the commit finish");
}

#[test]
fn synced_wal_survives_data_file_crashes() {
    // Once the WAL record is durable, a crash anywhere in the data-file
    // propagation must NOT lose the commit: recovery replays it.
    for budget in [0u64, 1, 3, 10, 50] {
        let (videos, keyframes) = crash_at(CrashTarget::Data, budget);
        assert_eq!(videos, 2, "WAL-recovered commit lost at data budget {budget}");
        assert!(keyframes >= 2, "key frames missing after recovery at budget {budget}");
    }
}

#[test]
fn wal_tail_corruption_is_discarded_on_open() {
    let data = MemBackend::new();
    let wal = MemBackend::new();
    {
        let mut db = Db::on_backends(data.share(), wal.share()).unwrap();
        ingest_video(&mut db, "v", &clip(3), &IngestConfig::default()).unwrap();
    }
    // Plant garbage in the WAL, as an interrupted append would leave.
    {
        use cbvr::storage::backend::Backend;
        let mut w = wal.share();
        let end = w.len().unwrap();
        w.write_at(end, b"torn garbage record").unwrap();
    }
    let mut db = Db::on_backends(data.share(), wal.share()).unwrap();
    assert_eq!(db.video_count().unwrap(), 1);
    let videos = db.list_videos().unwrap();
    assert_eq!(videos[0].1, "v");
}

#[test]
fn repeated_recovery_is_idempotent() {
    let data = MemBackend::new();
    let wal = MemBackend::new();
    {
        let mut db = Db::on_backends(data.share(), wal.share()).unwrap();
        ingest_video(&mut db, "v1", &clip(1), &IngestConfig::default()).unwrap();
        ingest_video(&mut db, "v2", &clip(2), &IngestConfig::default()).unwrap();
    }
    for _ in 0..3 {
        let mut db = Db::on_backends(data.share(), wal.share()).unwrap();
        assert_eq!(db.video_count().unwrap(), 2);
        assert_eq!(db.list_videos().unwrap().len(), 2);
    }
}
