//! Adaptive shot-boundary detection.
//!
//! The paper's §4.1 extractor uses one global threshold (800.0), tuned by
//! hand for its corpus. A fixed threshold misses low-contrast cuts (two
//! dark scenes) and over-fires on busy footage. This module detects cuts
//! *relative to the local motion level*: frame-pair distances that stand
//! out from a sliding window's statistics are boundaries.
//!
//! A pair distance `d[i]` marks a cut when
//!
//! ```text
//! d[i] > mean_window(i) + sigma · std_window(i)   and   d[i] > floor
//! ```
//!
//! where the window covers the [`AdaptiveConfig::window`] preceding
//! distances. The floor suppresses spurious cuts in near-static footage
//! where the local std is ~0.

use crate::extractor::{signature_distance, Keyframe};
use cbvr_features::naive::NaiveSignature;
use cbvr_imgproc::RgbImage;
use cbvr_video::Video;

/// Adaptive detector parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptiveConfig {
    /// Sliding-window length (in preceding frame pairs).
    pub window: usize,
    /// How many local standard deviations a cut must exceed.
    pub sigma: f64,
    /// Absolute minimum distance for any cut (suppresses static noise).
    pub floor: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig { window: 8, sigma: 3.0, floor: 200.0 }
    }
}

/// Indices of the first frame of each shot (always includes 0).
pub fn detect_shot_boundaries(frames: &[RgbImage], config: &AdaptiveConfig) -> Vec<usize> {
    if frames.is_empty() {
        return Vec::new();
    }
    let mut boundaries = vec![0usize];
    if frames.len() < 2 {
        return boundaries;
    }
    let signatures: Vec<NaiveSignature> = frames.iter().map(NaiveSignature::extract).collect();
    let distances: Vec<f64> = signatures
        .windows(2)
        .map(|pair| signature_distance(&pair[0], &pair[1]))
        .collect();

    for (i, &d) in distances.iter().enumerate() {
        let start = i.saturating_sub(config.window);
        let window = &distances[start..i];
        let (mean, std) = if window.is_empty() {
            (0.0, 0.0)
        } else {
            let mean = window.iter().sum::<f64>() / window.len() as f64;
            let var =
                window.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / window.len() as f64;
            (mean, var.sqrt())
        };
        if d > config.floor && d > mean + config.sigma * std {
            boundaries.push(i + 1); // d[i] is between frames i and i+1
        }
    }
    boundaries
}

/// Extract one key frame per detected shot (the shot's middle frame —
/// cuts and transitions stay out of the catalog).
pub fn extract_keyframes_adaptive(video: &Video, config: &AdaptiveConfig) -> Vec<Keyframe> {
    let frames = video.frames();
    let boundaries = detect_shot_boundaries(frames, config);
    let mut keyframes = Vec::with_capacity(boundaries.len());
    for (b, shot_start) in boundaries.iter().enumerate() {
        let shot_end = boundaries.get(b + 1).copied().unwrap_or(frames.len());
        let pick = shot_start + (shot_end - shot_start) / 2;
        keyframes.push(Keyframe { index: pick, frame: frames[pick].clone() });
    }
    keyframes
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_imgproc::Rgb;
    use cbvr_video::{Category, GeneratorConfig, VideoGenerator};

    fn flat(v: u8) -> RgbImage {
        RgbImage::filled(24, 24, Rgb::new(v, v, v)).unwrap()
    }

    #[test]
    fn empty_and_single_frame() {
        assert!(detect_shot_boundaries(&[], &AdaptiveConfig::default()).is_empty());
        assert_eq!(detect_shot_boundaries(&[flat(5)], &AdaptiveConfig::default()), vec![0]);
    }

    #[test]
    fn static_clip_is_one_shot() {
        let frames = vec![flat(100); 12];
        assert_eq!(detect_shot_boundaries(&frames, &AdaptiveConfig::default()), vec![0]);
    }

    #[test]
    fn hard_cut_is_found_at_the_right_index() {
        let mut frames = vec![flat(30); 6];
        frames.extend(vec![flat(220); 6]);
        let b = detect_shot_boundaries(&frames, &AdaptiveConfig::default());
        assert_eq!(b, vec![0, 6]);
    }

    #[test]
    fn low_contrast_cut_found_where_fixed_threshold_misses() {
        // Two dark scenes 12 gray levels apart: pair distance ≈ 12·25·√3
        // ≈ 520 — *below* the paper's fixed 800 threshold, but a clear
        // outlier against a perfectly static window.
        let mut frames = vec![flat(20); 8];
        frames.extend(vec![flat(32); 8]);

        let fixed = crate::extract_keyframes_from_frames(&frames, &crate::KeyframeConfig::default());
        assert_eq!(fixed.len(), 1, "fixed 800 threshold merges the shots");

        let config = AdaptiveConfig { floor: 100.0, ..AdaptiveConfig::default() };
        let adaptive = detect_shot_boundaries(&frames, &config);
        assert_eq!(adaptive, vec![0, 8], "adaptive detector sees the relative jump");
    }

    #[test]
    fn floor_suppresses_sensor_noise() {
        // Slightly varying static scene: every pair distance is small but
        // nonzero; the floor must keep it a single shot.
        let frames: Vec<RgbImage> = (0..12).map(|i| flat(100 + (i % 2) as u8)).collect();
        let b = detect_shot_boundaries(&frames, &AdaptiveConfig::default());
        assert_eq!(b, vec![0]);
    }

    #[test]
    fn adaptive_keyframes_pick_shot_middles() {
        let mut frames = vec![flat(10); 6];
        frames.extend(vec![flat(200); 10]);
        let video = Video::new(25, frames).unwrap();
        let kfs = extract_keyframes_adaptive(&video, &AdaptiveConfig::default());
        assert_eq!(kfs.len(), 2);
        assert_eq!(kfs[0].index, 3); // middle of 0..6
        assert_eq!(kfs[1].index, 11); // middle of 6..16
    }

    #[test]
    fn finds_scripted_cuts_in_generated_clips() {
        let generator = VideoGenerator::new(GeneratorConfig {
            width: 64,
            height: 48,
            shots_per_video: 4,
            min_shot_frames: 8,
            max_shot_frames: 10,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let script = generator.script(Category::Cartoon, 31);
        let video = generator.render_script(&script).unwrap();
        let expected: Vec<usize> = {
            let mut acc = 0usize;
            let mut cuts = vec![0usize];
            for shot in &script.shots[..script.shots.len() - 1] {
                acc += shot.frames as usize;
                cuts.push(acc);
            }
            cuts
        };
        let found = detect_shot_boundaries(video.frames(), &AdaptiveConfig::default());
        // Every scripted cut is found (within ±1 frame); in-shot motion
        // may add at most a couple of extra boundaries.
        for cut in &expected {
            assert!(
                found.iter().any(|f| (*f as i64 - *cut as i64).abs() <= 1),
                "scripted cut {cut} not found in {found:?}"
            );
        }
        assert!(found.len() <= expected.len() + 2, "too many spurious cuts: {found:?}");
    }
}
