//! # cbvr-keyframe — key-frame extraction (§4.1)
//!
//! "Starts from 1st frame from sorted list of files. If consecutive frames
//! are within threshold, then two frames are similar. Repeat process till
//! frames are similar, delete all similar frames & take 1st as key-frame.
//! Start with next frame which is outside threshold & repeat."
//!
//! The distance the paper thresholds (`dist > 800.0`) is the raw
//! superficial-signature distance between the two frames after rescaling
//! to the 300×300 canvas: the sum, over the 25 sample points, of the
//! Euclidean RGB distance between mean colors. [`signature_distance`]
//! computes exactly that, and the default [`KeyframeConfig::threshold`]
//! is the paper's 800.0.
//!
//! Beyond the paper's first-of-run strategy, [`Strategy::MiddleOfRun`]
//! picks the run's central frame (a common refinement that avoids
//! transition blur at shot starts), and [`adaptive`] replaces the global
//! threshold with a local-statistics shot-boundary detector that catches
//! low-contrast cuts the fixed 800.0 misses.
#![warn(missing_docs)]


pub mod adaptive;
mod extractor;

pub use adaptive::{detect_shot_boundaries, extract_keyframes_adaptive, AdaptiveConfig};
pub use extractor::{
    extract_keyframes, extract_keyframes_from_frames, signature_distance, Keyframe,
    KeyframeConfig, Strategy,
};
