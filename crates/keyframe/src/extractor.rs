//! The run-based key-frame extractor.

use cbvr_features::naive::NaiveSignature;
use cbvr_imgproc::RgbImage;
use cbvr_video::Video;

/// Which frame of a run of similar frames becomes the key frame.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// The paper's choice: "take 1st as key-frame".
    #[default]
    FirstOfRun,
    /// The run's middle frame — avoids shot-transition blur.
    MiddleOfRun,
}

/// Extraction parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct KeyframeConfig {
    /// Similarity threshold on the raw signature distance; the paper uses
    /// `dist > 800.0` as the cut test.
    pub threshold: f64,
    /// Run representative selection.
    pub strategy: Strategy,
}

impl Default for KeyframeConfig {
    fn default() -> Self {
        KeyframeConfig { threshold: 800.0, strategy: Strategy::FirstOfRun }
    }
}

/// A selected key frame with its position in the source clip.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Keyframe {
    /// Index of the frame in the source video.
    pub index: usize,
    /// The frame itself.
    pub frame: RgbImage,
}

/// Raw superficial-signature distance (§4.6 signature, §4.1 threshold
/// semantics): the sum over the 25 grid points of the Euclidean RGB
/// distance between mean colors. Identical frames score 0; a hard cut on
/// the synthetic corpus typically scores in the thousands, comfortably
/// above the 800.0 default threshold.
pub fn signature_distance(a: &NaiveSignature, b: &NaiveSignature) -> f64 {
    a.colors()
        .iter()
        .zip(b.colors())
        .map(|(p, q)| {
            let dr = p.r as f64 - q.r as f64;
            let dg = p.g as f64 - q.g as f64;
            let db = p.b as f64 - q.b as f64;
            (dr * dr + dg * dg + db * db).sqrt()
        })
        .sum()
}

/// Extract key frames from a decoded video.
pub fn extract_keyframes(video: &Video, config: &KeyframeConfig) -> Vec<Keyframe> {
    extract_keyframes_from_frames(video.frames(), config)
}

/// Extract key frames from a raw frame sequence ("all Jpeg files in files
/// array", already sorted).
///
/// Runs of consecutive frames whose pairwise distance to the run anchor
/// stays within `threshold` collapse to one representative; the first
/// frame beyond the threshold starts the next run. An empty input yields
/// no key frames.
pub fn extract_keyframes_from_frames(frames: &[RgbImage], config: &KeyframeConfig) -> Vec<Keyframe> {
    if frames.is_empty() {
        return Vec::new();
    }
    // Signatures are computed once per frame; the paper's pseudocode
    // re-rescales inside the O(n²) loop, which is equivalent but wasteful.
    let signatures: Vec<NaiveSignature> = frames.iter().map(NaiveSignature::extract).collect();

    let mut keyframes = Vec::new();
    let mut run_start = 0usize;
    while run_start < frames.len() {
        // Grow the run while frames stay within threshold of the anchor,
        // exactly like the pseudocode's inner j-loop ("delete file j").
        let mut run_end = run_start + 1;
        while run_end < frames.len()
            && signature_distance(&signatures[run_start], &signatures[run_end]) <= config.threshold
        {
            run_end += 1;
        }
        let pick = match config.strategy {
            Strategy::FirstOfRun => run_start,
            Strategy::MiddleOfRun => run_start + (run_end - run_start) / 2,
        };
        keyframes.push(Keyframe { index: pick, frame: frames[pick].clone() });
        run_start = run_end;
    }
    keyframes
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_imgproc::Rgb;
    use cbvr_video::{Category, GeneratorConfig, VideoGenerator};

    fn flat(v: u8) -> RgbImage {
        RgbImage::filled(20, 20, Rgb::new(v, v, v)).unwrap()
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(extract_keyframes_from_frames(&[], &KeyframeConfig::default()).is_empty());
    }

    #[test]
    fn single_frame_is_its_own_keyframe() {
        let kfs = extract_keyframes_from_frames(&[flat(10)], &KeyframeConfig::default());
        assert_eq!(kfs.len(), 1);
        assert_eq!(kfs[0].index, 0);
    }

    #[test]
    fn identical_frames_collapse_to_one() {
        let frames = vec![flat(100); 10];
        let kfs = extract_keyframes_from_frames(&frames, &KeyframeConfig::default());
        assert_eq!(kfs.len(), 1);
        assert_eq!(kfs[0].index, 0);
    }

    #[test]
    fn hard_cut_splits_runs() {
        let mut frames = vec![flat(10); 5];
        frames.extend(vec![flat(240); 5]);
        let kfs = extract_keyframes_from_frames(&frames, &KeyframeConfig::default());
        assert_eq!(kfs.len(), 2);
        assert_eq!(kfs[0].index, 0);
        assert_eq!(kfs[1].index, 5);
        assert_eq!(kfs[1].frame.get(0, 0), Rgb::new(240, 240, 240));
    }

    #[test]
    fn middle_of_run_strategy() {
        let mut frames = vec![flat(10); 5];
        frames.extend(vec![flat(240); 4]);
        let config = KeyframeConfig { strategy: Strategy::MiddleOfRun, ..Default::default() };
        let kfs = extract_keyframes_from_frames(&frames, &config);
        assert_eq!(kfs.len(), 2);
        assert_eq!(kfs[0].index, 2); // middle of 0..5
        assert_eq!(kfs[1].index, 7); // middle of 5..9
    }

    #[test]
    fn threshold_zero_keeps_every_distinct_frame() {
        let frames: Vec<RgbImage> = (0..4).map(|i| flat(i * 60)).collect();
        let config = KeyframeConfig { threshold: 0.0, ..Default::default() };
        let kfs = extract_keyframes_from_frames(&frames, &config);
        assert_eq!(kfs.len(), 4);
    }

    #[test]
    fn huge_threshold_keeps_only_first() {
        let frames: Vec<RgbImage> = (0..6).map(|i| flat(i * 40)).collect();
        let config = KeyframeConfig { threshold: f64::INFINITY, ..Default::default() };
        let kfs = extract_keyframes_from_frames(&frames, &config);
        assert_eq!(kfs.len(), 1);
    }

    #[test]
    fn signature_distance_basics() {
        let a = NaiveSignature::extract(&flat(0));
        let b = NaiveSignature::extract(&flat(255));
        assert_eq!(signature_distance(&a, &a), 0.0);
        // 25 points × √3·255 ≈ 11 041.
        let expected = 25.0 * (3.0f64).sqrt() * 255.0;
        assert!((signature_distance(&a, &b) - expected).abs() < 1.0);
    }

    #[test]
    fn synthetic_clip_yields_roughly_one_keyframe_per_shot() {
        let generator = VideoGenerator::new(GeneratorConfig::default()).unwrap();
        let script = generator.script(Category::Cartoon, 42);
        let video = generator.render_script(&script).unwrap();
        let kfs = extract_keyframes(&video, &KeyframeConfig::default());
        let shots = script.shots.len();
        assert!(
            kfs.len() >= shots && kfs.len() <= shots * 3,
            "expected ~{shots} keyframes, got {}",
            kfs.len()
        );
        // Keyframe indices are strictly increasing.
        for pair in kfs.windows(2) {
            assert!(pair[0].index < pair[1].index);
        }
    }

    #[test]
    fn keyframes_reduce_volume_substantially() {
        let generator = VideoGenerator::new(GeneratorConfig::default()).unwrap();
        let video = generator.generate(Category::Movie, 9).unwrap();
        let kfs = extract_keyframes(&video, &KeyframeConfig::default());
        assert!(
            kfs.len() * 2 <= video.frame_count(),
            "{} keyframes from {} frames",
            kfs.len(),
            video.frame_count()
        );
    }
}
