//! `cbvr` binary entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(cbvr_cli::commands::main_with(&args));
}
