//! Command execution against a durable on-disk database.
//!
//! Every command returns its output as a `String` (printed by `main`),
//! which keeps the whole surface unit-testable.

use crate::args::Command;
use cbvr_core::{ingest_video, FeatureWeights, IngestConfig, QueryEngine, QueryOptions};
use cbvr_imgproc::codec::{encode as encode_image, ImageFormat};
use cbvr_keyframe::KeyframeConfig;
use cbvr_storage::backend::FileBackend;
use cbvr_storage::{CbvrDatabase, ManifestSegment};
use cbvr_video::{decode_vsc, GeneratorConfig, VideoGenerator};
use std::fmt;
use std::path::{Path, PathBuf};

/// A command failure with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(context: &str, e: impl fmt::Display) -> CliError {
    CliError(format!("{context}: {e}"))
}

type Db = CbvrDatabase<FileBackend>;

fn open(db_dir: &Path) -> Result<Db, CliError> {
    Db::open_dir(db_dir).map_err(|e| err("open database", e))
}

/// Execute a parsed command; returns the text to print.
pub fn run(db_dir: &Path, command: Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(crate::args::USAGE.to_string()),
        Command::Generate { category, seed, name } => {
            let mut db = open(db_dir)?;
            let generator = VideoGenerator::new(GeneratorConfig::default())
                .map_err(|e| err("generator", e))?;
            let clip = generator.generate(category, seed).map_err(|e| err("generate", e))?;
            let report = ingest_video(&mut db, &name, &clip, &IngestConfig::default())
                .map_err(|e| err("ingest", e))?;
            Ok(format!(
                "added v_id={} '{name}' ({} frames, {} key frames)",
                report.v_id,
                clip.frame_count(),
                report.keyframe_ids.len()
            ))
        }
        Command::Ingest { file, name } => {
            let bytes = std::fs::read(&file).map_err(|e| err("read file", e))?;
            // The decode stage of the ingest pipeline (the library's
            // `ingest_video` takes an already-decoded clip).
            let clip = {
                let _t = cbvr_core::Registry::global().span("ingest.decode_nanos");
                decode_vsc(&bytes).map_err(|e| err("decode VSC", e))?
            };
            let name = name.unwrap_or_else(|| {
                file.file_name().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default()
            });
            if name.is_empty() {
                return Err(CliError("cannot derive a name; pass --name".into()));
            }
            let mut db = open(db_dir)?;
            let report = ingest_video(&mut db, &name, &clip, &IngestConfig::default())
                .map_err(|e| err("ingest", e))?;
            Ok(format!("added v_id={} '{name}' ({} key frames)", report.v_id, report.keyframe_ids.len()))
        }
        Command::List => {
            let mut db = open(db_dir)?;
            let videos = db.list_videos().map_err(|e| err("list", e))?;
            if videos.is_empty() {
                return Ok("database is empty".to_string());
            }
            let mut out = format!("{:<6} {:<30} {:<12} key frames\n", "v_id", "name", "dostore");
            for (v_id, name, dostore) in videos {
                let kf = db.key_frames_of_video(v_id).map_err(|e| err("key frames", e))?.len();
                out.push_str(&format!("{v_id:<6} {name:<30} {dostore:<12} {kf}\n"));
            }
            Ok(out)
        }
        Command::Rename { id, name } => {
            let mut db = open(db_dir)?;
            db.rename_video(id, &name).map_err(|e| err("rename", e))?;
            Ok(format!("renamed v_id={id} to '{name}'"))
        }
        Command::Delete { id } => {
            let mut db = open(db_dir)?;
            db.delete_video(id).map_err(|e| err("delete", e))?;
            Ok(format!("deleted v_id={id} (and its key frames)"))
        }
        Command::Query { image, k, feature, no_index, no_abandon } => {
            let bytes = std::fs::read(&image).map_err(|e| err("read image", e))?;
            let frame = cbvr_imgproc::decode_auto(&bytes).map_err(|e| err("decode image", e))?;
            let mut db = open(db_dir)?;
            let engine = QueryEngine::from_database(&mut db).map_err(|e| err("load catalog", e))?;
            if engine.is_empty() {
                return Ok("catalog is empty — ingest videos first".to_string());
            }
            let weights = match feature {
                Some(kind) => FeatureWeights::single(kind),
                None => FeatureWeights::default(),
            };
            let results =
                engine.query_frame(
                &frame,
                &QueryOptions {
                    k,
                    weights,
                    use_index: !no_index,
                    abandon: !no_abandon,
                    ..Default::default()
                },
            );
            let mut out = format!("{:<6} {:<30} {:<10} score\n", "rank", "video", "keyframe");
            for (rank, m) in results.iter().enumerate() {
                out.push_str(&format!(
                    "{:<6} {:<30} #{:<9} {:.4}\n",
                    rank + 1,
                    engine.video_name(m.v_id).unwrap_or_else(|| "?".to_string()),
                    m.i_id,
                    m.score
                ));
            }
            Ok(out)
        }
        Command::QueryClip { file, k } => {
            let bytes = std::fs::read(&file).map_err(|e| err("read file", e))?;
            let clip = decode_vsc(&bytes).map_err(|e| err("decode VSC", e))?;
            let mut db = open(db_dir)?;
            let engine = QueryEngine::from_database(&mut db).map_err(|e| err("load catalog", e))?;
            let results = engine.query_video(
                &clip,
                &KeyframeConfig::default(),
                &QueryOptions { k, ..Default::default() },
            );
            let mut out = format!("{:<6} {:<30} DTW distance\n", "rank", "video");
            for (rank, m) in results.iter().enumerate() {
                out.push_str(&format!(
                    "{:<6} {:<30} {:.5}\n",
                    rank + 1,
                    engine.video_name(m.v_id).unwrap_or_else(|| "?".to_string()),
                    m.distance
                ));
            }
            Ok(out)
        }
        Command::Search { name } => {
            let mut db = open(db_dir)?;
            let engine = QueryEngine::from_database(&mut db).map_err(|e| err("load catalog", e))?;
            let hits = engine.find_videos_by_name(&name);
            if hits.is_empty() {
                return Ok(format!("no video names contain '{name}'"));
            }
            Ok(hits
                .into_iter()
                .map(|(v_id, n)| format!("v_id={v_id} {n}"))
                .collect::<Vec<_>>()
                .join("\n"))
        }
        Command::Export { id, out } => {
            let mut db = open(db_dir)?;
            let full = db.get_video(id).map_err(|e| err("fetch", e))?;
            std::fs::create_dir_all(&out).map_err(|e| err("create out dir", e))?;
            let video_bytes = db.read_video_bytes(&full.row).map_err(|e| err("video blob", e))?;
            let video_path = out.join(format!("{}.vsc", sanitise(&full.v_name)));
            std::fs::write(&video_path, &video_bytes).map_err(|e| err("write video", e))?;
            let mut frames_written = 0usize;
            for i_id in db.key_frames_of_video(id).map_err(|e| err("key frames", e))? {
                let row = db.get_key_frame(i_id).map_err(|e| err("key frame", e))?;
                let image = db.read_image_bytes(&row).map_err(|e| err("image blob", e))?;
                let img = cbvr_imgproc::decode_auto(&image).map_err(|e| err("decode image", e))?;
                let path = out.join(format!("{}.bmp", sanitise(&row.i_name)));
                std::fs::write(path, encode_image(&img, ImageFormat::Bmp))
                    .map_err(|e| err("write key frame", e))?;
                frames_written += 1;
            }
            Ok(format!(
                "exported '{}' to {} ({} key frames)",
                full.v_name,
                video_path.display(),
                frames_written
            ))
        }
        Command::Stats { telemetry } => {
            let mut db = open(db_dir)?;
            let s = db.stats().map_err(|e| err("stats", e))?;
            let mut out = format!(
                "pages: {}\nvideos: {}\nkey frames: {}\nnext v_id: {}\nnext i_id: {}\n\
                 manifest segments: {}",
                s.pages, s.videos, s.key_frames, s.next_v_id, s.next_i_id, s.manifest_segments
            );
            if telemetry {
                // Load the catalog so the query-engine counters exist
                // (notably `query.arena.bytes`, recorded at arena build).
                let engine =
                    QueryEngine::from_database(&mut db).map_err(|e| err("load catalog", e))?;
                out.push_str(&format!(
                    "\n\nsegments ({} live rows, {} tombstoned videos):\n{:<6} {:<8} {:<10} arena bytes\n",
                    engine.len(),
                    engine.tombstone_count(),
                    "id",
                    "rows",
                    "live"
                ));
                for seg in engine.segment_stats() {
                    out.push_str(&format!(
                        "{:<6} {:<8} {:<10} {}\n",
                        seg.id, seg.rows, seg.live_rows, seg.arena_bytes
                    ));
                }
                // The process-wide registry plus the storage engine's
                // counters, merged and sorted like `GET /metrics`.
                let mut lines = cbvr_core::Registry::global().render_lines();
                lines.extend(db.telemetry().render_lines());
                lines.sort();
                out.push_str("\n\ntelemetry:\n");
                for line in &lines {
                    out.push_str(line);
                    out.push('\n');
                }
            }
            Ok(out)
        }
        Command::Vacuum => {
            let mut db = open(db_dir)?;
            let before = db.stats().map_err(|e| err("stats", e))?;
            // Vacuum into a sibling temp dir, then swap files.
            let tmp = db_dir.join("vacuum-tmp");
            let _ = std::fs::remove_dir_all(&tmp);
            std::fs::create_dir_all(&tmp).map_err(|e| err("create temp dir", e))?;
            let data = FileBackend::open(&tmp.join("cbvr.db")).map_err(|e| err("temp db", e))?;
            let wal = FileBackend::open(&tmp.join("cbvr.wal")).map_err(|e| err("temp wal", e))?;
            let fresh = db.vacuum_into(data, wal).map_err(|e| err("vacuum", e))?;
            let after_pages = fresh.page_count();
            drop(fresh);
            drop(db);
            std::fs::rename(tmp.join("cbvr.db"), db_dir.join("cbvr.db"))
                .map_err(|e| err("swap db", e))?;
            std::fs::rename(tmp.join("cbvr.wal"), db_dir.join("cbvr.wal"))
                .map_err(|e| err("swap wal", e))?;
            let _ = std::fs::remove_dir_all(&tmp);
            Ok(format!("vacuumed: {} pages -> {} pages", before.pages, after_pages))
        }
        Command::Compact => {
            let mut db = open(db_dir)?;
            let engine = QueryEngine::from_database(&mut db).map_err(|e| err("load catalog", e))?;
            let report = engine.compact();
            // Persist the merged layout: replace the WAL manifest with one
            // record spanning the live rows, so the next catalog load sees
            // a single segment too.
            let manifest = if engine.is_empty() {
                Vec::new()
            } else {
                vec![ManifestSegment {
                    min_i_id: engine.entry(0).i_id,
                    max_i_id: engine.entry(engine.len() - 1).i_id,
                    rows: engine.len() as u64,
                }]
            };
            db.replace_manifest(&manifest).map_err(|e| err("write manifest", e))?;
            Ok(format!(
                "compacted: {} segments -> {} ({} rows dropped, {} live rows, calibration refreshed)",
                report.segments_before,
                report.segments_after,
                report.rows_dropped,
                engine.len()
            ))
        }
    }
}

fn sanitise(name: &str) -> String {
    name.chars().map(|c| if c.is_alphanumeric() || c == '-' || c == '_' { c } else { '_' }).collect()
}

/// `main` body: parse, run, print; returns the process exit code.
pub fn main_with(args: &[String]) -> i32 {
    match crate::args::parse(args) {
        Err(e) => {
            eprintln!("error: {e}\n\n{}", crate::args::USAGE);
            2
        }
        Ok((db, command)) => match run(&db, command) {
            Ok(output) => {
                println!("{output}");
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
    }
}

#[allow(unused)]
fn unused_pathbuf(_: PathBuf) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn temp_db(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cbvr-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cli(db: &Path, args: &[&str]) -> Result<String, CliError> {
        let mut full: Vec<String> = vec!["--db".into(), db.to_string_lossy().into_owned()];
        full.extend(args.iter().map(|s| s.to_string()));
        let (dir, cmd) = parse(&full).expect("parse");
        run(&dir, cmd)
    }

    #[test]
    fn full_admin_and_user_workflow() {
        let db = temp_db("flow");

        // Admin: generate two clips.
        let out = cli(&db, &["generate", "--category", "sports", "--seed", "1", "--name", "s1"])
            .unwrap();
        assert!(out.contains("added v_id=1"), "{out}");
        cli(&db, &["generate", "--category", "movie", "--seed", "2", "--name", "m1"]).unwrap();

        // List shows both.
        let out = cli(&db, &["list"]).unwrap();
        assert!(out.contains("s1") && out.contains("m1"), "{out}");

        // Rename, search by metadata.
        cli(&db, &["rename", "--id", "1", "--name", "sports_final"]).unwrap();
        let out = cli(&db, &["search", "--name", "SPORTS"]).unwrap();
        assert!(out.contains("sports_final"), "{out}");

        // Export, then query with an exported key frame: self-match first.
        let out_dir = db.join("export");
        cli(&db, &["export", "--id", "1", "--out", out_dir.to_str().unwrap()]).unwrap();
        let bmp = std::fs::read_dir(&out_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.path().extension().is_some_and(|x| x == "bmp"))
            .expect("exported key frame");
        let out = cli(&db, &["query", "--image", bmp.path().to_str().unwrap(), "--k", "3"]).unwrap();
        let first_line = out.lines().nth(1).unwrap();
        assert!(first_line.contains("sports_final"), "{out}");
        assert!(first_line.contains("1.0000"), "self-match scores 1: {out}");

        // Single-feature query also runs.
        let out = cli(
            &db,
            &["query", "--image", bmp.path().to_str().unwrap(), "--feature", "glcm", "--no-index"],
        )
        .unwrap();
        assert!(out.contains("rank"), "{out}");

        // Clip query with the exported container finds its source.
        let vsc = std::fs::read_dir(&out_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.path().extension().is_some_and(|x| x == "vsc"))
            .expect("exported container");
        let out = cli(&db, &["query-clip", "--file", vsc.path().to_str().unwrap()]).unwrap();
        assert!(out.lines().nth(1).unwrap().contains("sports_final"), "{out}");

        // Stats, delete, vacuum.
        let out = cli(&db, &["stats"]).unwrap();
        assert!(out.contains("videos: 2"), "{out}");
        cli(&db, &["delete", "--id", "2"]).unwrap();
        let out = cli(&db, &["vacuum"]).unwrap();
        assert!(out.contains("pages"), "{out}");
        let out = cli(&db, &["list"]).unwrap();
        assert!(out.contains("sports_final") && !out.contains("m1"), "{out}");

        std::fs::remove_dir_all(&db).ok();
    }

    #[test]
    fn errors_are_user_facing() {
        let db = temp_db("errs");
        let e = cli(&db, &["delete", "--id", "99"]).unwrap_err();
        assert!(e.to_string().contains("delete"), "{e}");
        let e = cli(&db, &["query", "--image", "/nonexistent.bmp"]).unwrap_err();
        assert!(e.to_string().contains("read image"), "{e}");
        std::fs::remove_dir_all(&db).ok();
    }

    #[test]
    fn empty_catalog_query_is_graceful() {
        let db = temp_db("empty");
        // Create the db by running stats once.
        cli(&db, &["stats"]).unwrap();
        // Write a query image.
        let img = cbvr_imgproc::RgbImage::filled(16, 16, cbvr_imgproc::Rgb::new(1, 2, 3)).unwrap();
        let path = db.join("q.bmp");
        std::fs::write(&path, encode_image(&img, ImageFormat::Bmp)).unwrap();
        let out = cli(&db, &["query", "--image", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("catalog is empty"), "{out}");
        std::fs::remove_dir_all(&db).ok();
    }

    #[test]
    fn ingest_from_file_round_trips() {
        let db = temp_db("ingest");
        std::fs::create_dir_all(&db).unwrap();
        // Write a VSC clip to disk.
        let generator = VideoGenerator::new(GeneratorConfig {
            width: 48,
            height: 36,
            shots_per_video: 2,
            min_shot_frames: 3,
            max_shot_frames: 4,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let clip = generator.generate(cbvr_video::Category::News, 5).unwrap();
        let path = db.join("news.vsc");
        std::fs::write(&path, cbvr_video::encode_vsc(&clip, cbvr_video::FrameCodec::Delta)).unwrap();

        let out = cli(&db, &["ingest", "--file", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("'news.vsc'"), "name derived from file: {out}");
        let out = cli(&db, &["list"]).unwrap();
        assert!(out.contains("news.vsc"), "{out}");
        std::fs::remove_dir_all(&db).ok();
    }

    #[test]
    fn compact_merges_manifest_segments() {
        let db = temp_db("compact");
        cli(&db, &["generate", "--category", "sports", "--seed", "1", "--name", "a"]).unwrap();
        cli(&db, &["generate", "--category", "movie", "--seed", "2", "--name", "b"]).unwrap();

        // Each ingest sealed one manifest segment.
        let out = cli(&db, &["stats"]).unwrap();
        assert!(out.contains("manifest segments: 2"), "{out}");

        let out = cli(&db, &["compact"]).unwrap();
        assert!(out.contains("compacted: 2 segments -> 1"), "{out}");
        assert!(out.contains("0 rows dropped"), "{out}");

        // The persisted layout is now one segment, and the telemetry view
        // renders the per-segment table plus the catalog gauges.
        let out = cli(&db, &["stats", "--telemetry"]).unwrap();
        assert!(out.contains("manifest segments: 1"), "{out}");
        assert!(out.contains("segments ("), "{out}");
        assert!(out.contains("catalog.segments 1"), "{out}");
        assert!(out.contains("catalog.tombstones 0"), "{out}");

        // Queries still work on the compacted layout.
        let out_dir = db.join("export");
        cli(&db, &["export", "--id", "1", "--out", out_dir.to_str().unwrap()]).unwrap();
        let bmp = std::fs::read_dir(&out_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.path().extension().is_some_and(|x| x == "bmp"))
            .expect("exported key frame");
        let out = cli(&db, &["query", "--image", bmp.path().to_str().unwrap(), "--k", "2"]).unwrap();
        assert!(out.lines().nth(1).unwrap().contains("1.0000"), "{out}");

        std::fs::remove_dir_all(&db).ok();
    }

    #[test]
    fn help_prints_usage() {
        let (_, cmd) = parse(&["help".to_string()]).unwrap();
        let out = run(Path::new(""), cmd).unwrap();
        assert!(out.contains("administrator commands"));
    }
}
