//! Hand-rolled argument parsing: `cbvr --db DIR <command> [flags]`.

use cbvr_features::FeatureKind;
use cbvr_video::Category;
use std::fmt;
use std::path::PathBuf;

/// A parsed invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Generate a synthetic clip into the database (demo content).
    Generate {
        /// Clip category.
        category: Category,
        /// Generation seed.
        seed: u64,
        /// Stored name.
        name: String,
    },
    /// Ingest a VSC file from disk.
    Ingest {
        /// Path to the `.vsc` file.
        file: PathBuf,
        /// Stored name (defaults to the file name).
        name: Option<String>,
    },
    /// List stored videos.
    List,
    /// Rename a stored video.
    Rename {
        /// Video id.
        id: u64,
        /// New name.
        name: String,
    },
    /// Delete a stored video (cascades to its key frames).
    Delete {
        /// Video id.
        id: u64,
    },
    /// Query by example image file.
    Query {
        /// Path to a PPM/PGM/BMP/VJP image.
        image: PathBuf,
        /// Results to return.
        k: usize,
        /// Restrict scoring to one feature (None = combined).
        feature: Option<FeatureKind>,
        /// Disable range-index pruning.
        no_index: bool,
        /// Disable the early-abandon cascade (score every candidate in
        /// full; results are identical, only the work differs).
        no_abandon: bool,
    },
    /// Query by example clip file (DTW).
    QueryClip {
        /// Path to a `.vsc` file.
        file: PathBuf,
        /// Results to return.
        k: usize,
    },
    /// Metadata search by name substring.
    Search {
        /// Case-insensitive substring.
        name: String,
    },
    /// Export a stored video and its key frames to a directory.
    Export {
        /// Video id.
        id: u64,
        /// Output directory.
        out: PathBuf,
    },
    /// Print database statistics.
    Stats {
        /// Also print the runtime telemetry counters and histograms.
        telemetry: bool,
    },
    /// Rewrite the database compactly.
    Vacuum,
    /// Merge the catalog's segments, dropping tombstoned rows and
    /// refreshing the score calibration; persists the merged layout to
    /// the WAL manifest.
    Compact,
    /// Print usage.
    Help,
}

/// A parse failure with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// The usage text printed by `cbvr help`.
pub const USAGE: &str = "\
cbvr — content-based video retrieval

USAGE: cbvr --db DIR <command> [flags]

administrator commands:
  generate --category CAT --seed N --name NAME    add a synthetic clip
  ingest --file F.vsc [--name NAME]               add a clip from disk
  rename --id N --name NAME                       rename a stored video
  delete --id N                                   delete a video (cascades)
  vacuum                                          rewrite the db compactly
  compact                                         merge catalog segments,
                                                  drop removed rows, recalibrate

user commands:
  query --image F [--k N] [--feature KIND] [--no-index] [--no-abandon]
  query-clip --file F.vsc [--k N]
  search --name SUBSTR
  export --id N --out DIR
  list
  stats [--telemetry]
";

struct Cursor {
    args: Vec<String>,
    pos: usize,
}

impl Cursor {
    fn next(&mut self) -> Option<&str> {
        let a = self.args.get(self.pos)?;
        self.pos += 1;
        Some(a)
    }

    fn value_for(&mut self, flag: &str) -> Result<String, ParseError> {
        self.next()
            .map(str::to_string)
            .ok_or_else(|| ParseError(format!("flag {flag} needs a value")))
    }
}

/// Parse an argument vector (without the program name). Returns the
/// database directory and the command.
pub fn parse(args: &[String]) -> Result<(PathBuf, Command), ParseError> {
    let mut cursor = Cursor { args: args.to_vec(), pos: 0 };
    let mut db: Option<PathBuf> = None;

    let command = loop {
        let Some(arg) = cursor.next() else {
            break Command::Help;
        };
        match arg {
            "--db" => db = Some(PathBuf::from(cursor.value_for("--db")?)),
            "help" | "--help" | "-h" => break Command::Help,
            other => {
                let name = other.to_string();
                break parse_command(&name, &mut cursor)?;
            }
        }
    };

    if matches!(command, Command::Help) {
        return Ok((db.unwrap_or_default(), command));
    }
    let db = db.ok_or_else(|| ParseError("missing --db DIR".into()))?;
    Ok((db, command))
}

fn parse_command(name: &str, cursor: &mut Cursor) -> Result<Command, ParseError> {
    let mut category: Option<Category> = None;
    let mut seed: Option<u64> = None;
    let mut id: Option<u64> = None;
    let mut k: Option<usize> = None;
    let mut video_name: Option<String> = None;
    let mut file: Option<PathBuf> = None;
    let mut image: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut feature: Option<FeatureKind> = None;
    let mut no_index = false;
    let mut no_abandon = false;
    let mut telemetry = false;

    while let Some(flag) = cursor.next() {
        let flag = flag.to_string();
        match flag.as_str() {
            "--category" => {
                let v = cursor.value_for(&flag)?;
                category = Some(
                    Category::from_name(&v)
                        .ok_or_else(|| ParseError(format!("unknown category '{v}'")))?,
                );
            }
            "--seed" => {
                seed = Some(
                    cursor
                        .value_for(&flag)?
                        .parse()
                        .map_err(|e| ParseError(format!("bad --seed: {e}")))?,
                )
            }
            "--id" => {
                id = Some(
                    cursor
                        .value_for(&flag)?
                        .parse()
                        .map_err(|e| ParseError(format!("bad --id: {e}")))?,
                )
            }
            "--k" => {
                k = Some(
                    cursor
                        .value_for(&flag)?
                        .parse()
                        .map_err(|e| ParseError(format!("bad --k: {e}")))?,
                )
            }
            "--name" => video_name = Some(cursor.value_for(&flag)?),
            "--file" => file = Some(PathBuf::from(cursor.value_for(&flag)?)),
            "--image" => image = Some(PathBuf::from(cursor.value_for(&flag)?)),
            "--out" => out = Some(PathBuf::from(cursor.value_for(&flag)?)),
            "--feature" => {
                let v = cursor.value_for(&flag)?;
                feature = Some(
                    FeatureKind::from_name(&v)
                        .ok_or_else(|| ParseError(format!("unknown feature '{v}'")))?,
                );
            }
            "--no-index" => no_index = true,
            "--no-abandon" => no_abandon = true,
            "--telemetry" => telemetry = true,
            other => return Err(ParseError(format!("unknown flag '{other}' for {name}"))),
        }
    }

    // A closure cannot be generic over the option's payload; a macro can.
    macro_rules! need {
        ($opt:expr, $what:expr) => {
            $opt.ok_or_else(|| ParseError(format!("{name} requires {}", $what)))?
        };
    }
    Ok(match name {
        "generate" => Command::Generate {
            category: need!(category, "--category"),
            seed: seed.unwrap_or(0),
            name: need!(video_name, "--name"),
        },
        "ingest" => Command::Ingest { file: need!(file, "--file"), name: video_name },
        "list" => Command::List,
        "rename" => Command::Rename { id: need!(id, "--id"), name: need!(video_name, "--name") },
        "delete" => Command::Delete { id: need!(id, "--id") },
        "query" => Command::Query {
            image: need!(image, "--image"),
            k: k.unwrap_or(10),
            feature,
            no_index,
            no_abandon,
        },
        "query-clip" => Command::QueryClip { file: need!(file, "--file"), k: k.unwrap_or(5) },
        "search" => Command::Search { name: need!(video_name, "--name") },
        "export" => Command::Export { id: need!(id, "--id"), out: need!(out, "--out") },
        "stats" => Command::Stats { telemetry },
        "vacuum" => Command::Vacuum,
        "compact" => Command::Compact,
        other => return Err(ParseError(format!("unknown command '{other}'"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_generate() {
        let (db, cmd) = parse(&v(&[
            "--db", "/tmp/x", "generate", "--category", "sports", "--seed", "7", "--name", "a.vsc",
        ]))
        .unwrap();
        assert_eq!(db, PathBuf::from("/tmp/x"));
        assert_eq!(
            cmd,
            Command::Generate { category: Category::Sports, seed: 7, name: "a.vsc".into() }
        );
    }

    #[test]
    fn parses_query_with_options() {
        let (_, cmd) = parse(&v(&[
            "--db", "d", "query", "--image", "q.bmp", "--k", "25", "--feature", "gabor",
            "--no-index", "--no-abandon",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                image: PathBuf::from("q.bmp"),
                k: 25,
                feature: Some(FeatureKind::Gabor),
                no_index: true,
                no_abandon: true,
            }
        );
    }

    #[test]
    fn defaults_apply() {
        let (_, cmd) = parse(&v(&["--db", "d", "query", "--image", "q.bmp"])).unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                image: PathBuf::from("q.bmp"),
                k: 10,
                feature: None,
                no_index: false,
                no_abandon: false,
            }
        );
        let (_, cmd) = parse(&v(&["--db", "d", "generate", "--category", "news", "--name", "n"]))
            .unwrap();
        assert!(matches!(cmd, Command::Generate { seed: 0, .. }));
    }

    #[test]
    fn missing_db_is_an_error_except_for_help() {
        assert!(parse(&v(&["list"])).is_err());
        let (_, cmd) = parse(&v(&["help"])).unwrap();
        assert_eq!(cmd, Command::Help);
        let (_, cmd) = parse(&v(&[])).unwrap();
        assert_eq!(cmd, Command::Help);
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(parse(&v(&["--db", "d", "generate", "--name", "x"])).is_err());
        assert!(parse(&v(&["--db", "d", "rename", "--id", "1"])).is_err());
        assert!(parse(&v(&["--db", "d", "export", "--id", "1"])).is_err());
    }

    #[test]
    fn bad_values_error_with_context() {
        let e = parse(&v(&["--db", "d", "delete", "--id", "abc"])).unwrap_err();
        assert!(e.to_string().contains("--id"));
        let e = parse(&v(&["--db", "d", "generate", "--category", "nope", "--name", "n"]))
            .unwrap_err();
        assert!(e.to_string().contains("nope"));
        let e = parse(&v(&["--db", "d", "query", "--image", "q", "--feature", "huh"]))
            .unwrap_err();
        assert!(e.to_string().contains("huh"));
    }

    #[test]
    fn unknown_command_and_flag_error() {
        assert!(parse(&v(&["--db", "d", "frobnicate"])).is_err());
        assert!(parse(&v(&["--db", "d", "list", "--wat"])).is_err());
    }

    #[test]
    fn all_simple_commands_parse() {
        for (args, expect) in [
            (vec!["--db", "d", "list"], Command::List),
            (vec!["--db", "d", "stats"], Command::Stats { telemetry: false }),
            (vec!["--db", "d", "stats", "--telemetry"], Command::Stats { telemetry: true }),
            (vec!["--db", "d", "vacuum"], Command::Vacuum),
            (vec!["--db", "d", "compact"], Command::Compact),
        ] {
            let (_, cmd) = parse(&v(&args)).unwrap();
            assert_eq!(cmd, expect);
        }
    }
}
