//! # cbvr-cli — the command-line front end
//!
//! The paper ships a Tomcat web application with two roles (§2–§3):
//! an Administrator who adds, renames and deletes videos, and a User who
//! searches by content or metadata. This crate is that application as a
//! CLI over a durable on-disk [`cbvr_storage::CbvrDatabase`]:
//!
//! ```text
//! cbvr --db DIR generate --category sports --seed 3 --name match.vsc
//! cbvr --db DIR ingest   --file clip.vsc --name match.vsc
//! cbvr --db DIR list
//! cbvr --db DIR rename   --id 3 --name better_name.vsc
//! cbvr --db DIR delete   --id 3
//! cbvr --db DIR query    --image frame.bmp [--k 10] [--feature gabor] [--no-index]
//! cbvr --db DIR query-clip --file clip.vsc [--k 5]
//! cbvr --db DIR search   --name sports
//! cbvr --db DIR export   --id 3 --out dir/
//! cbvr --db DIR stats
//! cbvr --db DIR vacuum
//! ```
//!
//! The argument parser is hand-rolled (no new dependencies); every
//! command is a pure function over parsed arguments, unit-testable
//! without a process boundary.
#![warn(missing_docs)]


pub mod args;
pub mod commands;

pub use args::{parse, Command, ParseError};
pub use commands::{run, CliError};
