//! Binarisation thresholds.
//!
//! §4.8 binarises the segmentation input with JAI's *fuzziness* threshold
//! (`Histogram.getMinFuzzinessThreshold`). That method picks the threshold
//! minimising Huang's measure of fuzziness: for each candidate threshold
//! the image is split into two classes; each pixel's membership to its
//! class decreases with its distance from the class mean, and Shannon's
//! entropy of the memberships scores the split. We implement that, plus
//! Otsu's method as a conventional baseline.

use crate::hist::Histogram256;
use crate::image::GrayImage;
use crate::pixel::Gray;

/// Threshold minimising Huang's fuzziness measure (JAI's
/// `getMinFuzzinessThreshold`). Returns 0 for an empty histogram.
pub fn min_fuzziness_threshold(hist: &Histogram256) -> u8 {
    let total = hist.total();
    if total == 0 {
        return 0;
    }
    let bins = hist.bins();

    // Prefix sums for O(1) class means at any threshold.
    let mut prefix_count = [0u64; 257];
    let mut prefix_weighted = [0u64; 257];
    for i in 0..256 {
        prefix_count[i + 1] = prefix_count[i] + bins[i];
        prefix_weighted[i + 1] = prefix_weighted[i] + bins[i] * i as u64;
    }

    let first = bins.iter().position(|&c| c > 0).unwrap_or(0);
    let last = bins.iter().rposition(|&c| c > 0).unwrap_or(255);
    if first == last {
        return first as u8;
    }

    // Range normaliser keeps memberships in [0.5, 1].
    let c = (last - first) as f64;
    let mut best_t = first as u8;
    let mut best_entropy = f64::INFINITY;

    for t in first..last {
        let below = prefix_count[t + 1];
        let above = total - below;
        if below == 0 || above == 0 {
            continue;
        }
        let mu0 = prefix_weighted[t + 1] as f64 / below as f64;
        let mu1 = (prefix_weighted[256] - prefix_weighted[t + 1]) as f64 / above as f64;

        let mut entropy = 0.0f64;
        for (g, &cnt) in bins.iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            let mu = if g <= t { mu0 } else { mu1 };
            // Huang's membership: 1 / (1 + |g - mu| / C) ∈ (0.5, 1].
            let m = 1.0 / (1.0 + (g as f64 - mu).abs() / c);
            // Shannon fuzziness of membership m.
            let s = if m <= 0.0 || m >= 1.0 {
                0.0
            } else {
                -m * m.ln() - (1.0 - m) * (1.0 - m).ln()
            };
            entropy += s * cnt as f64;
        }
        if entropy < best_entropy {
            best_entropy = entropy;
            best_t = t as u8;
        }
    }
    best_t
}

/// Otsu's between-class-variance threshold. Returns 0 for an empty
/// histogram.
pub fn otsu_threshold(hist: &Histogram256) -> u8 {
    let total = hist.total();
    if total == 0 {
        return 0;
    }
    let bins = hist.bins();
    let sum_all: f64 = bins.iter().enumerate().map(|(i, &c)| i as f64 * c as f64).sum();

    let mut w0 = 0f64;
    let mut sum0 = 0f64;
    // Degenerate (single-intensity) histograms have no split; report the
    // occupied bin itself, matching the fuzzy threshold's convention.
    let mut best_t = bins.iter().position(|&c| c > 0).unwrap_or(0) as u8;
    let mut best_var = -1f64;
    for (t, &count) in bins.iter().enumerate() {
        w0 += count as f64;
        if w0 == 0.0 {
            continue;
        }
        let w1 = total as f64 - w0;
        if w1 == 0.0 {
            break;
        }
        sum0 += t as f64 * count as f64;
        let mu0 = sum0 / w0;
        let mu1 = (sum_all - sum0) / w1;
        let var = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
        if var > best_var {
            best_var = var;
            best_t = t as u8;
        }
    }
    best_t
}

/// Binarise: pixels strictly above `threshold` become 255, the rest 0.
pub fn binarize(img: &GrayImage, threshold: u8) -> GrayImage {
    let (w, h) = img.dimensions();
    GrayImage::from_fn(w, h, |x, y| Gray(if img.get(x, y).0 > threshold { 255 } else { 0 }))
        .expect("same nonzero dims")
}

/// The §4.8 step-3 pipeline: compute the histogram, take the fuzziness
/// threshold and binarise with it.
pub fn binarize_fuzzy(img: &GrayImage) -> GrayImage {
    let hist = Histogram256::of_gray(img);
    binarize(img, min_fuzziness_threshold(&hist))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bimodal(lo: u8, hi: u8, n_lo: u32, n_hi: u32) -> GrayImage {
        let w = n_lo + n_hi;
        GrayImage::from_fn(w, 1, |x, _| Gray(if x < n_lo { lo } else { hi })).unwrap()
    }

    #[test]
    fn fuzzy_threshold_separates_bimodal() {
        let img = bimodal(20, 220, 50, 50);
        let t = min_fuzziness_threshold(&Histogram256::of_gray(&img));
        assert!((20..220).contains(&t), "threshold {t} should split the modes");
        let bin = binarize(&img, t);
        assert_eq!(bin.get(0, 0), Gray(0));
        assert_eq!(bin.get(99, 0), Gray(255));
    }

    #[test]
    fn otsu_separates_bimodal() {
        let img = bimodal(30, 200, 60, 40);
        let t = otsu_threshold(&Histogram256::of_gray(&img));
        assert!((30..200).contains(&t), "otsu {t}");
    }

    #[test]
    fn constant_image_thresholds_degenerate() {
        let img = GrayImage::filled(4, 4, Gray(77)).unwrap();
        let h = Histogram256::of_gray(&img);
        assert_eq!(min_fuzziness_threshold(&h), 77);
        // Binarising a constant image yields all-0 or all-255, never a mix.
        let b = binarize_fuzzy(&img);
        let fg = b.pixels().filter(|p| p.0 != 0).count();
        assert!(fg == 0 || fg == 16);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram256::new();
        assert_eq!(min_fuzziness_threshold(&h), 0);
        assert_eq!(otsu_threshold(&h), 0);
    }

    #[test]
    fn binarize_strictness() {
        let img = GrayImage::from_fn(3, 1, |x, _| Gray([10, 128, 129][x as usize])).unwrap();
        let b = binarize(&img, 128);
        assert_eq!(b.get(0, 0), Gray(0));
        assert_eq!(b.get(1, 0), Gray(0)); // equal to threshold → background
        assert_eq!(b.get(2, 0), Gray(255));
    }

    #[test]
    fn fuzzy_threshold_skewed_classes() {
        // 90% dark, 10% bright — threshold still lands between the modes.
        let img = bimodal(10, 240, 90, 10);
        let t = min_fuzziness_threshold(&Histogram256::of_gray(&img));
        assert!((10..240).contains(&t), "threshold {t}");
    }
}
