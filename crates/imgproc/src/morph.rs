//! Binary morphology: dilation and erosion.
//!
//! §4.8 preprocesses the segmentation input with *dilate, erode, erode,
//! dilate* (a closing followed by an opening) using the 5×5 structuring
//! element
//!
//! ```text
//! 0 0 0 0 0
//! 0 1 1 1 0
//! 0 1 1 1 0
//! 0 1 1 1 0
//! 0 0 0 0 0
//! ```
//!
//! which is effectively a 3×3 box. Images are treated as binary: any
//! non-zero intensity is foreground.

use crate::error::{ImgError, Result};
use crate::image::GrayImage;
use crate::pixel::Gray;

/// A binary structuring element: a set of `(dx, dy)` offsets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructuringElement {
    offsets: Vec<(i32, i32)>,
}

impl StructuringElement {
    /// Build from a row-major 0/1 mask with odd side length.
    pub fn from_mask(side: usize, mask: &[u8]) -> Result<Self> {
        if side.is_multiple_of(2) || side * side != mask.len() {
            return Err(ImgError::Dimensions(format!(
                "structuring element must be an odd square; side {side}, len {}",
                mask.len()
            )));
        }
        let r = (side / 2) as i32;
        let offsets: Vec<(i32, i32)> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m != 0)
            .map(|(i, _)| ((i % side) as i32 - r, (i / side) as i32 - r))
            .collect();
        if offsets.is_empty() {
            return Err(ImgError::Dimensions("empty structuring element".into()));
        }
        Ok(StructuringElement { offsets })
    }

    /// The paper's §4.8 kernel: a 3×3 box embedded in a 5×5 mask.
    pub fn paper_5x5() -> StructuringElement {
        #[rustfmt::skip]
        let mask = [
            0, 0, 0, 0, 0,
            0, 1, 1, 1, 0,
            0, 1, 1, 1, 0,
            0, 1, 1, 1, 0,
            0, 0, 0, 0, 0u8,
        ];
        StructuringElement::from_mask(5, &mask).expect("static mask")
    }

    /// Full 3×3 box.
    pub fn box3() -> StructuringElement {
        StructuringElement::from_mask(3, &[1u8; 9]).expect("static mask")
    }

    fn hits(&self) -> &[(i32, i32)] {
        &self.offsets
    }
}

fn is_fg(img: &GrayImage, x: i64, y: i64) -> bool {
    // Outside the raster counts as background.
    if x < 0 || y < 0 || x >= img.width() as i64 || y >= img.height() as i64 {
        false
    } else {
        img.get(x as u32, y as u32).0 != 0
    }
}

/// Binary dilation: a pixel becomes foreground when *any* neighbour under
/// the element is foreground.
pub fn dilate(img: &GrayImage, se: &StructuringElement) -> GrayImage {
    let (w, h) = img.dimensions();
    GrayImage::from_fn(w, h, |x, y| {
        let any = se.hits().iter().any(|&(dx, dy)| is_fg(img, x as i64 + dx as i64, y as i64 + dy as i64));
        Gray(if any { 255 } else { 0 })
    })
    .expect("same nonzero dims")
}

/// Binary erosion: a pixel stays foreground only when *all* neighbours
/// under the element are foreground.
pub fn erode(img: &GrayImage, se: &StructuringElement) -> GrayImage {
    let (w, h) = img.dimensions();
    GrayImage::from_fn(w, h, |x, y| {
        let all = se.hits().iter().all(|&(dx, dy)| is_fg(img, x as i64 + dx as i64, y as i64 + dy as i64));
        Gray(if all { 255 } else { 0 })
    })
    .expect("same nonzero dims")
}

/// Closing: dilation followed by erosion (fills small holes).
pub fn close(img: &GrayImage, se: &StructuringElement) -> GrayImage {
    erode(&dilate(img, se), se)
}

/// Opening: erosion followed by dilation (removes small specks).
pub fn open(img: &GrayImage, se: &StructuringElement) -> GrayImage {
    dilate(&erode(img, se), se)
}

/// The exact §4.8 preprocessing chain: dilate, erode, erode, dilate
/// (closing then opening) with the paper's 5×5 element.
pub fn paper_morphology_chain(img: &GrayImage) -> GrayImage {
    let se = StructuringElement::paper_5x5();
    open(&close(img, &se), &se)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary(w: u32, h: u32, fg: &[(u32, u32)]) -> GrayImage {
        let mut img = GrayImage::new(w, h).unwrap();
        for &(x, y) in fg {
            img.put(x, y, Gray(255));
        }
        img
    }

    fn fg_count(img: &GrayImage) -> usize {
        img.pixels().filter(|p| p.0 != 0).count()
    }

    #[test]
    fn paper_element_is_3x3_box() {
        assert_eq!(StructuringElement::paper_5x5(), StructuringElement::box3());
    }

    #[test]
    fn mask_validation() {
        assert!(StructuringElement::from_mask(2, &[1; 4]).is_err());
        assert!(StructuringElement::from_mask(3, &[1; 8]).is_err());
        assert!(StructuringElement::from_mask(3, &[0; 9]).is_err());
    }

    #[test]
    fn dilate_grows_single_pixel_to_box() {
        let img = binary(7, 7, &[(3, 3)]);
        let out = dilate(&img, &StructuringElement::box3());
        assert_eq!(fg_count(&out), 9);
        assert_eq!(out.get(2, 2), Gray(255));
        assert_eq!(out.get(4, 4), Gray(255));
        assert_eq!(out.get(1, 1), Gray(0));
    }

    #[test]
    fn erode_removes_single_pixel() {
        let img = binary(7, 7, &[(3, 3)]);
        let out = erode(&img, &StructuringElement::box3());
        assert_eq!(fg_count(&out), 0);
    }

    #[test]
    fn erode_then_dilate_preserves_large_blob_interior() {
        let mut fg = Vec::new();
        for y in 1..6 {
            for x in 1..6 {
                fg.push((x, y));
            }
        }
        let img = binary(7, 7, &fg);
        let opened = open(&img, &StructuringElement::box3());
        // A 5×5 blob survives opening with a 3×3 element.
        assert_eq!(fg_count(&opened), 25);
    }

    #[test]
    fn closing_fills_one_pixel_hole() {
        let mut fg = Vec::new();
        for y in 1..6 {
            for x in 1..6 {
                if (x, y) != (3, 3) {
                    fg.push((x, y));
                }
            }
        }
        let img = binary(7, 7, &fg);
        let closed = close(&img, &StructuringElement::box3());
        assert_eq!(closed.get(3, 3), Gray(255), "hole should be filled");
    }

    #[test]
    fn opening_removes_speck_keeps_blob() {
        let mut fg = vec![(0, 6)]; // isolated speck
        for y in 0..4 {
            for x in 0..4 {
                fg.push((x, y));
            }
        }
        let img = binary(8, 8, &fg);
        let out = paper_morphology_chain(&img);
        assert_eq!(out.get(0, 6), Gray(0), "speck removed");
        assert_eq!(out.get(1, 1), Gray(255), "blob interior kept");
    }

    #[test]
    fn outside_raster_is_background() {
        // Full-frame foreground: erosion must shave the border.
        let img = GrayImage::filled(5, 5, Gray(255)).unwrap();
        let out = erode(&img, &StructuringElement::box3());
        assert_eq!(out.get(0, 0), Gray(0));
        assert_eq!(out.get(2, 2), Gray(255));
    }
}
