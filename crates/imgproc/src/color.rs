//! Color-space conversions.
//!
//! The paper converts frames between three spaces:
//!
//! - **RGB → gray** with the JAI band-combine matrix `{0.114, 0.587, 0.299}`
//!   (blue, green, red order — §4.3 preprocessing and §4.8 step 2);
//! - **RGB → HSV** for the auto color correlogram's quantiser (§4.7,
//!   `convertRgbToHsv`);
//! - **HSV → RGB** for the synthetic generator's palettes.
//!
//! The HSV representation follows the convention LIRE (the Java library the
//! paper's pseudocode mirrors) uses: `h ∈ 0..=359`, `s ∈ 0..=255`,
//! `v ∈ 0..=255`, all integers.

use crate::pixel::Rgb;

/// Luma with the paper's band-combine weights, rounded to nearest.
///
/// `luma = 0.299 R + 0.587 G + 0.114 B`
#[inline]
pub fn luma_u8(r: u8, g: u8, b: u8) -> u8 {
    (0.299 * r as f32 + 0.587 * g as f32 + 0.114 * b as f32).round() as u8
}

/// Convert one RGB pixel to grayscale intensity.
#[inline]
pub fn rgb_to_gray(p: Rgb) -> u8 {
    luma_u8(p.r, p.g, p.b)
}

/// Convert RGB to integer HSV: hue `0..=359`, saturation `0..=255`,
/// value `0..=255`.
pub fn rgb_to_hsv(p: Rgb) -> (u16, u8, u8) {
    let r = p.r as i32;
    let g = p.g as i32;
    let b = p.b as i32;
    let max = r.max(g).max(b);
    let min = r.min(g).min(b);
    let delta = max - min;

    let v = max as u8;
    let s = if max == 0 { 0 } else { ((255 * delta) / max) as u8 };

    let h = if delta == 0 {
        0
    } else {
        let hue = if max == r {
            60.0 * ((g - b) as f32 / delta as f32)
        } else if max == g {
            120.0 + 60.0 * ((b - r) as f32 / delta as f32)
        } else {
            240.0 + 60.0 * ((r - g) as f32 / delta as f32)
        };
        let hue = if hue < 0.0 { hue + 360.0 } else { hue };
        (hue.round() as u16) % 360
    };
    (h, s, v)
}

/// Convert integer HSV (`h ∈ 0..=359`, `s, v ∈ 0..=255`) back to RGB.
pub fn hsv_to_rgb(h: u16, s: u8, v: u8) -> Rgb {
    let h = (h % 360) as f32;
    let s = s as f32 / 255.0;
    let v = v as f32 / 255.0;
    let c = v * s;
    let hp = h / 60.0;
    let x = c * (1.0 - (hp % 2.0 - 1.0).abs());
    let (r1, g1, b1) = match hp as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    let m = v - c;
    let to8 = |f: f32| ((f + m) * 255.0).round().clamp(0.0, 255.0) as u8;
    Rgb::new(to8(r1), to8(g1), to8(b1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luma_primaries() {
        assert_eq!(luma_u8(255, 0, 0), 76); // 0.299*255
        assert_eq!(luma_u8(0, 255, 0), 150); // 0.587*255
        assert_eq!(luma_u8(0, 0, 255), 29); // 0.114*255
        assert_eq!(luma_u8(255, 255, 255), 255);
    }

    #[test]
    fn hsv_primaries() {
        assert_eq!(rgb_to_hsv(Rgb::new(255, 0, 0)), (0, 255, 255));
        assert_eq!(rgb_to_hsv(Rgb::new(0, 255, 0)), (120, 255, 255));
        assert_eq!(rgb_to_hsv(Rgb::new(0, 0, 255)), (240, 255, 255));
    }

    #[test]
    fn hsv_achromatic() {
        assert_eq!(rgb_to_hsv(Rgb::new(0, 0, 0)), (0, 0, 0));
        assert_eq!(rgb_to_hsv(Rgb::new(255, 255, 255)), (0, 0, 255));
        let (h, s, v) = rgb_to_hsv(Rgb::new(128, 128, 128));
        assert_eq!((h, s), (0, 0));
        assert_eq!(v, 128);
    }

    #[test]
    fn hsv_secondaries() {
        // Yellow, cyan, magenta.
        assert_eq!(rgb_to_hsv(Rgb::new(255, 255, 0)).0, 60);
        assert_eq!(rgb_to_hsv(Rgb::new(0, 255, 255)).0, 180);
        assert_eq!(rgb_to_hsv(Rgb::new(255, 0, 255)).0, 300);
    }

    #[test]
    fn hsv_rgb_round_trip_is_close() {
        // HSV with 8-bit saturation is lossy; allow a small channel error.
        for r in (0u16..=255).step_by(37) {
            for g in (0u16..=255).step_by(41) {
                for b in (0u16..=255).step_by(43) {
                    let p = Rgb::new(r as u8, g as u8, b as u8);
                    let (h, s, v) = rgb_to_hsv(p);
                    let q = hsv_to_rgb(h, s, v);
                    for (a, c) in [(p.r, q.r), (p.g, q.g), (p.b, q.b)] {
                        assert!(
                            (a as i32 - c as i32).abs() <= 3,
                            "round trip drifted: {p:?} -> ({h},{s},{v}) -> {q:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hue_wraps_into_range() {
        for r in (0u16..=255).step_by(15) {
            for b in (0u16..=255).step_by(15) {
                let (h, _, _) = rgb_to_hsv(Rgb::new(r as u8, 10, b as u8));
                assert!(h < 360, "hue {h} escaped range");
            }
        }
    }
}
