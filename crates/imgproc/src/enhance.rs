//! Intensity enhancement: histogram equalisation, gamma and contrast
//! stretching.
//!
//! Retrieval front ends commonly normalise query images before feature
//! extraction ("query by image content" inputs arrive with arbitrary
//! exposure). These are the standard three normalisers; the evaluation
//! harness also uses them to build harder query-degradation variants.

use crate::hist::Histogram256;
use crate::image::{GrayImage, RgbImage};
use crate::pixel::{Gray, Rgb};

/// Histogram equalisation of a gray image: maps intensities through the
/// normalised CDF, flattening the histogram.
pub fn equalize_gray(img: &GrayImage) -> GrayImage {
    let hist = Histogram256::of_gray(img);
    let total = hist.total();
    if total == 0 {
        return img.clone();
    }
    // CDF-based lookup table, anchored so the darkest occupied bin maps
    // to 0 (the classic formulation).
    let mut lut = [0u8; 256];
    let mut cum = 0u64;
    let cdf_min = hist.bins().iter().copied().find(|&c| c > 0).unwrap_or(0);
    let denom = (total - cdf_min).max(1);
    for (i, &count) in hist.bins().iter().enumerate() {
        cum += count;
        let value = ((cum.saturating_sub(cdf_min)) as f64 * 255.0 / denom as f64).round();
        lut[i] = value.clamp(0.0, 255.0) as u8;
    }
    let mut out = img.clone();
    out.map_in_place(|p| Gray(lut[p.0 as usize]));
    out
}

/// Histogram equalisation of an RGB image via the luminance channel:
/// each pixel's channels are scaled by the luma gain, preserving hue.
pub fn equalize_rgb(img: &RgbImage) -> RgbImage {
    let gray = img.to_gray();
    let equalized = equalize_gray(&gray);
    let (w, h) = img.dimensions();
    RgbImage::from_fn(w, h, |x, y| {
        let before = gray.get(x, y).0 as f32;
        let after = equalized.get(x, y).0 as f32;
        if before == 0.0 {
            return img.get(x, y);
        }
        let gain = after / before;
        let p = img.get(x, y);
        let scale = |c: u8| ((c as f32) * gain).round().clamp(0.0, 255.0) as u8;
        Rgb::new(scale(p.r), scale(p.g), scale(p.b))
    })
    .expect("same nonzero dims")
}

/// Gamma correction: `out = 255 · (in/255)^gamma`. `gamma < 1` brightens,
/// `gamma > 1` darkens. Non-positive gamma is clamped to a tiny positive
/// value.
pub fn gamma_rgb(img: &RgbImage, gamma: f64) -> RgbImage {
    let gamma = gamma.max(1e-6);
    let mut lut = [0u8; 256];
    for (i, v) in lut.iter_mut().enumerate() {
        *v = (255.0 * (i as f64 / 255.0).powf(gamma)).round().clamp(0.0, 255.0) as u8;
    }
    let mut out = img.clone();
    out.map_in_place(|p| Rgb::new(lut[p.r as usize], lut[p.g as usize], lut[p.b as usize]));
    out
}

/// Linear contrast stretch: maps the observed luma `[lo, hi]` percentile
/// range onto `[0, 255]`, channel-wise. `clip` is the fraction trimmed
/// at each tail (0.01 = 1%).
pub fn stretch_contrast_rgb(img: &RgbImage, clip: f64) -> RgbImage {
    let clip = clip.clamp(0.0, 0.49);
    let hist = Histogram256::of_rgb_luma(img);
    let total = hist.total();
    if total == 0 {
        return img.clone();
    }
    let cut = (total as f64 * clip) as u64;
    let mut lo = 0usize;
    let mut acc = 0u64;
    for (i, &c) in hist.bins().iter().enumerate() {
        acc += c;
        if acc > cut {
            lo = i;
            break;
        }
    }
    let mut hi = 255usize;
    acc = 0;
    for (i, &c) in hist.bins().iter().enumerate().rev() {
        acc += c;
        if acc > cut {
            hi = i;
            break;
        }
    }
    if hi <= lo {
        return img.clone();
    }
    let span = (hi - lo) as f32;
    let mut out = img.clone();
    out.map_in_place(|p| {
        let scale = |c: u8| (((c as f32 - lo as f32) * 255.0 / span).round()).clamp(0.0, 255.0) as u8;
        Rgb::new(scale(p.r), scale(p.g), scale(p.b))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::GrayImage;

    #[test]
    fn equalize_spreads_a_narrow_histogram() {
        // Intensities packed into [100, 110] spread across [0, 255].
        let img = GrayImage::from_fn(16, 16, |x, _| Gray(100 + (x % 11) as u8)).unwrap();
        let eq = equalize_gray(&img);
        let min = eq.pixels().map(|p| p.0).min().unwrap();
        let max = eq.pixels().map(|p| p.0).max().unwrap();
        assert_eq!(min, 0);
        assert!(max > 220, "max {max}");
    }

    #[test]
    fn equalize_preserves_intensity_order() {
        let img = GrayImage::from_fn(16, 1, |x, _| Gray((x * 16) as u8)).unwrap();
        let eq = equalize_gray(&img);
        for x in 1..16 {
            assert!(eq.get(x, 0).0 >= eq.get(x - 1, 0).0);
        }
    }

    #[test]
    fn equalize_constant_image_is_stable() {
        let img = GrayImage::filled(8, 8, Gray(77)).unwrap();
        let eq = equalize_gray(&img);
        // A single-bin histogram maps to one value; all pixels equal.
        let first = eq.get(0, 0);
        assert!(eq.pixels().all(|p| p == first));
    }

    #[test]
    fn gamma_direction() {
        let img = RgbImage::filled(4, 4, Rgb::new(64, 64, 64)).unwrap();
        let bright = gamma_rgb(&img, 0.5);
        let dark = gamma_rgb(&img, 2.0);
        assert!(bright.get(0, 0).r > 64);
        assert!(dark.get(0, 0).r < 64);
        // Gamma 1 is identity.
        assert_eq!(gamma_rgb(&img, 1.0), img);
        // Extremes stay fixed.
        let bw = RgbImage::from_fn(2, 1, |x, _| if x == 0 { Rgb::BLACK } else { Rgb::WHITE }).unwrap();
        assert_eq!(gamma_rgb(&bw, 0.4), bw);
    }

    #[test]
    fn stretch_expands_low_contrast() {
        let img = RgbImage::from_fn(16, 16, |x, _| {
            let v = 110 + (x % 8) as u8;
            Rgb::new(v, v, v)
        })
        .unwrap();
        let out = stretch_contrast_rgb(&img, 0.0);
        let min = out.pixels().map(|p| p.r).min().unwrap();
        let max = out.pixels().map(|p| p.r).max().unwrap();
        assert_eq!(min, 0);
        assert_eq!(max, 255);
    }

    #[test]
    fn stretch_constant_image_unchanged() {
        let img = RgbImage::filled(8, 8, Rgb::new(42, 42, 42)).unwrap();
        assert_eq!(stretch_contrast_rgb(&img, 0.01), img);
    }

    #[test]
    fn equalize_rgb_preserves_hue_ordering() {
        // A red-dominant image stays red-dominant after equalisation.
        let img = RgbImage::from_fn(16, 16, |x, _| Rgb::new(100 + (x * 4) as u8, 50, 20)).unwrap();
        let eq = equalize_rgb(&img);
        for (_, _, p) in eq.enumerate_pixels() {
            assert!(p.r >= p.g && p.g >= p.b, "{p:?}");
        }
    }
}
