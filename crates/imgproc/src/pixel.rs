//! Pixel types: 8-bit RGB and 8-bit grayscale.
//!
//! The paper works exclusively with 8-bit channels (`0xff & pixel[i]`), so
//! the whole workspace standardises on `u8` channels. [`Pixel`] abstracts
//! over the channel count so [`crate::image::Image`] can be generic.


/// A packed pixel with a fixed number of `u8` channels.
///
/// Implementors are plain-old-data: conversion to and from a channel slice
/// is lossless and allocation-free.
pub trait Pixel: Copy + Clone + PartialEq + Eq + std::fmt::Debug + Default + Send + Sync + 'static {
    /// Number of `u8` channels per pixel (3 for RGB, 1 for grayscale).
    const CHANNELS: usize;

    /// Read a pixel from a channel slice of length `CHANNELS`.
    ///
    /// # Panics
    /// Panics if `slice.len() < CHANNELS`.
    fn from_slice(slice: &[u8]) -> Self;

    /// Write this pixel's channels into `out`.
    ///
    /// # Panics
    /// Panics if `out.len() < CHANNELS`.
    fn write_to(&self, out: &mut [u8]);

    /// Perceptual luminance in `0..=255` using the paper's band-combine
    /// weights `B*0.114 + G*0.587 + R*0.299`.
    fn luma(&self) -> u8;
}

/// 24-bit RGB pixel.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default, Hash)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// Construct from explicit channels.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Black (all channels 0).
    pub const BLACK: Rgb = Rgb::new(0, 0, 0);
    /// White (all channels 255).
    pub const WHITE: Rgb = Rgb::new(255, 255, 255);

    /// Channel-wise linear interpolation: `t = 0` gives `self`, `t = 1`
    /// gives `other`. `t` is clamped to `[0, 1]`.
    pub fn lerp(self, other: Rgb, t: f32) -> Rgb {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| -> u8 { (a as f32 + (b as f32 - a as f32) * t).round() as u8 };
        Rgb::new(mix(self.r, other.r), mix(self.g, other.g), mix(self.b, other.b))
    }

    /// Saturating channel-wise addition of a signed delta, used by the
    /// noise generators in [`crate::draw`].
    pub fn offset(self, d: i16) -> Rgb {
        let adj = |c: u8| -> u8 { (c as i16 + d).clamp(0, 255) as u8 };
        Rgb::new(adj(self.r), adj(self.g), adj(self.b))
    }
}

impl Pixel for Rgb {
    const CHANNELS: usize = 3;

    #[inline]
    fn from_slice(slice: &[u8]) -> Self {
        Rgb { r: slice[0], g: slice[1], b: slice[2] }
    }

    #[inline]
    fn write_to(&self, out: &mut [u8]) {
        out[0] = self.r;
        out[1] = self.g;
        out[2] = self.b;
    }

    #[inline]
    fn luma(&self) -> u8 {
        crate::color::luma_u8(self.r, self.g, self.b)
    }
}

/// 8-bit grayscale pixel.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default, Hash, PartialOrd, Ord)]
pub struct Gray(pub u8);

impl Gray {
    /// Construct from the raw intensity.
    pub const fn new(v: u8) -> Self {
        Gray(v)
    }

    /// The raw intensity.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }
}

impl Pixel for Gray {
    const CHANNELS: usize = 1;

    #[inline]
    fn from_slice(slice: &[u8]) -> Self {
        Gray(slice[0])
    }

    #[inline]
    fn write_to(&self, out: &mut [u8]) {
        out[0] = self.0;
    }

    #[inline]
    fn luma(&self) -> u8 {
        self.0
    }
}

impl From<u8> for Gray {
    fn from(v: u8) -> Self {
        Gray(v)
    }
}

impl From<Rgb> for Gray {
    fn from(p: Rgb) -> Self {
        Gray(p.luma())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_slice_round_trip() {
        let p = Rgb::new(1, 2, 3);
        let mut buf = [0u8; 3];
        p.write_to(&mut buf);
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(Rgb::from_slice(&buf), p);
    }

    #[test]
    fn gray_slice_round_trip() {
        let p = Gray::new(42);
        let mut buf = [0u8; 1];
        p.write_to(&mut buf);
        assert_eq!(Gray::from_slice(&buf), p);
    }

    #[test]
    fn luma_matches_paper_weights() {
        // Pure green should dominate: 0.587 * 255 ≈ 150.
        assert_eq!(Rgb::new(0, 255, 0).luma(), 150);
        // White maps to 255, black to 0.
        assert_eq!(Rgb::WHITE.luma(), 255);
        assert_eq!(Rgb::BLACK.luma(), 0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Rgb::new(0, 0, 0);
        let b = Rgb::new(200, 100, 50);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Rgb::new(100, 50, 25));
        // Out-of-range t is clamped.
        assert_eq!(a.lerp(b, 2.0), b);
        assert_eq!(a.lerp(b, -1.0), a);
    }

    #[test]
    fn offset_saturates() {
        assert_eq!(Rgb::new(250, 5, 128).offset(10), Rgb::new(255, 15, 138));
        assert_eq!(Rgb::new(250, 5, 128).offset(-10), Rgb::new(240, 0, 118));
    }

    #[test]
    fn gray_from_rgb_uses_luma() {
        let g: Gray = Rgb::new(0, 255, 0).into();
        assert_eq!(g.value(), 150);
    }
}
