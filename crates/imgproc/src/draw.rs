//! Rendering primitives for the synthetic video generator.
//!
//! The reproduction substitutes archive.org footage with procedurally
//! rendered clips (see DESIGN.md). These helpers paint the building blocks
//! of each category style: flat regions (cartoon), gradients (movie),
//! moving shapes (sports), text blocks (e-learning) and noise (sensor
//! grain). All functions clip silently at the raster border so animation
//! code can move shapes freely off-screen.

use crate::image::RgbImage;
use crate::pixel::Rgb;

/// Fill the whole image with one color.
pub fn fill(img: &mut RgbImage, color: Rgb) {
    img.map_in_place(|_| color);
}

/// Fill an axis-aligned rectangle; clips at the raster border.
pub fn fill_rect(img: &mut RgbImage, x: i32, y: i32, w: u32, h: u32, color: Rgb) {
    let x0 = x.max(0) as u32;
    let y0 = y.max(0) as u32;
    let x1 = (x.saturating_add(w as i32)).clamp(0, img.width() as i32) as u32;
    let y1 = (y.saturating_add(h as i32)).clamp(0, img.height() as i32) as u32;
    for py in y0..y1 {
        for px in x0..x1 {
            img.put(px, py, color);
        }
    }
}

/// Draw a 1-pixel rectangle outline; clips at the raster border.
pub fn stroke_rect(img: &mut RgbImage, x: i32, y: i32, w: u32, h: u32, color: Rgb) {
    if w == 0 || h == 0 {
        return;
    }
    fill_rect(img, x, y, w, 1, color);
    fill_rect(img, x, y + h as i32 - 1, w, 1, color);
    fill_rect(img, x, y, 1, h, color);
    fill_rect(img, x + w as i32 - 1, y, 1, h, color);
}

/// Fill a disc of the given radius centred at `(cx, cy)`.
pub fn fill_circle(img: &mut RgbImage, cx: i32, cy: i32, radius: u32, color: Rgb) {
    let r = radius as i64;
    let r2 = r * r;
    for dy in -r..=r {
        for dx in -r..=r {
            if dx * dx + dy * dy <= r2 {
                let px = cx as i64 + dx;
                let py = cy as i64 + dy;
                if px >= 0 && py >= 0 && (px as u32) < img.width() && (py as u32) < img.height() {
                    img.put(px as u32, py as u32, color);
                }
            }
        }
    }
}

/// Draw a line with Bresenham's algorithm; clips at the raster border.
pub fn draw_line(img: &mut RgbImage, x0: i32, y0: i32, x1: i32, y1: i32, color: Rgb) {
    let (mut x, mut y) = (x0, y0);
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    loop {
        if x >= 0 && y >= 0 && (x as u32) < img.width() && (y as u32) < img.height() {
            img.put(x as u32, y as u32, color);
        }
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
}

/// Paint a vertical gradient from `top` (row 0) to `bottom` (last row).
pub fn vertical_gradient(img: &mut RgbImage, top: Rgb, bottom: Rgb) {
    let h = img.height();
    for y in 0..h {
        let t = if h == 1 { 0.0 } else { y as f32 / (h - 1) as f32 };
        let c = top.lerp(bottom, t);
        for x in 0..img.width() {
            img.put(x, y, c);
        }
    }
}

/// Paint a horizontal gradient from `left` (column 0) to `right`.
pub fn horizontal_gradient(img: &mut RgbImage, left: Rgb, right: Rgb) {
    let w = img.width();
    for x in 0..w {
        let t = if w == 1 { 0.0 } else { x as f32 / (w - 1) as f32 };
        let c = left.lerp(right, t);
        for y in 0..img.height() {
            img.put(x, y, c);
        }
    }
}

/// Paint a checkerboard with `cell`-sized squares in two colors.
pub fn checkerboard(img: &mut RgbImage, cell: u32, a: Rgb, b: Rgb) {
    let cell = cell.max(1);
    let (w, h) = img.dimensions();
    for y in 0..h {
        for x in 0..w {
            let parity = (x / cell + y / cell) % 2;
            img.put(x, y, if parity == 0 { a } else { b });
        }
    }
}

/// Deterministic per-pixel brightness speckle of amplitude `±amp`,
/// parameterised by a seed (xorshift, no external RNG dependency).
pub fn speckle(img: &mut RgbImage, amp: u8, seed: u64) {
    // SplitMix-style scramble so adjacent seeds diverge immediately.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x2545_F491_4F6C_DD1D) | 1;
    let (w, h) = img.dimensions();
    for y in 0..h {
        for x in 0..w {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let span = 2 * amp as i16 + 1;
            let delta = (state % span as u64) as i16 - amp as i16;
            img.put(x, y, img.get(x, y).offset(delta));
        }
    }
}

/// 5×7 bitmap glyphs for `A–Z`, `0–9` and space — enough to render the
/// e-learning slide titles the generator uses as texture.
fn glyph(ch: char) -> Option<[u8; 7]> {
    // Each byte is one row, bits 4..=0 left-to-right.
    let rows: [u8; 7] = match ch.to_ascii_uppercase() {
        'A' => [0x0E, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11],
        'B' => [0x1E, 0x11, 0x11, 0x1E, 0x11, 0x11, 0x1E],
        'C' => [0x0E, 0x11, 0x10, 0x10, 0x10, 0x11, 0x0E],
        'D' => [0x1E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x1E],
        'E' => [0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x1F],
        'F' => [0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x10],
        'G' => [0x0E, 0x11, 0x10, 0x17, 0x11, 0x11, 0x0E],
        'H' => [0x11, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11],
        'I' => [0x0E, 0x04, 0x04, 0x04, 0x04, 0x04, 0x0E],
        'J' => [0x07, 0x02, 0x02, 0x02, 0x02, 0x12, 0x0C],
        'K' => [0x11, 0x12, 0x14, 0x18, 0x14, 0x12, 0x11],
        'L' => [0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x1F],
        'M' => [0x11, 0x1B, 0x15, 0x15, 0x11, 0x11, 0x11],
        'N' => [0x11, 0x19, 0x15, 0x13, 0x11, 0x11, 0x11],
        'O' => [0x0E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E],
        'P' => [0x1E, 0x11, 0x11, 0x1E, 0x10, 0x10, 0x10],
        'Q' => [0x0E, 0x11, 0x11, 0x11, 0x15, 0x12, 0x0D],
        'R' => [0x1E, 0x11, 0x11, 0x1E, 0x14, 0x12, 0x11],
        'S' => [0x0F, 0x10, 0x10, 0x0E, 0x01, 0x01, 0x1E],
        'T' => [0x1F, 0x04, 0x04, 0x04, 0x04, 0x04, 0x04],
        'U' => [0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E],
        'V' => [0x11, 0x11, 0x11, 0x11, 0x11, 0x0A, 0x04],
        'W' => [0x11, 0x11, 0x11, 0x15, 0x15, 0x1B, 0x11],
        'X' => [0x11, 0x0A, 0x04, 0x04, 0x04, 0x0A, 0x11],
        'Y' => [0x11, 0x11, 0x0A, 0x04, 0x04, 0x04, 0x04],
        'Z' => [0x1F, 0x01, 0x02, 0x04, 0x08, 0x10, 0x1F],
        '0' => [0x0E, 0x11, 0x13, 0x15, 0x19, 0x11, 0x0E],
        '1' => [0x04, 0x0C, 0x04, 0x04, 0x04, 0x04, 0x0E],
        '2' => [0x0E, 0x11, 0x01, 0x02, 0x04, 0x08, 0x1F],
        '3' => [0x1F, 0x02, 0x04, 0x02, 0x01, 0x11, 0x0E],
        '4' => [0x02, 0x06, 0x0A, 0x12, 0x1F, 0x02, 0x02],
        '5' => [0x1F, 0x10, 0x1E, 0x01, 0x01, 0x11, 0x0E],
        '6' => [0x06, 0x08, 0x10, 0x1E, 0x11, 0x11, 0x0E],
        '7' => [0x1F, 0x01, 0x02, 0x04, 0x08, 0x08, 0x08],
        '8' => [0x0E, 0x11, 0x11, 0x0E, 0x11, 0x11, 0x0E],
        '9' => [0x0E, 0x11, 0x11, 0x0F, 0x01, 0x02, 0x0C],
        ' ' => [0; 7],
        _ => return None,
    };
    Some(rows)
}

/// Render `text` with the built-in 5×7 font at scale `scale`, top-left at
/// `(x, y)`. Unknown characters render as blanks. Returns the advance
/// width in pixels.
pub fn draw_text(img: &mut RgbImage, x: i32, y: i32, text: &str, scale: u32, color: Rgb) -> u32 {
    let scale = scale.max(1);
    let mut cursor = x;
    for ch in text.chars() {
        if let Some(rows) = glyph(ch) {
            for (ry, row) in rows.iter().enumerate() {
                for rx in 0..5u32 {
                    if row & (0x10 >> rx) != 0 {
                        fill_rect(
                            img,
                            cursor + (rx * scale) as i32,
                            y + (ry as u32 * scale) as i32,
                            scale,
                            scale,
                            color,
                        );
                    }
                }
            }
        }
        cursor += (6 * scale) as i32;
    }
    (cursor - x) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(w: u32, h: u32) -> RgbImage {
        RgbImage::new(w, h).unwrap()
    }

    #[test]
    fn fill_rect_clips() {
        let mut im = img(4, 4);
        fill_rect(&mut im, -2, -2, 4, 4, Rgb::WHITE);
        assert_eq!(im.get(0, 0), Rgb::WHITE);
        assert_eq!(im.get(1, 1), Rgb::WHITE);
        assert_eq!(im.get(2, 2), Rgb::BLACK);
        // Fully off-screen rect is a no-op.
        fill_rect(&mut im, 10, 10, 4, 4, Rgb::WHITE);
        assert_eq!(im.get(3, 3), Rgb::BLACK);
    }

    #[test]
    fn stroke_rect_leaves_interior() {
        let mut im = img(6, 6);
        stroke_rect(&mut im, 1, 1, 4, 4, Rgb::WHITE);
        assert_eq!(im.get(1, 1), Rgb::WHITE);
        assert_eq!(im.get(4, 4), Rgb::WHITE);
        assert_eq!(im.get(2, 2), Rgb::BLACK);
    }

    #[test]
    fn circle_is_symmetric() {
        let mut im = img(11, 11);
        fill_circle(&mut im, 5, 5, 3, Rgb::WHITE);
        assert_eq!(im.get(5, 5), Rgb::WHITE);
        assert_eq!(im.get(8, 5), Rgb::WHITE);
        assert_eq!(im.get(2, 5), Rgb::WHITE);
        assert_eq!(im.get(5, 8), Rgb::WHITE);
        assert_eq!(im.get(0, 0), Rgb::BLACK);
        // Clipping at the border must not panic.
        fill_circle(&mut im, 0, 0, 5, Rgb::WHITE);
        assert_eq!(im.get(0, 0), Rgb::WHITE);
    }

    #[test]
    fn line_endpoints_painted() {
        let mut im = img(8, 8);
        draw_line(&mut im, 0, 0, 7, 7, Rgb::WHITE);
        assert_eq!(im.get(0, 0), Rgb::WHITE);
        assert_eq!(im.get(7, 7), Rgb::WHITE);
        assert_eq!(im.get(3, 3), Rgb::WHITE);
        assert_eq!(im.get(0, 7), Rgb::BLACK);
        // Off-screen segment clips without panicking.
        draw_line(&mut im, -5, 3, 20, 3, Rgb::WHITE);
        assert_eq!(im.get(0, 3), Rgb::WHITE);
        assert_eq!(im.get(7, 3), Rgb::WHITE);
    }

    #[test]
    fn gradient_endpoints() {
        let mut im = img(3, 5);
        vertical_gradient(&mut im, Rgb::BLACK, Rgb::WHITE);
        assert_eq!(im.get(0, 0), Rgb::BLACK);
        assert_eq!(im.get(2, 4), Rgb::WHITE);
        let mid = im.get(1, 2);
        assert!(mid.r > 100 && mid.r < 160, "midpoint {mid:?}");

        let mut im2 = img(5, 3);
        horizontal_gradient(&mut im2, Rgb::new(255, 0, 0), Rgb::new(0, 0, 255));
        assert_eq!(im2.get(0, 0), Rgb::new(255, 0, 0));
        assert_eq!(im2.get(4, 2), Rgb::new(0, 0, 255));
    }

    #[test]
    fn checkerboard_alternates() {
        let mut im = img(4, 4);
        checkerboard(&mut im, 2, Rgb::BLACK, Rgb::WHITE);
        assert_eq!(im.get(0, 0), Rgb::BLACK);
        assert_eq!(im.get(2, 0), Rgb::WHITE);
        assert_eq!(im.get(0, 2), Rgb::WHITE);
        assert_eq!(im.get(2, 2), Rgb::BLACK);
    }

    #[test]
    fn speckle_is_deterministic_and_bounded() {
        let mut a = img(8, 8);
        fill(&mut a, Rgb::new(128, 128, 128));
        let mut b = a.clone();
        speckle(&mut a, 10, 42);
        speckle(&mut b, 10, 42);
        assert_eq!(a, b, "same seed, same speckle");
        for p in a.pixels() {
            assert!((p.r as i32 - 128).abs() <= 10);
        }
        let mut c = img(8, 8);
        fill(&mut c, Rgb::new(128, 128, 128));
        speckle(&mut c, 10, 43);
        assert_ne!(a, c, "different seed, different speckle");
    }

    #[test]
    fn text_renders_pixels_and_advances() {
        let mut im = img(40, 10);
        let advance = draw_text(&mut im, 0, 0, "AB", 1, Rgb::WHITE);
        assert_eq!(advance, 12);
        let lit = im.pixels().filter(|p| *p == Rgb::WHITE).count();
        assert!(lit > 10, "glyphs should paint pixels, painted {lit}");
    }

    #[test]
    fn unknown_chars_are_blank() {
        let mut im = img(20, 10);
        draw_text(&mut im, 0, 0, "##", 1, Rgb::WHITE);
        assert!(im.pixels().all(|p| p == Rgb::BLACK));
    }

    #[test]
    fn text_scale_multiplies_footprint() {
        let mut im1 = img(10, 10);
        let mut im2 = img(20, 20);
        draw_text(&mut im1, 0, 0, "I", 1, Rgb::WHITE);
        draw_text(&mut im2, 0, 0, "I", 2, Rgb::WHITE);
        let c1 = im1.pixels().filter(|p| *p == Rgb::WHITE).count();
        let c2 = im2.pixels().filter(|p| *p == Rgb::WHITE).count();
        assert_eq!(c2, 4 * c1);
    }
}
