//! VJP — a JPEG-style lossy codec.
//!
//! The paper stores key frames as JPEG inside Oracle `ORD_Image`. VJP is
//! the self-contained equivalent: the same transform pipeline as baseline
//! JPEG with a simplified entropy stage, so stored images shrink by an
//! order of magnitude while the retrieval features stay stable.
//!
//! Pipeline per 8×8 block:
//!
//! 1. RGB → YCbCr (BT.601 full range), planes coded independently
//!    (no chroma subsampling: simplicity over the last 2× of ratio);
//! 2. forward 8×8 DCT-II;
//! 3. uniform quantisation with the standard JPEG luminance table for Y
//!    and chrominance table for Cb/Cr, scaled by the quality factor;
//! 4. zigzag scan, then a byte-oriented entropy stage: DC deltas as
//!    zigzag-varints, AC as (zero-run, level) pairs with an end-of-block
//!    marker.
//!
//! Stream layout: `magic "VJP1" | width u32 | height u32 | quality u8 |
//! 3 × plane payload (len u32 + bytes)`.

use crate::error::{ImgError, Result};
use crate::image::RgbImage;
use crate::pixel::Rgb;

const MAGIC: &[u8; 4] = b"VJP1";
const BLOCK: usize = 8;

/// Standard JPEG luminance quantisation table (Annex K), zigzag-free
/// row-major order.
#[rustfmt::skip]
const Q_LUMA: [i32; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Standard JPEG chrominance quantisation table.
#[rustfmt::skip]
const Q_CHROMA: [i32; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99,
    18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99,
    47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// Zigzag scan order for an 8×8 block.
#[rustfmt::skip]
const ZIGZAG: [usize; 64] = [
     0,  1,  8, 16,  9,  2,  3, 10,
    17, 24, 32, 25, 18, 11,  4,  5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13,  6,  7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// JPEG-style quality scaling of a base table. `quality ∈ 1..=100`.
fn scaled_table(base: &[i32; 64], quality: u8) -> [i32; 64] {
    let q = quality.clamp(1, 100) as i32;
    let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
    let mut out = [0i32; 64];
    for (o, b) in out.iter_mut().zip(base.iter()) {
        *o = ((b * scale + 50) / 100).clamp(1, 255);
    }
    out
}

fn rgb_to_ycbcr(p: Rgb) -> [f32; 3] {
    let (r, g, b) = (p.r as f32, p.g as f32, p.b as f32);
    [
        0.299 * r + 0.587 * g + 0.114 * b,
        128.0 - 0.168_736 * r - 0.331_264 * g + 0.5 * b,
        128.0 + 0.5 * r - 0.418_688 * g - 0.081_312 * b,
    ]
}

fn ycbcr_to_rgb(y: f32, cb: f32, cr: f32) -> Rgb {
    let r = y + 1.402 * (cr - 128.0);
    let g = y - 0.344_136 * (cb - 128.0) - 0.714_136 * (cr - 128.0);
    let b = y + 1.772 * (cb - 128.0);
    Rgb::new(
        r.round().clamp(0.0, 255.0) as u8,
        g.round().clamp(0.0, 255.0) as u8,
        b.round().clamp(0.0, 255.0) as u8,
    )
}

/// Forward 8×8 DCT-II (separable, direct evaluation — clarity over FFT
/// speed; codec throughput is bench-measured, not on the query path).
fn dct8x8(block: &[f32; 64]) -> [f32; 64] {
    let mut out = [0f32; 64];
    for v in 0..BLOCK {
        for u in 0..BLOCK {
            let mut sum = 0f32;
            for y in 0..BLOCK {
                for x in 0..BLOCK {
                    sum += block[y * BLOCK + x]
                        * ((2 * x + 1) as f32 * u as f32 * std::f32::consts::PI / 16.0).cos()
                        * ((2 * y + 1) as f32 * v as f32 * std::f32::consts::PI / 16.0).cos();
                }
            }
            let cu = if u == 0 { std::f32::consts::FRAC_1_SQRT_2 } else { 1.0 };
            let cv = if v == 0 { std::f32::consts::FRAC_1_SQRT_2 } else { 1.0 };
            out[v * BLOCK + u] = 0.25 * cu * cv * sum;
        }
    }
    out
}

/// Inverse 8×8 DCT-II.
fn idct8x8(coeffs: &[f32; 64]) -> [f32; 64] {
    let mut out = [0f32; 64];
    for y in 0..BLOCK {
        for x in 0..BLOCK {
            let mut sum = 0f32;
            for v in 0..BLOCK {
                for u in 0..BLOCK {
                    let cu = if u == 0 { std::f32::consts::FRAC_1_SQRT_2 } else { 1.0 };
                    let cv = if v == 0 { std::f32::consts::FRAC_1_SQRT_2 } else { 1.0 };
                    sum += cu
                        * cv
                        * coeffs[v * BLOCK + u]
                        * ((2 * x + 1) as f32 * u as f32 * std::f32::consts::PI / 16.0).cos()
                        * ((2 * y + 1) as f32 * v as f32 * std::f32::consts::PI / 16.0).cos();
                }
            }
            out[y * BLOCK + x] = 0.25 * sum;
        }
    }
    out
}

/// Zigzag signed→unsigned mapping for varints.
fn zigzag_encode_i32(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

fn zigzag_decode_u32(v: u32) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

fn put_varint(out: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        out.push((v & 0x7F) as u8 | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn get_varint(data: &[u8], pos: &mut usize) -> Result<u32> {
    let mut v = 0u32;
    let mut shift = 0;
    loop {
        let byte = *data
            .get(*pos)
            .ok_or_else(|| ImgError::Decode("VJP varint truncated".into()))?;
        *pos += 1;
        v |= ((byte & 0x7F) as u32) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 28 {
            return Err(ImgError::Decode("VJP varint overlong".into()));
        }
    }
}

/// Encode one plane: per-block DCT → quantise → zigzag → DC-delta +
/// AC run-length varints.
fn encode_plane(plane: &[f32], w: usize, h: usize, table: &[i32; 64]) -> Vec<u8> {
    let bw = w.div_ceil(BLOCK);
    let bh = h.div_ceil(BLOCK);
    let mut out = Vec::with_capacity(w * h / 4);
    let mut prev_dc = 0i32;
    for by in 0..bh {
        for bx in 0..bw {
            // Gather the block with edge clamping.
            let mut block = [0f32; 64];
            for y in 0..BLOCK {
                for x in 0..BLOCK {
                    let sx = (bx * BLOCK + x).min(w - 1);
                    let sy = (by * BLOCK + y).min(h - 1);
                    block[y * BLOCK + x] = plane[sy * w + sx] - 128.0;
                }
            }
            let coeffs = dct8x8(&block);
            let mut quantised = [0i32; 64];
            for i in 0..64 {
                quantised[i] = (coeffs[i] / table[i] as f32).round() as i32;
            }
            // DC delta.
            let dc = quantised[0];
            put_varint(&mut out, zigzag_encode_i32(dc - prev_dc));
            prev_dc = dc;
            // AC: (run, level) pairs in zigzag order; 0-run marker ends.
            let mut run = 0u32;
            for &zz in &ZIGZAG[1..] {
                let level = quantised[zz];
                if level == 0 {
                    run += 1;
                } else {
                    put_varint(&mut out, run + 1); // runs are 1-based; 0 = EOB
                    put_varint(&mut out, zigzag_encode_i32(level));
                    run = 0;
                }
            }
            put_varint(&mut out, 0); // end of block
        }
    }
    out
}

/// Decode one plane.
fn decode_plane(data: &[u8], w: usize, h: usize, table: &[i32; 64]) -> Result<Vec<f32>> {
    let bw = w.div_ceil(BLOCK);
    let bh = h.div_ceil(BLOCK);
    let mut plane = vec![0f32; w * h];
    let mut pos = 0usize;
    let mut prev_dc = 0i32;
    for by in 0..bh {
        for bx in 0..bw {
            let mut quantised = [0i32; 64];
            let dc_delta = zigzag_decode_u32(get_varint(data, &mut pos)?);
            prev_dc += dc_delta;
            quantised[0] = prev_dc;
            let mut zz_index = 1usize;
            loop {
                let run = get_varint(data, &mut pos)?;
                if run == 0 {
                    break; // end of block
                }
                zz_index += (run - 1) as usize;
                if zz_index >= 64 {
                    return Err(ImgError::Decode("VJP AC run escapes block".into()));
                }
                let level = zigzag_decode_u32(get_varint(data, &mut pos)?);
                quantised[ZIGZAG[zz_index]] = level;
                zz_index += 1;
            }
            let mut coeffs = [0f32; 64];
            for i in 0..64 {
                coeffs[i] = (quantised[i] * table[i]) as f32;
            }
            let block = idct8x8(&coeffs);
            for y in 0..BLOCK {
                for x in 0..BLOCK {
                    let dx = bx * BLOCK + x;
                    let dy = by * BLOCK + y;
                    if dx < w && dy < h {
                        plane[dy * w + dx] = block[y * BLOCK + x] + 128.0;
                    }
                }
            }
        }
    }
    Ok(plane)
}

/// Encode an RGB image at the given quality (1..=100; 75 is a good
/// default).
pub fn encode(img: &RgbImage, quality: u8) -> Vec<u8> {
    let quality = quality.clamp(1, 100);
    let (w, h) = (img.width() as usize, img.height() as usize);

    // Split into YCbCr planes.
    let mut planes = [vec![0f32; w * h], vec![0f32; w * h], vec![0f32; w * h]];
    for (x, y, p) in img.enumerate_pixels() {
        let ycc = rgb_to_ycbcr(p);
        let i = y as usize * w + x as usize;
        planes[0][i] = ycc[0];
        planes[1][i] = ycc[1];
        planes[2][i] = ycc[2];
    }
    let q_luma = scaled_table(&Q_LUMA, quality);
    let q_chroma = scaled_table(&Q_CHROMA, quality);

    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(w as u32).to_le_bytes());
    out.extend_from_slice(&(h as u32).to_le_bytes());
    out.push(quality);
    for (i, plane) in planes.iter().enumerate() {
        let table = if i == 0 { &q_luma } else { &q_chroma };
        let payload = encode_plane(plane, w, h, table);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    out
}

/// Decode a VJP stream.
pub fn decode(data: &[u8]) -> Result<RgbImage> {
    if data.len() < 17 || &data[..4] != MAGIC {
        return Err(ImgError::Decode("not a VJP stream".into()));
    }
    let w = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes")) as usize;
    let h = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes")) as usize;
    let quality = data[12];
    if w == 0 || h == 0 {
        return Err(ImgError::Decode(format!("bad VJP dimensions {w}x{h}")));
    }
    let q_luma = scaled_table(&Q_LUMA, quality);
    let q_chroma = scaled_table(&Q_CHROMA, quality);

    let mut pos = 13usize;
    let mut planes = Vec::with_capacity(3);
    for i in 0..3 {
        let len_bytes = data
            .get(pos..pos + 4)
            .ok_or_else(|| ImgError::Decode("VJP plane header truncated".into()))?;
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        pos += 4;
        let payload = data
            .get(pos..pos + len)
            .ok_or_else(|| ImgError::Decode("VJP plane payload truncated".into()))?;
        pos += len;
        let table = if i == 0 { &q_luma } else { &q_chroma };
        planes.push(decode_plane(payload, w, h, table)?);
    }

    let mut img = RgbImage::new(w as u32, h as u32)
        .map_err(|e| ImgError::Decode(format!("bad VJP dimensions: {e}")))?;
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            img.put(x as u32, y as u32, ycbcr_to_rgb(planes[0][i], planes[1][i], planes[2][i]));
        }
    }
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psnr(a: &RgbImage, b: &RgbImage) -> f64 {
        let mse: f64 = a
            .as_raw()
            .iter()
            .zip(b.as_raw())
            .map(|(&x, &y)| {
                let d = x as f64 - y as f64;
                d * d
            })
            .sum::<f64>()
            / a.as_raw().len() as f64;
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0 * 255.0 / mse).log10()
        }
    }

    fn photo_like(w: u32, h: u32) -> RgbImage {
        RgbImage::from_fn(w, h, |x, y| {
            let r = (128.0 + 90.0 * ((x as f32) * 0.11).sin()) as u8;
            let g = (128.0 + 70.0 * ((y as f32) * 0.09).cos()) as u8;
            let b = (128.0 + 50.0 * ((x + y) as f32 * 0.07).sin()) as u8;
            Rgb::new(r, g, b)
        })
        .unwrap()
    }

    #[test]
    fn round_trip_quality_is_reasonable() {
        let img = photo_like(64, 48);
        let bytes = encode(&img, 75);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.dimensions(), img.dimensions());
        let q = psnr(&img, &back);
        assert!(q > 30.0, "q75 PSNR {q}");
    }

    #[test]
    fn higher_quality_means_higher_psnr_and_larger_stream() {
        let img = photo_like(64, 64);
        let lo = encode(&img, 20);
        let hi = encode(&img, 90);
        assert!(hi.len() > lo.len(), "hi {} vs lo {}", hi.len(), lo.len());
        let p_lo = psnr(&img, &decode(&lo).unwrap());
        let p_hi = psnr(&img, &decode(&hi).unwrap());
        assert!(p_hi > p_lo, "PSNR hi {p_hi} vs lo {p_lo}");
    }

    #[test]
    fn compresses_smooth_content_hard() {
        let img = photo_like(64, 64);
        let bytes = encode(&img, 75);
        let raw = 64 * 64 * 3;
        assert!(bytes.len() * 4 < raw, "VJP {} vs raw {raw}", bytes.len());
    }

    #[test]
    fn flat_image_survives_nearly_exactly() {
        let img = RgbImage::filled(32, 32, Rgb::new(100, 150, 200)).unwrap();
        let back = decode(&encode(&img, 75)).unwrap();
        let q = psnr(&img, &back);
        assert!(q > 40.0, "flat PSNR {q}");
    }

    #[test]
    fn non_multiple_of_eight_dimensions() {
        for (w, h) in [(7u32, 5u32), (9, 17), (1, 1), (8, 9)] {
            let img = photo_like(w, h);
            let back = decode(&encode(&img, 80)).unwrap();
            assert_eq!(back.dimensions(), (w, h), "{w}x{h}");
            assert!(psnr(&img, &back) > 20.0, "{w}x{h}");
        }
    }

    #[test]
    fn rejects_corruption() {
        let img = photo_like(24, 24);
        let bytes = encode(&img, 75);
        assert!(decode(&bytes[..10]).is_err());
        assert!(decode(b"JUNKJUNKJUNKJUNKJUNK").is_err());
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 5);
        assert!(decode(&truncated).is_err());
    }

    #[test]
    fn dct_idct_round_trip() {
        let mut block = [0f32; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i * 37) % 256) as f32 - 128.0;
        }
        let back = idct8x8(&dct8x8(&block));
        for (a, b) in block.iter().zip(&back) {
            assert!((a - b).abs() < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        for v in [0u32, 1, 127, 128, 300, 1 << 20, u32::MAX >> 4] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_i32_round_trip() {
        for v in [-1000, -1, 0, 1, 12345, i32::MIN / 4, i32::MAX / 4] {
            assert_eq!(zigzag_decode_u32(zigzag_encode_i32(v)), v);
        }
    }

    #[test]
    fn quality_table_scaling() {
        let q50 = scaled_table(&Q_LUMA, 50);
        assert_eq!(q50, Q_LUMA.map(|v| v.clamp(1, 255)));
        let q100 = scaled_table(&Q_LUMA, 100);
        assert!(q100.iter().all(|&v| v == 1), "quality 100 quantises by 1");
        let q1 = scaled_table(&Q_LUMA, 1);
        assert!(q1.iter().all(|&v| v >= Q_LUMA[0].min(255)), "quality 1 is coarse");
    }

    #[test]
    fn ycbcr_round_trip_is_close() {
        for p in [Rgb::new(0, 0, 0), Rgb::new(255, 255, 255), Rgb::new(200, 30, 90)] {
            let [y, cb, cr] = rgb_to_ycbcr(p);
            let q = ycbcr_to_rgb(y, cb, cr);
            assert!((p.r as i32 - q.r as i32).abs() <= 1, "{p:?} -> {q:?}");
            assert!((p.g as i32 - q.g as i32).abs() <= 1);
            assert!((p.b as i32 - q.b as i32).abs() <= 1);
        }
    }
}
