//! Image codecs: binary PPM (P6), binary PGM (P5), 24-bit BMP and the
//! JPEG-style lossy VJP.
//!
//! The paper stores key frames as JPEG blobs inside Oracle `ORD_Image`
//! columns; the retrieval pipeline only ever consumes *decoded* pixels, so
//! the particular compression format is irrelevant to every experiment.
//! PPM/PGM give a trivially verifiable lossless on-disk format; BMP
//! exists so frame dumps open in any external viewer; [`vjp`] is the
//! JPEG-equivalent (DCT + quantisation) for storage-size parity with the
//! paper's setup.

pub mod bmp;
pub mod pgm;
pub mod ppm;
pub mod vjp;

use crate::error::{ImgError, Result};
use crate::image::{GrayImage, RgbImage};

/// Supported on-disk image container formats.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ImageFormat {
    /// Binary PPM, `P6` magic, 24-bit RGB.
    Ppm,
    /// Binary PGM, `P5` magic, 8-bit grayscale.
    Pgm,
    /// Windows BMP, 24-bit uncompressed, bottom-up.
    Bmp,
    /// VJP, the JPEG-style lossy codec (quality 75 when encoded through
    /// [`encode`]; use [`vjp::encode`] for explicit quality).
    Vjp,
}

impl ImageFormat {
    /// Sniff the container format from the first bytes of a stream.
    pub fn sniff(data: &[u8]) -> Option<ImageFormat> {
        match data {
            [b'P', b'6', ..] => Some(ImageFormat::Ppm),
            [b'P', b'5', ..] => Some(ImageFormat::Pgm),
            [b'B', b'M', ..] => Some(ImageFormat::Bmp),
            [b'V', b'J', b'P', b'1', ..] => Some(ImageFormat::Vjp),
            _ => None,
        }
    }

    /// Conventional file extension for the format.
    pub fn extension(self) -> &'static str {
        match self {
            ImageFormat::Ppm => "ppm",
            ImageFormat::Pgm => "pgm",
            ImageFormat::Bmp => "bmp",
            ImageFormat::Vjp => "vjp",
        }
    }
}

/// Decode an RGB image, sniffing the container from its magic bytes.
/// PGM streams are promoted to RGB by channel replication.
pub fn decode_auto(data: &[u8]) -> Result<RgbImage> {
    match ImageFormat::sniff(data) {
        Some(ImageFormat::Ppm) => ppm::decode(data),
        Some(ImageFormat::Pgm) => Ok(pgm::decode(data)?.to_rgb()),
        Some(ImageFormat::Bmp) => bmp::decode(data),
        Some(ImageFormat::Vjp) => vjp::decode(data),
        None => Err(ImgError::Decode("unrecognised image magic".into())),
    }
}

/// Encode an RGB image into the requested container.
pub fn encode(img: &RgbImage, format: ImageFormat) -> Vec<u8> {
    match format {
        ImageFormat::Ppm => ppm::encode(img),
        ImageFormat::Pgm => pgm::encode(&img.to_gray()),
        ImageFormat::Bmp => bmp::encode(img),
        ImageFormat::Vjp => vjp::encode(img, 75),
    }
}

/// Decode a grayscale image (PGM directly, anything else via luma).
pub fn decode_gray_auto(data: &[u8]) -> Result<GrayImage> {
    match ImageFormat::sniff(data) {
        Some(ImageFormat::Pgm) => pgm::decode(data),
        Some(_) => Ok(decode_auto(data)?.to_gray()),
        None => Err(ImgError::Decode("unrecognised image magic".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::Rgb;

    fn sample() -> RgbImage {
        RgbImage::from_fn(5, 4, |x, y| Rgb::new((x * 50) as u8, (y * 60) as u8, ((x + y) * 20) as u8))
            .unwrap()
    }

    #[test]
    fn sniff_detects_all_formats() {
        let img = sample();
        for fmt in [ImageFormat::Ppm, ImageFormat::Pgm, ImageFormat::Bmp, ImageFormat::Vjp] {
            let bytes = encode(&img, fmt);
            assert_eq!(ImageFormat::sniff(&bytes), Some(fmt));
        }
        assert_eq!(ImageFormat::sniff(b"GIF89a"), None);
        assert_eq!(ImageFormat::sniff(b""), None);
    }

    #[test]
    fn auto_decode_round_trips_lossless_formats() {
        let img = sample();
        for fmt in [ImageFormat::Ppm, ImageFormat::Bmp] {
            let bytes = encode(&img, fmt);
            let back = decode_auto(&bytes).unwrap();
            assert_eq!(back, img, "{fmt:?} round trip");
        }
    }

    #[test]
    fn pgm_round_trip_is_luma() {
        let img = sample();
        let bytes = encode(&img, ImageFormat::Pgm);
        let back = decode_gray_auto(&bytes).unwrap();
        assert_eq!(back, img.to_gray());
    }

    #[test]
    fn decode_garbage_fails() {
        assert!(decode_auto(b"not an image at all").is_err());
        assert!(decode_gray_auto(&[]).is_err());
    }

    #[test]
    fn extensions() {
        assert_eq!(ImageFormat::Ppm.extension(), "ppm");
        assert_eq!(ImageFormat::Pgm.extension(), "pgm");
        assert_eq!(ImageFormat::Bmp.extension(), "bmp");
        assert_eq!(ImageFormat::Vjp.extension(), "vjp");
    }

    #[test]
    fn vjp_auto_decode_is_lossy_but_close() {
        let img = RgbImage::from_fn(24, 24, |x, y| {
            Rgb::new((x * 10) as u8, (y * 10) as u8, 128)
        })
        .unwrap();
        let bytes = encode(&img, ImageFormat::Vjp);
        let back = decode_auto(&bytes).unwrap();
        assert_eq!(back.dimensions(), img.dimensions());
        // Lossy: not byte-identical, but close channel-wise.
        let max_err = img
            .as_raw()
            .iter()
            .zip(back.as_raw())
            .map(|(&a, &b)| (a as i32 - b as i32).unsigned_abs())
            .max()
            .unwrap();
        assert!(max_err < 48, "max channel error {max_err}");
    }
}
