//! Binary PPM (`P6`) codec.
//!
//! Grammar: `P6 <ws> width <ws> height <ws> maxval <single-ws> raster`,
//! where `<ws>` is any run of whitespace possibly containing `#` comments.
//! Only `maxval = 255` is produced; decoding accepts any maxval up to 255.

use crate::error::{ImgError, Result};
use crate::image::RgbImage;

/// Encode as binary PPM with maxval 255.
pub fn encode(img: &RgbImage) -> Vec<u8> {
    let header = format!("P6\n{} {}\n255\n", img.width(), img.height());
    let mut out = Vec::with_capacity(header.len() + img.as_raw().len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(img.as_raw());
    out
}

/// Decode a binary PPM stream.
pub fn decode(data: &[u8]) -> Result<RgbImage> {
    let mut cursor = HeaderCursor::new(data);
    cursor.expect_magic(b"P6")?;
    let width = cursor.next_number()?;
    let height = cursor.next_number()?;
    let maxval = cursor.next_number()?;
    if maxval == 0 || maxval > 255 {
        return Err(ImgError::Decode(format!("unsupported PPM maxval {maxval}")));
    }
    cursor.skip_single_whitespace()?;
    let need = (width as usize)
        .checked_mul(height as usize)
        .and_then(|n| n.checked_mul(3))
        .ok_or_else(|| ImgError::Decode("PPM dimensions overflow".into()))?;
    let raster = cursor.rest();
    if raster.len() < need {
        return Err(ImgError::Decode(format!(
            "PPM raster truncated: need {need} bytes, have {}",
            raster.len()
        )));
    }
    let mut pixels = raster[..need].to_vec();
    if maxval != 255 {
        let scale = 255.0 / maxval as f32;
        for b in &mut pixels {
            *b = ((*b as f32) * scale).round().min(255.0) as u8;
        }
    }
    RgbImage::from_raw(width, height, pixels)
        .map_err(|e| ImgError::Decode(format!("bad PPM dimensions: {e}")))
}

/// Shared ASCII-header scanner for the PNM family.
pub(crate) struct HeaderCursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> HeaderCursor<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        HeaderCursor { data, pos: 0 }
    }

    pub(crate) fn expect_magic(&mut self, magic: &[u8]) -> Result<()> {
        if self.data.len() < magic.len() || &self.data[..magic.len()] != magic {
            return Err(ImgError::Decode(format!(
                "missing magic {:?}",
                String::from_utf8_lossy(magic)
            )));
        }
        self.pos = magic.len();
        Ok(())
    }

    fn skip_ws_and_comments(&mut self) {
        while self.pos < self.data.len() {
            let b = self.data[self.pos];
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else if b == b'#' {
                while self.pos < self.data.len() && self.data[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    pub(crate) fn next_number(&mut self) -> Result<u32> {
        self.skip_ws_and_comments();
        let start = self.pos;
        while self.pos < self.data.len() && self.data[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(ImgError::Decode("expected number in PNM header".into()));
        }
        std::str::from_utf8(&self.data[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ImgError::Decode("bad number in PNM header".into()))
    }

    /// Consume exactly one whitespace byte separating header and raster.
    pub(crate) fn skip_single_whitespace(&mut self) -> Result<()> {
        if self.pos < self.data.len() && self.data[self.pos].is_ascii_whitespace() {
            self.pos += 1;
            Ok(())
        } else {
            Err(ImgError::Decode("missing separator before PNM raster".into()))
        }
    }

    pub(crate) fn rest(&self) -> &'a [u8] {
        &self.data[self.pos..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::Rgb;

    #[test]
    fn round_trip() {
        let img = RgbImage::from_fn(7, 3, |x, y| Rgb::new(x as u8, y as u8, (x ^ y) as u8)).unwrap();
        assert_eq!(decode(&encode(&img)).unwrap(), img);
    }

    #[test]
    fn header_comments_are_skipped() {
        let mut bytes = b"P6\n# a comment\n2 1\n# another\n255\n".to_vec();
        bytes.extend_from_slice(&[1, 2, 3, 4, 5, 6]);
        let img = decode(&bytes).unwrap();
        assert_eq!(img.dimensions(), (2, 1));
        assert_eq!(img.get(0, 0), Rgb::new(1, 2, 3));
        assert_eq!(img.get(1, 0), Rgb::new(4, 5, 6));
    }

    #[test]
    fn small_maxval_is_rescaled() {
        let mut bytes = b"P6 1 1 3\n".to_vec();
        bytes.extend_from_slice(&[3, 0, 1]);
        let img = decode(&bytes).unwrap();
        assert_eq!(img.get(0, 0), Rgb::new(255, 0, 85));
    }

    #[test]
    fn truncated_raster_rejected() {
        let mut bytes = b"P6 2 2 255\n".to_vec();
        bytes.extend_from_slice(&[0; 11]); // needs 12
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(decode(b"P5 1 1 255\n\0").is_err());
        assert!(decode(b"").is_err());
    }

    #[test]
    fn zero_maxval_rejected() {
        assert!(decode(b"P6 1 1 0\n\0\0\0").is_err());
    }

    #[test]
    fn trailing_bytes_tolerated() {
        let img = RgbImage::from_fn(2, 2, |x, _| Rgb::new(x as u8, 0, 0)).unwrap();
        let mut bytes = encode(&img);
        bytes.extend_from_slice(b"garbage after raster");
        assert_eq!(decode(&bytes).unwrap(), img);
    }
}
