//! 24-bit uncompressed Windows BMP codec (BITMAPINFOHEADER).
//!
//! Rows are stored bottom-up and padded to 4-byte boundaries; pixels are
//! little-endian BGR. Exists so that dumped frames ("screen shots", Figs.
//! 9–10) open in any stock image viewer.

use crate::error::{ImgError, Result};
use crate::image::RgbImage;
use crate::pixel::Rgb;

const FILE_HEADER_LEN: usize = 14;
const INFO_HEADER_LEN: usize = 40;

fn row_stride(width: u32) -> usize {
    ((width as usize * 3) + 3) & !3
}

/// Encode as 24-bit bottom-up BMP.
pub fn encode(img: &RgbImage) -> Vec<u8> {
    let (w, h) = img.dimensions();
    let stride = row_stride(w);
    let pixel_bytes = stride * h as usize;
    let file_len = FILE_HEADER_LEN + INFO_HEADER_LEN + pixel_bytes;

    let mut out = Vec::with_capacity(file_len);
    // BITMAPFILEHEADER
    out.extend_from_slice(b"BM");
    out.extend_from_slice(&(file_len as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved
    out.extend_from_slice(&((FILE_HEADER_LEN + INFO_HEADER_LEN) as u32).to_le_bytes());
    // BITMAPINFOHEADER
    out.extend_from_slice(&(INFO_HEADER_LEN as u32).to_le_bytes());
    out.extend_from_slice(&(w as i32).to_le_bytes());
    out.extend_from_slice(&(h as i32).to_le_bytes()); // positive: bottom-up
    out.extend_from_slice(&1u16.to_le_bytes()); // planes
    out.extend_from_slice(&24u16.to_le_bytes()); // bpp
    out.extend_from_slice(&0u32.to_le_bytes()); // BI_RGB
    out.extend_from_slice(&(pixel_bytes as u32).to_le_bytes());
    out.extend_from_slice(&2835u32.to_le_bytes()); // 72 dpi
    out.extend_from_slice(&2835u32.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // palette colors
    out.extend_from_slice(&0u32.to_le_bytes()); // important colors

    let pad = [0u8; 3];
    for y in (0..h).rev() {
        for x in 0..w {
            let p = img.get(x, y);
            out.extend_from_slice(&[p.b, p.g, p.r]);
        }
        out.extend_from_slice(&pad[..stride - w as usize * 3]);
    }
    out
}

fn read_u32(data: &[u8], at: usize) -> Result<u32> {
    data.get(at..at + 4)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or_else(|| ImgError::Decode("BMP header truncated".into()))
}

fn read_i32(data: &[u8], at: usize) -> Result<i32> {
    read_u32(data, at).map(|v| v as i32)
}

fn read_u16(data: &[u8], at: usize) -> Result<u16> {
    data.get(at..at + 2)
        .map(|b| u16::from_le_bytes([b[0], b[1]]))
        .ok_or_else(|| ImgError::Decode("BMP header truncated".into()))
}

/// Decode a 24-bit uncompressed BMP (top-down or bottom-up).
pub fn decode(data: &[u8]) -> Result<RgbImage> {
    if data.len() < FILE_HEADER_LEN + INFO_HEADER_LEN || &data[..2] != b"BM" {
        return Err(ImgError::Decode("not a BMP stream".into()));
    }
    let pixel_offset = read_u32(data, 10)? as usize;
    let header_size = read_u32(data, 14)?;
    if header_size < INFO_HEADER_LEN as u32 {
        return Err(ImgError::Decode(format!("unsupported BMP header size {header_size}")));
    }
    let width = read_i32(data, 18)?;
    let raw_height = read_i32(data, 22)?;
    let bpp = read_u16(data, 28)?;
    let compression = read_u32(data, 30)?;
    if bpp != 24 || compression != 0 {
        return Err(ImgError::Decode(format!(
            "only 24-bit uncompressed BMP supported (bpp={bpp}, compression={compression})"
        )));
    }
    if width <= 0 || raw_height == 0 {
        return Err(ImgError::Decode(format!("bad BMP dimensions {width}x{raw_height}")));
    }
    let bottom_up = raw_height > 0;
    let width = width as u32;
    let height = raw_height.unsigned_abs();

    let stride = row_stride(width);
    let need = stride * height as usize;
    let raster = data
        .get(pixel_offset..pixel_offset + need)
        .ok_or_else(|| ImgError::Decode("BMP raster truncated".into()))?;

    let mut img = RgbImage::new(width, height)
        .map_err(|e| ImgError::Decode(format!("bad BMP dimensions: {e}")))?;
    for row in 0..height {
        let src_row = if bottom_up { height - 1 - row } else { row };
        let base = src_row as usize * stride;
        for x in 0..width {
            let o = base + x as usize * 3;
            img.put(x, row, Rgb::new(raster[o + 2], raster[o + 1], raster[o]));
        }
    }
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_unpadded_width() {
        // width 4 → stride 12, no padding.
        let img = RgbImage::from_fn(4, 3, |x, y| Rgb::new(x as u8 * 20, y as u8 * 30, 5)).unwrap();
        assert_eq!(decode(&encode(&img)).unwrap(), img);
    }

    #[test]
    fn round_trip_padded_width() {
        // width 3 → 9 bytes/row, padded to 12.
        let img = RgbImage::from_fn(3, 5, |x, y| Rgb::new(x as u8, y as u8, 200)).unwrap();
        assert_eq!(decode(&encode(&img)).unwrap(), img);
    }

    #[test]
    fn header_sizes_are_exact() {
        let img = RgbImage::new(2, 2).unwrap();
        let bytes = encode(&img);
        assert_eq!(&bytes[..2], b"BM");
        let file_len = u32::from_le_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]) as usize;
        assert_eq!(file_len, bytes.len());
    }

    #[test]
    fn rejects_non_bmp() {
        assert!(decode(b"P6 1 1 255\n\0\0\0").is_err());
        assert!(decode(&[]).is_err());
    }

    #[test]
    fn rejects_truncated_raster() {
        let img = RgbImage::new(8, 8).unwrap();
        let mut bytes = encode(&img);
        bytes.truncate(bytes.len() - 10);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn rejects_other_bit_depths() {
        let img = RgbImage::new(2, 2).unwrap();
        let mut bytes = encode(&img);
        bytes[28] = 8; // claim 8 bpp
        assert!(decode(&bytes).is_err());
    }
}
