//! Binary PGM (`P5`) codec for grayscale images.

use super::ppm::HeaderCursor;
use crate::error::{ImgError, Result};
use crate::image::GrayImage;

/// Encode as binary PGM with maxval 255.
pub fn encode(img: &GrayImage) -> Vec<u8> {
    let header = format!("P5\n{} {}\n255\n", img.width(), img.height());
    let mut out = Vec::with_capacity(header.len() + img.as_raw().len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(img.as_raw());
    out
}

/// Decode a binary PGM stream.
pub fn decode(data: &[u8]) -> Result<GrayImage> {
    let mut cursor = HeaderCursor::new(data);
    cursor.expect_magic(b"P5")?;
    let width = cursor.next_number()?;
    let height = cursor.next_number()?;
    let maxval = cursor.next_number()?;
    if maxval == 0 || maxval > 255 {
        return Err(ImgError::Decode(format!("unsupported PGM maxval {maxval}")));
    }
    cursor.skip_single_whitespace()?;
    let need = (width as usize)
        .checked_mul(height as usize)
        .ok_or_else(|| ImgError::Decode("PGM dimensions overflow".into()))?;
    let raster = cursor.rest();
    if raster.len() < need {
        return Err(ImgError::Decode(format!(
            "PGM raster truncated: need {need} bytes, have {}",
            raster.len()
        )));
    }
    let mut pixels = raster[..need].to_vec();
    if maxval != 255 {
        let scale = 255.0 / maxval as f32;
        for b in &mut pixels {
            *b = ((*b as f32) * scale).round().min(255.0) as u8;
        }
    }
    GrayImage::from_raw(width, height, pixels)
        .map_err(|e| ImgError::Decode(format!("bad PGM dimensions: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::Gray;

    #[test]
    fn round_trip() {
        let img = GrayImage::from_fn(9, 5, |x, y| Gray((x * 13 + y * 29) as u8)).unwrap();
        assert_eq!(decode(&encode(&img)).unwrap(), img);
    }

    #[test]
    fn rejects_ppm_magic() {
        assert!(decode(b"P6 1 1 255\n\0\0\0").is_err());
    }

    #[test]
    fn rejects_truncation() {
        let img = GrayImage::from_fn(4, 4, |_, _| Gray(7)).unwrap();
        let mut bytes = encode(&img);
        bytes.truncate(bytes.len() - 1);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn maxval_rescale() {
        let mut bytes = b"P5 2 1 15\n".to_vec();
        bytes.extend_from_slice(&[15, 0]);
        let img = decode(&bytes).unwrap();
        assert_eq!(img.get(0, 0), Gray(255));
        assert_eq!(img.get(1, 0), Gray(0));
    }
}
