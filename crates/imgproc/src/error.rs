//! Error type shared by all image operations.

use std::fmt;

/// Errors produced by image decoding, encoding and geometry checks.
#[derive(Debug)]
pub enum ImgError {
    /// The byte stream is not a valid image in the expected format.
    Decode(String),
    /// The image cannot be encoded (e.g. zero-sized raster).
    Encode(String),
    /// An operation was asked to work outside the raster bounds.
    OutOfBounds {
        /// Requested x coordinate.
        x: u32,
        /// Requested y coordinate.
        y: u32,
        /// Raster width.
        width: u32,
        /// Raster height.
        height: u32,
    },
    /// Dimensions are invalid for the requested operation (zero side,
    /// overflowing pixel count, mismatched sizes, ...).
    Dimensions(String),
    /// Underlying I/O failure while reading or writing an image.
    Io(std::io::Error),
}

impl fmt::Display for ImgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImgError::Decode(m) => write!(f, "image decode error: {m}"),
            ImgError::Encode(m) => write!(f, "image encode error: {m}"),
            ImgError::OutOfBounds { x, y, width, height } => {
                write!(f, "pixel ({x},{y}) out of bounds for {width}x{height} image")
            }
            ImgError::Dimensions(m) => write!(f, "invalid dimensions: {m}"),
            ImgError::Io(e) => write!(f, "image i/o error: {e}"),
        }
    }
}

impl std::error::Error for ImgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImgError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImgError {
    fn from(e: std::io::Error) -> Self {
        ImgError::Io(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ImgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ImgError::OutOfBounds { x: 10, y: 20, width: 5, height: 5 };
        let s = e.to_string();
        assert!(s.contains("10"), "{s}");
        assert!(s.contains("5x5"), "{s}");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: ImgError = io.into();
        assert!(matches!(e, ImgError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn source_chains_for_io() {
        use std::error::Error;
        let e: ImgError = std::io::Error::other("x").into();
        assert!(e.source().is_some());
        assert!(ImgError::Decode("bad".into()).source().is_none());
    }
}
