//! Spatial filtering: 2-D convolution and standard kernels.
//!
//! The Gabor extractor (§4.4) convolves the gray-level raster with a bank
//! of complex wavelets; [`convolve_gray_f32`] is the primitive it uses.
//! Sobel and Gaussian kernels support the Tamura directionality feature and
//! the synthetic generator's soft edges.

use crate::error::{ImgError, Result};
use crate::image::GrayImage;
use crate::pixel::Gray;

/// A dense, odd-sided convolution kernel with `f32` taps.
#[derive(Clone, Debug, PartialEq)]
pub struct Kernel {
    size: usize,
    taps: Vec<f32>,
}

impl Kernel {
    /// Build a kernel from row-major taps; `taps.len()` must be a perfect
    /// odd square (1, 9, 25, ...).
    pub fn new(taps: Vec<f32>) -> Result<Self> {
        let size = (taps.len() as f64).sqrt() as usize;
        if size * size != taps.len() || size.is_multiple_of(2) || taps.is_empty() {
            return Err(ImgError::Dimensions(format!(
                "kernel needs an odd square tap count, got {}",
                taps.len()
            )));
        }
        Ok(Kernel { size, taps })
    }

    /// Side length (always odd).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Tap at kernel coordinates `(kx, ky)`.
    #[inline]
    pub fn tap(&self, kx: usize, ky: usize) -> f32 {
        self.taps[ky * self.size + kx]
    }

    /// 3×3 box blur.
    pub fn box3() -> Kernel {
        Kernel::new(vec![1.0 / 9.0; 9]).expect("static kernel")
    }

    /// Gaussian kernel of the given radius (side `2r+1`), `sigma = r/2`
    /// (floored at 0.5), normalised to unit sum.
    pub fn gaussian(radius: usize) -> Kernel {
        let size = 2 * radius + 1;
        let sigma = (radius as f32 / 2.0).max(0.5);
        let mut taps = Vec::with_capacity(size * size);
        let mut sum = 0.0f32;
        for y in 0..size {
            for x in 0..size {
                let dx = x as f32 - radius as f32;
                let dy = y as f32 - radius as f32;
                let v = (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
                taps.push(v);
                sum += v;
            }
        }
        for t in &mut taps {
            *t /= sum;
        }
        Kernel::new(taps).expect("odd square by construction")
    }

    /// Horizontal Sobel operator (responds to vertical edges).
    pub fn sobel_x() -> Kernel {
        Kernel::new(vec![-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0]).expect("static kernel")
    }

    /// Vertical Sobel operator (responds to horizontal edges).
    pub fn sobel_y() -> Kernel {
        Kernel::new(vec![-1.0, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0]).expect("static kernel")
    }
}

/// Convolve a grayscale image, returning raw `f32` responses (no clamping).
/// Border pixels use clamp-to-edge sampling.
pub fn convolve_gray_f32(img: &GrayImage, kernel: &Kernel) -> Vec<f32> {
    let (w, h) = img.dimensions();
    let r = (kernel.size() / 2) as i64;
    let mut out = vec![0.0f32; w as usize * h as usize];
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            let mut acc = 0.0f32;
            for ky in 0..kernel.size() {
                for kx in 0..kernel.size() {
                    let sx = x + kx as i64 - r;
                    let sy = y + ky as i64 - r;
                    acc += kernel.tap(kx, ky) * img.get_clamped(sx, sy).0 as f32;
                }
            }
            out[(y as usize) * w as usize + x as usize] = acc;
        }
    }
    out
}

/// Convolve and clamp the result back into an 8-bit image.
pub fn convolve_gray(img: &GrayImage, kernel: &Kernel) -> GrayImage {
    let (w, h) = img.dimensions();
    let responses = convolve_gray_f32(img, kernel);
    let mut out = GrayImage::new(w, h).expect("same nonzero dims");
    for (i, v) in responses.iter().enumerate() {
        let x = (i as u32) % w;
        let y = (i as u32) / w;
        out.put(x, y, Gray(v.round().clamp(0.0, 255.0) as u8));
    }
    out
}

/// Sobel gradient magnitude and quantised direction per pixel.
///
/// Direction is returned in radians in `(-π, π]`; magnitude is
/// `|gx| + |gy|` (the L1 approximation Tamura's directionality uses).
pub fn sobel_gradients(img: &GrayImage) -> (Vec<f32>, Vec<f32>) {
    let gx = convolve_gray_f32(img, &Kernel::sobel_x());
    let gy = convolve_gray_f32(img, &Kernel::sobel_y());
    let mag = gx.iter().zip(&gy).map(|(a, b)| a.abs() + b.abs()).collect();
    let dir = gx.iter().zip(&gy).map(|(a, b)| b.atan2(*a)).collect();
    (mag, dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::GrayImage;

    #[test]
    fn kernel_shape_validation() {
        assert!(Kernel::new(vec![1.0]).is_ok());
        assert!(Kernel::new(vec![1.0; 9]).is_ok());
        assert!(Kernel::new(vec![1.0; 4]).is_err()); // even side
        assert!(Kernel::new(vec![1.0; 8]).is_err()); // not square
        assert!(Kernel::new(vec![]).is_err());
    }

    #[test]
    fn identity_kernel_is_noop() {
        let img = GrayImage::from_fn(5, 5, |x, y| Gray((x * 11 + y * 7) as u8)).unwrap();
        let ident = Kernel::new(vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(convolve_gray(&img, &ident), img);
    }

    #[test]
    fn box_blur_flattens_constant_image() {
        let img = GrayImage::filled(6, 6, Gray(80)).unwrap();
        let out = convolve_gray(&img, &Kernel::box3());
        assert!(out.pixels().all(|p| p == Gray(80)));
    }

    #[test]
    fn gaussian_sums_to_one() {
        for radius in 1..5 {
            let k = Kernel::gaussian(radius);
            let sum: f32 = (0..k.size())
                .flat_map(|y| (0..k.size()).map(move |x| (x, y)))
                .map(|(x, y)| k.tap(x, y))
                .sum();
            assert!((sum - 1.0).abs() < 1e-5, "radius {radius} sum {sum}");
        }
    }

    #[test]
    fn sobel_x_detects_vertical_edge() {
        // Left half black, right half white.
        let img = GrayImage::from_fn(8, 8, |x, _| Gray(if x < 4 { 0 } else { 255 })).unwrap();
        let responses = convolve_gray_f32(&img, &Kernel::sobel_x());
        // Strong positive response on the boundary column.
        let at_edge = responses[3 + 4 * 8];
        assert!(at_edge > 500.0, "edge response {at_edge}");
        // Flat regions respond zero.
        assert_eq!(responses[1 + 4 * 8], 0.0);
    }

    #[test]
    fn sobel_y_ignores_vertical_edge() {
        let img = GrayImage::from_fn(8, 8, |x, _| Gray(if x < 4 { 0 } else { 255 })).unwrap();
        let responses = convolve_gray_f32(&img, &Kernel::sobel_y());
        // Vertical edges produce no vertical-gradient response away from corners.
        assert_eq!(responses[3 + 4 * 8], 0.0);
    }

    #[test]
    fn gradient_direction_of_horizontal_ramp() {
        let img = GrayImage::from_fn(8, 8, |x, _| Gray((x * 30) as u8)).unwrap();
        let (mag, dir) = sobel_gradients(&img);
        let centre = 4 + 4 * 8;
        assert!(mag[centre] > 0.0);
        // Gradient points along +x → direction ≈ 0.
        assert!(dir[centre].abs() < 1e-4, "direction {}", dir[centre]);
    }
}
