//! # cbvr-imgproc — image processing substrate for CBVR
//!
//! The paper (Patel & Meshram, IJMA 2012) implements its feature extractors
//! on top of Java Advanced Imaging (`PlanarImage`, `BufferedImage`, `Raster`,
//! `LookupTableJAI`, `ParameterBlock` operations such as *rescale*,
//! *bandcombine*, *binarize*, *dilate* and *erode*). This crate provides the
//! equivalent substrate from scratch in safe Rust:
//!
//! - [`image::Image`] — a generic packed raster, with the aliases
//!   [`RgbImage`] and [`GrayImage`] used throughout the workspace;
//! - [`codec`] — PPM / PGM / BMP encoding and decoding, used to persist
//!   frames ("video to jpeg converter" stand-in; the features never depend
//!   on the compression format, only on decoded pixels);
//! - [`color`] — RGB ↔ HSV conversion and the paper's exact luma weights
//!   `{0.114, 0.587, 0.299}` (the JAI band-combine matrix in §4.3 / §4.8);
//! - [`geom`] — nearest-neighbour and bilinear rescaling, crop, flips
//!   (the key-frame extractor rescales with `InterpolationNearest`);
//! - [`filter`] — 2-D convolution, Gaussian and Sobel kernels;
//! - [`morph`] — binary dilation and erosion with the paper's 5×5
//!   cross-of-ones structuring element (§4.8 step 4);
//! - [`threshold`] — fuzzy-minimum and Otsu binarisation
//!   (`getMinFuzzinessThreshold` in §4.8 step 3.G–J);
//! - [`hist`] — 256-bin luminance and per-band histograms;
//! - [`draw`] — rendering primitives used by the synthetic video generator;
//! - [`enhance`] — histogram equalisation, gamma and contrast stretching
//!   (query normalisation and degradation variants).
//!
//! Everything operates on 8-bit channels, matching the paper's `0xff &
//! pixel[i]` arithmetic.
#![warn(missing_docs)]


pub mod codec;
pub mod color;
pub mod draw;
pub mod enhance;
pub mod error;
pub mod filter;
pub mod geom;
pub mod hist;
pub mod image;
pub mod morph;
pub mod pixel;
pub mod threshold;

pub use codec::{decode_auto, ImageFormat};
pub use color::{hsv_to_rgb, luma_u8, rgb_to_gray, rgb_to_hsv};
pub use error::{ImgError, Result};
pub use geom::Interpolation;
pub use hist::Histogram256;
pub use image::{GrayImage, Image, RgbImage};
pub use pixel::{Gray, Pixel, Rgb};
