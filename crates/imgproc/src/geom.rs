//! Geometric transforms: rescale, crop and flips.
//!
//! The key-frame extractor (§4.1) and the naive signature (§4.6) rescale
//! frames to a fixed 300×300 raster using JAI's `InterpolationNearest`;
//! [`resize`] reproduces that, and additionally offers bilinear sampling
//! for the synthetic generator's smooth zooms.

use crate::error::{ImgError, Result};
use crate::image::Image;
use crate::pixel::{Pixel, Rgb};

/// Sampling strategy for [`resize`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum Interpolation {
    /// Nearest-neighbour (the paper's `InterpolationNearest`).
    #[default]
    Nearest,
    /// Bilinear, RGB only (grayscale uses nearest as a fallback).
    Bilinear,
}

/// Resize `img` to `new_w × new_h`.
///
/// # Errors
/// Returns [`ImgError::Dimensions`] when a target side is zero.
pub fn resize<P: Pixel>(img: &Image<P>, new_w: u32, new_h: u32, interp: Interpolation) -> Result<Image<P>> {
    if new_w == 0 || new_h == 0 {
        return Err(ImgError::Dimensions(format!("cannot resize to {new_w}x{new_h}")));
    }
    if (new_w, new_h) == img.dimensions() {
        return Ok(img.clone());
    }
    match interp {
        Interpolation::Nearest => resize_nearest(img, new_w, new_h),
        Interpolation::Bilinear => resize_nearest(img, new_w, new_h),
    }
}

/// Resize an RGB image with true bilinear sampling.
pub fn resize_rgb(img: &Image<Rgb>, new_w: u32, new_h: u32, interp: Interpolation) -> Result<Image<Rgb>> {
    if new_w == 0 || new_h == 0 {
        return Err(ImgError::Dimensions(format!("cannot resize to {new_w}x{new_h}")));
    }
    if (new_w, new_h) == img.dimensions() {
        return Ok(img.clone());
    }
    match interp {
        Interpolation::Nearest => resize_nearest(img, new_w, new_h),
        Interpolation::Bilinear => resize_bilinear_rgb(img, new_w, new_h),
    }
}

fn resize_nearest<P: Pixel>(img: &Image<P>, new_w: u32, new_h: u32) -> Result<Image<P>> {
    let (w, h) = img.dimensions();
    let sx = w as f64 / new_w as f64;
    let sy = h as f64 / new_h as f64;
    Image::from_fn(new_w, new_h, |x, y| {
        let src_x = ((x as f64 + 0.5) * sx) as u32;
        let src_y = ((y as f64 + 0.5) * sy) as u32;
        img.get(src_x.min(w - 1), src_y.min(h - 1))
    })
}

fn resize_bilinear_rgb(img: &Image<Rgb>, new_w: u32, new_h: u32) -> Result<Image<Rgb>> {
    let (w, h) = img.dimensions();
    let sx = w as f64 / new_w as f64;
    let sy = h as f64 / new_h as f64;
    Image::from_fn(new_w, new_h, |x, y| {
        let fx = ((x as f64 + 0.5) * sx - 0.5).max(0.0);
        let fy = ((y as f64 + 0.5) * sy - 0.5).max(0.0);
        let x0 = fx.floor() as u32;
        let y0 = fy.floor() as u32;
        let x1 = (x0 + 1).min(w - 1);
        let y1 = (y0 + 1).min(h - 1);
        let tx = (fx - x0 as f64) as f32;
        let ty = (fy - y0 as f64) as f32;
        let top = img.get(x0, y0).lerp(img.get(x1, y0), tx);
        let bottom = img.get(x0, y1).lerp(img.get(x1, y1), tx);
        top.lerp(bottom, ty)
    })
}

/// Extract the `w × h` rectangle whose top-left corner is `(x, y)`.
///
/// # Errors
/// Returns [`ImgError::Dimensions`] when the rectangle escapes the raster
/// or has a zero side.
pub fn crop<P: Pixel>(img: &Image<P>, x: u32, y: u32, w: u32, h: u32) -> Result<Image<P>> {
    let (iw, ih) = img.dimensions();
    if w == 0 || h == 0 {
        return Err(ImgError::Dimensions("zero-sized crop".into()));
    }
    if x.checked_add(w).is_none_or(|e| e > iw) || y.checked_add(h).is_none_or(|e| e > ih) {
        return Err(ImgError::Dimensions(format!(
            "crop ({x},{y} {w}x{h}) escapes {iw}x{ih} raster"
        )));
    }
    Image::from_fn(w, h, |cx, cy| img.get(x + cx, y + cy))
}

/// Mirror horizontally (left-right).
pub fn flip_horizontal<P: Pixel>(img: &Image<P>) -> Image<P> {
    let (w, h) = img.dimensions();
    Image::from_fn(w, h, |x, y| img.get(w - 1 - x, y)).expect("same nonzero dims")
}

/// Mirror vertically (top-bottom).
pub fn flip_vertical<P: Pixel>(img: &Image<P>) -> Image<P> {
    let (w, h) = img.dimensions();
    Image::from_fn(w, h, |x, y| img.get(x, h - 1 - y)).expect("same nonzero dims")
}

/// Rotate 90° clockwise (width and height swap).
pub fn rotate90<P: Pixel>(img: &Image<P>) -> Image<P> {
    let (w, h) = img.dimensions();
    Image::from_fn(h, w, |x, y| img.get(y, h - 1 - x)).expect("same nonzero dims")
}

/// Rotate 180°.
pub fn rotate180<P: Pixel>(img: &Image<P>) -> Image<P> {
    let (w, h) = img.dimensions();
    Image::from_fn(w, h, |x, y| img.get(w - 1 - x, h - 1 - y)).expect("same nonzero dims")
}

/// Rotate 270° clockwise (= 90° counter-clockwise).
pub fn rotate270<P: Pixel>(img: &Image<P>) -> Image<P> {
    let (w, h) = img.dimensions();
    Image::from_fn(h, w, |x, y| img.get(w - 1 - y, x)).expect("same nonzero dims")
}

/// Translate the image content by `(dx, dy)` pixels, filling vacated area
/// with `fill`. Used by the synthetic generator to pan scenes.
pub fn translate<P: Pixel>(img: &Image<P>, dx: i32, dy: i32, fill: P) -> Image<P> {
    let (w, h) = img.dimensions();
    Image::from_fn(w, h, |x, y| {
        let sx = x as i64 - dx as i64;
        let sy = y as i64 - dy as i64;
        if sx >= 0 && sy >= 0 && (sx as u32) < w && (sy as u32) < h {
            img.get(sx as u32, sy as u32)
        } else {
            fill
        }
    })
    .expect("same nonzero dims")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{GrayImage, RgbImage};
    use crate::pixel::Gray;

    #[test]
    fn resize_identity_is_clone() {
        let img = GrayImage::from_fn(4, 4, |x, y| Gray((x + y) as u8)).unwrap();
        let out = resize(&img, 4, 4, Interpolation::Nearest).unwrap();
        assert_eq!(out, img);
    }

    #[test]
    fn nearest_upscale_replicates() {
        let img = GrayImage::from_fn(2, 1, |x, _| Gray(if x == 0 { 0 } else { 255 })).unwrap();
        let out = resize(&img, 4, 2, Interpolation::Nearest).unwrap();
        assert_eq!(out.get(0, 0), Gray(0));
        assert_eq!(out.get(1, 0), Gray(0));
        assert_eq!(out.get(2, 1), Gray(255));
        assert_eq!(out.get(3, 1), Gray(255));
    }

    #[test]
    fn nearest_downscale_samples() {
        let img = GrayImage::from_fn(4, 4, |x, y| Gray((y * 4 + x) as u8 * 10)).unwrap();
        let out = resize(&img, 2, 2, Interpolation::Nearest).unwrap();
        assert_eq!(out.dimensions(), (2, 2));
        // Centre-of-cell sampling picks pixel (1,1) for output (0,0).
        assert_eq!(out.get(0, 0), Gray(50));
    }

    #[test]
    fn zero_target_rejected() {
        let img = GrayImage::new(4, 4).unwrap();
        assert!(resize(&img, 0, 4, Interpolation::Nearest).is_err());
        assert!(resize(&img, 4, 0, Interpolation::Bilinear).is_err());
    }

    #[test]
    fn bilinear_rgb_midpoint() {
        let img = RgbImage::from_fn(2, 1, |x, _| {
            if x == 0 { Rgb::new(0, 0, 0) } else { Rgb::new(200, 100, 50) }
        })
        .unwrap();
        let out = resize_rgb(&img, 4, 1, Interpolation::Bilinear).unwrap();
        // Middle samples interpolate between the two endpoints.
        let mid = out.get(1, 0);
        assert!(mid.r > 0 && mid.r < 200, "interpolated value, got {mid:?}");
    }

    #[test]
    fn bilinear_constant_image_stays_constant() {
        let img = RgbImage::filled(5, 5, Rgb::new(40, 80, 120)).unwrap();
        let out = resize_rgb(&img, 13, 7, Interpolation::Bilinear).unwrap();
        assert!(out.pixels().all(|p| p == Rgb::new(40, 80, 120)));
    }

    #[test]
    fn crop_extracts_subrect() {
        let img = GrayImage::from_fn(5, 5, |x, y| Gray((y * 5 + x) as u8)).unwrap();
        let c = crop(&img, 1, 2, 3, 2).unwrap();
        assert_eq!(c.dimensions(), (3, 2));
        assert_eq!(c.get(0, 0), Gray(11));
        assert_eq!(c.get(2, 1), Gray(18));
    }

    #[test]
    fn crop_bounds_enforced() {
        let img = GrayImage::new(5, 5).unwrap();
        assert!(crop(&img, 3, 3, 3, 3).is_err());
        assert!(crop(&img, 0, 0, 0, 1).is_err());
        assert!(crop(&img, u32::MAX, 0, 1, 1).is_err());
    }

    #[test]
    fn flips_are_involutions() {
        let img = GrayImage::from_fn(4, 3, |x, y| Gray((x * 7 + y * 3) as u8)).unwrap();
        assert_eq!(flip_horizontal(&flip_horizontal(&img)), img);
        assert_eq!(flip_vertical(&flip_vertical(&img)), img);
        assert_eq!(flip_horizontal(&img).get(0, 0), img.get(3, 0));
        assert_eq!(flip_vertical(&img).get(0, 0), img.get(0, 2));
    }

    #[test]
    fn rotations_compose_to_identity() {
        let img = GrayImage::from_fn(5, 3, |x, y| Gray((y * 5 + x) as u8)).unwrap();
        assert_eq!(rotate180(&rotate180(&img)), img);
        assert_eq!(rotate90(&rotate270(&img)), img);
        assert_eq!(rotate270(&rotate90(&img)), img);
        assert_eq!(rotate90(&rotate90(&img)), rotate180(&img));
        // Dimensions swap on quarter turns.
        assert_eq!(rotate90(&img).dimensions(), (3, 5));
    }

    #[test]
    fn rotate90_moves_corners_correctly() {
        let mut img = GrayImage::new(3, 2).unwrap();
        img.put(0, 0, Gray(1)); // top-left
        img.put(2, 0, Gray(2)); // top-right
        let r = rotate90(&img);
        // Top-left goes to top-right after a clockwise quarter turn.
        assert_eq!(r.get(1, 0), Gray(1));
        assert_eq!(r.get(1, 2), Gray(2));
    }

    #[test]
    fn translate_shifts_and_fills() {
        let img = GrayImage::from_fn(3, 3, |x, y| Gray((y * 3 + x) as u8 + 1)).unwrap();
        let t = translate(&img, 1, 0, Gray(0));
        assert_eq!(t.get(0, 0), Gray(0)); // vacated
        assert_eq!(t.get(1, 0), Gray(1)); // old (0,0)
        let t2 = translate(&img, -1, -1, Gray(99));
        assert_eq!(t2.get(0, 0), img.get(1, 1));
        assert_eq!(t2.get(2, 2), Gray(99));
    }
}
