//! The core raster type.
//!
//! [`Image`] is a packed, row-major raster generic over [`Pixel`]. It is the
//! Rust equivalent of the paper's `BufferedImage` / `PlanarImage` /
//! `Raster` trio: a single owned buffer with typed accessors.

use crate::error::{ImgError, Result};
use crate::pixel::{Gray, Pixel, Rgb};

/// A packed row-major image with `u8` channels.
///
/// Coordinates are `(x, y)` with the origin at the top-left corner,
/// matching the pseudocode's `pixels[w][h]` indexing.
#[derive(Clone, PartialEq, Eq)]
pub struct Image<P: Pixel> {
    width: u32,
    height: u32,
    data: Vec<u8>,
    _marker: std::marker::PhantomData<P>,
}

/// 24-bit RGB image.
pub type RgbImage = Image<Rgb>;
/// 8-bit grayscale image.
pub type GrayImage = Image<Gray>;

impl<P: Pixel> std::fmt::Debug for Image<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Image")
            .field("width", &self.width)
            .field("height", &self.height)
            .field("channels", &P::CHANNELS)
            .finish()
    }
}

impl<P: Pixel> Image<P> {
    /// Create an image filled with the default pixel (black).
    ///
    /// # Errors
    /// Returns [`ImgError::Dimensions`] when a side is zero or the byte
    /// count would overflow `usize`.
    pub fn new(width: u32, height: u32) -> Result<Self> {
        Self::filled(width, height, P::default())
    }

    /// Create an image with every pixel set to `fill`.
    pub fn filled(width: u32, height: u32, fill: P) -> Result<Self> {
        let len = Self::byte_len(width, height)?;
        let mut data = vec![0u8; len];
        let mut chunk = vec![0u8; P::CHANNELS];
        fill.write_to(&mut chunk);
        for px in data.chunks_exact_mut(P::CHANNELS) {
            px.copy_from_slice(&chunk);
        }
        Ok(Image { width, height, data, _marker: std::marker::PhantomData })
    }

    /// Wrap an existing packed buffer. The buffer must hold exactly
    /// `width * height * CHANNELS` bytes.
    pub fn from_raw(width: u32, height: u32, data: Vec<u8>) -> Result<Self> {
        let len = Self::byte_len(width, height)?;
        if data.len() != len {
            return Err(ImgError::Dimensions(format!(
                "raw buffer holds {} bytes but {width}x{height}x{} needs {len}",
                data.len(),
                P::CHANNELS
            )));
        }
        Ok(Image { width, height, data, _marker: std::marker::PhantomData })
    }

    /// Build an image by evaluating `f(x, y)` for every pixel.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> P) -> Result<Self> {
        let mut img = Self::new(width, height)?;
        for y in 0..height {
            for x in 0..width {
                img.put(x, y, f(x, y));
            }
        }
        Ok(img)
    }

    fn byte_len(width: u32, height: u32) -> Result<usize> {
        if width == 0 || height == 0 {
            return Err(ImgError::Dimensions(format!("zero-sized image {width}x{height}")));
        }
        (width as usize)
            .checked_mul(height as usize)
            .and_then(|n| n.checked_mul(P::CHANNELS))
            .ok_or_else(|| ImgError::Dimensions(format!("{width}x{height} overflows")))
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// `(width, height)` pair.
    #[inline]
    pub fn dimensions(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// Total number of pixels.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Borrow the packed channel buffer.
    #[inline]
    pub fn as_raw(&self) -> &[u8] {
        &self.data
    }

    /// Consume the image, returning the packed channel buffer.
    pub fn into_raw(self) -> Vec<u8> {
        self.data
    }

    #[inline]
    fn offset(&self, x: u32, y: u32) -> usize {
        (y as usize * self.width as usize + x as usize) * P::CHANNELS
    }

    /// True when `(x, y)` lies inside the raster.
    #[inline]
    pub fn in_bounds(&self, x: u32, y: u32) -> bool {
        x < self.width && y < self.height
    }

    /// Read the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics when out of bounds; use [`Image::get_checked`] for a fallible
    /// variant.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> P {
        assert!(self.in_bounds(x, y), "pixel ({x},{y}) out of bounds for {}x{}", self.width, self.height);
        let o = self.offset(x, y);
        P::from_slice(&self.data[o..o + P::CHANNELS])
    }

    /// Fallible pixel read.
    pub fn get_checked(&self, x: u32, y: u32) -> Result<P> {
        if !self.in_bounds(x, y) {
            return Err(ImgError::OutOfBounds { x, y, width: self.width, height: self.height });
        }
        Ok(self.get(x, y))
    }

    /// Read the pixel at `(x, y)`, clamping coordinates to the raster edge.
    /// Useful for kernel operations near borders.
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> P {
        let cx = x.clamp(0, self.width as i64 - 1) as u32;
        let cy = y.clamp(0, self.height as i64 - 1) as u32;
        self.get(cx, cy)
    }

    /// Write the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    #[inline]
    pub fn put(&mut self, x: u32, y: u32, p: P) {
        assert!(self.in_bounds(x, y), "pixel ({x},{y}) out of bounds for {}x{}", self.width, self.height);
        let o = self.offset(x, y);
        p.write_to(&mut self.data[o..o + P::CHANNELS]);
    }

    /// Fallible pixel write.
    pub fn put_checked(&mut self, x: u32, y: u32, p: P) -> Result<()> {
        if !self.in_bounds(x, y) {
            return Err(ImgError::OutOfBounds { x, y, width: self.width, height: self.height });
        }
        self.put(x, y, p);
        Ok(())
    }

    /// Iterate pixels in row-major order together with their coordinates.
    pub fn enumerate_pixels(&self) -> impl Iterator<Item = (u32, u32, P)> + '_ {
        let w = self.width;
        self.data
            .chunks_exact(P::CHANNELS)
            .enumerate()
            .map(move |(i, c)| ((i as u32) % w, (i as u32) / w, P::from_slice(c)))
    }

    /// Iterate pixel values in row-major order.
    pub fn pixels(&self) -> impl Iterator<Item = P> + '_ {
        self.data.chunks_exact(P::CHANNELS).map(P::from_slice)
    }

    /// Apply `f` to every pixel in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(P) -> P) {
        for chunk in self.data.chunks_exact_mut(P::CHANNELS) {
            let p = f(P::from_slice(chunk));
            p.write_to(chunk);
        }
    }
}

impl RgbImage {
    /// Convert to grayscale with the paper's luma weights.
    pub fn to_gray(&self) -> GrayImage {
        let mut out = GrayImage::new(self.width, self.height).expect("same nonzero dims");
        for (i, chunk) in self.data.chunks_exact(3).enumerate() {
            out.data[i] = crate::color::luma_u8(chunk[0], chunk[1], chunk[2]);
        }
        out
    }
}

impl GrayImage {
    /// Expand to RGB by replicating the intensity into each channel.
    pub fn to_rgb(&self) -> RgbImage {
        let mut out = RgbImage::new(self.width, self.height).expect("same nonzero dims");
        for (i, &v) in self.data.iter().enumerate() {
            out.data[i * 3] = v;
            out.data[i * 3 + 1] = v;
            out.data[i * 3 + 2] = v;
        }
        out
    }

    /// Mean absolute pixel difference against another image of identical
    /// dimensions. This is the "difference between ri1 & ri2" primitive the
    /// key-frame extractor thresholds (§4.1).
    pub fn mean_abs_diff(&self, other: &GrayImage) -> Result<f64> {
        if self.dimensions() != other.dimensions() {
            return Err(ImgError::Dimensions(format!(
                "size mismatch: {}x{} vs {}x{}",
                self.width, self.height, other.width, other.height
            )));
        }
        let sum: u64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a as i64 - b as i64).unsigned_abs())
            .sum();
        Ok(sum as f64 / self.pixel_count() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let img = RgbImage::new(4, 3).unwrap();
        assert_eq!(img.dimensions(), (4, 3));
        assert!(img.pixels().all(|p| p == Rgb::BLACK));
        assert_eq!(img.as_raw().len(), 4 * 3 * 3);
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(RgbImage::new(0, 5).is_err());
        assert!(GrayImage::new(5, 0).is_err());
    }

    #[test]
    fn from_raw_validates_length() {
        assert!(RgbImage::from_raw(2, 2, vec![0; 12]).is_ok());
        assert!(RgbImage::from_raw(2, 2, vec![0; 11]).is_err());
        assert!(GrayImage::from_raw(2, 2, vec![0; 4]).is_ok());
    }

    #[test]
    fn put_get_round_trip() {
        let mut img = RgbImage::new(3, 3).unwrap();
        img.put(1, 2, Rgb::new(9, 8, 7));
        assert_eq!(img.get(1, 2), Rgb::new(9, 8, 7));
        assert_eq!(img.get(0, 0), Rgb::BLACK);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let img = RgbImage::new(2, 2).unwrap();
        let _ = img.get(2, 0);
    }

    #[test]
    fn checked_access_errors_instead_of_panicking() {
        let mut img = GrayImage::new(2, 2).unwrap();
        assert!(img.get_checked(5, 5).is_err());
        assert!(img.put_checked(5, 5, Gray(1)).is_err());
        assert!(img.put_checked(1, 1, Gray(77)).is_ok());
        assert_eq!(img.get_checked(1, 1).unwrap(), Gray(77));
    }

    #[test]
    fn clamped_reads_edge() {
        let mut img = GrayImage::new(2, 2).unwrap();
        img.put(0, 0, Gray(10));
        img.put(1, 1, Gray(20));
        assert_eq!(img.get_clamped(-5, -5), Gray(10));
        assert_eq!(img.get_clamped(10, 10), Gray(20));
    }

    #[test]
    fn from_fn_coordinates() {
        let img = GrayImage::from_fn(3, 2, |x, y| Gray((x + 10 * y) as u8)).unwrap();
        assert_eq!(img.get(2, 1), Gray(12));
        assert_eq!(img.get(0, 0), Gray(0));
    }

    #[test]
    fn enumerate_pixels_row_major() {
        let img = GrayImage::from_fn(2, 2, |x, y| Gray((x + 2 * y) as u8)).unwrap();
        let v: Vec<_> = img.enumerate_pixels().collect();
        assert_eq!(v, vec![(0, 0, Gray(0)), (1, 0, Gray(1)), (0, 1, Gray(2)), (1, 1, Gray(3))]);
    }

    #[test]
    fn gray_rgb_round_trips_for_gray_content() {
        let g = GrayImage::from_fn(4, 4, |x, y| Gray((x * y) as u8 * 10)).unwrap();
        assert_eq!(g.to_rgb().to_gray(), g);
    }

    #[test]
    fn mean_abs_diff_basics() {
        let a = GrayImage::filled(4, 4, Gray(10)).unwrap();
        let b = GrayImage::filled(4, 4, Gray(14)).unwrap();
        assert_eq!(a.mean_abs_diff(&b).unwrap(), 4.0);
        assert_eq!(a.mean_abs_diff(&a).unwrap(), 0.0);
        let c = GrayImage::new(3, 4).unwrap();
        assert!(a.mean_abs_diff(&c).is_err());
    }

    #[test]
    fn map_in_place_applies() {
        let mut img = GrayImage::filled(2, 2, Gray(100)).unwrap();
        img.map_in_place(|p| Gray(p.0 / 2));
        assert!(img.pixels().all(|p| p == Gray(50)));
    }

    #[test]
    fn raw_round_trip_preserves_content() {
        let img = GrayImage::from_fn(3, 3, |x, y| Gray((x * 3 + y) as u8)).unwrap();
        let (w, h) = img.dimensions();
        let back = GrayImage::from_raw(w, h, img.clone().into_raw()).unwrap();
        assert_eq!(back, img);
    }
}
