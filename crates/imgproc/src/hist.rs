//! 256-bin intensity histograms.
//!
//! The range-finder index (§4.2) and the simple color histogram (§4.5) both
//! start from a 256-bin tabulation of pixel intensities. [`Histogram256`]
//! is that tabulation plus the statistics the index thresholds need.

use crate::image::{GrayImage, RgbImage};
use crate::pixel::Pixel;

/// A 256-bin histogram of 8-bit intensities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram256 {
    bins: Vec<u64>,
}

impl Default for Histogram256 {
    fn default() -> Self {
        Histogram256 { bins: vec![0; 256] }
    }
}

impl Histogram256 {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Histogram of a grayscale image.
    pub fn of_gray(img: &GrayImage) -> Self {
        let mut h = Self::new();
        for p in img.pixels() {
            h.bins[p.0 as usize] += 1;
        }
        h
    }

    /// Histogram of the luminance of an RGB image (the paper histograms the
    /// "pixel count" of the frame after gray conversion for indexing).
    pub fn of_rgb_luma(img: &RgbImage) -> Self {
        let mut h = Self::new();
        for p in img.pixels() {
            h.bins[p.luma() as usize] += 1;
        }
        h
    }

    /// Count in one bin.
    #[inline]
    pub fn bin(&self, i: u8) -> u64 {
        self.bins[i as usize]
    }

    /// Add one observation.
    #[inline]
    pub fn record(&mut self, intensity: u8) {
        self.bins[intensity as usize] += 1;
    }

    /// Borrow all 256 bins.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Sum of counts over the inclusive bin range `lo..=hi`.
    pub fn mass(&self, lo: u8, hi: u8) -> u64 {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        self.bins[lo as usize..=hi as usize].iter().sum()
    }

    /// Fraction of total mass in `lo..=hi`; 0 when the histogram is empty.
    pub fn mass_fraction(&self, lo: u8, hi: u8) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.mass(lo, hi) as f64 / total as f64
        }
    }

    /// Mean intensity; 0 when empty.
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self.bins.iter().enumerate().map(|(i, &c)| i as u64 * c).sum();
        weighted as f64 / total as f64
    }

    /// Normalised bins (probability mass function). All zeros when empty.
    pub fn pmf(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; 256];
        }
        self.bins.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// Histogram-intersection similarity with another histogram, in
    /// `[0, 1]` after per-histogram normalisation.
    pub fn intersection(&self, other: &Histogram256) -> f64 {
        let pa = self.pmf();
        let pb = other.pmf();
        pa.iter().zip(&pb).map(|(a, b)| a.min(*b)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::{Gray, Rgb};

    #[test]
    fn gray_histogram_counts() {
        let img = GrayImage::from_fn(4, 1, |x, _| Gray(if x < 3 { 10 } else { 200 })).unwrap();
        let h = Histogram256::of_gray(&img);
        assert_eq!(h.bin(10), 3);
        assert_eq!(h.bin(200), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn rgb_luma_histogram() {
        let img = RgbImage::filled(2, 2, Rgb::new(0, 255, 0)).unwrap();
        let h = Histogram256::of_rgb_luma(&img);
        assert_eq!(h.bin(150), 4);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn mass_ranges() {
        let mut h = Histogram256::new();
        for v in [0u8, 10, 20, 127, 128, 255] {
            h.record(v);
        }
        assert_eq!(h.mass(0, 127), 4);
        assert_eq!(h.mass(128, 255), 2);
        assert_eq!(h.mass(0, 255), 6);
        // Reversed bounds are normalised.
        assert_eq!(h.mass(127, 0), 4);
        assert!((h.mass_fraction(0, 127) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_statistics() {
        let h = Histogram256::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.mass_fraction(0, 255), 0.0);
        assert!(h.pmf().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn mean_of_uniform_pair() {
        let mut h = Histogram256::new();
        h.record(0);
        h.record(100);
        assert_eq!(h.mean(), 50.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        let img = GrayImage::from_fn(16, 16, |x, y| Gray((x * y) as u8)).unwrap();
        let h = Histogram256::of_gray(&img);
        let sum: f64 = h.pmf().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn intersection_bounds() {
        let a = Histogram256::of_gray(&GrayImage::filled(4, 4, Gray(10)).unwrap());
        let b = Histogram256::of_gray(&GrayImage::filled(4, 4, Gray(200)).unwrap());
        assert_eq!(a.intersection(&a), 1.0);
        assert_eq!(a.intersection(&b), 0.0);
        let half = GrayImage::from_fn(4, 4, |x, _| Gray(if x < 2 { 10 } else { 200 })).unwrap();
        let c = Histogram256::of_gray(&half);
        assert!((a.intersection(&c) - 0.5).abs() < 1e-12);
    }
}
