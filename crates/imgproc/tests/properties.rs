//! Property-based tests for the image substrate.

use cbvr_imgproc::codec::{bmp, pgm, ppm};
use cbvr_imgproc::geom::{self, Interpolation};
use cbvr_imgproc::hist::Histogram256;
use cbvr_imgproc::morph::{self, StructuringElement};
use cbvr_imgproc::threshold;
use cbvr_imgproc::{rgb_to_hsv, GrayImage, Gray, Rgb, RgbImage};
use proptest::prelude::*;

fn arb_rgb_image(max_side: u32) -> impl Strategy<Value = RgbImage> {
    (1..=max_side, 1..=max_side)
        .prop_flat_map(|(w, h)| {
            let len = (w * h * 3) as usize;
            (Just(w), Just(h), proptest::collection::vec(any::<u8>(), len))
        })
        .prop_map(|(w, h, data)| RgbImage::from_raw(w, h, data).expect("exact length"))
}

fn arb_gray_image(max_side: u32) -> impl Strategy<Value = GrayImage> {
    (1..=max_side, 1..=max_side)
        .prop_flat_map(|(w, h)| {
            let len = (w * h) as usize;
            (Just(w), Just(h), proptest::collection::vec(any::<u8>(), len))
        })
        .prop_map(|(w, h, data)| GrayImage::from_raw(w, h, data).expect("exact length"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ppm_round_trip(img in arb_rgb_image(24)) {
        let encoded = ppm::encode(&img);
        let decoded = ppm::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, img);
    }

    #[test]
    fn bmp_round_trip(img in arb_rgb_image(24)) {
        let encoded = bmp::encode(&img);
        let decoded = bmp::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, img);
    }

    #[test]
    fn pgm_round_trip(img in arb_gray_image(24)) {
        let encoded = pgm::encode(&img);
        let decoded = pgm::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, img);
    }

    #[test]
    fn histogram_mass_equals_pixel_count(img in arb_gray_image(24)) {
        let h = Histogram256::of_gray(&img);
        prop_assert_eq!(h.total(), img.pixel_count() as u64);
        prop_assert_eq!(h.mass(0, 255), h.total());
    }

    #[test]
    fn histogram_halves_partition(img in arb_gray_image(24)) {
        let h = Histogram256::of_gray(&img);
        prop_assert_eq!(h.mass(0, 127) + h.mass(128, 255), h.total());
    }

    #[test]
    fn resize_never_panics_and_has_target_dims(
        img in arb_rgb_image(16),
        w in 1u32..40,
        h in 1u32..40,
    ) {
        let out = geom::resize_rgb(&img, w, h, Interpolation::Nearest).unwrap();
        prop_assert_eq!(out.dimensions(), (w, h));
        let out2 = geom::resize_rgb(&img, w, h, Interpolation::Bilinear).unwrap();
        prop_assert_eq!(out2.dimensions(), (w, h));
    }

    #[test]
    fn flip_is_involution(img in arb_gray_image(16)) {
        prop_assert_eq!(geom::flip_horizontal(&geom::flip_horizontal(&img)), img.clone());
        prop_assert_eq!(geom::flip_vertical(&geom::flip_vertical(&img)), img);
    }

    #[test]
    fn dilation_is_extensive_erosion_antiextensive(img in arb_gray_image(12)) {
        // Binarise first so morphology sees a clean mask.
        let bin = threshold::binarize(&img, 127);
        let se = StructuringElement::box3();
        let dilated = morph::dilate(&bin, &se);
        let eroded = morph::erode(&bin, &se);
        for ((_, _, orig), ((_, _, dil), (_, _, ero))) in bin
            .enumerate_pixels()
            .zip(dilated.enumerate_pixels().zip(eroded.enumerate_pixels()))
        {
            // fg ⊆ dilate(fg), erode(fg) ⊆ fg
            if orig.0 != 0 {
                prop_assert_eq!(dil.0, 255);
            }
            if ero.0 != 0 {
                prop_assert_eq!(orig.0, 255);
            }
        }
    }

    #[test]
    fn closing_is_idempotent(img in arb_gray_image(10)) {
        let bin = threshold::binarize(&img, 127);
        let se = StructuringElement::box3();
        let once = morph::close(&bin, &se);
        let twice = morph::close(&once, &se);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn hsv_hue_in_range(r in any::<u8>(), g in any::<u8>(), b in any::<u8>()) {
        let (h, s, v) = rgb_to_hsv(Rgb::new(r, g, b));
        prop_assert!(h < 360);
        let _ = (s, v); // s, v are u8 — always in range
    }

    #[test]
    fn luma_is_bounded_by_channel_extremes(r in any::<u8>(), g in any::<u8>(), b in any::<u8>()) {
        let l = cbvr_imgproc::luma_u8(r, g, b);
        let lo = r.min(g).min(b);
        let hi = r.max(g).max(b);
        prop_assert!(l >= lo && l <= hi, "luma {l} outside [{lo},{hi}]");
    }

    #[test]
    fn mean_abs_diff_is_metric_like(a in arb_gray_image(10)) {
        prop_assert_eq!(a.mean_abs_diff(&a).unwrap(), 0.0);
    }

    #[test]
    fn otsu_and_fuzzy_thresholds_within_observed_range(img in arb_gray_image(16)) {
        let h = Histogram256::of_gray(&img);
        let lo = img.pixels().map(|p| p.0).min().unwrap();
        let hi = img.pixels().map(|p| p.0).max().unwrap();
        let t1 = threshold::otsu_threshold(&h);
        let t2 = threshold::min_fuzziness_threshold(&h);
        prop_assert!(t1 >= lo && t1 <= hi);
        prop_assert!(t2 >= lo && t2 <= hi);
    }

    #[test]
    fn crop_contains_source_pixels(img in arb_gray_image(12), sx in 0u32..6, sy in 0u32..6) {
        let (w, h) = img.dimensions();
        if sx < w && sy < h {
            let cw = w - sx;
            let ch = h - sy;
            let c = geom::crop(&img, sx, sy, cw, ch).unwrap();
            prop_assert_eq!(c.get(0, 0), img.get(sx, sy));
            prop_assert_eq!(c.get(cw - 1, ch - 1), img.get(w - 1, h - 1));
        }
    }

    #[test]
    fn binarize_output_is_binary(img in arb_gray_image(12), t in any::<u8>()) {
        let b = threshold::binarize(&img, t);
        prop_assert!(b.pixels().all(|p| p == Gray(0) || p == Gray(255)));
    }
}
