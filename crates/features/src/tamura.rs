//! Tamura texture features.
//!
//! The paper's `TAMURA VARCHAR2(500)` column and Fig. 8 output
//! (`Tamura 18 <coarseness> <contrast> <16 directionality bins>`) follow
//! Tamura/Mori/Yamawaki's three strongest features:
//!
//! - **coarseness** — per pixel, find the window size `2^k` (k = 1..=5)
//!   whose non-overlapping mean difference is largest; coarseness is the
//!   mean of the winning sizes (large = coarse texture);
//! - **contrast** — `σ / κ^{1/4}` where `κ = μ₄/σ⁴` is the kurtosis of the
//!   gray distribution (Tamura's polarisation-corrected spread);
//! - **directionality** — a 16-bin histogram of gradient orientations over
//!   pixels whose Prewitt gradient magnitude exceeds a threshold.
//!
//! Magnitude note: Fig. 8 reports coarseness ≈ 14620 because the Java
//! implementation sums (not averages) the winning window sizes; we store
//! the per-pixel *mean* so values are image-size independent. DESIGN.md
//! records this normalisation difference — rankings are unaffected.

use crate::error::{FeatureError, Result};
use cbvr_imgproc::{GrayImage, RgbImage};

/// Directionality histogram bins.
pub const DIR_BINS: usize = 16;
/// Total serialized values: coarseness + contrast + 16 bins.
pub const DIM: usize = 2 + DIR_BINS;
/// Maximum window exponent for coarseness (windows up to 2^5 = 32 px).
const MAX_K: u32 = 5;
/// Prewitt gradient magnitude threshold for directionality voting.
const DIR_THRESHOLD: f64 = 12.0;

/// The Tamura descriptor.
#[derive(Clone, Debug, PartialEq)]
pub struct TamuraTexture {
    /// Mean winning window size, in `[2, 2^MAX_K]` (0 for degenerate images).
    pub coarseness: f64,
    /// Polarisation-corrected gray-level spread.
    pub contrast: f64,
    /// Raw directionality votes per orientation bin.
    pub directionality: Vec<f64>,
}

/// Summed-area table for O(1) window means.
struct Integral {
    w: usize,
    data: Vec<u64>,
}

impl Integral {
    fn new(img: &GrayImage) -> Integral {
        let (w, h) = (img.width() as usize, img.height() as usize);
        let mut data = vec![0u64; (w + 1) * (h + 1)];
        for y in 0..h {
            for x in 0..w {
                let v = img.get(x as u32, y as u32).0 as u64;
                data[(y + 1) * (w + 1) + (x + 1)] =
                    v + data[y * (w + 1) + (x + 1)] + data[(y + 1) * (w + 1) + x] - data[y * (w + 1) + x];
            }
        }
        Integral { w: w + 1, data }
    }

    /// Sum over the half-open rectangle `[x0, x1) × [y0, y1)`.
    fn sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> u64 {
        self.data[y1 * self.w + x1] + self.data[y0 * self.w + x0]
            - self.data[y0 * self.w + x1]
            - self.data[y1 * self.w + x0]
    }
}

impl TamuraTexture {
    /// Extract from an RGB frame.
    pub fn extract(img: &RgbImage) -> TamuraTexture {
        Self::extract_gray(&img.to_gray())
    }

    /// Extract from a gray image.
    pub fn extract_gray(gray: &GrayImage) -> TamuraTexture {
        TamuraTexture {
            coarseness: coarseness(gray),
            contrast: contrast(gray),
            directionality: directionality(gray),
        }
    }

    /// Normalised 18-vector for distance computation: coarseness mapped to
    /// `[0,1]` by its max window, contrast squashed, directionality as a
    /// probability mass function.
    pub fn normalized_vector(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(DIM);
        v.push(self.coarseness / (1u64 << MAX_K) as f64);
        v.push(self.contrast / (self.contrast + 50.0)); // soft squash to [0,1)
        let total: f64 = self.directionality.iter().sum();
        for &d in &self.directionality {
            v.push(if total > 0.0 { d / total } else { 0.0 });
        }
        v
    }

    /// Native distance: Euclidean on the normalised vector.
    pub fn distance(&self, other: &TamuraTexture) -> f64 {
        crate::distance::l2(&self.normalized_vector(), &other.normalized_vector())
    }

    /// Feature string: `Tamura 18 <coarseness> <contrast> <16 bins>`.
    pub fn to_feature_string(&self) -> String {
        let mut s = format!("Tamura {DIM} {} {}", self.coarseness, self.contrast);
        for d in &self.directionality {
            s.push(' ');
            s.push_str(&format!("{d}"));
        }
        s
    }

    /// Parse the feature string back.
    pub fn parse(s: &str) -> Result<TamuraTexture> {
        let mut t = s.split_whitespace();
        if t.next() != Some("Tamura") {
            return Err(FeatureError::Parse("expected 'Tamura' header".into()));
        }
        let dim: usize = t
            .next()
            .ok_or_else(|| FeatureError::Parse("missing dimension".into()))?
            .parse()
            .map_err(|e| FeatureError::Parse(format!("bad dimension: {e}")))?;
        if dim != DIM {
            return Err(FeatureError::Parse(format!("expected dim {DIM}, got {dim}")));
        }
        let values: std::result::Result<Vec<f64>, _> = t.map(str::parse).collect();
        let values = values.map_err(|e| FeatureError::Parse(format!("bad value: {e}")))?;
        if values.len() != DIM {
            return Err(FeatureError::Parse(format!("expected {DIM} values, got {}", values.len())));
        }
        Ok(TamuraTexture {
            coarseness: values[0],
            contrast: values[1],
            directionality: values[2..].to_vec(),
        })
    }
}

/// Per-pixel best window size, averaged (Tamura F_crs).
fn coarseness(gray: &GrayImage) -> f64 {
    let (w, h) = (gray.width() as usize, gray.height() as usize);
    if w < 4 || h < 4 {
        return 0.0;
    }
    let integral = Integral::new(gray);
    let mean_at = |x: i64, y: i64, half: i64| -> f64 {
        // Window of side 2*half centred near (x, y), clamped to the raster.
        let x0 = (x - half).clamp(0, w as i64) as usize;
        let y0 = (y - half).clamp(0, h as i64) as usize;
        let x1 = (x + half).clamp(0, w as i64) as usize;
        let y1 = (y + half).clamp(0, h as i64) as usize;
        let area = ((x1 - x0) * (y1 - y0)) as f64;
        if area == 0.0 {
            0.0
        } else {
            integral.sum(x0, y0, x1, y1) as f64 / area
        }
    };

    let mut sum_best = 0.0f64;
    let n = (w * h) as f64;
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            let mut best_e = -1.0f64;
            let mut best_size = 2.0f64;
            for k in 1..=MAX_K {
                let half = 1i64 << (k - 1); // window side 2^k
                // Horizontal and vertical mean differences between
                // neighbouring non-overlapping windows.
                let eh = (mean_at(x + half, y, half) - mean_at(x - half, y, half)).abs();
                let ev = (mean_at(x, y + half, half) - mean_at(x, y - half, half)).abs();
                let e = eh.max(ev);
                if e > best_e {
                    best_e = e;
                    best_size = (1u64 << k) as f64;
                }
            }
            sum_best += best_size;
        }
    }
    sum_best / n
}

/// Tamura F_con: `σ / κ^{1/4}`.
fn contrast(gray: &GrayImage) -> f64 {
    let n = gray.pixel_count() as f64;
    let mean = gray.pixels().map(|p| p.0 as f64).sum::<f64>() / n;
    let mut m2 = 0.0;
    let mut m4 = 0.0;
    for p in gray.pixels() {
        let d = p.0 as f64 - mean;
        let d2 = d * d;
        m2 += d2;
        m4 += d2 * d2;
    }
    m2 /= n;
    m4 /= n;
    if m2 <= 0.0 {
        return 0.0;
    }
    let kurtosis = m4 / (m2 * m2);
    m2.sqrt() / kurtosis.powf(0.25)
}

/// Tamura F_dir: 16-bin orientation histogram of strong Prewitt gradients.
fn directionality(gray: &GrayImage) -> Vec<f64> {
    let (w, h) = gray.dimensions();
    let mut hist = vec![0.0f64; DIR_BINS];
    if w < 3 || h < 3 {
        return hist;
    }
    let at = |x: u32, y: u32| gray.get(x, y).0 as f64;
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            // Prewitt operators.
            let dh = (at(x + 1, y - 1) + at(x + 1, y) + at(x + 1, y + 1))
                - (at(x - 1, y - 1) + at(x - 1, y) + at(x - 1, y + 1));
            let dv = (at(x - 1, y + 1) + at(x, y + 1) + at(x + 1, y + 1))
                - (at(x - 1, y - 1) + at(x, y - 1) + at(x + 1, y - 1));
            let magnitude = (dh.abs() + dv.abs()) / 2.0;
            if magnitude < DIR_THRESHOLD {
                continue;
            }
            // Orientation folded into [0, π).
            let mut theta = dv.atan2(dh) + std::f64::consts::FRAC_PI_2;
            if theta < 0.0 {
                theta += std::f64::consts::PI;
            }
            if theta >= std::f64::consts::PI {
                theta -= std::f64::consts::PI;
            }
            let bin = ((theta / std::f64::consts::PI) * DIR_BINS as f64) as usize;
            hist[bin.min(DIR_BINS - 1)] += 1.0;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_imgproc::{Gray, Rgb};

    fn gray(w: u32, h: u32, f: impl Fn(u32, u32) -> u8) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| Gray(f(x, y))).unwrap()
    }

    #[test]
    fn coarse_texture_scores_higher_than_fine() {
        // 16-px blocks vs 2-px blocks of the same two intensities.
        let coarse = gray(64, 64, |x, y| if ((x / 16) + (y / 16)) % 2 == 0 { 0 } else { 255 });
        let fine = gray(64, 64, |x, y| if ((x / 2) + (y / 2)) % 2 == 0 { 0 } else { 255 });
        let tc = TamuraTexture::extract_gray(&coarse);
        let tf = TamuraTexture::extract_gray(&fine);
        assert!(
            tc.coarseness > tf.coarseness,
            "coarse {} should beat fine {}",
            tc.coarseness,
            tf.coarseness
        );
    }

    #[test]
    fn contrast_orders_spread() {
        let low = gray(32, 32, |x, _| 120 + (x % 4) as u8);
        let high = gray(32, 32, |x, _| if x % 2 == 0 { 0 } else { 255 });
        let tl = TamuraTexture::extract_gray(&low);
        let th = TamuraTexture::extract_gray(&high);
        assert!(th.contrast > tl.contrast * 2.0, "high {} low {}", th.contrast, tl.contrast);
    }

    #[test]
    fn flat_image_has_zero_contrast_and_no_directions() {
        let t = TamuraTexture::extract_gray(&gray(32, 32, |_, _| 200));
        assert_eq!(t.contrast, 0.0);
        assert!(t.directionality.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn directionality_peaks_for_oriented_stripes() {
        // Vertical stripes → gradients along x → one dominant orientation.
        let v = TamuraTexture::extract_gray(&gray(64, 64, |x, _| if (x / 4) % 2 == 0 { 0 } else { 255 }));
        let total: f64 = v.directionality.iter().sum();
        let max = v.directionality.iter().cloned().fold(0.0, f64::max);
        assert!(total > 0.0);
        assert!(max / total > 0.6, "dominant bin should hold most votes: {:?}", v.directionality);

        // Horizontal stripes peak in a different bin.
        let himg = TamuraTexture::extract_gray(&gray(64, 64, |_, y| if (y / 4) % 2 == 0 { 0 } else { 255 }));
        let argmax = |d: &[f64]| {
            d.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0
        };
        assert_ne!(argmax(&v.directionality), argmax(&himg.directionality));
    }

    #[test]
    fn distance_properties() {
        let a = TamuraTexture::extract(&RgbImage::filled(32, 32, Rgb::new(100, 100, 100)).unwrap());
        let img = RgbImage::from_fn(32, 32, |x, _| {
            if x % 2 == 0 { Rgb::new(0, 0, 0) } else { Rgb::new(255, 255, 255) }
        })
        .unwrap();
        let b = TamuraTexture::extract(&img);
        assert_eq!(a.distance(&a), 0.0);
        assert!(a.distance(&b) > 0.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn feature_string_round_trip() {
        let img = RgbImage::from_fn(32, 32, |x, y| Rgb::new((x * 8) as u8, (y * 8) as u8, 0)).unwrap();
        let t = TamuraTexture::extract(&img);
        let s = t.to_feature_string();
        assert!(s.starts_with("Tamura 18 "));
        let back = TamuraTexture::parse(&s).unwrap();
        assert!((back.coarseness - t.coarseness).abs() < 1e-12);
        assert!((back.contrast - t.contrast).abs() < 1e-12);
        assert_eq!(back.directionality.len(), DIR_BINS);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(TamuraTexture::parse("tamura 18 1 2").is_err()); // case-sensitive header
        assert!(TamuraTexture::parse("Tamura 17 1").is_err());
        assert!(TamuraTexture::parse("Tamura 18 1 2 3").is_err()); // too few
    }

    #[test]
    fn tiny_images_do_not_panic() {
        let t = TamuraTexture::extract_gray(&gray(2, 2, |_, _| 9));
        assert_eq!(t.coarseness, 0.0);
        assert!(t.directionality.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn normalized_vector_is_bounded() {
        let img = RgbImage::from_fn(48, 48, |x, y| Rgb::new((x * y) as u8, x as u8, y as u8)).unwrap();
        let t = TamuraTexture::extract(&img);
        for v in t.normalized_vector() {
            assert!((0.0..=1.0).contains(&v), "component {v} out of range");
        }
    }
}
