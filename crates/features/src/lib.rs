//! # cbvr-features — the seven visual descriptors of the paper
//!
//! Implements every feature extractor of Patel & Meshram (IJMA 2012) §4:
//!
//! - [`histogram::ColorHistogram`] — Simple Color Histogram (§4.5),
//!   256-bin quantised RGB;
//! - [`glcm::GlcmTexture`] — Gray Level Co-occurrence Matrix texture
//!   (§4.3): ASM, contrast, correlation, inverse difference moment,
//!   entropy;
//! - [`gabor::GaborTexture`] — Gabor wavelet texture (§4.4): mean and
//!   variance of filter-bank magnitudes, 5 scales × 6 orientations
//!   (60 values, matching the paper's Fig. 8 output);
//! - [`tamura::TamuraTexture`] — Tamura texture (coarseness, contrast,
//!   16-bin directionality histogram; 18 values as in Fig. 8);
//! - [`correlogram::AutoColorCorrelogram`] — HSV-quantised color
//!   autocorrelogram over distances 1..=4 (§4.7);
//! - [`naive::NaiveSignature`] — the "superficial (naive) similarity"
//!   25-point mean-color signature (§4.6);
//! - [`region::RegionGrowing`] — stack-based region growing segmentation
//!   (§4.8): region / hole / major-region counts.
//!
//! Every descriptor supports:
//!
//! - `extract(&RgbImage)` — compute from a frame;
//! - `distance(&other)` — the feature's native dissimilarity;
//! - `to_feature_string()` / `parse()` — the exact textual serialisation
//!   the paper stores in Oracle `VARCHAR2` columns (`SCH`, `GLCM`,
//!   `GABOR`, `TAMURA`; Fig. 8 shows the formats), round-trippable.
//!
//! [`descriptor::Descriptor`] unifies them for the pipeline, and
//! [`extract::FeatureSet`] bundles one of each per key frame.
//!
//! Two *extension* descriptors implement the paper's §6 future work
//! ("integrating more features") without disturbing the seven-feature
//! set: [`edge::EdgeHistogram`] (MPEG-7-style shape) and
//! [`motion::MotionActivity`] (clip-level motion statistics).
#![warn(missing_docs)]


pub mod correlogram;
pub mod descriptor;
pub mod edge;
pub mod distance;
pub mod error;
pub mod extract;
pub mod gabor;
pub mod glcm;
pub mod histogram;
pub mod motion;
pub mod naive;
pub mod region;
pub mod tamura;

pub use descriptor::{Descriptor, DescriptorRef, FeatureKind};
pub use error::{FeatureError, Result};
pub use extract::FeatureSet;
