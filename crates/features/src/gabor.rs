//! Gabor wavelet texture (§4.4).
//!
//! The paper computes, per scale `m` and orientation `n`, the mean and the
//! variance-derived spread of the complex Gabor response magnitudes over
//! the gray-level raster, producing `M × N × 2` values. Its Fig. 8 output
//! begins `gabor 60 ...` — sixty values — fixing `M = 5` scales and
//! `N = 6` orientations, which is what we use.
//!
//! Implementation notes (standard spatial-domain filter bank):
//!
//! - frequencies follow a geometric ladder `f_m = F_MAX / √2^m` with
//!   `F_MAX = 0.4` cycles/pixel (the Manjunath–Ma upper band);
//! - orientations are `θ_n = nπ/N`;
//! - each filter is an odd-sided complex kernel with Gaussian envelope
//!   `σ = 0.56 / f` (bandwidth ≈ 1 octave), radius `⌈2σ⌉` capped at 10;
//! - the image is first resized so its longer side is at most
//!   [`GABOR_MAX_SIDE`] (extraction cost is quadratic in side length and
//!   texture statistics are scale-normalised anyway);
//! - per filter we record `mean(|response|)` and `std(|response|)`,
//!   both divided by the pixel count exactly as the pseudocode divides by
//!   `imageSize`, keeping values comparable across image sizes.
//!
//! Feature string (`GABOR VARCHAR2(1500)` column): `gabor 60 v0 ... v59`.

use crate::error::{FeatureError, Result};
use cbvr_imgproc::geom::{self, Interpolation};
use cbvr_imgproc::{GrayImage, RgbImage};

/// Number of scales (M).
pub const SCALES: usize = 5;
/// Number of orientations (N).
pub const ORIENTATIONS: usize = 6;
/// Feature dimensionality: mean + std per filter.
pub const DIM: usize = SCALES * ORIENTATIONS * 2;
/// Longest image side fed to the filter bank.
pub const GABOR_MAX_SIDE: u32 = 64;

const F_MAX: f64 = 0.4;

/// One complex Gabor kernel (separately stored real/imaginary taps).
struct GaborKernel {
    radius: i64,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl GaborKernel {
    fn new(frequency: f64, theta: f64) -> GaborKernel {
        let sigma = 0.56 / frequency;
        let radius = (2.0 * sigma).ceil().min(10.0) as i64;
        let side = (2 * radius + 1) as usize;
        let mut re = Vec::with_capacity(side * side);
        let mut im = Vec::with_capacity(side * side);
        let (sin_t, cos_t) = theta.sin_cos();
        let two_sigma2 = 2.0 * sigma * sigma;
        let omega = 2.0 * std::f64::consts::PI * frequency;
        for dy in -radius..=radius {
            for dx in -radius..=radius {
                let xr = dx as f64 * cos_t + dy as f64 * sin_t;
                let yr = -(dx as f64) * sin_t + dy as f64 * cos_t;
                let envelope = (-(xr * xr + yr * yr) / two_sigma2).exp();
                let phase = omega * xr;
                re.push(envelope * phase.cos());
                im.push(envelope * phase.sin());
            }
        }
        // Zero the DC component of the real part so flat regions respond 0
        // (standard practice; otherwise brightness leaks into texture).
        let mean = re.iter().sum::<f64>() / re.len() as f64;
        for v in &mut re {
            *v -= mean;
        }
        GaborKernel { radius, re, im }
    }

    /// Mean and std of the response magnitude over the image.
    fn response_stats(&self, img: &GrayImage) -> (f64, f64) {
        let (w, h) = img.dimensions();
        let n = (w as usize) * (h as usize);
        let side = (2 * self.radius + 1) as usize;
        let mut magnitudes = Vec::with_capacity(n);
        for y in 0..h as i64 {
            for x in 0..w as i64 {
                let mut acc_re = 0.0;
                let mut acc_im = 0.0;
                let mut k = 0usize;
                for dy in -self.radius..=self.radius {
                    for dx in -self.radius..=self.radius {
                        let v = img.get_clamped(x + dx, y + dy).0 as f64;
                        acc_re += self.re[k] * v;
                        acc_im += self.im[k] * v;
                        k += 1;
                    }
                }
                debug_assert_eq!(k, side * side);
                magnitudes.push((acc_re * acc_re + acc_im * acc_im).sqrt());
            }
        }
        let mean = magnitudes.iter().sum::<f64>() / n as f64;
        let var = magnitudes.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / n as f64;
        (mean, var.sqrt())
    }
}

/// The §4.4 Gabor texture descriptor: 60 values.
#[derive(Clone, Debug, PartialEq)]
pub struct GaborTexture {
    features: Vec<f64>,
}

impl GaborTexture {
    /// Extract from an RGB frame (converted to gray, downscaled to at most
    /// [`GABOR_MAX_SIDE`] per side).
    pub fn extract(img: &RgbImage) -> GaborTexture {
        let gray = img.to_gray();
        let (w, h) = gray.dimensions();
        let long = w.max(h);
        let gray = if long > GABOR_MAX_SIDE {
            let scale = GABOR_MAX_SIDE as f64 / long as f64;
            let nw = ((w as f64 * scale).round() as u32).max(1);
            let nh = ((h as f64 * scale).round() as u32).max(1);
            geom::resize(&gray, nw, nh, Interpolation::Nearest).expect("nonzero target")
        } else {
            gray
        };
        Self::extract_gray(&gray)
    }

    /// Extract from an already-prepared gray image (no rescaling).
    pub fn extract_gray(gray: &GrayImage) -> GaborTexture {
        let mut features = Vec::with_capacity(DIM);
        for m in 0..SCALES {
            let frequency = F_MAX / 2f64.sqrt().powi(m as i32);
            for n in 0..ORIENTATIONS {
                let theta = n as f64 * std::f64::consts::PI / ORIENTATIONS as f64;
                let kernel = GaborKernel::new(frequency, theta);
                let (mean, std) = kernel.response_stats(gray);
                // The pseudocode divides both stats by imageSize; the stats
                // above are already per-pixel means, so they are directly
                // size-comparable. Scale to keep magnitudes tame.
                features.push(mean / 255.0);
                features.push(std / 255.0);
            }
        }
        GaborTexture { features }
    }

    /// The 60 feature values, ordered `(scale, orientation, mean|std)`.
    pub fn features(&self) -> &[f64] {
        &self.features
    }

    /// Mean response for `(scale m, orientation n)`.
    pub fn mean_at(&self, m: usize, n: usize) -> f64 {
        self.features[(m * ORIENTATIONS + n) * 2]
    }

    /// Response spread for `(scale m, orientation n)`.
    pub fn std_at(&self, m: usize, n: usize) -> f64 {
        self.features[(m * ORIENTATIONS + n) * 2 + 1]
    }

    /// Native distance: Euclidean over the 60-vector.
    pub fn distance(&self, other: &GaborTexture) -> f64 {
        crate::distance::l2(&self.features, &other.features)
    }

    /// Feature string: `gabor 60 v0 ... v59` (Fig. 8 format).
    pub fn to_feature_string(&self) -> String {
        let mut s = format!("gabor {DIM}");
        for v in &self.features {
            s.push(' ');
            s.push_str(&format!("{v}"));
        }
        s
    }

    /// Parse the feature string back.
    pub fn parse(s: &str) -> Result<GaborTexture> {
        let mut t = s.split_whitespace();
        if t.next() != Some("gabor") {
            return Err(FeatureError::Parse("expected 'gabor' header".into()));
        }
        let dim: usize = t
            .next()
            .ok_or_else(|| FeatureError::Parse("missing dimension".into()))?
            .parse()
            .map_err(|e| FeatureError::Parse(format!("bad dimension: {e}")))?;
        if dim != DIM {
            return Err(FeatureError::Parse(format!("expected dim {DIM}, got {dim}")));
        }
        let features: std::result::Result<Vec<f64>, _> = t.map(str::parse).collect();
        let features = features.map_err(|e| FeatureError::Parse(format!("bad value: {e}")))?;
        if features.len() != DIM {
            return Err(FeatureError::Parse(format!(
                "expected {DIM} values, got {}",
                features.len()
            )));
        }
        Ok(GaborTexture { features })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_imgproc::{Gray, Rgb};

    fn stripes(period: u32, vertical: bool) -> RgbImage {
        RgbImage::from_fn(32, 32, |x, y| {
            let c = if vertical { x } else { y };
            if (c / period).is_multiple_of(2) {
                Rgb::new(0, 0, 0)
            } else {
                Rgb::new(255, 255, 255)
            }
        })
        .unwrap()
    }

    #[test]
    fn dimensionality_is_sixty() {
        let g = GaborTexture::extract(&stripes(4, true));
        assert_eq!(g.features().len(), DIM);
        assert_eq!(DIM, 60);
    }

    #[test]
    fn flat_image_has_near_zero_response() {
        let g = GaborTexture::extract(&RgbImage::filled(32, 32, Rgb::new(128, 128, 128)).unwrap());
        // DC-free kernels: flat image responds ~0 in every band.
        for &v in g.features() {
            assert!(v.abs() < 1e-6, "flat response {v}");
        }
    }

    #[test]
    fn orientation_selectivity() {
        // Vertical stripes vary along x → strongest response at θ = 0.
        let v = GaborTexture::extract(&stripes(4, true));
        let h = GaborTexture::extract(&stripes(4, false));
        // Sum mean responses at θ=0 (n=0) vs θ=π/2 (n=3) across scales.
        let sum_at = |g: &GaborTexture, n: usize| (0..SCALES).map(|m| g.mean_at(m, n)).sum::<f64>();
        assert!(
            sum_at(&v, 0) > sum_at(&v, 3),
            "vertical stripes: θ=0 {} should beat θ=π/2 {}",
            sum_at(&v, 0),
            sum_at(&v, 3)
        );
        assert!(
            sum_at(&h, 3) > sum_at(&h, 0),
            "horizontal stripes: θ=π/2 {} should beat θ=0 {}",
            sum_at(&h, 3),
            sum_at(&h, 0)
        );
    }

    #[test]
    fn scale_selectivity() {
        // Fine stripes excite high-frequency (low m) bands more than
        // coarse stripes do.
        let fine = GaborTexture::extract(&stripes(2, true));
        let coarse = GaborTexture::extract(&stripes(8, true));
        assert!(
            fine.mean_at(0, 0) > coarse.mean_at(0, 0),
            "fine {} vs coarse {} at highest band",
            fine.mean_at(0, 0),
            coarse.mean_at(0, 0)
        );
    }

    #[test]
    fn distance_properties() {
        let a = GaborTexture::extract(&stripes(4, true));
        let b = GaborTexture::extract(&stripes(4, false));
        assert_eq!(a.distance(&a), 0.0);
        assert!(a.distance(&b) > 0.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn big_images_are_downscaled_consistently() {
        // A 200×200 version of the same pattern lands near the 64×64 one.
        let small = GaborTexture::extract(&stripes(4, true));
        let big = RgbImage::from_fn(200, 200, |x, _| {
            if (x * 32 / 200 / 4) % 2 == 0 { Rgb::new(0, 0, 0) } else { Rgb::new(255, 255, 255) }
        })
        .unwrap();
        let gb = GaborTexture::extract(&big);
        assert!(small.distance(&gb) < small.features().iter().map(|v| v * v).sum::<f64>().sqrt());
    }

    #[test]
    fn feature_string_round_trip() {
        let g = GaborTexture::extract(&stripes(3, true));
        let s = g.to_feature_string();
        assert!(s.starts_with("gabor 60 "));
        let back = GaborTexture::parse(&s).unwrap();
        for (a, b) in g.features().iter().zip(back.features()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(GaborTexture::parse("glcm 60 1 2").is_err());
        assert!(GaborTexture::parse("gabor 59 1").is_err());
        assert!(GaborTexture::parse("gabor 60 1 2 3").is_err());
        let bad = format!("gabor 60 {}", vec!["x"; 60].join(" "));
        assert!(GaborTexture::parse(&bad).is_err());
    }

    #[test]
    fn extract_gray_skips_rescale() {
        let gray = GrayImage::from_fn(16, 16, |x, _| Gray((x * 16) as u8)).unwrap();
        let g = GaborTexture::extract_gray(&gray);
        assert_eq!(g.features().len(), DIM);
    }
}
