//! Simple Color Histogram (§4.5).
//!
//! The paper quantises "the color space of the frame into a finite number
//! of discrete levels" — 256 bins, per the Fig. 8 output (`Histogram : RGB
//! 256 <256 counts>`). We use the standard 3-3-2 RGB quantisation (8 red ×
//! 8 green × 4 blue levels = 256 bins), the same scheme LIRE's
//! `SimpleColorHistogram` (which the pseudocode mirrors) uses for its RGB
//! mode.
//!
//! The stored feature string follows Fig. 8 exactly:
//! `RGB 256 c0 c1 ... c255`.

use crate::distance;
use crate::error::{FeatureError, Result};
use cbvr_imgproc::{Rgb, RgbImage};

/// Number of histogram bins.
pub const BINS: usize = 256;

/// Quantise an RGB pixel into one of 256 bins (3 bits red, 3 bits green,
/// 2 bits blue).
#[inline]
pub fn quantize_rgb_332(p: Rgb) -> u8 {
    let r = p.r >> 5; // 3 bits
    let g = p.g >> 5; // 3 bits
    let b = p.b >> 6; // 2 bits
    (r << 5) | (g << 2) | b
}

/// The §4.5 simple color histogram descriptor.
#[derive(Clone, Debug, PartialEq)]
pub struct ColorHistogram {
    counts: Vec<u32>,
}

impl ColorHistogram {
    /// Extract from a frame: count quantised colors over all pixels.
    pub fn extract(img: &RgbImage) -> ColorHistogram {
        let mut counts = vec![0u32; BINS];
        for p in img.pixels() {
            counts[quantize_rgb_332(p) as usize] += 1;
        }
        ColorHistogram { counts }
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Total pixel count.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Native distance: Jensen–Shannon divergence of the normalised
    /// histograms — bounded, symmetric and robust to image size.
    pub fn distance(&self, other: &ColorHistogram) -> f64 {
        let a: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        let b: Vec<f64> = other.counts.iter().map(|&c| c as f64).collect();
        distance::jensen_shannon(&a, &b)
    }

    /// Alternative distance: histogram intersection (used by the ablation
    /// bench to compare metrics).
    pub fn intersection_distance(&self, other: &ColorHistogram) -> f64 {
        let a: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        let b: Vec<f64> = other.counts.iter().map(|&c| c as f64).collect();
        distance::intersection_distance(&a, &b)
    }

    /// Fig. 8 serialisation: `RGB 256 c0 c1 ... c255`.
    pub fn to_feature_string(&self) -> String {
        let mut s = String::with_capacity(BINS * 4 + 8);
        s.push_str("RGB 256");
        for c in &self.counts {
            s.push(' ');
            s.push_str(&c.to_string());
        }
        s
    }

    /// Parse the Fig. 8 serialisation back.
    pub fn parse(s: &str) -> Result<ColorHistogram> {
        let mut tokens = s.split_whitespace();
        match (tokens.next(), tokens.next()) {
            (Some("RGB"), Some("256")) => {}
            other => {
                return Err(FeatureError::Parse(format!(
                    "expected 'RGB 256' header, got {other:?}"
                )))
            }
        }
        let counts: std::result::Result<Vec<u32>, _> = tokens.map(str::parse).collect();
        let counts = counts.map_err(|e| FeatureError::Parse(format!("bad count: {e}")))?;
        if counts.len() != BINS {
            return Err(FeatureError::Parse(format!(
                "expected {BINS} counts, got {}",
                counts.len()
            )));
        }
        Ok(ColorHistogram { counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(c: Rgb) -> RgbImage {
        RgbImage::filled(10, 10, c).unwrap()
    }

    #[test]
    fn quantisation_packs_332() {
        assert_eq!(quantize_rgb_332(Rgb::new(0, 0, 0)), 0);
        assert_eq!(quantize_rgb_332(Rgb::new(255, 255, 255)), 255);
        assert_eq!(quantize_rgb_332(Rgb::new(255, 0, 0)), 0b1110_0000);
        assert_eq!(quantize_rgb_332(Rgb::new(0, 255, 0)), 0b0001_1100);
        assert_eq!(quantize_rgb_332(Rgb::new(0, 0, 255)), 0b0000_0011);
    }

    #[test]
    fn nearby_colors_share_a_bin() {
        assert_eq!(quantize_rgb_332(Rgb::new(100, 100, 100)), quantize_rgb_332(Rgb::new(101, 99, 110)));
    }

    #[test]
    fn total_mass_is_pixel_count() {
        let h = ColorHistogram::extract(&flat(Rgb::new(30, 60, 90)));
        assert_eq!(h.total(), 100);
        assert_eq!(h.counts().iter().filter(|&&c| c > 0).count(), 1);
    }

    #[test]
    fn distance_properties() {
        let a = ColorHistogram::extract(&flat(Rgb::new(255, 0, 0)));
        let b = ColorHistogram::extract(&flat(Rgb::new(0, 0, 255)));
        assert_eq!(a.distance(&a), 0.0);
        assert!(a.distance(&b) > 0.1);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn similar_images_are_closer_than_different_ones() {
        let red = ColorHistogram::extract(&flat(Rgb::new(230, 10, 10)));
        let red2 = ColorHistogram::extract(&flat(Rgb::new(235, 12, 8)));
        let blue = ColorHistogram::extract(&flat(Rgb::new(10, 10, 230)));
        assert!(red.distance(&red2) < red.distance(&blue));
    }

    #[test]
    fn feature_string_round_trip() {
        let img = RgbImage::from_fn(16, 16, |x, y| Rgb::new((x * 16) as u8, (y * 16) as u8, 77)).unwrap();
        let h = ColorHistogram::extract(&img);
        let s = h.to_feature_string();
        assert!(s.starts_with("RGB 256 "));
        assert_eq!(ColorHistogram::parse(&s).unwrap(), h);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(ColorHistogram::parse("HSV 256 1 2 3").is_err());
        assert!(ColorHistogram::parse("RGB 256 1 2 3").is_err()); // too few
        assert!(ColorHistogram::parse("RGB 256").is_err());
        let many = format!("RGB 256 {}", vec!["x"; 256].join(" "));
        assert!(ColorHistogram::parse(&many).is_err()); // non-numeric
    }

    #[test]
    fn intersection_distance_is_zero_for_self() {
        let h = ColorHistogram::extract(&flat(Rgb::new(5, 5, 5)));
        assert!(h.intersection_distance(&h).abs() < 1e-12);
    }
}
