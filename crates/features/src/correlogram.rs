//! Auto color correlogram (§4.7).
//!
//! "A color correlogram expresses how the spatial correlation of pairs of
//! colors changes with distance." The *auto*-correlogram keeps only
//! same-color pairs: entry `(c, d)` counts, over all pixels of quantised
//! color `c`, the neighbours at L∞ (chessboard) distance exactly `d` that
//! also have color `c`.
//!
//! Faithful to the pseudocode:
//!
//! - pixels are quantised in HSV space ([`quantize_hsv`], 64 cells:
//!   8 hue × 4 saturation × 2 value);
//! - distances run `1..=MAX_DISTANCE` (4, matching the Fig. 8 output
//!   `ACC 4 ...`);
//! - entries are the standard autocorrelogram *probability* (Huang et
//!   al.): `Pr(neighbour at distance d has color c | centre has color c)`,
//!   computed as same-color neighbours divided by *valid* (in-raster)
//!   neighbours, so borders introduce no bias and values live in `[0, 1]`.
//!
//! Normalisation note: the pseudocode tabulates a histogram "for
//! normalization" (step 6.III) but then normalises by the per-distance
//! maximum across colors (steps 11–13), which collapses any two-color
//! layout to the same correlogram regardless of structure. We use the
//! probability form that the "for normalization" histogram implies; the
//! deviation is recorded in DESIGN.md.
//!
//! Feature string: `ACC 4 v(0,1) v(0,2) ... v(63,4)` — color-major, the
//! order the pseudocode prints.

use crate::error::{FeatureError, Result};
use cbvr_imgproc::{rgb_to_hsv, RgbImage};

/// Number of quantised HSV colors.
pub const COLOR_BINS: usize = 64;
/// Maximum chessboard distance tabulated.
pub const MAX_DISTANCE: usize = 4;
/// Flattened correlogram size.
pub const DIM: usize = COLOR_BINS * MAX_DISTANCE;

/// Quantise an HSV triple (`h ∈ 0..=359`, `s, v ∈ 0..=255`) into one of 64
/// cells: 8 hue × 4 saturation × 2 value.
#[inline]
pub fn quantize_hsv(h: u16, s: u8, v: u8) -> u8 {
    let hq = ((h as u32 * 8) / 360).min(7) as u8;
    let sq = s >> 6; // 4 levels
    let vq = v >> 7; // 2 levels
    (hq << 3) | (sq << 1) | vq
}

/// The §4.7 auto color correlogram descriptor.
#[derive(Clone, Debug, PartialEq)]
pub struct AutoColorCorrelogram {
    /// `values[c * MAX_DISTANCE + (d-1)]` = normalised autocorrelation of
    /// color `c` at distance `d`.
    values: Vec<f64>,
}

impl AutoColorCorrelogram {
    /// Extract from a frame.
    pub fn extract(img: &RgbImage) -> AutoColorCorrelogram {
        let (w, h) = img.dimensions();
        let (wi, hi) = (w as i64, h as i64);

        // Quantise all pixels once.
        let mut quant = vec![0u8; (w * h) as usize];
        for (x, y, p) in img.enumerate_pixels() {
            let (hh, ss, vv) = rgb_to_hsv(p);
            quant[(y * w + x) as usize] = quantize_hsv(hh, ss, vv);
        }
        let at = |x: i64, y: i64| quant[(y * wi + x) as usize];

        let mut same_counts = vec![0u64; DIM];
        let mut valid_counts = vec![0u64; DIM];
        for y in 0..hi {
            for x in 0..wi {
                let color = at(x, y) as usize;
                for d in 1..=MAX_DISTANCE as i64 {
                    let mut same = 0u64;
                    let mut valid = 0u64;
                    let mut visit = |nx: i64, ny: i64| {
                        if nx >= 0 && ny >= 0 && nx < wi && ny < hi {
                            valid += 1;
                            if at(nx, ny) as usize == color {
                                same += 1;
                            }
                        }
                    };
                    // Chessboard ring at distance exactly d: top and bottom
                    // rows plus left and right columns.
                    for dx in -d..=d {
                        visit(x + dx, y - d);
                        visit(x + dx, y + d);
                    }
                    for dy in (-d + 1)..d {
                        visit(x - d, y + dy);
                        visit(x + d, y + dy);
                    }
                    let slot = color * MAX_DISTANCE + (d as usize - 1);
                    same_counts[slot] += same;
                    valid_counts[slot] += valid;
                }
            }
        }

        // Conditional probability per (color, distance).
        let mut values = vec![0.0f64; DIM];
        for i in 0..DIM {
            if valid_counts[i] > 0 {
                values[i] = same_counts[i] as f64 / valid_counts[i] as f64;
            }
        }
        AutoColorCorrelogram { values }
    }

    /// Flattened correlogram, color-major.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Entry for `(color c, distance d)` with `d ∈ 1..=MAX_DISTANCE`.
    pub fn at(&self, c: usize, d: usize) -> f64 {
        assert!(c < COLOR_BINS && (1..=MAX_DISTANCE).contains(&d));
        self.values[c * MAX_DISTANCE + (d - 1)]
    }

    /// Native distance: L1 over the normalised correlogram, scaled to
    /// `[0, 1]` by the dimensionality.
    pub fn distance(&self, other: &AutoColorCorrelogram) -> f64 {
        crate::distance::l1(&self.values, &other.values) / DIM as f64
    }

    /// Feature string: `ACC 4 v0 v1 ...` (Fig. 8 format).
    pub fn to_feature_string(&self) -> String {
        let mut s = format!("ACC {MAX_DISTANCE}");
        for v in &self.values {
            s.push(' ');
            s.push_str(&format!("{v}"));
        }
        s
    }

    /// Parse the feature string back.
    pub fn parse(s: &str) -> Result<AutoColorCorrelogram> {
        let mut t = s.split_whitespace();
        if t.next() != Some("ACC") {
            return Err(FeatureError::Parse("expected 'ACC' header".into()));
        }
        let d: usize = t
            .next()
            .ok_or_else(|| FeatureError::Parse("missing max distance".into()))?
            .parse()
            .map_err(|e| FeatureError::Parse(format!("bad max distance: {e}")))?;
        if d != MAX_DISTANCE {
            return Err(FeatureError::Parse(format!(
                "expected max distance {MAX_DISTANCE}, got {d}"
            )));
        }
        let values: std::result::Result<Vec<f64>, _> = t.map(str::parse).collect();
        let values = values.map_err(|e| FeatureError::Parse(format!("bad value: {e}")))?;
        if values.len() != DIM {
            return Err(FeatureError::Parse(format!("expected {DIM} values, got {}", values.len())));
        }
        Ok(AutoColorCorrelogram { values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_imgproc::Rgb;

    #[test]
    fn quantisation_has_64_cells() {
        assert!(quantize_hsv(0, 0, 0) < 64);
        assert!(quantize_hsv(359, 255, 255) < 64);
        // Distinct hues land in distinct cells at full saturation.
        let a = quantize_hsv(0, 255, 255);
        let b = quantize_hsv(180, 255, 255);
        assert_ne!(a, b);
    }

    #[test]
    fn flat_image_is_perfectly_autocorrelated() {
        let img = RgbImage::filled(16, 16, Rgb::new(200, 30, 30)).unwrap();
        let acc = AutoColorCorrelogram::extract(&img);
        let (h, s, v) = rgb_to_hsv(Rgb::new(200, 30, 30));
        let c = quantize_hsv(h, s, v) as usize;
        for d in 1..=MAX_DISTANCE {
            assert_eq!(acc.at(c, d), 1.0, "distance {d}");
        }
        // Every other color has zero correlation.
        for other in 0..COLOR_BINS {
            if other != c {
                for d in 1..=MAX_DISTANCE {
                    assert_eq!(acc.at(other, d), 0.0);
                }
            }
        }
    }

    #[test]
    fn values_are_normalised_to_unit_interval() {
        let img = RgbImage::from_fn(24, 24, |x, y| {
            Rgb::new((x * 11) as u8, (y * 7) as u8, ((x + y) * 5) as u8)
        })
        .unwrap();
        let acc = AutoColorCorrelogram::extract(&img);
        for &v in acc.values() {
            assert!((0.0..=1.0).contains(&v));
        }
        // The image has structure, so some color is self-correlated.
        assert!(acc.values().iter().any(|&v| v > 0.0));
    }

    #[test]
    fn correlogram_separates_layouts_with_same_histogram() {
        // Same 50/50 color mass, different spatial structure: big blocks
        // stay self-correlated at all distances, thin stripes do not.
        let blocks = RgbImage::from_fn(32, 32, |x, _| {
            if x < 16 { Rgb::new(255, 0, 0) } else { Rgb::new(0, 0, 255) }
        })
        .unwrap();
        let stripes = RgbImage::from_fn(32, 32, |x, _| {
            if x % 2 == 0 { Rgb::new(255, 0, 0) } else { Rgb::new(0, 0, 255) }
        })
        .unwrap();
        let ab = AutoColorCorrelogram::extract(&blocks);
        let st = AutoColorCorrelogram::extract(&stripes);
        assert!(ab.distance(&st) > 0.001, "distance {}", ab.distance(&st));
    }

    #[test]
    fn distance_properties() {
        let a = AutoColorCorrelogram::extract(&RgbImage::filled(8, 8, Rgb::new(10, 200, 10)).unwrap());
        let b = AutoColorCorrelogram::extract(&RgbImage::filled(8, 8, Rgb::new(200, 10, 10)).unwrap());
        assert_eq!(a.distance(&a), 0.0);
        assert!(a.distance(&b) > 0.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        assert!(a.distance(&b) <= 1.0);
    }

    #[test]
    fn feature_string_round_trip() {
        let img = RgbImage::from_fn(12, 12, |x, y| Rgb::new((x * 20) as u8, (y * 20) as u8, 128)).unwrap();
        let acc = AutoColorCorrelogram::extract(&img);
        let s = acc.to_feature_string();
        assert!(s.starts_with("ACC 4 "));
        let back = AutoColorCorrelogram::parse(&s).unwrap();
        for (x, y) in acc.values().iter().zip(back.values()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(AutoColorCorrelogram::parse("CCA 4 0.5").is_err());
        assert!(AutoColorCorrelogram::parse("ACC 3 0.5").is_err());
        assert!(AutoColorCorrelogram::parse("ACC 4 0.5 0.5").is_err()); // too few
    }

    #[test]
    fn border_pixels_are_handled() {
        // 1×1 image: all rings fall outside; correlogram must be all zero
        // and extraction must not panic.
        let img = RgbImage::filled(1, 1, Rgb::new(9, 9, 9)).unwrap();
        let acc = AutoColorCorrelogram::extract(&img);
        assert!(acc.values().iter().all(|&v| v == 0.0));
    }
}
