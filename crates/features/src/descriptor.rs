//! Unified descriptor type over the seven features.
//!
//! The retrieval pipeline treats features uniformly: extract, measure a
//! distance, serialise to the Oracle-style feature string and parse back.
//! [`FeatureKind`] names the feature, [`Descriptor`] holds one value.

use crate::correlogram::AutoColorCorrelogram;
use crate::error::{FeatureError, Result};
use crate::gabor::GaborTexture;
use crate::glcm::GlcmTexture;
use crate::histogram::ColorHistogram;
use crate::naive::NaiveSignature;
use crate::region::RegionGrowing;
use crate::tamura::TamuraTexture;
use cbvr_imgproc::RgbImage;

/// The seven features of the paper (Table 1 columns).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FeatureKind {
    /// Simple color histogram (§4.5) — Table 1 "Histogram".
    ColorHistogram,
    /// GLCM texture (§4.3).
    Glcm,
    /// Gabor texture (§4.4).
    Gabor,
    /// Tamura texture.
    Tamura,
    /// Auto color correlogram (§4.7).
    Correlogram,
    /// Superficial (naive) signature (§4.6).
    Naive,
    /// Simple region growing (§4.8).
    Regions,
}

impl FeatureKind {
    /// All kinds in Table 1 order (Histogram appears fourth there, but a
    /// stable fixed order is what matters for iteration).
    pub const ALL: [FeatureKind; 7] = [
        FeatureKind::Glcm,
        FeatureKind::Gabor,
        FeatureKind::Tamura,
        FeatureKind::ColorHistogram,
        FeatureKind::Correlogram,
        FeatureKind::Regions,
        FeatureKind::Naive,
    ];

    /// Stable snake-case name, used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            FeatureKind::ColorHistogram => "histogram",
            FeatureKind::Glcm => "glcm",
            FeatureKind::Gabor => "gabor",
            FeatureKind::Tamura => "tamura",
            FeatureKind::Correlogram => "autocorrelogram",
            FeatureKind::Naive => "naive",
            FeatureKind::Regions => "region_growing",
        }
    }

    /// Parse a [`FeatureKind::name`] back.
    pub fn from_name(s: &str) -> Option<FeatureKind> {
        FeatureKind::ALL.iter().copied().find(|k| k.name() == s)
    }

    /// Table 1 column label.
    pub fn table1_label(self) -> &'static str {
        match self {
            FeatureKind::ColorHistogram => "Histogram",
            FeatureKind::Glcm => "GLCM",
            FeatureKind::Gabor => "Gabor",
            FeatureKind::Tamura => "Tamura",
            FeatureKind::Correlogram => "Autocorrelogram",
            FeatureKind::Naive => "Naive",
            FeatureKind::Regions => "Simple Region Growing",
        }
    }
}

impl std::fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One extracted descriptor of any kind.
#[derive(Clone, Debug, PartialEq)]
pub enum Descriptor {
    /// §4.5 simple color histogram.
    ColorHistogram(ColorHistogram),
    /// §4.3 GLCM texture statistics.
    Glcm(GlcmTexture),
    /// §4.4 Gabor filter-bank texture.
    Gabor(GaborTexture),
    /// Tamura texture.
    Tamura(TamuraTexture),
    /// §4.7 auto color correlogram.
    Correlogram(AutoColorCorrelogram),
    /// §4.6 naive 25-point signature.
    Naive(NaiveSignature),
    /// §4.8 region growing census.
    Regions(RegionGrowing),
}

impl Descriptor {
    /// Which feature this descriptor is.
    pub fn kind(&self) -> FeatureKind {
        match self {
            Descriptor::ColorHistogram(_) => FeatureKind::ColorHistogram,
            Descriptor::Glcm(_) => FeatureKind::Glcm,
            Descriptor::Gabor(_) => FeatureKind::Gabor,
            Descriptor::Tamura(_) => FeatureKind::Tamura,
            Descriptor::Correlogram(_) => FeatureKind::Correlogram,
            Descriptor::Naive(_) => FeatureKind::Naive,
            Descriptor::Regions(_) => FeatureKind::Regions,
        }
    }

    /// Extract the named feature from a frame.
    pub fn extract(kind: FeatureKind, img: &RgbImage) -> Descriptor {
        match kind {
            FeatureKind::ColorHistogram => Descriptor::ColorHistogram(ColorHistogram::extract(img)),
            FeatureKind::Glcm => Descriptor::Glcm(GlcmTexture::extract(img)),
            FeatureKind::Gabor => Descriptor::Gabor(GaborTexture::extract(img)),
            FeatureKind::Tamura => Descriptor::Tamura(TamuraTexture::extract(img)),
            FeatureKind::Correlogram => Descriptor::Correlogram(AutoColorCorrelogram::extract(img)),
            FeatureKind::Naive => Descriptor::Naive(NaiveSignature::extract(img)),
            FeatureKind::Regions => Descriptor::Regions(RegionGrowing::extract(img)),
        }
    }

    /// Native distance to another descriptor of the *same* kind.
    ///
    /// # Errors
    /// Returns [`FeatureError::Mismatch`] when kinds differ.
    pub fn distance(&self, other: &Descriptor) -> Result<f64> {
        match (self, other) {
            (Descriptor::ColorHistogram(a), Descriptor::ColorHistogram(b)) => Ok(a.distance(b)),
            (Descriptor::Glcm(a), Descriptor::Glcm(b)) => Ok(a.distance(b)),
            (Descriptor::Gabor(a), Descriptor::Gabor(b)) => Ok(a.distance(b)),
            (Descriptor::Tamura(a), Descriptor::Tamura(b)) => Ok(a.distance(b)),
            (Descriptor::Correlogram(a), Descriptor::Correlogram(b)) => Ok(a.distance(b)),
            (Descriptor::Naive(a), Descriptor::Naive(b)) => Ok(a.distance(b)),
            (Descriptor::Regions(a), Descriptor::Regions(b)) => Ok(a.distance(b)),
            (a, b) => Err(FeatureError::Mismatch(format!(
                "cannot compare {} with {}",
                a.kind(),
                b.kind()
            ))),
        }
    }

    /// The Oracle `VARCHAR2` serialisation (Fig. 8 formats).
    pub fn to_feature_string(&self) -> String {
        match self {
            Descriptor::ColorHistogram(d) => d.to_feature_string(),
            Descriptor::Glcm(d) => d.to_feature_string(),
            Descriptor::Gabor(d) => d.to_feature_string(),
            Descriptor::Tamura(d) => d.to_feature_string(),
            Descriptor::Correlogram(d) => d.to_feature_string(),
            Descriptor::Naive(d) => d.to_feature_string(),
            Descriptor::Regions(d) => d.to_feature_string(),
        }
    }

    /// Parse a feature string of the named kind.
    pub fn parse(kind: FeatureKind, s: &str) -> Result<Descriptor> {
        Ok(match kind {
            FeatureKind::ColorHistogram => Descriptor::ColorHistogram(ColorHistogram::parse(s)?),
            FeatureKind::Glcm => Descriptor::Glcm(GlcmTexture::parse(s)?),
            FeatureKind::Gabor => Descriptor::Gabor(GaborTexture::parse(s)?),
            FeatureKind::Tamura => Descriptor::Tamura(TamuraTexture::parse(s)?),
            FeatureKind::Correlogram => Descriptor::Correlogram(AutoColorCorrelogram::parse(s)?),
            FeatureKind::Naive => Descriptor::Naive(NaiveSignature::parse(s)?),
            FeatureKind::Regions => Descriptor::Regions(RegionGrowing::parse(s)?),
        })
    }
}

/// A borrowed view of one feature descriptor.
///
/// [`crate::FeatureSet::descriptor_ref`] yields this without cloning the
/// payload (histograms and correlograms are hundreds of floats), so
/// serialisation and comparison paths can dispatch by kind at zero copy.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum DescriptorRef<'a> {
    /// §4.5 simple color histogram.
    ColorHistogram(&'a ColorHistogram),
    /// §4.3 GLCM texture statistics.
    Glcm(&'a GlcmTexture),
    /// §4.4 Gabor filter-bank texture.
    Gabor(&'a GaborTexture),
    /// Tamura texture.
    Tamura(&'a TamuraTexture),
    /// §4.7 auto color correlogram.
    Correlogram(&'a AutoColorCorrelogram),
    /// §4.6 naive 25-point signature.
    Naive(&'a NaiveSignature),
    /// §4.8 region growing census.
    Regions(&'a RegionGrowing),
}

impl<'a> DescriptorRef<'a> {
    /// Which feature this descriptor is.
    pub fn kind(&self) -> FeatureKind {
        match self {
            DescriptorRef::ColorHistogram(_) => FeatureKind::ColorHistogram,
            DescriptorRef::Glcm(_) => FeatureKind::Glcm,
            DescriptorRef::Gabor(_) => FeatureKind::Gabor,
            DescriptorRef::Tamura(_) => FeatureKind::Tamura,
            DescriptorRef::Correlogram(_) => FeatureKind::Correlogram,
            DescriptorRef::Naive(_) => FeatureKind::Naive,
            DescriptorRef::Regions(_) => FeatureKind::Regions,
        }
    }

    /// The Oracle `VARCHAR2` serialisation (Fig. 8 formats).
    pub fn to_feature_string(&self) -> String {
        match self {
            DescriptorRef::ColorHistogram(d) => d.to_feature_string(),
            DescriptorRef::Glcm(d) => d.to_feature_string(),
            DescriptorRef::Gabor(d) => d.to_feature_string(),
            DescriptorRef::Tamura(d) => d.to_feature_string(),
            DescriptorRef::Correlogram(d) => d.to_feature_string(),
            DescriptorRef::Naive(d) => d.to_feature_string(),
            DescriptorRef::Regions(d) => d.to_feature_string(),
        }
    }

    /// Native distance to another borrowed descriptor of the *same* kind.
    ///
    /// # Errors
    /// Returns [`FeatureError::Mismatch`] when kinds differ.
    pub fn distance(&self, other: &DescriptorRef<'_>) -> Result<f64> {
        match (self, other) {
            (DescriptorRef::ColorHistogram(a), DescriptorRef::ColorHistogram(b)) => {
                Ok(a.distance(b))
            }
            (DescriptorRef::Glcm(a), DescriptorRef::Glcm(b)) => Ok(a.distance(b)),
            (DescriptorRef::Gabor(a), DescriptorRef::Gabor(b)) => Ok(a.distance(b)),
            (DescriptorRef::Tamura(a), DescriptorRef::Tamura(b)) => Ok(a.distance(b)),
            (DescriptorRef::Correlogram(a), DescriptorRef::Correlogram(b)) => Ok(a.distance(b)),
            (DescriptorRef::Naive(a), DescriptorRef::Naive(b)) => Ok(a.distance(b)),
            (DescriptorRef::Regions(a), DescriptorRef::Regions(b)) => Ok(a.distance(b)),
            (a, b) => Err(FeatureError::Mismatch(format!(
                "cannot compare {} with {}",
                a.kind(),
                b.kind()
            ))),
        }
    }

    /// Clone the payload into the owned [`Descriptor`] enum.
    pub fn to_owned(&self) -> Descriptor {
        match *self {
            DescriptorRef::ColorHistogram(d) => Descriptor::ColorHistogram(d.clone()),
            DescriptorRef::Glcm(d) => Descriptor::Glcm(*d),
            DescriptorRef::Gabor(d) => Descriptor::Gabor(d.clone()),
            DescriptorRef::Tamura(d) => Descriptor::Tamura(d.clone()),
            DescriptorRef::Correlogram(d) => Descriptor::Correlogram(d.clone()),
            DescriptorRef::Naive(d) => Descriptor::Naive(d.clone()),
            DescriptorRef::Regions(d) => Descriptor::Regions(*d),
        }
    }
}

impl Descriptor {
    /// A borrowed view of this owned descriptor.
    pub fn as_ref(&self) -> DescriptorRef<'_> {
        match self {
            Descriptor::ColorHistogram(d) => DescriptorRef::ColorHistogram(d),
            Descriptor::Glcm(d) => DescriptorRef::Glcm(d),
            Descriptor::Gabor(d) => DescriptorRef::Gabor(d),
            Descriptor::Tamura(d) => DescriptorRef::Tamura(d),
            Descriptor::Correlogram(d) => DescriptorRef::Correlogram(d),
            Descriptor::Naive(d) => DescriptorRef::Naive(d),
            Descriptor::Regions(d) => DescriptorRef::Regions(d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_imgproc::Rgb;

    fn sample() -> RgbImage {
        RgbImage::from_fn(32, 32, |x, y| Rgb::new((x * 8) as u8, (y * 8) as u8, ((x + y) * 4) as u8))
            .unwrap()
    }

    #[test]
    fn kind_round_trips_names() {
        for k in FeatureKind::ALL {
            assert_eq!(FeatureKind::from_name(k.name()), Some(k));
        }
        assert_eq!(FeatureKind::from_name("bogus"), None);
    }

    #[test]
    fn extract_reports_matching_kind() {
        let img = sample();
        for k in FeatureKind::ALL {
            let d = Descriptor::extract(k, &img);
            assert_eq!(d.kind(), k);
        }
    }

    #[test]
    fn every_kind_string_round_trips() {
        let img = sample();
        for k in FeatureKind::ALL {
            let d = Descriptor::extract(k, &img);
            let s = d.to_feature_string();
            let back = Descriptor::parse(k, &s).unwrap();
            // Self-distance of the parsed value must be ~0 (float printing
            // is exact via `{}` for f64, so this is strict for most kinds).
            assert!(d.distance(&back).unwrap() < 1e-9, "{k}: {s}");
        }
    }

    #[test]
    fn mismatched_kinds_error() {
        let img = sample();
        let a = Descriptor::extract(FeatureKind::Glcm, &img);
        let b = Descriptor::extract(FeatureKind::Gabor, &img);
        let err = a.distance(&b).unwrap_err();
        assert!(err.to_string().contains("glcm"));
        assert!(err.to_string().contains("gabor"));
    }

    #[test]
    fn parse_with_wrong_kind_fails() {
        let img = sample();
        let s = Descriptor::extract(FeatureKind::Glcm, &img).to_feature_string();
        assert!(Descriptor::parse(FeatureKind::Gabor, &s).is_err());
    }

    #[test]
    fn self_distance_zero_for_all_kinds() {
        let img = sample();
        for k in FeatureKind::ALL {
            let d = Descriptor::extract(k, &img);
            assert_eq!(d.distance(&d).unwrap(), 0.0, "{k}");
        }
    }

    #[test]
    fn table1_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            FeatureKind::ALL.iter().map(|k| k.table1_label()).collect();
        assert_eq!(labels.len(), FeatureKind::ALL.len());
    }
}
