//! Edge histogram descriptor (extension feature).
//!
//! §6: "We further intend to enhance system by integrating more
//! features". This is the classic MPEG-7-style edge histogram — the most
//! common "shape" feature in the CBIR systems the paper surveys: the
//! frame is divided into a 4×4 grid of subimages, each subimage's 2×2
//! blocks are classified into one of five edge types (vertical,
//! horizontal, 45°, 135°, non-directional) by oriented 2×2 filters, and
//! the per-subimage type counts form an 80-bin histogram.
//!
//! Not part of the paper's seven-feature [`crate::FeatureSet`];
//! exercised by the `extended_features` example and bench.

use crate::error::{FeatureError, Result};
use cbvr_imgproc::{GrayImage, RgbImage};

/// Grid side: 4×4 subimages.
pub const GRID: usize = 4;
/// Edge types per subimage.
pub const TYPES: usize = 5;
/// Total bins.
pub const DIM: usize = GRID * GRID * TYPES;

/// Minimum filter response for a block to count as an edge at all.
const EDGE_THRESHOLD: f64 = 11.0;

/// The edge types, in bin order.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum EdgeType {
    Vertical,
    Horizontal,
    Diagonal45,
    Diagonal135,
    NonDirectional,
}

/// 2×2 block classification by oriented filters (MPEG-7 coefficients).
fn classify_block(a: f64, b: f64, c: f64, d: f64) -> Option<EdgeType> {
    // Block layout:  a b
    //                c d
    let vertical = (a + c - b - d).abs();
    let horizontal = (a + b - c - d).abs();
    let sqrt2 = std::f64::consts::SQRT_2;
    let diag45 = (sqrt2 * (a - d)).abs();
    let diag135 = (sqrt2 * (b - c)).abs();
    let non_dir = 2.0 * (a - b - c + d).abs();

    let responses = [
        (vertical, EdgeType::Vertical),
        (horizontal, EdgeType::Horizontal),
        (diag45, EdgeType::Diagonal45),
        (diag135, EdgeType::Diagonal135),
        (non_dir, EdgeType::NonDirectional),
    ];
    let (best, kind) = responses
        .into_iter()
        .max_by(|x, y| x.0.partial_cmp(&y.0).expect("finite responses"))
        .expect("non-empty");
    (best >= EDGE_THRESHOLD).then_some(kind)
}

/// The 80-bin edge histogram descriptor.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeHistogram {
    /// Normalised bins: subimage-major, edge-type-minor.
    bins: Vec<f64>,
}

impl EdgeHistogram {
    /// Extract from a frame.
    pub fn extract(img: &RgbImage) -> EdgeHistogram {
        Self::extract_gray(&img.to_gray())
    }

    /// Extract from a gray image.
    pub fn extract_gray(gray: &GrayImage) -> EdgeHistogram {
        let (w, h) = gray.dimensions();
        let mut bins = vec![0.0f64; DIM];
        let mut block_counts = [0u32; GRID * GRID];
        // Walk non-overlapping 2×2 blocks; assign each to its subimage.
        let mut y = 0;
        while y + 1 < h {
            let mut x = 0;
            while x + 1 < w {
                let a = gray.get(x, y).0 as f64;
                let b = gray.get(x + 1, y).0 as f64;
                let c = gray.get(x, y + 1).0 as f64;
                let d = gray.get(x + 1, y + 1).0 as f64;
                let sub_x = ((x as usize * GRID) / w as usize).min(GRID - 1);
                let sub_y = ((y as usize * GRID) / h as usize).min(GRID - 1);
                let sub = sub_y * GRID + sub_x;
                block_counts[sub] += 1;
                if let Some(kind) = classify_block(a, b, c, d) {
                    bins[sub * TYPES + kind as usize] += 1.0;
                }
                x += 2;
            }
            y += 2;
        }
        // Normalise per subimage by its block count, so subimage size
        // differences (odd dimensions) do not skew bins.
        for sub in 0..GRID * GRID {
            let n = block_counts[sub] as f64;
            if n > 0.0 {
                for t in 0..TYPES {
                    bins[sub * TYPES + t] /= n;
                }
            }
        }
        EdgeHistogram { bins }
    }

    /// The 80 normalised bins.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Native distance: L1, scaled by the dimensionality into `[0, 1]`.
    pub fn distance(&self, other: &EdgeHistogram) -> f64 {
        crate::distance::l1(&self.bins, &other.bins) / (GRID * GRID) as f64
    }

    /// Feature string: `EHD 80 v0 ... v79`.
    pub fn to_feature_string(&self) -> String {
        let mut s = format!("EHD {DIM}");
        for v in &self.bins {
            s.push(' ');
            s.push_str(&format!("{v}"));
        }
        s
    }

    /// Parse the feature string back.
    pub fn parse(s: &str) -> Result<EdgeHistogram> {
        let mut t = s.split_whitespace();
        if t.next() != Some("EHD") {
            return Err(FeatureError::Parse("expected 'EHD' header".into()));
        }
        let dim: usize = t
            .next()
            .ok_or_else(|| FeatureError::Parse("missing dimension".into()))?
            .parse()
            .map_err(|e| FeatureError::Parse(format!("bad dimension: {e}")))?;
        if dim != DIM {
            return Err(FeatureError::Parse(format!("expected dim {DIM}, got {dim}")));
        }
        let bins: std::result::Result<Vec<f64>, _> = t.map(str::parse).collect();
        let bins = bins.map_err(|e| FeatureError::Parse(format!("bad value: {e}")))?;
        if bins.len() != DIM {
            return Err(FeatureError::Parse(format!("expected {DIM} values, got {}", bins.len())));
        }
        Ok(EdgeHistogram { bins })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_imgproc::{Gray, Rgb};

    fn gray(w: u32, h: u32, f: impl Fn(u32, u32) -> u8) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| Gray(f(x, y))).unwrap()
    }

    fn type_mass(e: &EdgeHistogram, t: usize) -> f64 {
        (0..GRID * GRID).map(|sub| e.bins()[sub * TYPES + t]).sum()
    }

    #[test]
    fn flat_image_has_no_edges() {
        let e = EdgeHistogram::extract_gray(&gray(32, 32, |_, _| 100));
        assert!(e.bins().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn vertical_stripes_fill_vertical_bins() {
        let e = EdgeHistogram::extract_gray(&gray(32, 32, |x, _| if x % 2 == 0 { 0 } else { 255 }));
        let v = type_mass(&e, 0);
        let h = type_mass(&e, 1);
        assert!(v > 1.0, "vertical mass {v}");
        assert!(h < 0.01, "horizontal mass {h}");
    }

    #[test]
    fn horizontal_stripes_fill_horizontal_bins() {
        let e = EdgeHistogram::extract_gray(&gray(32, 32, |_, y| if y % 2 == 0 { 0 } else { 255 }));
        assert!(type_mass(&e, 1) > 1.0);
        assert!(type_mass(&e, 0) < 0.01);
    }

    #[test]
    fn diagonal_pattern_fills_diagonal_bins() {
        // 2×2 blocks with only 'a' and 'd' dark → 45° responses dominate.
        let e = EdgeHistogram::extract_gray(&gray(32, 32, |x, y| {
            if (x % 2 == 0) == (y % 2 == 0) { 0 } else { 255 }
        }));
        // a=d, b=c pattern is actually non-directional (checkerboard);
        // verify it lands in the non-directional bin, not V or H.
        assert!(type_mass(&e, 4) > 1.0, "{:?}", &e.bins()[..10]);
        assert!(type_mass(&e, 0) < 0.01);
        assert!(type_mass(&e, 1) < 0.01);
    }

    #[test]
    fn spatial_layout_is_captured() {
        // Edges only in the top half: top subimages carry all mass.
        let e = EdgeHistogram::extract_gray(&gray(32, 32, |x, y| {
            if y < 16 && x % 2 == 0 { 0 } else { 255 }
        }));
        let top: f64 = (0..GRID * GRID / 2).map(|sub| {
            (0..TYPES).map(|t| e.bins()[sub * TYPES + t]).sum::<f64>()
        }).sum();
        let bottom: f64 = (GRID * GRID / 2..GRID * GRID).map(|sub| {
            (0..TYPES).map(|t| e.bins()[sub * TYPES + t]).sum::<f64>()
        }).sum();
        assert!(top > bottom * 2.0, "top {top} bottom {bottom}");
    }

    #[test]
    fn distance_properties() {
        let a = EdgeHistogram::extract(&RgbImage::filled(16, 16, Rgb::new(9, 9, 9)).unwrap());
        let img = RgbImage::from_fn(16, 16, |x, _| {
            if x % 2 == 0 { Rgb::BLACK } else { Rgb::WHITE }
        })
        .unwrap();
        let b = EdgeHistogram::extract(&img);
        assert_eq!(a.distance(&a), 0.0);
        assert!(a.distance(&b) > 0.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        assert!(a.distance(&b) <= 1.0 + 1e-9);
    }

    #[test]
    fn feature_string_round_trip() {
        let img = RgbImage::from_fn(20, 20, |x, y| Rgb::new((x * 13) as u8, (y * 11) as u8, 7)).unwrap();
        let e = EdgeHistogram::extract(&img);
        let back = EdgeHistogram::parse(&e.to_feature_string()).unwrap();
        for (x, y) in e.bins().iter().zip(back.bins()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(EdgeHistogram::parse("DHE 80 0").is_err());
        assert!(EdgeHistogram::parse("EHD 79 0").is_err());
        assert!(EdgeHistogram::parse("EHD 80 0 1").is_err());
    }

    #[test]
    fn tiny_images_do_not_panic() {
        let e = EdgeHistogram::extract_gray(&gray(1, 1, |_, _| 0));
        assert!(e.bins().iter().all(|&b| b == 0.0));
        let _ = EdgeHistogram::extract_gray(&gray(3, 2, |x, _| (x * 100) as u8));
    }
}
