//! Error type for feature extraction and feature-string parsing.

use std::fmt;

/// Errors produced by descriptor extraction and parsing.
#[derive(Debug)]
pub enum FeatureError {
    /// A feature string (the Oracle `VARCHAR2` serialisation) failed to
    /// parse back into a descriptor.
    Parse(String),
    /// Two descriptors of different kinds or shapes were compared.
    Mismatch(String),
    /// Propagated image error.
    Image(cbvr_imgproc::ImgError),
}

impl fmt::Display for FeatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureError::Parse(m) => write!(f, "feature string parse error: {m}"),
            FeatureError::Mismatch(m) => write!(f, "descriptor mismatch: {m}"),
            FeatureError::Image(e) => write!(f, "image error: {e}"),
        }
    }
}

impl std::error::Error for FeatureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FeatureError::Image(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cbvr_imgproc::ImgError> for FeatureError {
    fn from(e: cbvr_imgproc::ImgError) -> Self {
        FeatureError::Image(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, FeatureError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(FeatureError::Parse("bad token".into()).to_string().contains("bad token"));
        assert!(FeatureError::Mismatch("kinds".into()).to_string().contains("kinds"));
    }
}
