//! Per-key-frame feature bundle.
//!
//! The `KEY_FRAMES` table stores one value of *each* feature per key frame
//! (`SCH`, `GLCM`, `GABOR`, `TAMURA`, `MAJORREGIONS` columns plus the
//! correlogram and naive signature shown in Fig. 8). [`FeatureSet`] is
//! that row's feature payload: extract once, compare per-kind, serialise
//! per-kind.

use crate::correlogram::AutoColorCorrelogram;
use crate::descriptor::{Descriptor, DescriptorRef, FeatureKind};
use crate::error::Result;
use crate::gabor::GaborTexture;
use crate::glcm::GlcmTexture;
use crate::histogram::ColorHistogram;
use crate::naive::NaiveSignature;
use crate::region::RegionGrowing;
use crate::tamura::TamuraTexture;
use cbvr_imgproc::RgbImage;

/// All seven descriptors of one key frame.
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureSet {
    /// §4.5 simple color histogram (`SCH` column).
    pub histogram: ColorHistogram,
    /// §4.3 GLCM texture (`GLCM` column).
    pub glcm: GlcmTexture,
    /// §4.4 Gabor texture (`GABOR` column).
    pub gabor: GaborTexture,
    /// Tamura texture (`TAMURA` column).
    pub tamura: TamuraTexture,
    /// §4.7 auto color correlogram.
    pub correlogram: AutoColorCorrelogram,
    /// §4.6 naive signature.
    pub naive: NaiveSignature,
    /// §4.8 region census (`MAJORREGIONS` column).
    pub regions: RegionGrowing,
}

impl FeatureSet {
    /// Extract every feature from a frame.
    pub fn extract(img: &RgbImage) -> FeatureSet {
        FeatureSet {
            histogram: ColorHistogram::extract(img),
            glcm: GlcmTexture::extract(img),
            gabor: GaborTexture::extract(img),
            tamura: TamuraTexture::extract(img),
            correlogram: AutoColorCorrelogram::extract(img),
            naive: NaiveSignature::extract(img),
            regions: RegionGrowing::extract(img),
        }
    }

    /// Borrow one descriptor by kind, without cloning its payload.
    pub fn descriptor_ref(&self, kind: FeatureKind) -> DescriptorRef<'_> {
        match kind {
            FeatureKind::ColorHistogram => DescriptorRef::ColorHistogram(&self.histogram),
            FeatureKind::Glcm => DescriptorRef::Glcm(&self.glcm),
            FeatureKind::Gabor => DescriptorRef::Gabor(&self.gabor),
            FeatureKind::Tamura => DescriptorRef::Tamura(&self.tamura),
            FeatureKind::Correlogram => DescriptorRef::Correlogram(&self.correlogram),
            FeatureKind::Naive => DescriptorRef::Naive(&self.naive),
            FeatureKind::Regions => DescriptorRef::Regions(&self.regions),
        }
    }

    /// Clone one descriptor into the owned enum (convenience — the
    /// serialisation and comparison paths use [`FeatureSet::descriptor_ref`]).
    pub fn descriptor(&self, kind: FeatureKind) -> Descriptor {
        self.descriptor_ref(kind).to_owned()
    }

    /// Native per-kind distance between two feature sets.
    pub fn distance(&self, other: &FeatureSet, kind: FeatureKind) -> f64 {
        match kind {
            FeatureKind::ColorHistogram => self.histogram.distance(&other.histogram),
            FeatureKind::Glcm => self.glcm.distance(&other.glcm),
            FeatureKind::Gabor => self.gabor.distance(&other.gabor),
            FeatureKind::Tamura => self.tamura.distance(&other.tamura),
            FeatureKind::Correlogram => self.correlogram.distance(&other.correlogram),
            FeatureKind::Naive => self.naive.distance(&other.naive),
            FeatureKind::Regions => self.regions.distance(&other.regions),
        }
    }

    /// Serialise every feature to its Oracle-style string, in
    /// [`FeatureKind::ALL`] order.
    pub fn to_feature_strings(&self) -> Vec<(FeatureKind, String)> {
        FeatureKind::ALL
            .iter()
            .map(|&k| (k, self.descriptor_ref(k).to_feature_string()))
            .collect()
    }

    /// Rebuild a set from per-kind feature strings (order-insensitive;
    /// every kind must appear exactly once).
    pub fn from_feature_strings<'a>(
        strings: impl IntoIterator<Item = (FeatureKind, &'a str)>,
    ) -> Result<FeatureSet> {
        let mut histogram = None;
        let mut glcm = None;
        let mut gabor = None;
        let mut tamura = None;
        let mut correlogram = None;
        let mut naive = None;
        let mut regions = None;
        for (kind, s) in strings {
            match Descriptor::parse(kind, s)? {
                Descriptor::ColorHistogram(d) => histogram = Some(d),
                Descriptor::Glcm(d) => glcm = Some(d),
                Descriptor::Gabor(d) => gabor = Some(d),
                Descriptor::Tamura(d) => tamura = Some(d),
                Descriptor::Correlogram(d) => correlogram = Some(d),
                Descriptor::Naive(d) => naive = Some(d),
                Descriptor::Regions(d) => regions = Some(d),
            }
        }
        let missing = |name: &str| crate::error::FeatureError::Parse(format!("missing {name} feature"));
        Ok(FeatureSet {
            histogram: histogram.ok_or_else(|| missing("histogram"))?,
            glcm: glcm.ok_or_else(|| missing("glcm"))?,
            gabor: gabor.ok_or_else(|| missing("gabor"))?,
            tamura: tamura.ok_or_else(|| missing("tamura"))?,
            correlogram: correlogram.ok_or_else(|| missing("correlogram"))?,
            naive: naive.ok_or_else(|| missing("naive"))?,
            regions: regions.ok_or_else(|| missing("regions"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_imgproc::Rgb;

    fn sample(seed: u8) -> RgbImage {
        RgbImage::from_fn(32, 32, |x, y| {
            Rgb::new(
                (x * 8).wrapping_add(seed as u32) as u8,
                (y * 8) as u8,
                ((x + y) * 4) as u8,
            )
        })
        .unwrap()
    }

    #[test]
    fn extract_produces_consistent_descriptors() {
        let img = sample(0);
        let set = FeatureSet::extract(&img);
        for k in FeatureKind::ALL {
            let standalone = Descriptor::extract(k, &img);
            assert_eq!(set.descriptor(k), standalone, "{k}");
        }
    }

    #[test]
    fn per_kind_distances_match_descriptor_distances() {
        let a = FeatureSet::extract(&sample(0));
        let b = FeatureSet::extract(&sample(90));
        for k in FeatureKind::ALL {
            let via_set = a.distance(&b, k);
            let via_desc = a.descriptor(k).distance(&b.descriptor(k)).unwrap();
            assert!((via_set - via_desc).abs() < 1e-12, "{k}");
        }
    }

    #[test]
    fn descriptor_ref_agrees_with_owned_descriptor() {
        let a = FeatureSet::extract(&sample(0));
        let b = FeatureSet::extract(&sample(90));
        for k in FeatureKind::ALL {
            assert_eq!(a.descriptor_ref(k).to_owned(), a.descriptor(k), "{k}");
            assert_eq!(a.descriptor_ref(k).kind(), k);
            assert_eq!(
                a.descriptor_ref(k).to_feature_string(),
                a.descriptor(k).to_feature_string(),
                "{k}"
            );
            let via_ref = a.descriptor_ref(k).distance(&b.descriptor_ref(k)).unwrap();
            assert!((via_ref - a.distance(&b, k)).abs() < 1e-12, "{k}");
        }
        // Mismatched kinds are rejected, as with owned descriptors.
        assert!(a
            .descriptor_ref(FeatureKind::Glcm)
            .distance(&b.descriptor_ref(FeatureKind::Gabor))
            .is_err());
    }

    #[test]
    fn string_bundle_round_trip() {
        let set = FeatureSet::extract(&sample(3));
        let strings = set.to_feature_strings();
        assert_eq!(strings.len(), 7);
        let back =
            FeatureSet::from_feature_strings(strings.iter().map(|(k, s)| (*k, s.as_str()))).unwrap();
        for k in FeatureKind::ALL {
            assert!(set.distance(&back, k) < 1e-9, "{k}");
        }
    }

    #[test]
    fn missing_feature_string_is_rejected() {
        let set = FeatureSet::extract(&sample(1));
        let mut strings = set.to_feature_strings();
        strings.pop();
        let err = FeatureSet::from_feature_strings(strings.iter().map(|(k, s)| (*k, s.as_str())));
        assert!(err.is_err());
    }
}
