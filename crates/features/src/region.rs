//! Simple region growing segmentation (§4.8).
//!
//! The paper's classic stack-based region grower, preceded by its exact
//! preprocessing chain:
//!
//! 1. band-combine to gray (`{0.114, 0.587, 0.299}`);
//! 2. binarise at the histogram's minimum-fuzziness threshold;
//! 3. morphological close + open with the 5×5 box element
//!    (dilate, erode, erode, dilate);
//! 4. label 8-connected components of equal binary value, counting
//!    regions, holes (components of value 0) and *major regions*
//!    (components covering at least [`RegionConfig::major_fraction`] of
//!    the raster — the paper reports `Majorregions : 2` without defining
//!    the cutoff; 1% is our documented choice).
//!
//! Output matches the pseudocode's `run()`: `numberOfRegions`, `numhole`,
//! `majorRegions`, serialised as `SRG <regions> <holes> <major>` for the
//! `MAJORREGIONS` column (the paper stores only the major-region count;
//! we keep all three — they are free and the tests pin them).

use crate::error::{FeatureError, Result};
use cbvr_imgproc::morph::paper_morphology_chain;
use cbvr_imgproc::threshold::binarize_fuzzy;
use cbvr_imgproc::{GrayImage, RgbImage};

/// Tunables for the region grower.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegionConfig {
    /// Fraction of total pixels a component needs to count as "major".
    pub major_fraction: f64,
    /// Apply the §4.8 morphological cleanup before labelling.
    pub morphology: bool,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig { major_fraction: 0.01, morphology: true }
    }
}

/// Segmentation census of one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionGrowing {
    /// Number of connected components (foreground and background alike,
    /// as the pseudocode counts them).
    pub regions: u32,
    /// Number of background-valued components ("holes").
    pub holes: u32,
    /// Number of components covering at least the major fraction.
    pub major_regions: u32,
}

impl RegionGrowing {
    /// Extract with the default configuration.
    pub fn extract(img: &RgbImage) -> RegionGrowing {
        Self::extract_with(img, RegionConfig::default())
    }

    /// Extract with an explicit configuration.
    pub fn extract_with(img: &RgbImage, config: RegionConfig) -> RegionGrowing {
        let gray = img.to_gray();
        let binary = binarize_fuzzy(&gray);
        let binary = if config.morphology { paper_morphology_chain(&binary) } else { binary };
        Self::label(&binary, config)
    }

    /// Label a prepared binary image (any non-zero pixel is foreground).
    pub fn label(binary: &GrayImage, config: RegionConfig) -> RegionGrowing {
        let (w, h) = binary.dimensions();
        let (wi, hi) = (w as i64, h as i64);
        let total = binary.pixel_count();
        let major_cutoff = ((total as f64) * config.major_fraction).ceil() as usize;

        let mut labels = vec![0u32; total];
        let idx = |x: i64, y: i64| (y * wi + x) as usize;
        let mut regions = 0u32;
        let mut holes = 0u32;
        let mut major = 0u32;
        let mut stack: Vec<(i64, i64)> = Vec::new();

        for y in 0..hi {
            for x in 0..wi {
                if labels[idx(x, y)] != 0 {
                    continue;
                }
                regions += 1;
                let value = binary.get(x as u32, y as u32).0;
                if value == 0 {
                    holes += 1;
                }
                let mut size = 0usize;
                labels[idx(x, y)] = regions;
                stack.push((x, y));
                while let Some((cx, cy)) = stack.pop() {
                    size += 1;
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            if dx == 0 && dy == 0 {
                                continue;
                            }
                            let (nx, ny) = (cx + dx, cy + dy);
                            if nx < 0 || ny < 0 || nx >= wi || ny >= hi {
                                continue;
                            }
                            let i = idx(nx, ny);
                            if labels[i] == 0 && binary.get(nx as u32, ny as u32).0 == value {
                                labels[i] = regions;
                                stack.push((nx, ny));
                            }
                        }
                    }
                }
                if size >= major_cutoff {
                    major += 1;
                }
            }
        }
        RegionGrowing { regions, holes, major_regions: major }
    }

    /// Native distance: mean relative difference over the three counts,
    /// in `[0, 1]`.
    pub fn distance(&self, other: &RegionGrowing) -> f64 {
        let rel = |a: u32, b: u32| -> f64 {
            let (a, b) = (a as f64, b as f64);
            let denom = a.max(b);
            if denom == 0.0 {
                0.0
            } else {
                (a - b).abs() / denom
            }
        };
        (rel(self.regions, other.regions)
            + rel(self.holes, other.holes)
            + rel(self.major_regions, other.major_regions))
            / 3.0
    }

    /// Feature string: `SRG <regions> <holes> <major>`.
    pub fn to_feature_string(&self) -> String {
        format!("SRG {} {} {}", self.regions, self.holes, self.major_regions)
    }

    /// Parse the feature string back.
    pub fn parse(s: &str) -> Result<RegionGrowing> {
        let mut t = s.split_whitespace();
        if t.next() != Some("SRG") {
            return Err(FeatureError::Parse("expected 'SRG' header".into()));
        }
        let mut next_u32 = |name: &str| -> Result<u32> {
            t.next()
                .ok_or_else(|| FeatureError::Parse(format!("missing {name}")))?
                .parse()
                .map_err(|e| FeatureError::Parse(format!("bad {name}: {e}")))
        };
        let regions = next_u32("regions")?;
        let holes = next_u32("holes")?;
        let major_regions = next_u32("major regions")?;
        Ok(RegionGrowing { regions, holes, major_regions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_imgproc::{Gray, Rgb};

    fn label_no_morph(binary: &GrayImage) -> RegionGrowing {
        RegionGrowing::label(binary, RegionConfig { major_fraction: 0.01, morphology: false })
    }

    #[test]
    fn single_region_constant_image() {
        let img = GrayImage::filled(10, 10, Gray(255)).unwrap();
        let r = label_no_morph(&img);
        assert_eq!(r.regions, 1);
        assert_eq!(r.holes, 0);
        assert_eq!(r.major_regions, 1);
    }

    #[test]
    fn all_background_counts_as_hole() {
        let img = GrayImage::filled(10, 10, Gray(0)).unwrap();
        let r = label_no_morph(&img);
        assert_eq!(r.regions, 1);
        assert_eq!(r.holes, 1);
    }

    #[test]
    fn two_blobs_on_background() {
        let mut img = GrayImage::new(20, 20).unwrap();
        for y in 2..6 {
            for x in 2..6 {
                img.put(x, y, Gray(255));
            }
        }
        for y in 12..18 {
            for x in 12..18 {
                img.put(x, y, Gray(255));
            }
        }
        let r = label_no_morph(&img);
        // Background + two blobs = 3 components; 1 hole (the background).
        assert_eq!(r.regions, 3);
        assert_eq!(r.holes, 1);
        // 16 and 36 pixels of 400: both ≥ 1% (4 px); background too.
        assert_eq!(r.major_regions, 3);
    }

    #[test]
    fn diagonal_pixels_are_8_connected() {
        let mut img = GrayImage::new(4, 4).unwrap();
        img.put(0, 0, Gray(255));
        img.put(1, 1, Gray(255));
        let r = label_no_morph(&img);
        // The two diagonal pixels merge; background splits? No — the
        // background is also 8-connected around them.
        assert_eq!(r.regions, 2);
        assert_eq!(r.holes, 1);
    }

    #[test]
    fn enclosed_hole_is_counted() {
        // Foreground ring with a background centre: 3 components,
        // 2 of them background (outside + enclosed hole).
        let mut img = GrayImage::new(9, 9).unwrap();
        for y in 2..7 {
            for x in 2..7 {
                img.put(x, y, Gray(255));
            }
        }
        img.put(4, 4, Gray(0));
        let r = label_no_morph(&img);
        assert_eq!(r.regions, 3);
        assert_eq!(r.holes, 2);
    }

    #[test]
    fn major_fraction_cutoff_applies() {
        let mut img = GrayImage::new(20, 20).unwrap();
        img.put(0, 0, Gray(255)); // 1-pixel speck: 0.25% of 400
        let strict = RegionGrowing::label(&img, RegionConfig { major_fraction: 0.01, morphology: false });
        assert_eq!(strict.regions, 2);
        assert_eq!(strict.major_regions, 1); // only the background
        let lax = RegionGrowing::label(&img, RegionConfig { major_fraction: 0.001, morphology: false });
        assert_eq!(lax.major_regions, 2);
    }

    #[test]
    fn full_pipeline_on_rgb_finds_structure() {
        // Bright disc on dark background → after thresholding, a small
        // number of clean regions.
        let mut img = RgbImage::filled(40, 40, Rgb::new(20, 20, 20)).unwrap();
        cbvr_imgproc::draw::fill_circle(&mut img, 20, 20, 10, Rgb::new(240, 240, 240));
        let r = RegionGrowing::extract(&img);
        assert_eq!(r.regions, 2, "{r:?}");
        assert_eq!(r.holes, 1);
        assert_eq!(r.major_regions, 2);
    }

    #[test]
    fn morphology_removes_speck_regions() {
        let mut img = RgbImage::filled(40, 40, Rgb::new(10, 10, 10)).unwrap();
        cbvr_imgproc::draw::fill_circle(&mut img, 20, 20, 9, Rgb::new(250, 250, 250));
        // Pepper one isolated bright pixel.
        img.put(2, 2, Rgb::new(250, 250, 250));
        let with = RegionGrowing::extract_with(&img, RegionConfig::default());
        let without =
            RegionGrowing::extract_with(&img, RegionConfig { morphology: false, ..Default::default() });
        assert!(with.regions < without.regions, "with {with:?} vs without {without:?}");
    }

    #[test]
    fn distance_properties() {
        let a = RegionGrowing { regions: 4, holes: 1, major_regions: 2 };
        let b = RegionGrowing { regions: 8, holes: 2, major_regions: 2 };
        assert_eq!(a.distance(&a), 0.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        assert!(a.distance(&b) > 0.0 && a.distance(&b) <= 1.0);
        let zero = RegionGrowing { regions: 0, holes: 0, major_regions: 0 };
        assert_eq!(zero.distance(&zero), 0.0);
    }

    #[test]
    fn feature_string_round_trip() {
        let r = RegionGrowing { regions: 7, holes: 3, major_regions: 2 };
        let s = r.to_feature_string();
        assert_eq!(s, "SRG 7 3 2");
        assert_eq!(RegionGrowing::parse(&s).unwrap(), r);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(RegionGrowing::parse("GRS 1 2 3").is_err());
        assert!(RegionGrowing::parse("SRG 1 2").is_err());
        assert!(RegionGrowing::parse("SRG a b c").is_err());
    }
}
