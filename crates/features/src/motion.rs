//! Motion activity descriptor (extension feature).
//!
//! §1 lists motion among the "most common visual features used in visual
//! similarity match", and §6 plans to integrate more features; this is
//! the natural first one. It is a *clip-level* descriptor computed from
//! consecutive frame pairs:
//!
//! - **intensity**: mean and standard deviation of the per-pair mean
//!   absolute gray difference (how much, and how unevenly, the clip
//!   moves — cuts make the deviation spike);
//! - **spatial histogram**: per 8×8 block, the average temporal
//!   difference, quantised into [`MAG_BINS`] magnitude bins (separates
//!   "everything moves a little" from "one object moves a lot").
//!
//! Distinguishes sports (fast, spatially concentrated motion) from
//! e-learning/news (static) even when single-frame features agree.

use crate::error::{FeatureError, Result};
use cbvr_imgproc::RgbImage;

/// Magnitude histogram bins.
pub const MAG_BINS: usize = 8;
/// Block side for the spatial histogram.
const BLOCK: u32 = 8;
/// Magnitude bin width in gray levels (bin 7 is open-ended).
const BIN_WIDTH: f64 = 4.0;

/// The motion activity descriptor.
#[derive(Clone, Debug, PartialEq)]
pub struct MotionActivity {
    /// Mean of per-pair mean absolute differences.
    pub mean_intensity: f64,
    /// Standard deviation of per-pair differences (cut spikiness).
    pub std_intensity: f64,
    /// Normalised block-motion magnitude histogram.
    pub histogram: Vec<f64>,
}

impl MotionActivity {
    /// Extract from an ordered frame sequence. Sequences with fewer than
    /// two frames yield the zero descriptor (no motion observable).
    pub fn extract(frames: &[RgbImage]) -> MotionActivity {
        if frames.len() < 2 {
            return MotionActivity {
                mean_intensity: 0.0,
                std_intensity: 0.0,
                histogram: vec![0.0; MAG_BINS],
            };
        }
        let grays: Vec<_> = frames.iter().map(RgbImage::to_gray).collect();
        let mut pair_means = Vec::with_capacity(grays.len() - 1);
        let mut histogram = vec![0.0f64; MAG_BINS];
        let mut blocks_total = 0u64;

        for pair in grays.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            pair_means.push(a.mean_abs_diff(b).expect("same clip dimensions"));

            let (w, h) = a.dimensions();
            let mut by = 0;
            while by < h {
                let mut bx = 0;
                while bx < w {
                    let mut sum = 0u64;
                    let mut n = 0u64;
                    for y in by..(by + BLOCK).min(h) {
                        for x in bx..(bx + BLOCK).min(w) {
                            sum += (a.get(x, y).0 as i64 - b.get(x, y).0 as i64).unsigned_abs();
                            n += 1;
                        }
                    }
                    let magnitude = sum as f64 / n as f64;
                    let bin = ((magnitude / BIN_WIDTH) as usize).min(MAG_BINS - 1);
                    histogram[bin] += 1.0;
                    blocks_total += 1;
                    bx += BLOCK;
                }
                by += BLOCK;
            }
        }

        let mean = pair_means.iter().sum::<f64>() / pair_means.len() as f64;
        let var = pair_means.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>()
            / pair_means.len() as f64;
        if blocks_total > 0 {
            for b in &mut histogram {
                *b /= blocks_total as f64;
            }
        }
        MotionActivity { mean_intensity: mean, std_intensity: var.sqrt(), histogram }
    }

    /// Native distance: equal-weight mix of squashed intensity gaps and
    /// the histogram L1, in `[0, 1]`.
    pub fn distance(&self, other: &MotionActivity) -> f64 {
        let squash = |v: f64| v / (v + 10.0); // gray-level scale → [0,1)
        let d_mean = (squash(self.mean_intensity) - squash(other.mean_intensity)).abs();
        let d_std = (squash(self.std_intensity) - squash(other.std_intensity)).abs();
        let d_hist = crate::distance::l1(&self.histogram, &other.histogram) / 2.0;
        (d_mean + d_std + d_hist) / 3.0
    }

    /// Feature string: `MOT 10 <mean> <std> <8 bins>`.
    pub fn to_feature_string(&self) -> String {
        let mut s = format!("MOT {} {} {}", 2 + MAG_BINS, self.mean_intensity, self.std_intensity);
        for b in &self.histogram {
            s.push(' ');
            s.push_str(&format!("{b}"));
        }
        s
    }

    /// Parse the feature string back.
    pub fn parse(s: &str) -> Result<MotionActivity> {
        let mut t = s.split_whitespace();
        if t.next() != Some("MOT") {
            return Err(FeatureError::Parse("expected 'MOT' header".into()));
        }
        let dim: usize = t
            .next()
            .ok_or_else(|| FeatureError::Parse("missing dimension".into()))?
            .parse()
            .map_err(|e| FeatureError::Parse(format!("bad dimension: {e}")))?;
        if dim != 2 + MAG_BINS {
            return Err(FeatureError::Parse(format!("expected dim {}, got {dim}", 2 + MAG_BINS)));
        }
        let values: std::result::Result<Vec<f64>, _> = t.map(str::parse).collect();
        let values = values.map_err(|e| FeatureError::Parse(format!("bad value: {e}")))?;
        if values.len() != 2 + MAG_BINS {
            return Err(FeatureError::Parse(format!(
                "expected {} values, got {}",
                2 + MAG_BINS,
                values.len()
            )));
        }
        Ok(MotionActivity {
            mean_intensity: values[0],
            std_intensity: values[1],
            histogram: values[2..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_imgproc::{draw, Rgb};

    fn static_clip(n: usize) -> Vec<RgbImage> {
        vec![RgbImage::filled(32, 32, Rgb::new(100, 100, 100)).unwrap(); n]
    }

    fn moving_clip(n: usize, step: i32) -> Vec<RgbImage> {
        (0..n)
            .map(|i| {
                let mut img = RgbImage::filled(32, 32, Rgb::new(30, 30, 30)).unwrap();
                draw::fill_circle(&mut img, 4 + step * i as i32, 16, 4, Rgb::new(240, 240, 240));
                img
            })
            .collect()
    }

    #[test]
    fn static_clip_has_zero_motion() {
        let m = MotionActivity::extract(&static_clip(6));
        assert_eq!(m.mean_intensity, 0.0);
        assert_eq!(m.std_intensity, 0.0);
        // All block mass in the zero-magnitude bin.
        assert!((m.histogram[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn faster_motion_scores_higher_intensity() {
        let slow = MotionActivity::extract(&moving_clip(8, 1));
        let fast = MotionActivity::extract(&moving_clip(8, 4));
        assert!(fast.mean_intensity > slow.mean_intensity);
        // Fast motion shifts the histogram's centre of mass upward.
        let centre = |h: &[f64]| h.iter().enumerate().map(|(i, v)| i as f64 * v).sum::<f64>();
        assert!(
            centre(&fast.histogram) > centre(&slow.histogram),
            "fast {:?} vs slow {:?}",
            fast.histogram,
            slow.histogram
        );
    }

    #[test]
    fn cuts_spike_the_deviation() {
        // Smooth motion vs the same plus one hard cut.
        let smooth = moving_clip(8, 2);
        let mut with_cut = moving_clip(8, 2);
        with_cut[4] = RgbImage::filled(32, 32, Rgb::new(250, 10, 10)).unwrap();
        let a = MotionActivity::extract(&smooth);
        let b = MotionActivity::extract(&with_cut);
        assert!(b.std_intensity > a.std_intensity * 2.0, "{} vs {}", b.std_intensity, a.std_intensity);
    }

    #[test]
    fn short_sequences_yield_zero_descriptor() {
        for frames in [vec![], static_clip(1)] {
            let m = MotionActivity::extract(&frames);
            assert_eq!(m.mean_intensity, 0.0);
            assert!(m.histogram.iter().all(|&b| b == 0.0));
        }
    }

    #[test]
    fn histogram_is_normalised() {
        let m = MotionActivity::extract(&moving_clip(10, 3));
        let sum: f64 = m.histogram.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn distance_properties() {
        let a = MotionActivity::extract(&static_clip(5));
        let b = MotionActivity::extract(&moving_clip(5, 4));
        assert_eq!(a.distance(&a), 0.0);
        assert!(a.distance(&b) > 0.05);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        assert!(a.distance(&b) <= 1.0);
    }

    #[test]
    fn separates_sports_from_news_style_motion() {
        use cbvr_video::{Category, GeneratorConfig, VideoGenerator};
        let g = VideoGenerator::new(GeneratorConfig {
            width: 64,
            height: 48,
            shots_per_video: 1,
            min_shot_frames: 10,
            max_shot_frames: 10,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let sports = g.generate(Category::Sports, 1).unwrap();
        let news = g.generate(Category::News, 1).unwrap();
        let ms = MotionActivity::extract(sports.frames());
        let mn = MotionActivity::extract(news.frames());
        assert!(
            ms.mean_intensity > mn.mean_intensity,
            "sports {} should out-move news {}",
            ms.mean_intensity,
            mn.mean_intensity
        );
    }

    #[test]
    fn feature_string_round_trip() {
        let m = MotionActivity::extract(&moving_clip(6, 2));
        let s = m.to_feature_string();
        assert!(s.starts_with("MOT 10 "));
        let back = MotionActivity::parse(&s).unwrap();
        assert!((back.mean_intensity - m.mean_intensity).abs() < 1e-12);
        assert_eq!(back.histogram.len(), MAG_BINS);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(MotionActivity::parse("TOM 10 0 0 0 0 0 0 0 0 0 0").is_err());
        assert!(MotionActivity::parse("MOT 9 0 0 0 0 0 0 0 0 0").is_err());
        assert!(MotionActivity::parse("MOT 10 1 2 3").is_err());
    }
}
