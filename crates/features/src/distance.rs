//! Vector dissimilarity measures shared by the descriptors.
//!
//! Each descriptor has a *native* distance (the one its literature uses);
//! these are the underlying kernels. All functions treat the inputs as
//! equal-length slices and panic on length mismatch only in debug builds —
//! callers validate shapes at the descriptor level.

/// L1 (city-block) distance.
pub fn l1(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// L2 (Euclidean) distance.
pub fn l2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Chi-squared histogram distance: `Σ (x-y)² / (x+y)` over non-empty bins.
pub fn chi2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .filter(|(x, y)| **x + **y > 0.0)
        .map(|(x, y)| (x - y) * (x - y) / (x + y))
        .sum()
}

/// Histogram-intersection *dissimilarity*: `1 − Σ min(x̂, ŷ)` on the
/// normalised inputs; 0 for identical distributions, 1 for disjoint.
/// Returns 1 when either histogram is empty.
pub fn intersection_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let sa: f64 = a.iter().sum();
    let sb: f64 = b.iter().sum();
    if sa <= 0.0 || sb <= 0.0 {
        return 1.0;
    }
    let overlap: f64 = a.iter().zip(b).map(|(x, y)| (x / sa).min(y / sb)).sum();
    (1.0 - overlap).max(0.0)
}

/// Cosine dissimilarity: `1 − cos(a, b)`, in `[0, 2]`. Returns 1 when a
/// vector is all-zero.
pub fn cosine_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot / (na * nb)
}

/// Jensen–Shannon divergence between two histograms (normalised
/// internally), in `[0, ln 2]`. Symmetric and bounded, unlike KL.
pub fn jensen_shannon(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let sa: f64 = a.iter().sum();
    let sb: f64 = b.iter().sum();
    if sa <= 0.0 || sb <= 0.0 {
        return if sa == sb { 0.0 } else { std::f64::consts::LN_2 };
    }
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let p = x / sa;
        let q = y / sb;
        let m = 0.5 * (p + q);
        if p > 0.0 {
            acc += 0.5 * p * (p / m).ln();
        }
        if q > 0.0 {
            acc += 0.5 * q * (q / m).ln();
        }
    }
    acc.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 4] = [1.0, 2.0, 3.0, 4.0];
    const B: [f64; 4] = [4.0, 3.0, 2.0, 1.0];

    #[test]
    fn l1_l2_known_values() {
        assert_eq!(l1(&A, &B), 8.0);
        assert!((l2(&A, &B) - 20.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn identity_of_indiscernibles() {
        for f in [l1, l2, chi2, intersection_distance, cosine_distance, jensen_shannon] {
            assert!(f(&A, &A).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetry() {
        for f in [l1, l2, chi2, intersection_distance, cosine_distance, jensen_shannon] {
            assert!((f(&A, &B) - f(&B, &A)).abs() < 1e-12);
        }
    }

    #[test]
    fn intersection_disjoint_is_one() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((intersection_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_empty_histogram() {
        let z = [0.0, 0.0];
        assert_eq!(intersection_distance(&z, &A[..2]), 1.0);
    }

    #[test]
    fn cosine_orthogonal_is_one() {
        let a = [1.0, 0.0];
        let b = [0.0, 5.0];
        assert!((cosine_distance(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(cosine_distance(&[0.0, 0.0], &b), 1.0);
    }

    #[test]
    fn cosine_scale_invariant() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!(cosine_distance(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn js_bounded_by_ln2() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        let d = jensen_shannon(&a, &b);
        assert!((d - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn chi2_ignores_empty_bins() {
        let a = [0.0, 1.0];
        let b = [0.0, 3.0];
        assert!((chi2(&a, &b) - 1.0).abs() < 1e-12);
    }
}
