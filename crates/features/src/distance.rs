//! Vector dissimilarity measures shared by the descriptors.
//!
//! Each descriptor has a *native* distance (the one its literature uses);
//! these are the underlying kernels. All functions treat the inputs as
//! equal-length slices and panic on length mismatch only in debug builds —
//! callers validate shapes at the descriptor level.
//!
//! The `*_f32` variants operate on columnar `f32` slabs (the query-path
//! arena) and carry an optional *cutoff*: when the partial distance already
//! exceeds the cutoff the kernel returns `None` ("abandoned"). Every partial
//! sum they compare against the cutoff is a sum of non-negative terms, and
//! rounded-to-nearest float addition of a non-negative term never decreases
//! a non-negative accumulator, so a partial sum is always a true lower bound
//! of the full computed distance — abandonment is exact, never speculative.

/// L1 (city-block) distance.
pub fn l1(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// L2 (Euclidean) distance.
pub fn l2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Chi-squared histogram distance: `Σ (x-y)² / (|x|+|y|)` over non-empty
/// bins. The denominator uses absolute values so the measure is symmetric
/// under sign flips (`chi2(-a, -b) == chi2(a, b)`) and never negative even
/// on signed inputs; for the non-negative histograms the descriptors feed
/// it, this is identical to the textbook `Σ (x-y)² / (x+y)`.
pub fn chi2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .filter(|(x, y)| x.abs() + y.abs() > 0.0)
        .map(|(x, y)| (x - y) * (x - y) / (x.abs() + y.abs()))
        .sum()
}

/// Histogram-intersection *dissimilarity*: `1 − Σ min(x̂, ŷ)` on the
/// normalised inputs; 0 for identical distributions, 1 for disjoint.
/// Returns 1 when either histogram is empty.
pub fn intersection_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let sa: f64 = a.iter().sum();
    let sb: f64 = b.iter().sum();
    if sa <= 0.0 || sb <= 0.0 {
        return 1.0;
    }
    let overlap: f64 = a.iter().zip(b).map(|(x, y)| (x / sa).min(y / sb)).sum();
    (1.0 - overlap).max(0.0)
}

/// Cosine dissimilarity: `1 − cos(a, b)`, in `[0, 2]`. Returns 1 when a
/// vector is all-zero or its norm is denormal (too small for the division
/// to be meaningful — `dot / (na * nb)` can overflow to ±inf otherwise).
pub fn cosine_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na < f64::MIN_POSITIVE || nb < f64::MIN_POSITIVE {
        return 1.0;
    }
    (1.0 - dot / (na * nb)).clamp(0.0, 2.0)
}

/// Jensen–Shannon divergence between two histograms (normalised
/// internally), in `[0, ln 2]`. Symmetric and bounded, unlike KL.
pub fn jensen_shannon(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let sa: f64 = a.iter().sum();
    let sb: f64 = b.iter().sum();
    if sa <= 0.0 || sb <= 0.0 {
        return if sa == sb { 0.0 } else { std::f64::consts::LN_2 };
    }
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let p = x / sa;
        let q = y / sb;
        let m = 0.5 * (p + q);
        if p > 0.0 {
            acc += 0.5 * p * (p / m).ln();
        }
        if q > 0.0 {
            acc += 0.5 * q * (q / m).ln();
        }
    }
    acc.max(0.0)
}

// ---------------------------------------------------------------------------
// Bounded f32 kernels for the columnar query arena.
// ---------------------------------------------------------------------------

/// Result of a bounded kernel: the distance when it was fully computed (and
/// did not exceed the cutoff), plus the number of vector elements the kernel
/// actually visited (the cost accounting unit for the cascade telemetry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedDistance {
    /// `Some(d)` when the full distance was computed and `d <= cutoff` (or
    /// no finite cutoff was given); `None` when the kernel proved the
    /// distance exceeds the cutoff and abandoned early.
    pub distance: Option<f64>,
    /// Number of elements (slice positions) visited before returning.
    pub elements: u32,
}

impl BoundedDistance {
    fn done(distance: f64, elements: usize) -> Self {
        Self { distance: Some(distance), elements: elements as u32 }
    }

    fn abandoned(elements: usize) -> Self {
        Self { distance: None, elements: elements as u32 }
    }
}

/// How many elements between cutoff checks. A power of two keeps the check
/// branch cheap and off the inner accumulation path.
const CHECK_EVERY: usize = 32;

/// Sum of a slab vector, accumulated in `f64` in element order.
pub fn mass_f32(v: &[f32]) -> f64 {
    let mut s = 0.0f64;
    for &x in v {
        s += x as f64;
    }
    s
}

/// Euclidean norm of a slab vector, accumulated in `f64` in element order.
pub fn l2_norm_f32(v: &[f32]) -> f64 {
    let mut s = 0.0f64;
    for &x in v {
        let x = x as f64;
        s += x * x;
    }
    s.sqrt()
}

/// Diagonal of the RGB cube — the normaliser the naive signature uses.
pub fn rgb_diag() -> f64 {
    (3.0f64 * 255.0 * 255.0).sqrt()
}

/// Bounded L2. Partial sums of squares are non-decreasing, so once
/// `sqrt(partial) > cutoff` the final distance must exceed the cutoff too.
/// The accumulation is element-order identical to [`l2`] on the widened
/// inputs, so with `cutoff = ∞` the result is bit-identical.
pub fn l2_f32(a: &[f32], b: &[f32], cutoff: f64) -> BoundedDistance {
    debug_assert_eq!(a.len(), b.len());
    let len = a.len();
    let mut sum = 0.0f64;
    let mut done = 0usize;
    while done < len {
        let end = (done + CHECK_EVERY).min(len);
        for i in done..end {
            let d = a[i] as f64 - b[i] as f64;
            sum += d * d;
        }
        done = end;
        if done < len && sum.sqrt() > cutoff {
            return BoundedDistance::abandoned(done);
        }
    }
    let d = sum.sqrt();
    if d > cutoff {
        return BoundedDistance::abandoned(len);
    }
    BoundedDistance::done(d, len)
}

/// Bounded scaled L1: `Σ|x−y| / divisor`. Partial absolute sums only grow,
/// and dividing by a positive constant is monotone, so the partial scaled
/// sum is an exact lower bound.
pub fn scaled_l1_f32(a: &[f32], b: &[f32], divisor: f64, cutoff: f64) -> BoundedDistance {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(divisor > 0.0);
    let len = a.len();
    let mut sum = 0.0f64;
    let mut done = 0usize;
    while done < len {
        let end = (done + CHECK_EVERY).min(len);
        for i in done..end {
            sum += (a[i] as f64 - b[i] as f64).abs();
        }
        done = end;
        if done < len && sum / divisor > cutoff {
            return BoundedDistance::abandoned(done);
        }
    }
    let d = sum / divisor;
    if d > cutoff {
        return BoundedDistance::abandoned(len);
    }
    BoundedDistance::done(d, len)
}

/// Bounded chi-squared with the symmetric `|x|+|y|` denominator. Every term
/// is non-negative, so partial sums lower-bound the total.
pub fn chi2_f32(a: &[f32], b: &[f32], cutoff: f64) -> BoundedDistance {
    debug_assert_eq!(a.len(), b.len());
    let len = a.len();
    let mut sum = 0.0f64;
    let mut done = 0usize;
    while done < len {
        let end = (done + CHECK_EVERY).min(len);
        for i in done..end {
            let x = a[i] as f64;
            let y = b[i] as f64;
            let denom = x.abs() + y.abs();
            if denom > 0.0 {
                let d = x - y;
                sum += d * d / denom;
            }
        }
        done = end;
        if done < len && sum > cutoff {
            return BoundedDistance::abandoned(done);
        }
    }
    if sum > cutoff {
        return BoundedDistance::abandoned(len);
    }
    BoundedDistance::done(sum, len)
}

/// Bounded Jensen–Shannon on raw (unnormalised) histograms whose masses the
/// caller precomputed (`mass_f32` on each side, so the normalisation matches
/// [`jensen_shannon`] bit for bit). Per-bin contributions are non-negative
/// by the log-sum inequality; float rounding can dip a term ~1e-16 below
/// zero, which the caller's score-level epsilon absorbs.
pub fn jensen_shannon_f32(
    a: &[f32],
    b: &[f32],
    mass_a: f64,
    mass_b: f64,
    cutoff: f64,
) -> BoundedDistance {
    debug_assert_eq!(a.len(), b.len());
    if mass_a <= 0.0 || mass_b <= 0.0 {
        let d = if mass_a == mass_b { 0.0 } else { std::f64::consts::LN_2 };
        if d > cutoff {
            return BoundedDistance::abandoned(0);
        }
        return BoundedDistance::done(d, 0);
    }
    let len = a.len();
    let mut acc = 0.0f64;
    let mut done = 0usize;
    while done < len {
        let end = (done + CHECK_EVERY).min(len);
        for i in done..end {
            let p = a[i] as f64 / mass_a;
            let q = b[i] as f64 / mass_b;
            let m = 0.5 * (p + q);
            if p > 0.0 {
                acc += 0.5 * p * (p / m).ln();
            }
            if q > 0.0 {
                acc += 0.5 * q * (q / m).ln();
            }
        }
        done = end;
        if done < len && acc > cutoff {
            return BoundedDistance::abandoned(done);
        }
    }
    let d = acc.max(0.0);
    if d > cutoff {
        return BoundedDistance::abandoned(len);
    }
    BoundedDistance::done(d, len)
}

/// Bounded naive-signature distance over a flat `[r,g,b, r,g,b, …]` slab:
/// mean per-point RGB Euclidean distance divided by the cube diagonal.
/// Per-point distances are non-negative, so the running sum over points is
/// an exact lower bound; the check runs every 8 points (24 elements).
pub fn naive_rgb_f32(a: &[f32], b: &[f32], cutoff: f64) -> BoundedDistance {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len() % 3, 0);
    let points = a.len() / 3;
    if points == 0 {
        return BoundedDistance::done(0.0, 0);
    }
    let denom = points as f64 * rgb_diag();
    let mut sum = 0.0f64;
    let mut p = 0usize;
    while p < points {
        let end = (p + 8).min(points);
        for i in p..end {
            let dr = a[3 * i] as f64 - b[3 * i] as f64;
            let dg = a[3 * i + 1] as f64 - b[3 * i + 1] as f64;
            let db = a[3 * i + 2] as f64 - b[3 * i + 2] as f64;
            sum += (dr * dr + dg * dg + db * db).sqrt();
        }
        p = end;
        if p < points && sum / denom > cutoff {
            return BoundedDistance::abandoned(3 * p);
        }
    }
    let d = sum / denom;
    if d > cutoff {
        return BoundedDistance::abandoned(a.len());
    }
    BoundedDistance::done(d, a.len())
}

/// Region-statistics distance over a 3-element slab (regions, holes, major
/// regions): mean relative difference. Too cheap to bother abandoning — it
/// is the first cascade stage — so this always returns a distance.
pub fn regions_rel_f32(a: &[f32], b: &[f32]) -> BoundedDistance {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0.0f64;
    for i in 0..a.len() {
        let x = a[i] as f64;
        let y = b[i] as f64;
        let max = x.max(y);
        if max > 0.0 {
            sum += (x - y).abs() / max;
        }
    }
    BoundedDistance::done(sum / a.len().max(1) as f64, a.len())
}

/// Bounded histogram-intersection dissimilarity on raw histograms with
/// precomputed masses. The lower bound tracks how much normalised mass is
/// still unconsumed on each side: the remaining overlap can add at most
/// `min(rem_a/sa, rem_b/sb)`, so `1 − overlap − min(…)` (minus a rounding
/// slack) is a true lower bound of the final value.
pub fn intersection_f32(
    a: &[f32],
    b: &[f32],
    mass_a: f64,
    mass_b: f64,
    cutoff: f64,
) -> BoundedDistance {
    debug_assert_eq!(a.len(), b.len());
    if mass_a <= 0.0 || mass_b <= 0.0 {
        if 1.0 > cutoff {
            return BoundedDistance::abandoned(0);
        }
        return BoundedDistance::done(1.0, 0);
    }
    let len = a.len();
    let mut overlap = 0.0f64;
    let mut ca = 0.0f64; // consumed raw mass on each side
    let mut cb = 0.0f64;
    let mut done = 0usize;
    while done < len {
        let end = (done + CHECK_EVERY).min(len);
        for i in done..end {
            let x = a[i] as f64;
            let y = b[i] as f64;
            overlap += (x / mass_a).min(y / mass_b);
            ca += x;
            cb += y;
        }
        done = end;
        if done < len {
            let rem = ((mass_a - ca) / mass_a).max(0.0).min(((mass_b - cb) / mass_b).max(0.0));
            let lower = (1.0 - overlap - rem - 1e-12).max(0.0);
            if lower > cutoff {
                return BoundedDistance::abandoned(done);
            }
        }
    }
    let d = (1.0 - overlap).max(0.0);
    if d > cutoff {
        return BoundedDistance::abandoned(len);
    }
    BoundedDistance::done(d, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 4] = [1.0, 2.0, 3.0, 4.0];
    const B: [f64; 4] = [4.0, 3.0, 2.0, 1.0];

    fn to_f32(v: &[f64]) -> Vec<f32> {
        v.iter().map(|&x| x as f32).collect()
    }

    #[test]
    fn l1_l2_known_values() {
        assert_eq!(l1(&A, &B), 8.0);
        assert!((l2(&A, &B) - 20.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn identity_of_indiscernibles() {
        for f in [l1, l2, chi2, intersection_distance, cosine_distance, jensen_shannon] {
            assert!(f(&A, &A).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetry() {
        for f in [l1, l2, chi2, intersection_distance, cosine_distance, jensen_shannon] {
            assert!((f(&A, &B) - f(&B, &A)).abs() < 1e-12);
        }
    }

    #[test]
    fn intersection_disjoint_is_one() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((intersection_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_empty_histogram() {
        let z = [0.0, 0.0];
        assert_eq!(intersection_distance(&z, &A[..2]), 1.0);
    }

    #[test]
    fn cosine_orthogonal_is_one() {
        let a = [1.0, 0.0];
        let b = [0.0, 5.0];
        assert!((cosine_distance(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(cosine_distance(&[0.0, 0.0], &b), 1.0);
    }

    #[test]
    fn cosine_scale_invariant() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!(cosine_distance(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn cosine_denormal_norm_guarded() {
        let tiny = [1e-320f64, 0.0];
        let b = [1.0, 2.0];
        assert_eq!(cosine_distance(&tiny, &b), 1.0);
        assert_eq!(cosine_distance(&b, &tiny), 1.0);
        assert!(cosine_distance(&tiny, &tiny).is_finite());
    }

    #[test]
    fn js_bounded_by_ln2() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        let d = jensen_shannon(&a, &b);
        assert!((d - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn chi2_ignores_empty_bins() {
        let a = [0.0, 1.0];
        let b = [0.0, 3.0];
        assert!((chi2(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chi2_sign_symmetric() {
        let a = [1.0, -2.0, 3.0];
        let b = [-4.0, 3.0, 2.0];
        let na: Vec<f64> = a.iter().map(|x| -x).collect();
        let nb: Vec<f64> = b.iter().map(|x| -x).collect();
        let d = chi2(&a, &b);
        assert!(d >= 0.0);
        assert!((d - chi2(&na, &nb)).abs() < 1e-12);
        assert!((d - chi2(&b, &a)).abs() < 1e-12);
    }

    // ---- bounded f32 kernels ------------------------------------------

    #[test]
    fn bounded_l2_matches_unbounded() {
        let a: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| (i % 5) as f64 * 1.5).collect();
        let r = l2_f32(&to_f32(&a), &to_f32(&b), f64::INFINITY);
        assert_eq!(r.distance, Some(l2(&a, &b)));
        assert_eq!(r.elements, 100);
    }

    #[test]
    fn bounded_l2_abandons_only_above_cutoff() {
        let a: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..100).map(|i| (i + 3) as f32).collect();
        let full = l2_f32(&a, &b, f64::INFINITY).distance.unwrap();
        let kept = l2_f32(&a, &b, full);
        assert_eq!(kept.distance, Some(full));
        let dropped = l2_f32(&a, &b, full * 0.5);
        assert_eq!(dropped.distance, None);
        assert!(dropped.elements <= 100);
    }

    #[test]
    fn bounded_scaled_l1_matches() {
        let a: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..64).map(|i| (63 - i) as f64).collect();
        let r = scaled_l1_f32(&to_f32(&a), &to_f32(&b), 64.0, f64::INFINITY);
        assert_eq!(r.distance, Some(l1(&a, &b) / 64.0));
        assert_eq!(scaled_l1_f32(&to_f32(&a), &to_f32(&b), 64.0, 0.0).distance, None);
    }

    #[test]
    fn bounded_chi2_matches() {
        let a: Vec<f64> = (0..40).map(|i| (i % 9) as f64).collect();
        let b: Vec<f64> = (0..40).map(|i| (i % 4) as f64).collect();
        let r = chi2_f32(&to_f32(&a), &to_f32(&b), f64::INFINITY);
        assert_eq!(r.distance, Some(chi2(&a, &b)));
    }

    #[test]
    fn bounded_js_matches() {
        let a: Vec<f64> = (0..64).map(|i| (i % 11) as f64).collect();
        let b: Vec<f64> = (0..64).map(|i| ((i + 5) % 13) as f64).collect();
        let (fa, fb) = (to_f32(&a), to_f32(&b));
        let r = jensen_shannon_f32(&fa, &fb, mass_f32(&fa), mass_f32(&fb), f64::INFINITY);
        assert_eq!(r.distance, Some(jensen_shannon(&a, &b)));
        // Empty side behaves like the f64 kernel.
        let z = vec![0.0f32; 64];
        let r = jensen_shannon_f32(&z, &fb, 0.0, mass_f32(&fb), f64::INFINITY);
        assert_eq!(r.distance, Some(std::f64::consts::LN_2));
    }

    #[test]
    fn bounded_intersection_matches() {
        let a: Vec<f64> = (0..64).map(|i| (i % 6) as f64).collect();
        let b: Vec<f64> = (0..64).map(|i| ((i + 2) % 8) as f64).collect();
        let (fa, fb) = (to_f32(&a), to_f32(&b));
        let r = intersection_f32(&fa, &fb, mass_f32(&fa), mass_f32(&fb), f64::INFINITY);
        assert_eq!(r.distance, Some(intersection_distance(&a, &b)));
        let full = r.distance.unwrap();
        // Abandoning is sound: a cutoff below the true distance may abandon,
        // a cutoff at the true distance must keep it.
        let kept = intersection_f32(&fa, &fb, mass_f32(&fa), mass_f32(&fb), full);
        assert_eq!(kept.distance, Some(full));
    }

    #[test]
    fn bounded_naive_matches_pointwise_mean() {
        // 4 points, flat RGB slab.
        let a: Vec<f32> = vec![0.0, 0.0, 0.0, 255.0, 0.0, 0.0, 10.0, 20.0, 30.0, 1.0, 1.0, 1.0];
        let b: Vec<f32> = vec![0.0, 0.0, 0.0, 0.0, 255.0, 0.0, 10.0, 20.0, 30.0, 2.0, 2.0, 2.0];
        let r = naive_rgb_f32(&a, &b, f64::INFINITY);
        let mut expect = 0.0f64;
        for i in 0..4 {
            let dr = a[3 * i] as f64 - b[3 * i] as f64;
            let dg = a[3 * i + 1] as f64 - b[3 * i + 1] as f64;
            let db = a[3 * i + 2] as f64 - b[3 * i + 2] as f64;
            expect += (dr * dr + dg * dg + db * db).sqrt();
        }
        expect /= 4.0 * rgb_diag();
        assert_eq!(r.distance, Some(expect));
        assert_eq!(naive_rgb_f32(&a, &b, expect * 0.9).distance, None);
    }

    #[test]
    fn bounded_regions_matches() {
        let a = [5.0f32, 2.0, 1.0];
        let b = [10.0f32, 2.0, 0.0];
        let r = regions_rel_f32(&a, &b);
        let expect = (5.0 / 10.0 + 0.0 + 1.0) / 3.0;
        assert!((r.distance.unwrap() - expect).abs() < 1e-12);
    }
}
