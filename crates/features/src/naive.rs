//! Superficial (naive) similarity signature (§4.6).
//!
//! "Extract image signature with 25 representative pixels, each in R, G,
//! B. For each of 25 locations over image take 5 * 5 matrix & find mean
//! pixel value" — i.e. rescale to a 300×300 canvas (`baseSize`), sample a
//! 5×5 grid of locations, and average a window (`sampleSize = 15`, so
//! 30×30 pixels) around each.
//!
//! The stored string follows Fig. 8 exactly, Java `toString` warts
//! included: `NaiveVector java.awt.Color[r=0,g=0,b=0] ...`, and
//! [`NaiveSignature::parse`] reads that format back.

use crate::error::{FeatureError, Result};
use cbvr_imgproc::geom::{self, Interpolation};
use cbvr_imgproc::{Rgb, RgbImage};

/// Canvas side the frame is rescaled to before sampling.
pub const BASE_SIZE: u32 = 300;
/// Half-window around each sample point (full window 2×15 = 30 px).
pub const SAMPLE_SIZE: i64 = 15;
/// Grid side: 5×5 = 25 sample points.
pub const GRID: usize = 5;

/// Normalised grid coordinates: 0.1, 0.3, 0.5, 0.7, 0.9.
fn grid_position(i: usize) -> f64 {
    0.1 + 0.2 * i as f64
}

/// The 25-point mean-color signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaiveSignature {
    /// Row-major 5×5 grid of mean colors.
    signature: Vec<Rgb>,
}

impl NaiveSignature {
    /// Extract: rescale to 300×300 with nearest-neighbour interpolation
    /// (the pseudocode's `InterpolationNearest`) and average around each
    /// grid point.
    pub fn extract(img: &RgbImage) -> NaiveSignature {
        let scaled = geom::resize_rgb(img, BASE_SIZE, BASE_SIZE, Interpolation::Nearest)
            .expect("fixed nonzero target");
        let mut signature = Vec::with_capacity(GRID * GRID);
        for gy in 0..GRID {
            for gx in 0..GRID {
                signature.push(average_around(&scaled, grid_position(gx), grid_position(gy)));
            }
        }
        NaiveSignature { signature }
    }

    /// The 25 mean colors, row-major.
    pub fn colors(&self) -> &[Rgb] {
        &self.signature
    }

    /// Color at grid cell `(gx, gy)`.
    pub fn at(&self, gx: usize, gy: usize) -> Rgb {
        self.signature[gy * GRID + gx]
    }

    /// Native distance: mean per-point Euclidean RGB distance, normalised
    /// to `[0, 1]` by the RGB diagonal.
    pub fn distance(&self, other: &NaiveSignature) -> f64 {
        let diag = (3.0f64 * 255.0 * 255.0).sqrt();
        let sum: f64 = self
            .signature
            .iter()
            .zip(&other.signature)
            .map(|(a, b)| {
                let dr = a.r as f64 - b.r as f64;
                let dg = a.g as f64 - b.g as f64;
                let db = a.b as f64 - b.b as f64;
                (dr * dr + dg * dg + db * db).sqrt()
            })
            .sum();
        sum / (self.signature.len() as f64 * diag)
    }

    /// Fig. 8 string: `NaiveVector java.awt.Color[r=..,g=..,b=..] ...`.
    pub fn to_feature_string(&self) -> String {
        let mut s = String::from("NaiveVector");
        for c in &self.signature {
            s.push(' ');
            s.push_str(&format!("java.awt.Color[r={},g={},b={}]", c.r, c.g, c.b));
        }
        s
    }

    /// Parse the Fig. 8 string back.
    pub fn parse(s: &str) -> Result<NaiveSignature> {
        let mut t = s.split_whitespace();
        if t.next() != Some("NaiveVector") {
            return Err(FeatureError::Parse("expected 'NaiveVector' header".into()));
        }
        let mut signature = Vec::with_capacity(GRID * GRID);
        for token in t {
            signature.push(parse_awt_color(token)?);
        }
        if signature.len() != GRID * GRID {
            return Err(FeatureError::Parse(format!(
                "expected {} colors, got {}",
                GRID * GRID,
                signature.len()
            )));
        }
        Ok(NaiveSignature { signature })
    }
}

/// Average colors in the `±SAMPLE_SIZE` window around the normalised
/// position `(px, py)` on the scaled canvas, clamping at borders.
fn average_around(img: &RgbImage, px: f64, py: f64) -> Rgb {
    let cx = (px * BASE_SIZE as f64) as i64;
    let cy = (py * BASE_SIZE as f64) as i64;
    let mut acc = [0u64; 3];
    let mut n = 0u64;
    for y in (cy - SAMPLE_SIZE)..(cy + SAMPLE_SIZE) {
        for x in (cx - SAMPLE_SIZE)..(cx + SAMPLE_SIZE) {
            let p = img.get_clamped(x, y);
            acc[0] += p.r as u64;
            acc[1] += p.g as u64;
            acc[2] += p.b as u64;
            n += 1;
        }
    }
    Rgb::new((acc[0] / n) as u8, (acc[1] / n) as u8, (acc[2] / n) as u8)
}

/// Parse one `java.awt.Color[r=R,g=G,b=B]` token.
fn parse_awt_color(token: &str) -> Result<Rgb> {
    let inner = token
        .strip_prefix("java.awt.Color[")
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| FeatureError::Parse(format!("bad color token '{token}'")))?;
    let mut r = None;
    let mut g = None;
    let mut b = None;
    for part in inner.split(',') {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| FeatureError::Parse(format!("bad channel '{part}'")))?;
        let v: u8 = value
            .parse()
            .map_err(|e| FeatureError::Parse(format!("bad channel value '{value}': {e}")))?;
        match key {
            "r" => r = Some(v),
            "g" => g = Some(v),
            "b" => b = Some(v),
            other => return Err(FeatureError::Parse(format!("unknown channel '{other}'"))),
        }
    }
    match (r, g, b) {
        (Some(r), Some(g), Some(b)) => Ok(Rgb::new(r, g, b)),
        _ => Err(FeatureError::Parse(format!("incomplete color '{token}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_image_signature_is_flat() {
        let img = RgbImage::filled(40, 30, Rgb::new(12, 34, 56)).unwrap();
        let sig = NaiveSignature::extract(&img);
        assert_eq!(sig.colors().len(), 25);
        for &c in sig.colors() {
            assert_eq!(c, Rgb::new(12, 34, 56));
        }
    }

    #[test]
    fn signature_reflects_spatial_layout() {
        // Left half red, right half blue → left grid columns red-ish.
        let img = RgbImage::from_fn(100, 100, |x, _| {
            if x < 50 { Rgb::new(250, 0, 0) } else { Rgb::new(0, 0, 250) }
        })
        .unwrap();
        let sig = NaiveSignature::extract(&img);
        assert!(sig.at(0, 2).r > 200 && sig.at(0, 2).b < 50);
        assert!(sig.at(4, 2).b > 200 && sig.at(4, 2).r < 50);
    }

    #[test]
    fn scale_invariance() {
        // The same layout at different resolutions yields near-identical
        // signatures (that is the point of rescaling to a fixed canvas).
        let paint = |w: u32, h: u32| {
            RgbImage::from_fn(w, h, |x, _| {
                if x < w / 2 { Rgb::new(200, 40, 40) } else { Rgb::new(40, 40, 200) }
            })
            .unwrap()
        };
        let a = NaiveSignature::extract(&paint(60, 40));
        let b = NaiveSignature::extract(&paint(240, 160));
        assert!(a.distance(&b) < 0.03, "distance {}", a.distance(&b));
    }

    #[test]
    fn distance_properties() {
        let red = NaiveSignature::extract(&RgbImage::filled(20, 20, Rgb::new(255, 0, 0)).unwrap());
        let blue = NaiveSignature::extract(&RgbImage::filled(20, 20, Rgb::new(0, 0, 255)).unwrap());
        assert_eq!(red.distance(&red), 0.0);
        assert!((red.distance(&blue) - blue.distance(&red)).abs() < 1e-12);
        assert!(red.distance(&blue) > 0.5);
        assert!(red.distance(&blue) <= 1.0);
    }

    #[test]
    fn feature_string_round_trip() {
        let img = RgbImage::from_fn(50, 50, |x, y| Rgb::new((x * 5) as u8, (y * 5) as u8, 99)).unwrap();
        let sig = NaiveSignature::extract(&img);
        let s = sig.to_feature_string();
        assert!(s.starts_with("NaiveVector java.awt.Color[r="));
        assert_eq!(NaiveSignature::parse(&s).unwrap(), sig);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(NaiveSignature::parse("Naive java.awt.Color[r=0,g=0,b=0]").is_err());
        assert!(NaiveSignature::parse("NaiveVector notacolor").is_err());
        // Wrong count.
        let one = "NaiveVector java.awt.Color[r=0,g=0,b=0]";
        assert!(NaiveSignature::parse(one).is_err());
        // Bad channel value.
        let bad = format!("NaiveVector {}", vec!["java.awt.Color[r=300,g=0,b=0]"; 25].join(" "));
        assert!(NaiveSignature::parse(&bad).is_err());
        // Missing channel.
        let missing = format!("NaiveVector {}", vec!["java.awt.Color[r=0,g=0]"; 25].join(" "));
        assert!(NaiveSignature::parse(&missing).is_err());
    }

    #[test]
    fn awt_color_token_parsing() {
        assert_eq!(parse_awt_color("java.awt.Color[r=1,g=2,b=3]").unwrap(), Rgb::new(1, 2, 3));
        assert!(parse_awt_color("java.awt.Color[r=1,q=2,b=3]").is_err());
        assert!(parse_awt_color("[r=1,g=2,b=3]").is_err());
    }
}
