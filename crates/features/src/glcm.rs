//! Gray Level Co-occurrence Matrix texture (§4.3).
//!
//! Follows the paper's `GLCM_Texture` pseudocode:
//!
//! 1. preprocess to one gray band with the `{0.114, 0.587, 0.299}`
//!    band-combine matrix;
//! 2. tabulate horizontal co-occurrences at offset `step` (default 1),
//!    **symmetrically** (`glcm[a][b] += 1; glcm[b][a] += 1;
//!    pixelCounter += 2`);
//! 3. normalise by `pixelCounter`;
//! 4. derive angular second moment (ASM/energy), contrast, correlation,
//!    inverse difference moment (IDM) and entropy.
//!
//! One deliberate correction: the pseudocode divides the correlation sum
//! by `stdevx * stdevy` where `stdevx/y` are accumulated *variances*
//! (no square root is ever taken) — which is why Fig. 8 reports the
//! physically meaningless 2.27e-4. We take the square roots, giving the
//! textbook Haralick correlation in `[-1, 1]`. DESIGN.md records this.
//!
//! The feature string (stored in the `GLCM VARCHAR2(250)` column) is
//! `GLCM <pixelCounter> <asm> <contrast> <correlation> <idm> <entropy>`.

use crate::error::{FeatureError, Result};
use cbvr_imgproc::{GrayImage, RgbImage};

/// Number of gray levels tabulated.
const LEVELS: usize = 256;

/// The Haralick statistics derived from the co-occurrence matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GlcmTexture {
    /// Number of (symmetric) co-occurrence observations.
    pub pixel_counter: u64,
    /// Angular second moment (energy): `Σ p²`, in `(0, 1]`.
    pub asm: f64,
    /// Contrast: `Σ (a−b)² p`.
    pub contrast: f64,
    /// Correlation in `[-1, 1]`; 0 for a constant image (zero variance).
    pub correlation: f64,
    /// Inverse difference moment: `Σ p / (1 + (a−b)²)`, in `(0, 1]`.
    pub idm: f64,
    /// Entropy: `−Σ p ln p`, in `[0, ln(LEVELS²)]`.
    pub entropy: f64,
}

impl GlcmTexture {
    /// Extract with the paper's default horizontal offset of 1 pixel.
    pub fn extract(img: &RgbImage) -> GlcmTexture {
        Self::extract_gray_with_step(&img.to_gray(), 1)
    }

    /// Extract from a pre-converted gray image with a custom offset.
    /// Images narrower than `step + 1` pixels produce the degenerate
    /// all-zero texture (no pairs to tabulate).
    pub fn extract_gray_with_step(img: &GrayImage, step: u32) -> GlcmTexture {
        let (w, h) = img.dimensions();
        let step = step.max(1);

        // Dense 256×256 joint distribution, f64 after normalisation.
        let mut glcm = vec![0.0f64; LEVELS * LEVELS];
        let mut pixel_counter = 0u64;

        if w > step {
            for y in 0..h {
                for x in 0..(w - step) {
                    let a = img.get(x, y).0 as usize;
                    let b = img.get(x + step, y).0 as usize;
                    glcm[a * LEVELS + b] += 1.0;
                    glcm[b * LEVELS + a] += 1.0;
                    pixel_counter += 2;
                }
            }
        }

        if pixel_counter == 0 {
            return GlcmTexture {
                pixel_counter: 0,
                asm: 0.0,
                contrast: 0.0,
                correlation: 0.0,
                idm: 0.0,
                entropy: 0.0,
            };
        }

        let n = pixel_counter as f64;
        for p in &mut glcm {
            *p /= n;
        }

        // Marginal means and variances (symmetric matrix → equal marginals,
        // but compute both as the pseudocode does).
        let mut mean_x = 0.0;
        let mut mean_y = 0.0;
        for a in 0..LEVELS {
            for b in 0..LEVELS {
                let p = glcm[a * LEVELS + b];
                if p == 0.0 {
                    continue;
                }
                mean_x += a as f64 * p;
                mean_y += b as f64 * p;
            }
        }
        let mut var_x = 0.0;
        let mut var_y = 0.0;
        let mut asm = 0.0;
        let mut contrast = 0.0;
        let mut corr_num = 0.0;
        let mut idm = 0.0;
        let mut entropy = 0.0;
        for a in 0..LEVELS {
            for b in 0..LEVELS {
                let p = glcm[a * LEVELS + b];
                if p == 0.0 {
                    continue;
                }
                let da = a as f64 - mean_x;
                let db = b as f64 - mean_y;
                var_x += da * da * p;
                var_y += db * db * p;
                asm += p * p;
                let d = a as f64 - b as f64;
                contrast += d * d * p;
                corr_num += da * db * p;
                idm += p / (1.0 + d * d);
                entropy -= p * p.ln();
            }
        }
        let denom = (var_x * var_y).sqrt();
        let correlation = if denom > 0.0 { corr_num / denom } else { 0.0 };

        GlcmTexture { pixel_counter, asm, contrast, correlation, idm, entropy }
    }

    /// Scale-free statistics vector used for distances: each component is
    /// mapped into roughly `[0, 1]` so no single statistic dominates.
    pub fn normalized_vector(&self) -> [f64; 5] {
        let max_contrast = ((LEVELS - 1) * (LEVELS - 1)) as f64;
        let max_entropy = ((LEVELS * LEVELS) as f64).ln();
        [
            self.asm,
            self.contrast / max_contrast,
            (self.correlation + 1.0) / 2.0,
            self.idm,
            self.entropy / max_entropy,
        ]
    }

    /// Native distance: Euclidean on the normalised statistics.
    pub fn distance(&self, other: &GlcmTexture) -> f64 {
        crate::distance::l2(&self.normalized_vector(), &other.normalized_vector())
    }

    /// Feature string for the `GLCM` column.
    pub fn to_feature_string(&self) -> String {
        format!(
            "GLCM {} {} {} {} {} {}",
            self.pixel_counter, self.asm, self.contrast, self.correlation, self.idm, self.entropy
        )
    }

    /// Parse the feature string back.
    pub fn parse(s: &str) -> Result<GlcmTexture> {
        let mut t = s.split_whitespace();
        if t.next() != Some("GLCM") {
            return Err(FeatureError::Parse("expected GLCM header".into()));
        }
        let mut next_f64 = |name: &str| -> Result<f64> {
            t.next()
                .ok_or_else(|| FeatureError::Parse(format!("missing {name}")))?
                .parse()
                .map_err(|e| FeatureError::Parse(format!("bad {name}: {e}")))
        };
        let pixel_counter = next_f64("pixelCounter")? as u64;
        Ok(GlcmTexture {
            pixel_counter,
            asm: next_f64("asm")?,
            contrast: next_f64("contrast")?,
            correlation: next_f64("correlation")?,
            idm: next_f64("idm")?,
            entropy: next_f64("entropy")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_imgproc::{Gray, Rgb};

    fn gray(w: u32, h: u32, f: impl Fn(u32, u32) -> u8) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| Gray(f(x, y))).unwrap()
    }

    #[test]
    fn constant_image_is_maximally_ordered() {
        let t = GlcmTexture::extract_gray_with_step(&gray(8, 8, |_, _| 77), 1);
        // Single populated cell → ASM = 1, entropy = 0, contrast = 0, IDM = 1.
        assert!((t.asm - 1.0).abs() < 1e-12);
        assert_eq!(t.contrast, 0.0);
        assert!((t.idm - 1.0).abs() < 1e-12);
        assert!(t.entropy.abs() < 1e-12);
        assert_eq!(t.correlation, 0.0); // zero variance → defined as 0
        assert_eq!(t.pixel_counter, 8 * 7 * 2);
    }

    #[test]
    fn checkerboard_has_max_contrast_pairs() {
        // Alternating 0/255 columns: every horizontal pair is (0,255) or
        // (255,0), so contrast = 255².
        let t = GlcmTexture::extract_gray_with_step(&gray(8, 8, |x, _| if x % 2 == 0 { 0 } else { 255 }), 1);
        assert!((t.contrast - 255.0 * 255.0).abs() < 1e-6);
        // Perfectly anti-correlated.
        assert!(t.correlation < -0.99, "correlation {}", t.correlation);
        assert!(t.idm < 0.001);
    }

    #[test]
    fn smooth_gradient_is_highly_correlated() {
        let t = GlcmTexture::extract_gray_with_step(&gray(64, 8, |x, _| (x * 4) as u8), 1);
        assert!(t.correlation > 0.95, "correlation {}", t.correlation);
        assert!(t.contrast < 100.0);
    }

    #[test]
    fn entropy_orders_random_above_structured() {
        let noisy = gray(32, 32, |x, y| {
            (x.wrapping_mul(2654435761).wrapping_add(y.wrapping_mul(40503)) >> 8) as u8
        });
        let flat = gray(32, 32, |_, _| 100);
        let tn = GlcmTexture::extract_gray_with_step(&noisy, 1);
        let tf = GlcmTexture::extract_gray_with_step(&flat, 1);
        assert!(tn.entropy > tf.entropy + 1.0);
        assert!(tn.asm < tf.asm);
    }

    #[test]
    fn degenerate_width_yields_zero_texture() {
        let t = GlcmTexture::extract_gray_with_step(&gray(1, 10, |_, _| 5), 1);
        assert_eq!(t.pixel_counter, 0);
        assert_eq!(t.asm, 0.0);
    }

    #[test]
    fn distance_is_zero_for_self_and_symmetric() {
        let a = GlcmTexture::extract(&RgbImage::filled(8, 8, Rgb::new(10, 20, 30)).unwrap());
        let img = RgbImage::from_fn(8, 8, |x, _| Rgb::new((x * 30) as u8, 0, 0)).unwrap();
        let b = GlcmTexture::extract(&img);
        assert_eq!(a.distance(&a), 0.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        assert!(a.distance(&b) > 0.0);
    }

    #[test]
    fn feature_string_round_trip() {
        let img = RgbImage::from_fn(16, 16, |x, y| Rgb::new((x * y) as u8, x as u8, y as u8)).unwrap();
        let t = GlcmTexture::extract(&img);
        let s = t.to_feature_string();
        let back = GlcmTexture::parse(&s).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(GlcmTexture::parse("GABOR 1 2 3 4 5 6").is_err());
        assert!(GlcmTexture::parse("GLCM 1 2 3").is_err());
        assert!(GlcmTexture::parse("GLCM a b c d e f").is_err());
    }

    #[test]
    fn step_parameter_changes_statistics() {
        let img = gray(32, 8, |x, _| ((x / 2) * 16) as u8);
        let t1 = GlcmTexture::extract_gray_with_step(&img, 1);
        let t4 = GlcmTexture::extract_gray_with_step(&img, 4);
        assert!(t4.contrast > t1.contrast, "larger step spans bigger intensity jumps");
    }
}
