//! Property tests across all seven descriptors.

use cbvr_features::{Descriptor, FeatureKind, FeatureSet};
use cbvr_imgproc::RgbImage;
use proptest::prelude::*;

fn arb_image() -> impl Strategy<Value = RgbImage> {
    (4u32..28, 4u32..28)
        .prop_flat_map(|(w, h)| {
            proptest::collection::vec(any::<u8>(), (w * h * 3) as usize)
                .prop_map(move |data| RgbImage::from_raw(w, h, data).expect("exact length"))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_descriptor_string_round_trips(img in arb_image()) {
        for kind in FeatureKind::ALL {
            let d = Descriptor::extract(kind, &img);
            let s = d.to_feature_string();
            let back = Descriptor::parse(kind, &s).unwrap();
            prop_assert!(d.distance(&back).unwrap() < 1e-9, "{kind}: {s}");
        }
    }

    #[test]
    fn distances_are_symmetric_nonnegative_identity(a in arb_image(), b in arb_image()) {
        let fa = FeatureSet::extract(&a);
        let fb = FeatureSet::extract(&b);
        for kind in FeatureKind::ALL {
            let d_ab = fa.distance(&fb, kind);
            let d_ba = fb.distance(&fa, kind);
            prop_assert!(d_ab >= 0.0, "{kind} negative: {d_ab}");
            prop_assert!((d_ab - d_ba).abs() < 1e-9, "{kind} asymmetric");
            prop_assert!(fa.distance(&fa, kind) < 1e-12, "{kind} self-distance");
            prop_assert!(d_ab.is_finite(), "{kind} non-finite");
        }
    }

    #[test]
    fn bounded_descriptors_stay_bounded(img in arb_image()) {
        let set = FeatureSet::extract(&img);
        for v in set.correlogram.values() {
            prop_assert!((0.0..=1.0).contains(v));
        }
        for v in set.glcm.normalized_vector() {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
        }
        for v in set.tamura.normalized_vector() {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        prop_assert_eq!(set.histogram.total(), img.pixel_count() as u64);
    }

    #[test]
    fn extraction_is_pure(img in arb_image()) {
        prop_assert_eq!(FeatureSet::extract(&img), FeatureSet::extract(&img));
    }
}
