//! Property tests for the distance kernels: the chi-squared symmetric
//! denominator, the cosine denormal guard, and soundness of the bounded
//! f32 query-path kernels (abandon ⇒ true distance exceeds the cutoff;
//! no abandon ⇒ bit-identical to the unbounded kernel).

use cbvr_features::distance::{
    chi2, chi2_f32, cosine_distance, intersection_distance, intersection_f32, jensen_shannon,
    jensen_shannon_f32, l2, l2_f32, mass_f32, naive_rgb_f32, rgb_diag, scaled_l1_f32,
};
use proptest::prelude::*;

fn arb_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..512.0, len)
}

fn arb_signed_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-256.0f64..256.0, len)
}

fn pair(len: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (arb_vec(len..len + 1), arb_vec(len..len + 1))
}

fn to_f32(v: &[f64]) -> Vec<f32> {
    v.iter().map(|&x| x as f32).collect()
}

fn widen(v: &[f32]) -> Vec<f64> {
    v.iter().map(|&x| x as f64).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chi2_is_symmetric_and_nonnegative(ab in (0usize..24).prop_flat_map(|n| {
        (arb_signed_vec(n..n + 1), arb_signed_vec(n..n + 1))
    })) {
        let (a, b) = ab;
        let d = chi2(&a, &b);
        prop_assert!(d >= 0.0, "chi2 negative: {d}");
        prop_assert!(d.is_finite());
        prop_assert!((d - chi2(&b, &a)).abs() < 1e-9, "swap asymmetry");
        let na: Vec<f64> = a.iter().map(|x| -x).collect();
        let nb: Vec<f64> = b.iter().map(|x| -x).collect();
        prop_assert!((d - chi2(&na, &nb)).abs() < 1e-9, "sign-flip asymmetry");
    }

    #[test]
    fn chi2_matches_textbook_on_histograms(ab in (0usize..24).prop_flat_map(pair)) {
        let (a, b) = ab;
        // On non-negative inputs the symmetric denominator is the textbook one.
        let textbook: f64 = a.iter().zip(&b)
            .filter(|(x, y)| **x + **y > 0.0)
            .map(|(x, y)| (x - y) * (x - y) / (x + y))
            .sum();
        prop_assert!((chi2(&a, &b) - textbook).abs() < 1e-9);
    }

    #[test]
    fn cosine_is_finite_and_bounded(ab in (1usize..24).prop_flat_map(|n| {
        // Mixes exact zeros, denormal-range magnitudes and ordinary values.
        fn tiny() -> impl Strategy<Value = f64> {
            prop_oneof![
                Just(0.0f64),
                1e-320f64..1e-300,
                -256.0f64..256.0,
            ]
        }
        (proptest::collection::vec(tiny(), n..n + 1),
         proptest::collection::vec(tiny(), n..n + 1))
    })) {
        let (a, b) = ab;
        let d = cosine_distance(&a, &b);
        prop_assert!(d.is_finite(), "cosine non-finite: {d}");
        prop_assert!((0.0..=2.0).contains(&d), "cosine out of range: {d}");
    }

    #[test]
    fn cosine_denormal_norm_returns_one(a in arb_vec(1..16)) {
        let tiny: Vec<f64> = a.iter().map(|_| 1e-320).collect();
        prop_assert_eq!(cosine_distance(&tiny, &a), 1.0);
        prop_assert_eq!(cosine_distance(&a, &tiny), 1.0);
    }

    #[test]
    fn bounded_kernels_match_unbounded_at_infinite_cutoff(
        ab in (0usize..80).prop_flat_map(pair)
    ) {
        let (a, b) = ab;
        let (fa, fb) = (to_f32(&a), to_f32(&b));
        let (wa, wb) = (widen(&fa), widen(&fb));
        let (ma, mb) = (mass_f32(&fa), mass_f32(&fb));
        prop_assert_eq!(l2_f32(&fa, &fb, f64::INFINITY).distance, Some(l2(&wa, &wb)));
        prop_assert_eq!(chi2_f32(&fa, &fb, f64::INFINITY).distance, Some(chi2(&wa, &wb)));
        prop_assert_eq!(
            jensen_shannon_f32(&fa, &fb, ma, mb, f64::INFINITY).distance,
            Some(jensen_shannon(&wa, &wb))
        );
        prop_assert_eq!(
            intersection_f32(&fa, &fb, ma, mb, f64::INFINITY).distance,
            Some(intersection_distance(&wa, &wb))
        );
    }

    #[test]
    fn abandon_implies_distance_exceeds_cutoff(
        ab in (3usize..80).prop_flat_map(pair),
        frac in 0.0f64..1.5,
    ) {
        let (a, b) = ab;
        let (fa, fb) = (to_f32(&a), to_f32(&b));
        let (ma, mb) = (mass_f32(&fa), mass_f32(&fb));
        let full_l2 = l2_f32(&fa, &fb, f64::INFINITY).distance.unwrap();
        let cutoff = full_l2 * frac;
        let r = l2_f32(&fa, &fb, cutoff);
        if r.distance.is_none() {
            prop_assert!(full_l2 > cutoff, "l2 abandoned below true distance");
        } else {
            prop_assert_eq!(r.distance, Some(full_l2));
        }
        let full_js = jensen_shannon_f32(&fa, &fb, ma, mb, f64::INFINITY).distance.unwrap();
        let cutoff = full_js * frac;
        let r = jensen_shannon_f32(&fa, &fb, ma, mb, cutoff);
        if r.distance.is_none() {
            // JS partial terms can round ~1e-16 below exact; allow that slack.
            prop_assert!(full_js > cutoff - 1e-9, "js abandoned below true distance");
        }
        let full_int = intersection_f32(&fa, &fb, ma, mb, f64::INFINITY).distance.unwrap();
        let cutoff = full_int * frac;
        let r = intersection_f32(&fa, &fb, ma, mb, cutoff);
        if r.distance.is_none() {
            prop_assert!(full_int > cutoff - 1e-9, "intersection abandoned below true distance");
        }
        let full_chi = chi2_f32(&fa, &fb, f64::INFINITY).distance.unwrap();
        let cutoff = full_chi * frac;
        let r = chi2_f32(&fa, &fb, cutoff);
        if r.distance.is_none() {
            prop_assert!(full_chi > cutoff, "chi2 abandoned below true distance");
        }
    }

    #[test]
    fn scaled_l1_and_naive_bounds_are_sound(
        ab in (1usize..20).prop_flat_map(|n| {
            (arb_vec(3 * n..3 * n + 1), arb_vec(3 * n..3 * n + 1))
        }),
        frac in 0.0f64..1.5,
    ) {
        let (a, b) = ab;
        let (fa, fb) = (to_f32(&a), to_f32(&b));
        let full = scaled_l1_f32(&fa, &fb, a.len() as f64, f64::INFINITY).distance.unwrap();
        let r = scaled_l1_f32(&fa, &fb, a.len() as f64, full * frac);
        if r.distance.is_none() {
            prop_assert!(full > full * frac);
        } else {
            prop_assert_eq!(r.distance, Some(full));
        }
        let full = naive_rgb_f32(&fa, &fb, f64::INFINITY).distance.unwrap();
        prop_assert!(full >= 0.0 && full.is_finite());
        prop_assert!(full <= a.len() as f64); // mean/diag keeps it small
        let r = naive_rgb_f32(&fa, &fb, full * frac);
        if r.distance.is_none() {
            prop_assert!(full > full * frac);
        } else {
            prop_assert_eq!(r.distance, Some(full));
        }
        let _ = rgb_diag();
    }

    #[test]
    fn elements_visited_never_exceed_length(ab in (0usize..80).prop_flat_map(pair)) {
        let (a, b) = ab;
        let (fa, fb) = (to_f32(&a), to_f32(&b));
        for cutoff in [0.0, 0.1, f64::INFINITY] {
            prop_assert!(l2_f32(&fa, &fb, cutoff).elements as usize <= a.len());
            prop_assert!(chi2_f32(&fa, &fb, cutoff).elements as usize <= a.len());
        }
    }
}
