//! The fault-injection sweep: replay the multi-batch commit workload
//! with a deterministic fault armed at every Nth I/O operation on the
//! pager and WAL backends, and assert every recovery converges to a
//! legal pre- or post-commit state — never a third state.
//!
//! Reproduce a CI failure locally by exporting the env line recorded in
//! `FAULT_SWEEP_FAILURE.txt`:
//!
//! ```text
//! CBVR_FAULT_SEED=1 CBVR_FAULT_TARGET=wal CBVR_FAULT_OP=37 \
//!     cargo test --release -p cbvr-storage --test fault_sweep
//! ```

use cbvr_storage::backend::{Backend, MemBackend};
use cbvr_storage::{run_sweep, FaultBackend, FaultInjector, SweepConfig, SweepTarget};
use proptest::prelude::*;
use std::io::Write as _;

/// Artifact CI uploads when a sweep does not converge.
const FAILURE_ARTIFACT: &str = "FAULT_SWEEP_FAILURE.txt";

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse() {
        Ok(v) => Some(v),
        Err(_) => panic!("{name}={trimmed:?} is not a non-negative integer"),
    }
}

fn env_targets() -> Vec<SweepTarget> {
    match std::env::var("CBVR_FAULT_TARGET").ok().as_deref().map(str::trim) {
        None | Some("") => vec![SweepTarget::Pager, SweepTarget::Wal],
        Some("pager") => vec![SweepTarget::Pager],
        Some("wal") => vec![SweepTarget::Wal],
        Some(other) => panic!("CBVR_FAULT_TARGET={other:?}: expected \"pager\" or \"wal\""),
    }
}

fn target_env_name(target: SweepTarget) -> &'static str {
    match target {
        SweepTarget::Pager => "pager",
        SweepTarget::Wal => "wal",
    }
}

/// Drive the sweep for one seed × target, writing the CI artifact and
/// panicking on any non-convergent recovery.
fn sweep(seed: u64, target: SweepTarget) {
    let cfg = SweepConfig { seed, target, only_op: env_u64("CBVR_FAULT_OP") };
    let report = run_sweep(&cfg).expect("sweep harness must not error on the clean run");
    eprintln!(
        "fault sweep: seed={seed} target={} ops={} runs={} failures={}",
        target_env_name(target),
        report.total_ops,
        report.runs,
        report.failures.len(),
    );
    assert!(report.total_ops > 0, "workload performed no I/O on the target backend");
    assert!(report.runs > 0, "sweep executed no fault runs");
    if report.failures.is_empty() {
        return;
    }

    // Record every failure plus a copy-paste repro line, then fail loudly.
    let mut artifact = String::new();
    for failure in &report.failures {
        artifact.push_str(&format!(
            "{failure}\nrepro: CBVR_FAULT_SEED={} CBVR_FAULT_TARGET={} CBVR_FAULT_OP={} \
             cargo test --release -p cbvr-storage --test fault_sweep\n",
            failure.seed,
            target_env_name(failure.target),
            failure.op,
        ));
    }
    if let Ok(mut f) = std::fs::File::create(FAILURE_ARTIFACT) {
        let _ = f.write_all(artifact.as_bytes());
    }
    panic!(
        "{} of {} fault runs recovered to a third state (details in {FAILURE_ARTIFACT}):\n{artifact}",
        report.failures.len(),
        report.runs,
    );
}

/// The full sweep: every fault kind at every operation index of the
/// multi-batch workload, for each seed/target selected by the env.
/// Locally this defaults to seed 0 on both backends; the CI fault-matrix
/// job fans seeds {0,1,2} × targets {pager,wal} across jobs.
#[test]
fn every_fault_op_converges_to_a_legal_state() {
    let seeds = match env_u64("CBVR_FAULT_SEED") {
        Some(seed) => vec![seed],
        None => vec![0],
    };
    for seed in seeds {
        for target in env_targets() {
            sweep(seed, target);
        }
    }
}

// ---- faults=0 transparency ------------------------------------------------

/// One random backend operation.
#[derive(Clone, Debug)]
enum BackendOp {
    Write { offset: u64, bytes: Vec<u8> },
    Read { offset: u64, len: usize },
    Truncate { len: u64 },
    Sync,
    Len,
}

fn arb_op() -> impl Strategy<Value = BackendOp> {
    prop_oneof![
        4 => (0u64..6000, proptest::collection::vec(any::<u8>(), 0..700))
            .prop_map(|(offset, bytes)| BackendOp::Write { offset, bytes }),
        3 => (0u64..6000, 0usize..700)
            .prop_map(|(offset, len)| BackendOp::Read { offset, len }),
        1 => (0u64..8000).prop_map(|len| BackendOp::Truncate { len }),
        1 => Just(BackendOp::Sync),
        1 => Just(BackendOp::Len),
    ]
}

fn apply(backend: &mut impl Backend, op: &BackendOp) -> Result<Vec<u8>, String> {
    match op {
        BackendOp::Write { offset, bytes } => {
            backend.write_at(*offset, bytes).map_err(|e| e.to_string())?;
            Ok(Vec::new())
        }
        BackendOp::Read { offset, len } => {
            let mut buf = vec![0u8; *len];
            backend.read_at(*offset, &mut buf).map_err(|e| e.to_string())?;
            Ok(buf)
        }
        BackendOp::Truncate { len } => {
            backend.truncate(*len).map_err(|e| e.to_string())?;
            Ok(Vec::new())
        }
        BackendOp::Sync => {
            backend.sync().map_err(|e| e.to_string())?;
            Ok(Vec::new())
        }
        BackendOp::Len => {
            let len = backend.len().map_err(|e| e.to_string())?;
            Ok(len.to_le_bytes().to_vec())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With no fault armed, `FaultBackend` must be a bit-identical,
    /// result-identical pass-through over the wrapped backend: same
    /// successes, same failures, same bytes read, same final contents.
    #[test]
    fn disarmed_fault_backend_is_transparent(
        seed in any::<u64>(),
        ops in proptest::collection::vec(arb_op(), 1..60),
    ) {
        let plain_store = MemBackend::new();
        let faulted_store = MemBackend::new();
        let mut plain = plain_store.share();
        let mut faulted =
            FaultBackend::new(faulted_store.share(), FaultInjector::new(seed));

        for op in &ops {
            let a = apply(&mut plain, op);
            let b = apply(&mut faulted, op);
            prop_assert_eq!(a.is_ok(), b.is_ok(), "result kind diverged on {:?}", op);
            if let (Ok(a), Ok(b)) = (a, b) {
                prop_assert_eq!(a, b, "payload diverged on {:?}", op);
            }
        }
        prop_assert_eq!(faulted.injector().injected(), 0, "nothing may fire while disarmed");

        // Final contents are bit-identical.
        let len = plain.len().unwrap();
        prop_assert_eq!(faulted.len().unwrap(), len);
        let mut a = vec![0u8; len as usize];
        let mut b = vec![0u8; len as usize];
        if len > 0 {
            plain.read_at(0, &mut a).unwrap();
            faulted.read_at(0, &mut b).unwrap();
        }
        prop_assert_eq!(a, b, "final backend contents diverged");
    }
}
