//! Storage-engine torture tests: random workloads against a model, with
//! periodic crash-and-recover cycles.

use cbvr_storage::backend::MemBackend;
use cbvr_storage::{CbvrDatabase, KeyFrameRecord, VideoRecord};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn video_record(tag: u64, size: usize) -> VideoRecord {
    VideoRecord {
        v_name: format!("video-{tag}"),
        video: (0..size).map(|i| ((i as u64 ^ tag) % 256) as u8).collect(),
        stream: vec![(tag % 256) as u8; 64],
        dostore: tag,
    }
}

fn kf_record(v_id: u64, tag: u64) -> KeyFrameRecord {
    KeyFrameRecord {
        i_name: format!("kf-{tag}"),
        image: vec![(tag % 251) as u8; (tag % 600) as usize + 10],
        min: (tag % 128) as u8,
        max: (tag % 128) as u8 + 127,
        sch: format!("RGB 256 {tag}"),
        glcm: "GLCM 1 2 3 4 5 6".into(),
        gabor: "gabor 60 0".into(),
        tamura: "Tamura 18 0 0".into(),
        acc: "ACC 4 0".into(),
        naive: "NaiveVector".into(),
        srg: "SRG 1 0 1".into(),
        majorregions: (tag % 5) as u32,
        v_id,
    }
}

/// One workload step.
#[derive(Clone, Debug)]
enum Op {
    InsertVideo { size: usize },
    InsertKeyFrame,
    DeleteVideo,
    Rename,
    Reopen,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (100usize..20_000).prop_map(|size| Op::InsertVideo { size }),
        4 => Just(Op::InsertKeyFrame),
        1 => Just(Op::DeleteVideo),
        1 => Just(Op::Rename),
        1 => Just(Op::Reopen),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_workload_matches_model(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let data = MemBackend::new();
        let wal = MemBackend::new();
        let mut db = CbvrDatabase::on_backends(data.share(), wal.share()).unwrap();

        // Model: video id → (name, video size, key-frame ids).
        let mut model: BTreeMap<u64, (String, usize, Vec<u64>)> = BTreeMap::new();
        let mut tag = 0u64;

        // Telemetry model: with autocommit, every mutating op that reaches
        // the engine is exactly one WAL commit. Counters reset per pager
        // instance, so track a baseline captured at each (re)open.
        let mut commits_base = db.telemetry().wal_commits;
        let mut committed_ops = 0u64;

        for op in ops {
            tag += 1;
            match op {
                Op::InsertVideo { size } => {
                    let record = video_record(tag, size);
                    let v_id = db.insert_video(&record).unwrap();
                    model.insert(v_id, (record.v_name, size, Vec::new()));
                    committed_ops += 1;
                }
                Op::InsertKeyFrame => {
                    let Some((&v_id, _)) = model.iter().next_back() else { continue };
                    let i_id = db.insert_key_frame(&kf_record(v_id, tag)).unwrap();
                    model.get_mut(&v_id).unwrap().2.push(i_id);
                    committed_ops += 1;
                }
                Op::DeleteVideo => {
                    let Some((&v_id, _)) = model.iter().next() else { continue };
                    db.delete_video(v_id).unwrap();
                    model.remove(&v_id);
                    committed_ops += 1;
                }
                Op::Rename => {
                    let Some((&v_id, _)) = model.iter().next() else { continue };
                    let name = format!("renamed-{tag}");
                    db.rename_video(v_id, &name).unwrap();
                    model.get_mut(&v_id).unwrap().0 = name;
                    committed_ops += 1;
                }
                Op::Reopen => {
                    prop_assert_eq!(
                        db.telemetry().wal_commits - commits_base,
                        committed_ops,
                        "one WAL commit per autocommitted op"
                    );
                    drop(db);
                    db = CbvrDatabase::on_backends(data.share(), wal.share()).unwrap();
                    // Every commit fully checkpointed before the clean
                    // close, so a clean reopen must replay nothing.
                    prop_assert_eq!(db.telemetry().wal_replays, 0);
                    commits_base = db.telemetry().wal_commits;
                    committed_ops = 0;
                }
            }
        }

        // Final audit: database equals model exactly.
        prop_assert_eq!(db.video_count().unwrap(), model.len());
        let listed: BTreeMap<u64, String> =
            db.list_videos().unwrap().into_iter().map(|(id, name, _)| (id, name)).collect();
        for (&v_id, (name, size, kf_ids)) in &model {
            prop_assert_eq!(listed.get(&v_id), Some(name));
            let full = db.get_video(v_id).unwrap();
            prop_assert_eq!(db.read_video_bytes(&full.row).unwrap().len(), *size);
            prop_assert_eq!(&db.key_frames_of_video(v_id).unwrap(), kf_ids);
            for &i_id in kf_ids {
                let row = db.get_key_frame(i_id).unwrap();
                prop_assert_eq!(row.v_id, v_id);
                db.read_image_bytes(&row).unwrap();
            }
        }
        let expected_kf: usize = model.values().map(|(_, _, k)| k.len()).sum();
        prop_assert_eq!(db.key_frame_count().unwrap(), expected_kf);

        // The telemetry must agree with the model at the end too.
        let t = db.telemetry();
        prop_assert_eq!(t.wal_commits - commits_base, committed_ops);
        prop_assert!(t.wal_commits == 0 || t.wal_bytes > 0, "commits imply WAL bytes");
        // Cache entries are created only by read misses and page writes,
        // and eviction needs an entry to evict.
        prop_assert!(t.cache_evictions <= t.cache_misses + t.page_writes);
        if !model.is_empty() {
            prop_assert!(t.cache_hits + t.cache_misses > 0, "the audit reads pages");
        }
    }
}

/// Crash-and-recover cycles with a fault injected between the WAL fsync
/// and the data-file write: every cycle leaves exactly one committed WAL
/// record behind, so every reboot must replay exactly one record — and
/// the crashed operation, being WAL-committed, must survive.
#[test]
fn replay_counter_matches_injected_crashes() {
    const CRASHES: u64 = 5;
    let data = MemBackend::new();
    let wal = MemBackend::new();
    let faults = data.faults();
    let mut db = CbvrDatabase::on_backends(data.share(), wal.share()).unwrap();
    assert_eq!(db.telemetry().wal_replays, 0, "fresh store has nothing to replay");

    let mut replays_total = 0u64;
    for cycle in 0..CRASHES {
        // A healthy insert commits straight through and resets the WAL.
        let ok = video_record(cycle * 2 + 1, 400);
        let ok_id = db.insert_video(&ok).unwrap();

        // Crash: the commit record lands in the WAL, then the data-file
        // write fails — the classic torn checkpoint. The WAL fsync is the
        // commit point, so the insert succeeds and the db degrades; the
        // WAL keeps the stranded record for the reboot to replay.
        faults.fail_after_writes(0);
        let crashed = video_record(cycle * 2 + 2, 400);
        db.insert_video(&crashed).unwrap();
        assert!(db.is_degraded(), "data-file fault must degrade the db");
        drop(db);
        faults.heal();

        // Reboot: recovery replays exactly the one stranded record.
        db = CbvrDatabase::on_backends(data.share(), wal.share()).unwrap();
        let t = db.telemetry();
        assert_eq!(t.wal_replays, 1, "cycle {cycle}: one crash, one replayed record");
        replays_total += t.wal_replays;

        // The crashed insert was durable the moment its WAL record was
        // fsynced; replay must make it visible again.
        let names: Vec<String> =
            db.list_videos().unwrap().into_iter().map(|(_, name, _)| name).collect();
        assert!(names.contains(&crashed.v_name), "cycle {cycle}: replayed insert missing");
        assert!(names.contains(&ok.v_name), "cycle {cycle}: pre-crash insert missing");
        db.get_video(ok_id).unwrap();
    }
    assert_eq!(replays_total, CRASHES, "replay count must match injected crashes");

    // A final clean close/open cycle replays nothing.
    drop(db);
    let mut db = CbvrDatabase::on_backends(data.share(), wal.share()).unwrap();
    assert_eq!(db.telemetry().wal_replays, 0);
    assert_eq!(db.video_count().unwrap(), 2 * CRASHES as usize);
}
