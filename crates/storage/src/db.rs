//! [`CbvrDatabase`] — the public storage facade.
//!
//! Owns the pager plus four B+-trees:
//!
//! - `VIDEO_STORE` primary (v_id → row),
//! - `KEY_FRAMES` primary (i_id → row),
//! - the `(v_id, i_id)` secondary index (composite key → nothing), which
//!   serves the pipeline's "all key frames of video X" lookups without a
//!   full scan,
//! - the catalog **manifest** (min `i_id` → segment record): one record
//!   per sealed catalog segment, appended inside the same atomic batch
//!   as the segment's rows. A crash mid-ingest therefore recovers to the
//!   last *published* snapshot — the manifest and the rows it covers
//!   commit or roll back together. The tree is created lazily, so
//!   pre-manifest databases open unchanged and report every row as one
//!   implicit tail segment.
//!
//! Every public mutator is atomic: it commits on success and rolls back
//! on failure (autocommit). [`CbvrDatabase::run_batch`] groups many
//! mutations into one commit — ingestion uses it so one video plus all
//! its key frames land atomically, which is also what makes crash tests
//! meaningful.
//!
//! Rows that outgrow a B+-tree cell spill transparently to the blob heap
//! (tag byte `1` + blob ref instead of tag `0` + inline row).

use crate::backend::{Backend, FaultPlan, FileBackend, MemBackend};
use crate::btree::{BTree, MAX_VALUE_LEN};
use crate::error::{Result, StorageError};
use crate::heap::{free_blob, read_blob, write_blob, BlobRef};
use crate::page::PageId;
use crate::pager::{Pager, DEFAULT_CACHE_PAGES, USER_META_LEN};
use crate::tables::{
    decode_key_frame_row, decode_video_row, encode_key_frame_row, encode_video_row, KeyFrameRecord,
    KeyFrameRow, VideoRecord, VideoRow, VideoRowFull,
};
use std::path::Path;

const TAG_INLINE: u8 = 0;
const TAG_SPILLED: u8 = 1;

/// Little-endian `u32` from a checked slice: stored bytes are parsed all
/// over this module, and a truncated buffer must surface as corruption,
/// never a panic.
fn le_u32_at(buf: &[u8], at: usize) -> Result<u32> {
    let Some(bytes) = buf.get(at..at + 4) else {
        return Err(StorageError::Corruption(format!("stored value truncated at byte {at}")));
    };
    let mut b = [0u8; 4];
    b.copy_from_slice(bytes);
    Ok(u32::from_le_bytes(b))
}

/// Little-endian `u64`, same contract as [`le_u32_at`].
fn le_u64_at(buf: &[u8], at: usize) -> Result<u64> {
    let Some(bytes) = buf.get(at..at + 8) else {
        return Err(StorageError::Corruption(format!("stored value truncated at byte {at}")));
    };
    let mut b = [0u8; 8];
    b.copy_from_slice(bytes);
    Ok(u64::from_le_bytes(b))
}

/// One sealed-segment record of the catalog manifest: the contiguous
/// `KEY_FRAMES` id range one ingest batch (or one compaction) sealed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ManifestSegment {
    /// Smallest `i_id` in the segment (also the manifest key).
    pub min_i_id: u64,
    /// Largest `i_id` in the segment.
    pub max_i_id: u64,
    /// Rows the segment held when sealed.
    pub rows: u64,
}

/// The CBVR database over any backend.
pub struct CbvrDatabase<B: Backend> {
    pager: Pager<B>,
    video_store: BTree,
    key_frames: BTree,
    kf_by_video: BTree,
    /// Catalog manifest; `None` until the first segment record is
    /// written (pre-manifest databases never allocate the tree).
    manifest: Option<BTree>,
    next_v_id: u64,
    next_i_id: u64,
    autocommit: bool,
}

impl CbvrDatabase<FileBackend> {
    /// Open (or create) a database in `dir` (`cbvr.db` + `cbvr.wal`).
    pub fn open_dir(dir: &Path) -> Result<CbvrDatabase<FileBackend>> {
        std::fs::create_dir_all(dir)?;
        let data = FileBackend::open(&dir.join("cbvr.db"))?;
        let wal = FileBackend::open(&dir.join("cbvr.wal"))?;
        Self::open(data, wal)
    }
}

impl CbvrDatabase<MemBackend> {
    /// Fresh in-memory database (tests, benches, examples).
    pub fn in_memory() -> Result<CbvrDatabase<MemBackend>> {
        Self::open(MemBackend::new(), MemBackend::new())
    }

    /// In-memory database with shared handles, for crash/recovery tests.
    pub fn on_backends(data: MemBackend, wal: MemBackend) -> Result<CbvrDatabase<MemBackend>> {
        Self::open(data, wal)
    }

    /// In-memory database wired to a fault plan on the data file.
    pub fn in_memory_with_faults() -> Result<(CbvrDatabase<MemBackend>, FaultPlan, MemBackend, MemBackend)>
    {
        let data = MemBackend::new();
        let wal = MemBackend::new();
        let plan = data.faults();
        let db = Self::open(data.share(), wal.share())?;
        Ok((db, plan, data, wal))
    }
}

impl<B: Backend> CbvrDatabase<B> {
    /// Open over explicit backends.
    pub fn open(data: B, wal: B) -> Result<CbvrDatabase<B>> {
        let mut pager = Pager::open(data, wal, DEFAULT_CACHE_PAGES)?;
        let meta = *pager.user_meta();
        let video_root = le_u32_at(&meta, 0)?;
        let mut db = if video_root == 0 {
            // Fresh database: create the trees and persist the catalog.
            let video_store = BTree::create(&mut pager)?;
            let key_frames = BTree::create(&mut pager)?;
            let kf_by_video = BTree::create(&mut pager)?;
            let mut db = CbvrDatabase {
                pager,
                video_store,
                key_frames,
                kf_by_video,
                manifest: None,
                next_v_id: 1,
                next_i_id: 1,
                autocommit: true,
            };
            db.save_meta();
            db.pager.commit()?;
            db
        } else {
            let key_root = le_u32_at(&meta, 4)?;
            let sec_root = le_u32_at(&meta, 8)?;
            let manifest_root = le_u32_at(&meta, 12)?;
            let next_v_id = le_u64_at(&meta, 16)?;
            let next_i_id = le_u64_at(&meta, 24)?;
            CbvrDatabase {
                pager,
                video_store: BTree::load(video_root),
                key_frames: BTree::load(key_root),
                kf_by_video: BTree::load(sec_root),
                manifest: (manifest_root != 0).then(|| BTree::load(manifest_root)),
                next_v_id,
                next_i_id,
                autocommit: true,
            }
        };
        db.autocommit = true;
        Ok(db)
    }

    fn save_meta(&mut self) {
        let mut meta = [0u8; USER_META_LEN];
        meta[0..4].copy_from_slice(&self.video_store.root().to_le_bytes());
        meta[4..8].copy_from_slice(&self.key_frames.root().to_le_bytes());
        meta[8..12].copy_from_slice(&self.kf_by_video.root().to_le_bytes());
        meta[12..16]
            .copy_from_slice(&self.manifest.as_ref().map_or(0, BTree::root).to_le_bytes());
        meta[16..24].copy_from_slice(&self.next_v_id.to_le_bytes());
        meta[24..32].copy_from_slice(&self.next_i_id.to_le_bytes());
        self.pager.set_user_meta(meta);
    }

    fn reload_meta(&mut self) {
        // The user-meta area is a fixed 64-byte array, so these reads
        // cannot fail; fall back to an empty root only if the layout
        // ever shrinks below the offsets used here.
        let meta = *self.pager.user_meta();
        self.video_store = BTree::load(le_u32_at(&meta, 0).unwrap_or(0) as PageId);
        self.key_frames = BTree::load(le_u32_at(&meta, 4).unwrap_or(0) as PageId);
        self.kf_by_video = BTree::load(le_u32_at(&meta, 8).unwrap_or(0) as PageId);
        let manifest_root = le_u32_at(&meta, 12).unwrap_or(0);
        self.manifest = (manifest_root != 0).then(|| BTree::load(manifest_root as PageId));
        self.next_v_id = le_u64_at(&meta, 16).unwrap_or(0);
        self.next_i_id = le_u64_at(&meta, 24).unwrap_or(0);
    }

    fn finish_op<T>(&mut self, result: Result<T>) -> Result<T> {
        if !self.autocommit {
            return result;
        }
        match result {
            Ok(v) => {
                self.save_meta();
                match self.pager.commit() {
                    Ok(()) => Ok(v),
                    Err(e) => {
                        // The commit never reached the WAL: roll the
                        // staged writes back so the next operation builds
                        // on the committed state, not on a half-applied
                        // one that would leak into its commit.
                        self.pager.abort()?;
                        self.reload_meta();
                        Err(e)
                    }
                }
            }
            Err(e) => {
                self.pager.abort()?;
                self.reload_meta();
                Err(e)
            }
        }
    }

    /// True while a durable commit is still awaiting propagation to the
    /// data file (see [`crate::pager::Pager::wal_pending`]): reads and
    /// further commits keep working from the WAL + cache, and
    /// [`CbvrDatabase::try_heal`] retries the replay.
    pub fn is_degraded(&self) -> bool {
        self.pager.wal_pending()
    }

    /// Retry propagating committed-but-unpropagated pages into the data
    /// file. No-op when healthy.
    pub fn try_heal(&mut self) -> Result<()> {
        self.pager.checkpoint()
    }

    /// Run several mutations as one atomic unit: one commit on success,
    /// full rollback on error.
    pub fn run_batch<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        if !self.autocommit {
            return Err(StorageError::InvalidState("nested run_batch".into()));
        }
        self.autocommit = false;
        let result = f(self);
        self.autocommit = true;
        self.finish_op(result)
    }

    // ---- row spill helpers -------------------------------------------

    fn store_row(&mut self, tree: &mut BTree, key: u64, row: &[u8], overwrite: bool) -> Result<()> {
        // tag + payload must fit a cell, else spill to the heap.
        let value = if row.len() < MAX_VALUE_LEN {
            let mut v = Vec::with_capacity(row.len() + 1);
            v.push(TAG_INLINE);
            v.extend_from_slice(row);
            v
        } else {
            let blob = write_blob(&mut self.pager, row)?;
            let mut v = Vec::with_capacity(13);
            v.push(TAG_SPILLED);
            v.extend_from_slice(&blob.head.to_le_bytes());
            v.extend_from_slice(&blob.len.to_le_bytes());
            v
        };
        if overwrite {
            tree.upsert(&mut self.pager, key, &value)
        } else {
            tree.insert(&mut self.pager, key, &value)
        }
    }

    fn load_row_value(&mut self, value: &[u8]) -> Result<Vec<u8>> {
        match value.first() {
            Some(&TAG_INLINE) => Ok(value[1..].to_vec()),
            Some(&TAG_SPILLED) => {
                if value.len() != 13 {
                    return Err(StorageError::Corruption("bad spilled row ref".into()));
                }
                let head = le_u32_at(value, 1)?;
                let len = le_u64_at(value, 5)?;
                read_blob(&mut self.pager, BlobRef { head, len })
            }
            _ => Err(StorageError::Corruption("empty row value".into())),
        }
    }

    fn free_row_value(&mut self, value: &[u8]) -> Result<()> {
        if value.first() == Some(&TAG_SPILLED) && value.len() == 13 {
            let head = le_u32_at(value, 1)?;
            let len = le_u64_at(value, 5)?;
            free_blob(&mut self.pager, BlobRef { head, len })?;
        }
        Ok(())
    }

    // ---- VIDEO_STORE --------------------------------------------------

    /// Insert a video; returns the assigned `v_id`.
    pub fn insert_video(&mut self, record: &VideoRecord) -> Result<u64> {
        let op = |db: &mut Self| {
            let v_id = db.next_v_id;
            db.next_v_id += 1;
            let video = write_blob(&mut db.pager, &record.video)?;
            let stream = write_blob(&mut db.pager, &record.stream)?;
            let full = VideoRowFull {
                row: VideoRow { v_id, video, stream, dostore: record.dostore },
                v_name: record.v_name.clone(),
            };
            let buf = encode_video_row(&full);
            let mut tree = db.video_store;
            db.store_row(&mut tree, v_id, &buf, false)?;
            db.video_store = tree;
            Ok(v_id)
        };
        let result = op(self);
        self.finish_op(result)
    }

    /// Fetch a video row (metadata + blob refs).
    pub fn get_video(&mut self, v_id: u64) -> Result<VideoRowFull> {
        let value = self
            .video_store
            .get(&mut self.pager, v_id)?
            .ok_or(StorageError::NotFound(v_id))?;
        let row = self.load_row_value(&value)?;
        decode_video_row(&row)
    }

    /// Materialise the video container bytes of a row.
    pub fn read_video_bytes(&mut self, row: &VideoRow) -> Result<Vec<u8>> {
        read_blob(&mut self.pager, row.video)
    }

    /// Materialise the key-frame stream bytes of a row.
    pub fn read_stream_bytes(&mut self, row: &VideoRow) -> Result<Vec<u8>> {
        read_blob(&mut self.pager, row.stream)
    }

    /// Rename a video (the administrator's *update* operation).
    pub fn rename_video(&mut self, v_id: u64, new_name: &str) -> Result<()> {
        let op = |db: &mut Self| {
            let mut full = db.get_video(v_id)?;
            full.v_name = new_name.to_string();
            let value = db
                .video_store
                .get(&mut db.pager, v_id)?
                .ok_or(StorageError::NotFound(v_id))?;
            db.free_row_value(&value)?;
            let buf = encode_video_row(&full);
            let mut tree = db.video_store;
            db.store_row(&mut tree, v_id, &buf, true)?;
            db.video_store = tree;
            Ok(())
        };
        let result = op(self);
        self.finish_op(result)
    }

    /// Delete a video, its blobs and (cascade) all its key frames.
    pub fn delete_video(&mut self, v_id: u64) -> Result<()> {
        let op = |db: &mut Self| {
            let full = db.get_video(v_id)?;
            // Cascade to key frames first.
            let kf_ids = db.key_frames_of_video(v_id)?;
            for i_id in kf_ids {
                db.delete_key_frame_inner(i_id)?;
            }
            free_blob(&mut db.pager, full.row.video)?;
            free_blob(&mut db.pager, full.row.stream)?;
            let value = db
                .video_store
                .get(&mut db.pager, v_id)?
                .ok_or(StorageError::NotFound(v_id))?;
            db.free_row_value(&value)?;
            let mut tree = db.video_store;
            tree.delete(&mut db.pager, v_id)?;
            db.video_store = tree;
            Ok(())
        };
        let result = op(self);
        self.finish_op(result)
    }

    /// List `(v_id, v_name, dostore)` of every stored video.
    pub fn list_videos(&mut self) -> Result<Vec<(u64, String, u64)>> {
        let tree = self.video_store;
        let mut values = Vec::new();
        tree.scan_from(&mut self.pager, 0, |_, v| {
            values.push(v.to_vec());
            true
        })?;
        let mut out = Vec::with_capacity(values.len());
        for value in values {
            let row = self.load_row_value(&value)?;
            let full = decode_video_row(&row)?;
            out.push((full.row.v_id, full.v_name, full.row.dostore));
        }
        Ok(out)
    }

    /// Number of stored videos.
    pub fn video_count(&mut self) -> Result<usize> {
        self.video_store.len(&mut self.pager)
    }

    // ---- KEY_FRAMES ----------------------------------------------------

    fn composite(v_id: u64, i_id: u64) -> Result<u64> {
        if v_id >= (1 << 32) || i_id >= (1 << 32) {
            return Err(StorageError::InvalidState(format!(
                "ids exceed 32 bits: v_id={v_id}, i_id={i_id}"
            )));
        }
        Ok((v_id << 32) | i_id)
    }

    /// Insert a key frame; returns the assigned `i_id`.
    pub fn insert_key_frame(&mut self, record: &KeyFrameRecord) -> Result<u64> {
        let op = |db: &mut Self| {
            if !db.video_store.contains(&mut db.pager, record.v_id)? {
                return Err(StorageError::NotFound(record.v_id));
            }
            let i_id = db.next_i_id;
            db.next_i_id += 1;
            let image = write_blob(&mut db.pager, &record.image)?;
            let row = KeyFrameRow {
                i_id,
                i_name: record.i_name.clone(),
                image,
                min: record.min,
                max: record.max,
                sch: record.sch.clone(),
                glcm: record.glcm.clone(),
                gabor: record.gabor.clone(),
                tamura: record.tamura.clone(),
                acc: record.acc.clone(),
                naive: record.naive.clone(),
                srg: record.srg.clone(),
                majorregions: record.majorregions,
                v_id: record.v_id,
            };
            let buf = encode_key_frame_row(&row);
            let mut tree = db.key_frames;
            db.store_row(&mut tree, i_id, &buf, false)?;
            db.key_frames = tree;
            let mut sec = db.kf_by_video;
            sec.insert(&mut db.pager, Self::composite(record.v_id, i_id)?, &[])?;
            db.kf_by_video = sec;
            Ok(i_id)
        };
        let result = op(self);
        self.finish_op(result)
    }

    /// Fetch a key-frame row.
    pub fn get_key_frame(&mut self, i_id: u64) -> Result<KeyFrameRow> {
        let value = self
            .key_frames
            .get(&mut self.pager, i_id)?
            .ok_or(StorageError::NotFound(i_id))?;
        let row = self.load_row_value(&value)?;
        decode_key_frame_row(&row)
    }

    /// Materialise the image bytes of a key-frame row.
    pub fn read_image_bytes(&mut self, row: &KeyFrameRow) -> Result<Vec<u8>> {
        read_blob(&mut self.pager, row.image)
    }

    /// The `i_id`s of all key frames belonging to a video, via the
    /// secondary index.
    pub fn key_frames_of_video(&mut self, v_id: u64) -> Result<Vec<u64>> {
        let start = Self::composite(v_id, 0)?;
        let tree = self.kf_by_video;
        let mut out = Vec::new();
        tree.scan_from(&mut self.pager, start, |k, _| {
            if k >> 32 != v_id {
                return false;
            }
            out.push(k & 0xFFFF_FFFF);
            true
        })?;
        Ok(out)
    }

    /// Visit every key-frame row (ascending `i_id`).
    pub fn scan_key_frames(&mut self, mut visit: impl FnMut(&KeyFrameRow) -> bool) -> Result<()> {
        let tree = self.key_frames;
        let mut values = Vec::new();
        tree.scan_from(&mut self.pager, 0, |_, v| {
            values.push(v.to_vec());
            true
        })?;
        for value in values {
            let row = self.load_row_value(&value)?;
            let row = decode_key_frame_row(&row)?;
            if !visit(&row) {
                break;
            }
        }
        Ok(())
    }

    fn delete_key_frame_inner(&mut self, i_id: u64) -> Result<()> {
        let row = self.get_key_frame(i_id)?;
        free_blob(&mut self.pager, row.image)?;
        let value = self
            .key_frames
            .get(&mut self.pager, i_id)?
            .ok_or(StorageError::NotFound(i_id))?;
        self.free_row_value(&value)?;
        let mut tree = self.key_frames;
        tree.delete(&mut self.pager, i_id)?;
        self.key_frames = tree;
        let mut sec = self.kf_by_video;
        sec.delete(&mut self.pager, Self::composite(row.v_id, i_id)?)?;
        self.kf_by_video = sec;
        Ok(())
    }

    /// Delete one key frame.
    pub fn delete_key_frame(&mut self, i_id: u64) -> Result<()> {
        let result = self.delete_key_frame_inner(i_id);
        self.finish_op(result)
    }

    /// Number of stored key frames.
    pub fn key_frame_count(&mut self) -> Result<usize> {
        self.key_frames.len(&mut self.pager)
    }

    // ---- catalog manifest ---------------------------------------------

    fn encode_manifest_value(segment: &ManifestSegment) -> [u8; 16] {
        let mut value = [0u8; 16];
        value[0..8].copy_from_slice(&segment.max_i_id.to_le_bytes());
        value[8..16].copy_from_slice(&segment.rows.to_le_bytes());
        value
    }

    /// The manifest tree, created on first use (legacy databases never
    /// wrote one; the zero root in the meta block marks its absence).
    fn manifest_tree(&mut self) -> Result<BTree> {
        if let Some(tree) = self.manifest {
            return Ok(tree);
        }
        let tree = BTree::create(&mut self.pager)?;
        self.manifest = Some(tree);
        Ok(tree)
    }

    /// Record one sealed catalog segment. Ingestion calls this inside
    /// the same [`CbvrDatabase::run_batch`] that inserts the segment's
    /// rows, so the manifest and the rows commit atomically: a crash
    /// mid-ingest rolls both back to the last published snapshot.
    pub fn append_manifest_segment(&mut self, segment: ManifestSegment) -> Result<()> {
        let op = |db: &mut Self| {
            if segment.min_i_id > segment.max_i_id {
                return Err(StorageError::InvalidState(format!(
                    "manifest segment range inverted: {}..{}",
                    segment.min_i_id, segment.max_i_id
                )));
            }
            let mut tree = db.manifest_tree()?;
            tree.upsert(&mut db.pager, segment.min_i_id, &Self::encode_manifest_value(&segment))?;
            db.manifest = Some(tree);
            Ok(())
        };
        let result = op(self);
        self.finish_op(result)
    }

    /// Every manifest segment, ascending by `min_i_id` — which is also
    /// catalog order, because ids are assigned monotonically.
    pub fn list_manifest(&mut self) -> Result<Vec<ManifestSegment>> {
        let Some(tree) = self.manifest else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        let mut bad = false;
        tree.scan_from(&mut self.pager, 0, |k, v| {
            if v.len() != 16 {
                bad = true;
                return false;
            }
            out.push(ManifestSegment {
                min_i_id: k,
                max_i_id: u64::from_le_bytes(v[0..8].try_into().expect("8 bytes")),
                rows: u64::from_le_bytes(v[8..16].try_into().expect("8 bytes")),
            });
            true
        })?;
        if bad {
            return Err(StorageError::Corruption("bad manifest record".into()));
        }
        Ok(out)
    }

    /// Atomically replace the whole manifest (the compaction publish:
    /// many small segment records become one merged record).
    pub fn replace_manifest(&mut self, segments: &[ManifestSegment]) -> Result<()> {
        let old = self.list_manifest()?;
        let op = |db: &mut Self| {
            let mut tree = db.manifest_tree()?;
            for segment in &old {
                tree.delete(&mut db.pager, segment.min_i_id)?;
            }
            for segment in segments {
                if segment.min_i_id > segment.max_i_id {
                    return Err(StorageError::InvalidState(format!(
                        "manifest segment range inverted: {}..{}",
                        segment.min_i_id, segment.max_i_id
                    )));
                }
                tree.upsert(
                    &mut db.pager,
                    segment.min_i_id,
                    &Self::encode_manifest_value(segment),
                )?;
            }
            db.manifest = Some(tree);
            Ok(())
        };
        let result = op(self);
        self.finish_op(result)
    }

    /// Total pages in the data file (diagnostics).
    pub fn page_count(&self) -> u32 {
        self.pager.page_count()
    }

    /// Snapshot of the pager/WAL counters accumulated since open
    /// (telemetry: merged into `/metrics` and `cbvr stats --telemetry`).
    pub fn telemetry(&self) -> crate::telemetry::StorageTelemetry {
        self.pager.telemetry()
    }

    /// Aggregate statistics (diagnostics, vacuum decisions).
    pub fn stats(&mut self) -> Result<DbStats> {
        Ok(DbStats {
            pages: self.pager.page_count(),
            videos: self.video_count()?,
            key_frames: self.key_frame_count()?,
            manifest_segments: self.list_manifest()?.len(),
            next_v_id: self.next_v_id,
            next_i_id: self.next_i_id,
        })
    }

    /// Insert a video under an explicit id (vacuum/restore path).
    fn insert_video_preserving_id(&mut self, v_id: u64, full: &VideoRowFull, video: &[u8], stream: &[u8]) -> Result<()> {
        let video_ref = write_blob(&mut self.pager, video)?;
        let stream_ref = write_blob(&mut self.pager, stream)?;
        let row = VideoRowFull {
            row: VideoRow { v_id, video: video_ref, stream: stream_ref, dostore: full.row.dostore },
            v_name: full.v_name.clone(),
        };
        let buf = encode_video_row(&row);
        let mut tree = self.video_store;
        self.store_row(&mut tree, v_id, &buf, false)?;
        self.video_store = tree;
        Ok(())
    }

    /// Insert a key frame under an explicit id (vacuum/restore path).
    fn insert_key_frame_preserving_id(&mut self, row: &KeyFrameRow, image: &[u8]) -> Result<()> {
        let image_ref = write_blob(&mut self.pager, image)?;
        let mut copy = row.clone();
        copy.image = image_ref;
        let buf = encode_key_frame_row(&copy);
        let mut tree = self.key_frames;
        self.store_row(&mut tree, copy.i_id, &buf, false)?;
        self.key_frames = tree;
        let mut sec = self.kf_by_video;
        sec.insert(&mut self.pager, Self::composite(copy.v_id, copy.i_id)?, &[])?;
        self.kf_by_video = sec;
        Ok(())
    }

    /// Rewrite all live data into a fresh database on new backends,
    /// preserving every id and counter. Reclaims the space that lazy
    /// B+-tree deletion and the page free list retain in the old file:
    /// after heavy delete churn the new file holds only live pages.
    ///
    /// For on-disk databases: vacuum into a temporary directory, then
    /// swap the directories and reopen.
    pub fn vacuum_into<B2: Backend>(&mut self, data: B2, wal: B2) -> Result<CbvrDatabase<B2>> {
        let mut fresh = CbvrDatabase::open(data, wal)?;
        // Collect live rows first (scan borrows self mutably).
        let videos = self.list_videos()?;
        let next_v_id = self.next_v_id;
        let next_i_id = self.next_i_id;

        fresh.autocommit = false;
        let copy = |src: &mut Self, dst: &mut CbvrDatabase<B2>| -> Result<()> {
            let mut kf_span: Option<(u64, u64, u64)> = None;
            for (v_id, _, _) in &videos {
                let full = src.get_video(*v_id)?;
                let video_bytes = src.read_video_bytes(&full.row)?;
                let stream_bytes = src.read_stream_bytes(&full.row)?;
                dst.insert_video_preserving_id(*v_id, &full, &video_bytes, &stream_bytes)?;
                for i_id in src.key_frames_of_video(*v_id)? {
                    let row = src.get_key_frame(i_id)?;
                    let image = src.read_image_bytes(&row)?;
                    dst.insert_key_frame_preserving_id(&row, &image)?;
                    kf_span = Some(match kf_span {
                        None => (i_id, i_id, 1),
                        Some((min, max, rows)) => (min.min(i_id), max.max(i_id), rows + 1),
                    });
                }
            }
            // Vacuum compacts the manifest too: one segment spanning all
            // surviving rows (dead ranges would otherwise linger).
            if let Some((min_i_id, max_i_id, rows)) = kf_span {
                dst.replace_manifest(&[ManifestSegment { min_i_id, max_i_id, rows }])?;
            }
            dst.next_v_id = next_v_id;
            dst.next_i_id = next_i_id;
            Ok(())
        };
        let result = copy(self, &mut fresh);
        fresh.autocommit = true;
        match result {
            Ok(()) => {
                fresh.save_meta();
                fresh.pager.commit()?;
                Ok(fresh)
            }
            Err(e) => Err(e),
        }
    }
}

/// Aggregate database statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DbStats {
    /// Pages in the data file (including meta and free pages).
    pub pages: u32,
    /// Live `VIDEO_STORE` rows.
    pub videos: usize,
    /// Live `KEY_FRAMES` rows.
    pub key_frames: usize,
    /// Sealed catalog segments recorded in the manifest (0 on
    /// pre-manifest databases: every row is one implicit tail segment).
    pub manifest_segments: usize,
    /// Next video id to be assigned.
    pub next_v_id: u64,
    /// Next key-frame id to be assigned.
    pub next_i_id: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn video_record(name: &str, payload: usize) -> VideoRecord {
        VideoRecord {
            v_name: name.into(),
            video: (0..payload).map(|i| (i % 256) as u8).collect(),
            stream: vec![1, 2, 3],
            dostore: 1_750_000_000,
        }
    }

    fn kf_record(v_id: u64, name: &str) -> KeyFrameRecord {
        KeyFrameRecord {
            i_name: name.into(),
            image: vec![9u8; 500],
            min: 0,
            max: 63,
            sch: "RGB 256 1".into(),
            glcm: "GLCM 1 2 3 4 5 6".into(),
            gabor: "gabor 60 0".into(),
            tamura: "Tamura 18 0 0".into(),
            acc: "ACC 4 0".into(),
            naive: "NaiveVector".into(),
            srg: "SRG 1 0 1".into(),
            majorregions: 2,
            v_id,
        }
    }

    #[test]
    fn insert_and_fetch_video() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let id = db.insert_video(&video_record("a.vsc", 10_000)).unwrap();
        assert_eq!(id, 1);
        let full = db.get_video(id).unwrap();
        assert_eq!(full.v_name, "a.vsc");
        assert_eq!(full.row.dostore, 1_750_000_000);
        let bytes = db.read_video_bytes(&full.row).unwrap();
        assert_eq!(bytes.len(), 10_000);
        assert_eq!(bytes[255], 255);
        assert_eq!(db.read_stream_bytes(&full.row).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn ids_are_sequential_and_stable_across_reopen() {
        let data = MemBackend::new();
        let wal = MemBackend::new();
        {
            let mut db = CbvrDatabase::on_backends(data.share(), wal.share()).unwrap();
            assert_eq!(db.insert_video(&video_record("one", 10)).unwrap(), 1);
            assert_eq!(db.insert_video(&video_record("two", 10)).unwrap(), 2);
        }
        let mut db = CbvrDatabase::on_backends(data.share(), wal.share()).unwrap();
        assert_eq!(db.insert_video(&video_record("three", 10)).unwrap(), 3);
        assert_eq!(db.video_count().unwrap(), 3);
        assert_eq!(db.get_video(2).unwrap().v_name, "two");
    }

    #[test]
    fn rename_video_persists() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let id = db.insert_video(&video_record("old", 100)).unwrap();
        db.rename_video(id, "new").unwrap();
        assert_eq!(db.get_video(id).unwrap().v_name, "new");
        // Blob content untouched by rename.
        let full = db.get_video(id).unwrap();
        assert_eq!(db.read_video_bytes(&full.row).unwrap().len(), 100);
    }

    #[test]
    fn missing_keys_error() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        assert!(matches!(db.get_video(99), Err(StorageError::NotFound(99))));
        assert!(matches!(db.get_key_frame(99), Err(StorageError::NotFound(99))));
        assert!(matches!(db.rename_video(1, "x"), Err(StorageError::NotFound(1))));
        assert!(matches!(db.delete_video(1), Err(StorageError::NotFound(1))));
        // Key frame for a video that does not exist.
        assert!(matches!(db.insert_key_frame(&kf_record(5, "kf")), Err(StorageError::NotFound(5))));
    }

    #[test]
    fn key_frames_with_secondary_index() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let v1 = db.insert_video(&video_record("v1", 10)).unwrap();
        let v2 = db.insert_video(&video_record("v2", 10)).unwrap();
        let mut v1_ids = Vec::new();
        for i in 0..5 {
            v1_ids.push(db.insert_key_frame(&kf_record(v1, &format!("v1_kf_{i}"))).unwrap());
        }
        let k2 = db.insert_key_frame(&kf_record(v2, "v2_kf_0")).unwrap();
        assert_eq!(db.key_frames_of_video(v1).unwrap(), v1_ids);
        assert_eq!(db.key_frames_of_video(v2).unwrap(), vec![k2]);
        assert!(db.key_frames_of_video(77).unwrap().is_empty());
        let row = db.get_key_frame(v1_ids[2]).unwrap();
        assert_eq!(row.i_name, "v1_kf_2");
        assert_eq!(row.v_id, v1);
        assert_eq!(db.read_image_bytes(&row).unwrap(), vec![9u8; 500]);
    }

    #[test]
    fn oversized_rows_spill_to_heap() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let v = db.insert_video(&video_record("v", 10)).unwrap();
        let mut record = kf_record(v, "big");
        record.acc = "ACC 4 ".to_string() + &"0.123456789012345 ".repeat(1024); // ~18 KB
        let i_id = db.insert_key_frame(&record).unwrap();
        let row = db.get_key_frame(i_id).unwrap();
        assert_eq!(row.acc, record.acc);
    }

    #[test]
    fn delete_video_cascades() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let v = db.insert_video(&video_record("v", 5_000)).unwrap();
        for i in 0..4 {
            db.insert_key_frame(&kf_record(v, &format!("kf{i}"))).unwrap();
        }
        assert_eq!(db.key_frame_count().unwrap(), 4);
        db.delete_video(v).unwrap();
        assert_eq!(db.video_count().unwrap(), 0);
        assert_eq!(db.key_frame_count().unwrap(), 0);
        assert!(db.key_frames_of_video(v).unwrap().is_empty());
    }

    #[test]
    fn deleted_pages_are_reused() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let v = db.insert_video(&video_record("v", 50_000)).unwrap();
        let pages_after_insert = db.page_count();
        db.delete_video(v).unwrap();
        let _v2 = db.insert_video(&video_record("v2", 50_000)).unwrap();
        assert!(
            db.page_count() <= pages_after_insert + 2,
            "freed pages should be recycled: {} vs {}",
            db.page_count(),
            pages_after_insert
        );
    }

    #[test]
    fn run_batch_commits_atomically() {
        let data = MemBackend::new();
        let wal = MemBackend::new();
        {
            let mut db = CbvrDatabase::on_backends(data.share(), wal.share()).unwrap();
            db.run_batch(|db| {
                let v = db.insert_video(&video_record("batched", 100))?;
                for i in 0..3 {
                    db.insert_key_frame(&kf_record(v, &format!("kf{i}")))?;
                }
                Ok(v)
            })
            .unwrap();
        }
        let mut db = CbvrDatabase::on_backends(data.share(), wal.share()).unwrap();
        assert_eq!(db.video_count().unwrap(), 1);
        assert_eq!(db.key_frame_count().unwrap(), 3);
    }

    #[test]
    fn run_batch_rolls_back_on_error() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let result: Result<()> = db.run_batch(|db| {
            db.insert_video(&video_record("doomed", 100))?;
            Err(StorageError::InvalidState("user abort".into()))
        });
        assert!(result.is_err());
        assert_eq!(db.video_count().unwrap(), 0, "batch must roll back");
        // The id counter also rolled back.
        assert_eq!(db.insert_video(&video_record("next", 10)).unwrap(), 1);
    }

    #[test]
    fn data_fault_mid_batch_commits_degraded() {
        let (mut db, faults, data, wal) = CbvrDatabase::in_memory_with_faults().unwrap();
        db.insert_video(&video_record("safe", 100)).unwrap();
        // The data file dies during the commit's propagation phase. The
        // WAL record is already durable, so the batch IS committed: the
        // database degrades instead of failing the commit.
        let result: Result<u64> = db.run_batch(|db| {
            let v = db.insert_video(&video_record("doomed", 30_000))?;
            faults.fail_after_writes(0);
            Ok(v)
        });
        assert!(result.is_ok(), "WAL-durable commit must succeed");
        assert!(db.is_degraded(), "data-file fault leaves the db degraded");
        // Reads keep working from the pinned cache while degraded.
        assert_eq!(db.video_count().unwrap(), 2);
        drop(db);
        faults.heal();
        // Recovery replays the WAL: both commits survive, bytes intact.
        let mut db = CbvrDatabase::on_backends(data.share(), wal.share()).unwrap();
        let videos = db.list_videos().unwrap();
        assert_eq!(videos.len(), 2, "both committed batches survive");
        assert!(videos.iter().any(|(_, name, _)| name == "safe"));
        assert!(videos.iter().any(|(_, name, _)| name == "doomed"));
        for (v_id, _, _) in &videos {
            let full = db.get_video(*v_id).unwrap();
            db.read_video_bytes(&full.row).unwrap();
        }
    }

    #[test]
    fn manifest_roundtrips_and_survives_reopen() {
        let data = MemBackend::new();
        let wal = MemBackend::new();
        {
            let mut db = CbvrDatabase::on_backends(data.share(), wal.share()).unwrap();
            assert!(db.list_manifest().unwrap().is_empty(), "fresh db has no manifest");
            db.append_manifest_segment(ManifestSegment { min_i_id: 1, max_i_id: 4, rows: 4 })
                .unwrap();
            db.append_manifest_segment(ManifestSegment { min_i_id: 5, max_i_id: 9, rows: 5 })
                .unwrap();
        }
        let mut db = CbvrDatabase::on_backends(data.share(), wal.share()).unwrap();
        let segments = db.list_manifest().unwrap();
        assert_eq!(
            segments,
            vec![
                ManifestSegment { min_i_id: 1, max_i_id: 4, rows: 4 },
                ManifestSegment { min_i_id: 5, max_i_id: 9, rows: 5 },
            ]
        );
        assert_eq!(db.stats().unwrap().manifest_segments, 2);
    }

    #[test]
    fn replace_manifest_swaps_whole_set() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        db.append_manifest_segment(ManifestSegment { min_i_id: 1, max_i_id: 3, rows: 3 }).unwrap();
        db.append_manifest_segment(ManifestSegment { min_i_id: 4, max_i_id: 6, rows: 3 }).unwrap();
        db.replace_manifest(&[ManifestSegment { min_i_id: 1, max_i_id: 6, rows: 6 }]).unwrap();
        assert_eq!(
            db.list_manifest().unwrap(),
            vec![ManifestSegment { min_i_id: 1, max_i_id: 6, rows: 6 }]
        );
        // Replacing with the empty set clears the manifest entirely.
        db.replace_manifest(&[]).unwrap();
        assert!(db.list_manifest().unwrap().is_empty());
    }

    #[test]
    fn inverted_manifest_range_rejected_without_side_effects() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let bad = ManifestSegment { min_i_id: 9, max_i_id: 2, rows: 1 };
        assert!(db.append_manifest_segment(bad).is_err());
        assert!(db.replace_manifest(&[bad]).is_err());
        assert!(db.list_manifest().unwrap().is_empty());
    }

    #[test]
    fn manifest_rolls_back_with_failed_batch() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let result: Result<()> = db.run_batch(|db| {
            db.append_manifest_segment(ManifestSegment { min_i_id: 1, max_i_id: 2, rows: 2 })?;
            Err(StorageError::InvalidState("user abort".into()))
        });
        assert!(result.is_err());
        assert!(db.list_manifest().unwrap().is_empty(), "manifest record must roll back");
        // The tree can still be created and used after the rollback.
        db.append_manifest_segment(ManifestSegment { min_i_id: 1, max_i_id: 2, rows: 2 }).unwrap();
        assert_eq!(db.list_manifest().unwrap().len(), 1);
    }

    #[test]
    fn list_videos_in_id_order() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        for name in ["c", "a", "b"] {
            db.insert_video(&video_record(name, 10)).unwrap();
        }
        let listed = db.list_videos().unwrap();
        assert_eq!(listed.iter().map(|(id, _, _)| *id).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(listed[0].1, "c");
    }
}

#[cfg(test)]
mod vacuum_tests {
    use super::*;

    fn video_record(name: &str, payload: usize) -> VideoRecord {
        VideoRecord {
            v_name: name.into(),
            video: (0..payload).map(|i| (i % 256) as u8).collect(),
            stream: vec![7, 8, 9],
            dostore: 1_750_000_000,
        }
    }

    fn kf_record(v_id: u64) -> KeyFrameRecord {
        KeyFrameRecord {
            i_name: format!("v{v_id}_kf"),
            image: vec![3u8; 2000],
            min: 0,
            max: 127,
            sch: "RGB 256 1".into(),
            glcm: "GLCM 1 2 3 4 5 6".into(),
            gabor: "gabor 60 0".into(),
            tamura: "Tamura 18 0 0".into(),
            acc: "ACC 4 0".into(),
            naive: "NaiveVector".into(),
            srg: "SRG 1 0 1".into(),
            majorregions: 1,
            v_id,
        }
    }

    #[test]
    fn vacuum_preserves_all_live_data_and_ids() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let v1 = db.insert_video(&video_record("keep1", 10_000)).unwrap();
        let v2 = db.insert_video(&video_record("gone", 10_000)).unwrap();
        let v3 = db.insert_video(&video_record("keep3", 10_000)).unwrap();
        let k1 = db.insert_key_frame(&kf_record(v1)).unwrap();
        db.insert_key_frame(&kf_record(v2)).unwrap();
        let k3 = db.insert_key_frame(&kf_record(v3)).unwrap();
        db.delete_video(v2).unwrap();

        let mut fresh = db.vacuum_into(MemBackend::new(), MemBackend::new()).unwrap();
        assert_eq!(fresh.video_count().unwrap(), 2);
        assert_eq!(fresh.key_frame_count().unwrap(), 2);
        // Ids are preserved exactly.
        assert_eq!(fresh.get_video(v1).unwrap().v_name, "keep1");
        assert_eq!(fresh.get_video(v3).unwrap().v_name, "keep3");
        assert!(fresh.get_video(v2).is_err());
        assert_eq!(fresh.get_key_frame(k1).unwrap().v_id, v1);
        assert_eq!(fresh.key_frames_of_video(v3).unwrap(), vec![k3]);
        // Blob contents intact.
        let full = fresh.get_video(v1).unwrap();
        assert_eq!(fresh.read_video_bytes(&full.row).unwrap().len(), 10_000);
        // Counters continue from where the old database left off.
        let v4 = fresh.insert_video(&video_record("new", 10)).unwrap();
        assert_eq!(v4, 4);
        let stats = fresh.stats().unwrap();
        assert_eq!(stats.videos, 3);
        assert_eq!(stats.next_v_id, 5);
    }

    #[test]
    fn vacuum_shrinks_churned_database() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        // Heavy churn: insert and delete large videos repeatedly.
        let keeper = db.insert_video(&video_record("keeper", 50_000)).unwrap();
        for round in 0..10 {
            let v = db.insert_video(&video_record(&format!("churn{round}"), 200_000)).unwrap();
            db.delete_video(v).unwrap();
        }
        let before = db.page_count();
        let mut fresh = db.vacuum_into(MemBackend::new(), MemBackend::new()).unwrap();
        let after = fresh.page_count();
        assert!(after < before / 2, "vacuum should shrink: {before} -> {after}");
        assert_eq!(fresh.get_video(keeper).unwrap().v_name, "keeper");
    }

    #[test]
    fn vacuumed_database_survives_reopen() {
        let data = MemBackend::new();
        let wal = MemBackend::new();
        {
            let mut db = CbvrDatabase::in_memory().unwrap();
            let v = db.insert_video(&video_record("v", 5_000)).unwrap();
            db.insert_key_frame(&kf_record(v)).unwrap();
            db.vacuum_into(data.share(), wal.share()).unwrap();
        }
        let mut reopened = CbvrDatabase::on_backends(data.share(), wal.share()).unwrap();
        assert_eq!(reopened.video_count().unwrap(), 1);
        assert_eq!(reopened.key_frame_count().unwrap(), 1);
    }

    #[test]
    fn stats_reflect_contents() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let s0 = db.stats().unwrap();
        assert_eq!(s0.videos, 0);
        assert_eq!(s0.key_frames, 0);
        let v = db.insert_video(&video_record("v", 100)).unwrap();
        db.insert_key_frame(&kf_record(v)).unwrap();
        let s1 = db.stats().unwrap();
        assert_eq!(s1.videos, 1);
        assert_eq!(s1.key_frames, 1);
        assert!(s1.pages > s0.pages);
        assert_eq!(s1.next_v_id, 2);
        assert_eq!(s1.next_i_id, 2);
    }
}
