//! Row serialisation: a small, explicit, length-prefixed binary format.
//!
//! All integers little-endian; strings and byte fields carry a `u32`
//! length prefix. No self-description — the table layer knows each row's
//! schema, mirroring how fixed `CREATE TABLE` schemas work.

use crate::error::{Result, StorageError};

/// Sequential writer building a row buffer.
#[derive(Default)]
pub struct RowWriter {
    buf: Vec<u8>,
}

impl RowWriter {
    /// Fresh empty writer.
    pub fn new() -> RowWriter {
        RowWriter::default()
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a length-prefixed string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Append length-prefixed bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
        self
    }

    /// Append a count-prefixed `f32` slice (little-endian IEEE bits).
    pub fn f32s(&mut self, v: &[f32]) -> &mut Self {
        self.u32(v.len() as u32);
        for &x in v {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        self
    }

    /// Append a count-prefixed `f64` slice (little-endian IEEE bits).
    pub fn f64s(&mut self, v: &[f64]) -> &mut Self {
        self.u32(v.len() as u32);
        for &x in v {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        self
    }

    /// Finish, returning the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Sequential reader over a row buffer.
pub struct RowReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RowReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> RowReader<'a> {
        RowReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(StorageError::Corruption(format!(
                "row truncated: need {n} bytes at {}, have {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a length-prefixed string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| StorageError::Corruption(format!("row holds invalid utf-8: {e}")))
    }

    /// Read length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Read a count-prefixed `f32` slice written by [`RowWriter::f32s`].
    pub fn f32s(&mut self) -> Result<Vec<f32>> {
        let count = self.u32()? as usize;
        let raw = self.take(count.checked_mul(4).ok_or_else(|| {
            StorageError::Corruption(format!("f32 slice count overflows: {count}"))
        })?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
            .collect())
    }

    /// Read a count-prefixed `f64` slice written by [`RowWriter::f64s`].
    pub fn f64s(&mut self) -> Result<Vec<f64>> {
        let count = self.u32()? as usize;
        let raw = self.take(count.checked_mul(8).ok_or_else(|| {
            StorageError::Corruption(format!("f64 slice count overflows: {count}"))
        })?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect())
    }

    /// True when the whole buffer was consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = RowWriter::new();
        w.u8(9).u32(70_000).u64(1 << 50).str("hello world").bytes(&[1, 2, 3]);
        let buf = w.finish();
        let mut r = RowReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 9);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 50);
        assert_eq!(r.str().unwrap(), "hello world");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert!(r.at_end());
    }

    #[test]
    fn empty_string_and_bytes() {
        let mut w = RowWriter::new();
        w.str("").bytes(&[]);
        let buf = w.finish();
        let mut r = RowReader::new(&buf);
        assert_eq!(r.str().unwrap(), "");
        assert_eq!(r.bytes().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = RowWriter::new();
        w.str("something long enough");
        let buf = w.finish();
        let mut r = RowReader::new(&buf[..buf.len() - 1]);
        assert!(r.str().is_err());
        let mut r = RowReader::new(&buf[..2]);
        assert!(r.u32().is_err());
    }

    #[test]
    fn invalid_utf8_is_detected() {
        let mut w = RowWriter::new();
        w.bytes(&[0xFF, 0xFE]);
        let buf = w.finish();
        // Re-read the bytes field as a string.
        let mut r = RowReader::new(&buf);
        assert!(r.str().is_err());
    }

    #[test]
    fn float_slices_round_trip_bit_exact() {
        let f32v = vec![0.0f32, -0.0, 1.5, f32::MIN_POSITIVE, f32::MAX, -3.25e-20];
        let f64v = vec![0.0f64, -0.0, 2.5, f64::MIN_POSITIVE, f64::MAX, 1e-310];
        let mut w = RowWriter::new();
        w.f32s(&f32v).f64s(&f64v).f32s(&[]).f64s(&[]);
        let buf = w.finish();
        let mut r = RowReader::new(&buf);
        let back32 = r.f32s().unwrap();
        let back64 = r.f64s().unwrap();
        assert!(back32.iter().zip(&f32v).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(back64.iter().zip(&f64v).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(r.f32s().unwrap(), Vec::<f32>::new());
        assert_eq!(r.f64s().unwrap(), Vec::<f64>::new());
        assert!(r.at_end());
    }

    #[test]
    fn truncated_float_slices_are_detected() {
        let mut w = RowWriter::new();
        w.f32s(&[1.0, 2.0]).f64s(&[3.0]);
        let buf = w.finish();
        let mut r = RowReader::new(&buf[..buf.len() - 1]);
        assert!(r.f32s().is_ok());
        assert!(r.f64s().is_err());
        let mut r = RowReader::new(&buf[..6]);
        assert!(r.f32s().is_err());
    }

    #[test]
    fn unicode_strings() {
        let mut w = RowWriter::new();
        w.str("日本語 🎬");
        let buf = w.finish();
        assert_eq!(RowReader::new(&buf).str().unwrap(), "日本語 🎬");
    }
}
