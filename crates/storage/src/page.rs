//! Fixed-size pages and typed cursors.

use crate::error::{Result, StorageError};

/// Page size in bytes. 4 KiB, the conventional unit.
pub const PAGE_SIZE: usize = 4096;

/// Page identifier: index into the page file. Page 0 is the meta page.
pub type PageId = u32;

/// The null page id (page 0 is the meta page, never a data target).
pub const NO_PAGE: PageId = 0;

/// One page worth of bytes.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} bytes)", PAGE_SIZE)
    }
}

impl Default for Page {
    fn default() -> Self {
        Page { bytes: Box::new([0u8; PAGE_SIZE]) }
    }
}

impl Page {
    /// Zero-filled page.
    pub fn new() -> Page {
        Page::default()
    }

    /// Wrap raw bytes (must be exactly [`PAGE_SIZE`]).
    pub fn from_bytes(data: &[u8]) -> Result<Page> {
        if data.len() != PAGE_SIZE {
            return Err(StorageError::Corruption(format!(
                "page must be {PAGE_SIZE} bytes, got {}",
                data.len()
            )));
        }
        let mut page = Page::new();
        page.bytes.copy_from_slice(data);
        Ok(page)
    }

    /// Borrow the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..]
    }

    /// Borrow the raw bytes mutably.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes[..]
    }

    /// A reading cursor at `offset`.
    pub fn reader(&self, offset: usize) -> PageReader<'_> {
        PageReader { page: self, pos: offset }
    }

    /// A writing cursor at `offset`.
    pub fn writer(&mut self, offset: usize) -> PageWriter<'_> {
        PageWriter { page: self, pos: offset }
    }
}

/// Sequential typed reader over a page.
pub struct PageReader<'a> {
    page: &'a Page,
    pos: usize,
}

impl PageReader<'_> {
    /// Current position.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&[u8]> {
        if self.pos + n > PAGE_SIZE {
            return Err(StorageError::Corruption(format!(
                "page read of {n} bytes at {} overruns the page",
                self.pos
            )));
        }
        let s = &self.page.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&[u8]> {
        self.take(n)
    }
}

/// Sequential typed writer over a page.
pub struct PageWriter<'a> {
    page: &'a mut Page,
    pos: usize,
}

impl PageWriter<'_> {
    /// Current position.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn put(&mut self, data: &[u8]) -> Result<()> {
        if self.pos + data.len() > PAGE_SIZE {
            return Err(StorageError::Corruption(format!(
                "page write of {} bytes at {} overruns the page",
                data.len(),
                self.pos
            )));
        }
        self.page.bytes[self.pos..self.pos + data.len()].copy_from_slice(data);
        self.pos += data.len();
        Ok(())
    }

    /// Write a `u8`.
    pub fn u8(&mut self, v: u8) -> Result<()> {
        self.put(&[v])
    }

    /// Write a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> Result<()> {
        self.put(&v.to_le_bytes())
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> Result<()> {
        self.put(&v.to_le_bytes())
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> Result<()> {
        self.put(&v.to_le_bytes())
    }

    /// Write raw bytes.
    pub fn bytes(&mut self, data: &[u8]) -> Result<()> {
        self.put(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_round_trip() {
        let mut p = Page::new();
        {
            let mut w = p.writer(0);
            w.u8(7).unwrap();
            w.u16(300).unwrap();
            w.u32(70_000).unwrap();
            w.u64(1 << 40).unwrap();
            w.bytes(b"tail").unwrap();
            assert_eq!(w.position(), 1 + 2 + 4 + 8 + 4);
        }
        let mut r = p.reader(0);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.bytes(4).unwrap(), b"tail");
    }

    #[test]
    fn overrun_is_error_not_panic() {
        let mut p = Page::new();
        assert!(p.writer(PAGE_SIZE - 1).u16(1).is_err());
        assert!(p.reader(PAGE_SIZE - 3).u32().is_err());
        assert!(p.writer(PAGE_SIZE).u8(0).is_err());
        // Exactly at the edge is fine.
        assert!(p.writer(PAGE_SIZE - 1).u8(0xFF).is_ok());
        assert_eq!(p.reader(PAGE_SIZE - 1).u8().unwrap(), 0xFF);
    }

    #[test]
    fn from_bytes_validates_length() {
        assert!(Page::from_bytes(&[0u8; PAGE_SIZE]).is_ok());
        assert!(Page::from_bytes(&[0u8; 100]).is_err());
        assert!(Page::from_bytes(&[0u8; PAGE_SIZE + 1]).is_err());
    }

    #[test]
    fn default_page_is_zeroed() {
        let p = Page::new();
        assert!(p.as_bytes().iter().all(|&b| b == 0));
    }
}
