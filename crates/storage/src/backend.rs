//! Byte-level storage backends.
//!
//! The engine reads and writes two byte streams: the page file and the
//! WAL. [`Backend`] abstracts them so the same engine runs on real files
//! ([`FileBackend`]) and on memory with *fault injection*
//! ([`MemBackend`]) — crash-recovery tests arm a fault after N writes and
//! then verify that reopening the database replays or discards exactly
//! the right state.

use crate::error::{Result, StorageError};
use std::sync::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A random-access, growable byte store.
pub trait Backend: Send {
    /// Read exactly `buf.len()` bytes at `offset`. Reading past the end is
    /// an error.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()>;
    /// Write all of `buf` at `offset`, growing the store if needed.
    fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<()>;
    /// Current length in bytes.
    fn len(&mut self) -> Result<u64>;
    /// True when the store holds no bytes.
    fn is_empty(&mut self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
    /// Truncate to `len` bytes.
    fn truncate(&mut self, len: u64) -> Result<()>;
    /// Durability barrier (fsync for files; fault-countable no-op in
    /// memory).
    fn sync(&mut self) -> Result<()>;
}

/// A real file.
pub struct FileBackend {
    file: File,
}

impl FileBackend {
    /// Open (creating if missing) the file at `path`.
    pub fn open(path: &Path) -> Result<FileBackend> {
        // Existing files must keep their contents: this is open-or-create,
        // never truncate.
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        Ok(FileBackend { file })
    }
}

impl Backend for FileBackend {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    fn len(&mut self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        self.file.set_len(len)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// Shared fault trigger: errors every mutation once fewer than one write
/// remains. Cloneable so a test can hold the trigger while the engine
/// owns the backend.
#[derive(Clone, Default)]
pub struct FaultPlan {
    remaining_writes: Arc<AtomicU64>,
    armed: Arc<AtomicU64>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Fail every write/sync after `n` more mutations succeed.
    pub fn fail_after_writes(&self, n: u64) {
        self.remaining_writes.store(n, Ordering::SeqCst);
        self.armed.store(1, Ordering::SeqCst);
    }

    /// Disarm: all operations succeed again (the "reboot").
    pub fn heal(&self) {
        self.armed.store(0, Ordering::SeqCst);
    }

    fn consume(&self) -> Result<()> {
        if self.armed.load(Ordering::SeqCst) == 0 {
            return Ok(());
        }
        // Decrement-with-floor: when the budget is exhausted, fail.
        loop {
            let cur = self.remaining_writes.load(Ordering::SeqCst);
            if cur == 0 {
                return Err(StorageError::Io(std::io::Error::other(
                    "injected fault: simulated crash",
                )));
            }
            if self
                .remaining_writes
                .compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Ok(());
            }
        }
    }
}

/// In-memory backend with optional fault injection. The buffer is shared
/// behind a mutex so a "reopened" backend (fresh [`MemBackend`] from
/// [`MemBackend::share`]) sees exactly the bytes that survived the crash.
pub struct MemBackend {
    data: Arc<Mutex<Vec<u8>>>,
    faults: FaultPlan,
}

impl MemBackend {
    /// Fresh empty store without faults.
    pub fn new() -> MemBackend {
        MemBackend { data: Arc::new(Mutex::new(Vec::new())), faults: FaultPlan::none() }
    }

    /// Fresh empty store wired to a fault plan.
    pub fn with_faults(faults: FaultPlan) -> MemBackend {
        MemBackend { data: Arc::new(Mutex::new(Vec::new())), faults }
    }

    /// Another handle onto the same bytes (simulates reopening the file
    /// after a crash).
    pub fn share(&self) -> MemBackend {
        MemBackend { data: Arc::clone(&self.data), faults: self.faults.clone() }
    }

    /// The fault trigger for tests.
    pub fn faults(&self) -> FaultPlan {
        self.faults.clone()
    }
}

impl Default for MemBackend {
    fn default() -> Self {
        Self::new()
    }
}

/// A poisoned buffer mutex means another handle panicked mid-write; treat
/// it as an I/O failure instead of propagating the panic, so the sweep
/// can observe it like any other fault.
fn lock_poisoned() -> StorageError {
    StorageError::Io(std::io::Error::other("mem backend mutex poisoned"))
}

impl Backend for MemBackend {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let data = self.data.lock().map_err(|_| lock_poisoned())?;
        let start = offset as usize;
        let end = start + buf.len();
        if end > data.len() {
            return Err(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("read past end: {end} > {}", data.len()),
            )));
        }
        buf.copy_from_slice(&data[start..end]);
        Ok(())
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<()> {
        self.faults.consume()?;
        let mut data = self.data.lock().map_err(|_| lock_poisoned())?;
        let start = offset as usize;
        let end = start + buf.len();
        if end > data.len() {
            data.resize(end, 0);
        }
        data[start..end].copy_from_slice(buf);
        Ok(())
    }

    fn len(&mut self) -> Result<u64> {
        Ok(self.data.lock().map_err(|_| lock_poisoned())?.len() as u64)
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        self.faults.consume()?;
        let mut data = self.data.lock().map_err(|_| lock_poisoned())?;
        data.truncate(len as usize);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.faults.consume()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_round_trip() {
        let mut b = MemBackend::new();
        b.write_at(10, b"hello").unwrap();
        assert_eq!(b.len().unwrap(), 15);
        let mut buf = [0u8; 5];
        b.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        // Gap is zero-filled.
        let mut gap = [9u8; 10];
        b.read_at(0, &mut gap).unwrap();
        assert_eq!(gap, [0u8; 10]);
    }

    #[test]
    fn mem_backend_read_past_end_errors() {
        let mut b = MemBackend::new();
        b.write_at(0, b"abc").unwrap();
        let mut buf = [0u8; 4];
        assert!(b.read_at(0, &mut buf).is_err());
        assert!(b.read_at(100, &mut buf[..1]).is_err());
    }

    #[test]
    fn truncate_shrinks() {
        let mut b = MemBackend::new();
        b.write_at(0, &[1; 100]).unwrap();
        b.truncate(10).unwrap();
        assert_eq!(b.len().unwrap(), 10);
        assert!(!b.is_empty().unwrap());
        b.truncate(0).unwrap();
        assert!(b.is_empty().unwrap());
    }

    #[test]
    fn shared_handle_sees_same_bytes() {
        let a = MemBackend::new();
        let mut b = a.share();
        let mut a = a;
        a.write_at(0, b"xyz").unwrap();
        let mut buf = [0u8; 3];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"xyz");
    }

    #[test]
    fn fault_plan_fails_after_budget() {
        let plan = FaultPlan::none();
        let mut b = MemBackend::with_faults(plan.clone());
        b.write_at(0, b"one").unwrap();
        plan.fail_after_writes(2);
        b.write_at(0, b"two").unwrap(); // budget 2 → 1
        b.sync().unwrap(); // budget 1 → 0
        assert!(b.write_at(0, b"boom").is_err());
        assert!(b.sync().is_err());
        plan.heal();
        b.write_at(0, b"ok").unwrap();
    }

    #[test]
    fn file_backend_round_trip() {
        let dir = std::env::temp_dir().join(format!("cbvr-backend-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bin");
        {
            let mut f = FileBackend::open(&path).unwrap();
            f.write_at(4096, &[7u8; 16]).unwrap();
            f.sync().unwrap();
            assert_eq!(f.len().unwrap(), 4112);
        }
        {
            let mut f = FileBackend::open(&path).unwrap();
            let mut buf = [0u8; 16];
            f.read_at(4096, &mut buf).unwrap();
            assert_eq!(buf, [7u8; 16]);
            f.truncate(0).unwrap();
            assert_eq!(f.len().unwrap(), 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
