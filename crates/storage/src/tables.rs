//! The paper's two tables as typed records and row codecs.
//!
//! `VIDEO_STORE(v_id, v_name, video, stream, dostore)` and
//! `KEY_FRAMES(i_id, i_name, image, min, max, sch, glcm, gabor, tamura,
//! majorregions, v_id)`.
//!
//! Extension: the paper's Fig. 8 also computes autocorrelogram, naive and
//! region-growing strings but its `CREATE TABLE` omits columns for them;
//! we add `acc`, `naive` and `srg` columns so every extracted feature is
//! queryable (DESIGN.md records this schema extension).
//!
//! Blob columns (`VIDEO`, `STREAM`, `IMAGE`) hold [`BlobRef`]s into the
//! heap; rows that outgrow a B+-tree cell spill to the heap wholesale
//! (see [`crate::db`]).

use crate::codec::{RowReader, RowWriter};
use crate::error::Result;
use crate::heap::BlobRef;

/// Insertion payload for `VIDEO_STORE` (ids are assigned by the engine).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VideoRecord {
    /// `V_NAME VARCHAR2(60)` — display name.
    pub v_name: String,
    /// `VIDEO ORD_Video` — the encoded video container bytes.
    pub video: Vec<u8>,
    /// `STREAM BLOB` — the encoded key-frame stream bytes.
    pub stream: Vec<u8>,
    /// `DOSTORE DATE` — store timestamp, epoch seconds.
    pub dostore: u64,
}

/// A stored `VIDEO_STORE` row (blobs as refs; materialise via the db).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VideoRow {
    /// Primary key.
    pub v_id: u64,
    /// Blob ref for the video container.
    pub video: BlobRef,
    /// Blob ref for the key-frame stream.
    pub stream: BlobRef,
    /// Store timestamp, epoch seconds.
    pub dostore: u64,
}

/// `VIDEO_STORE` row with its name (names are variable length, so they
/// ride in the row buffer rather than the fixed struct).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VideoRowFull {
    /// Fixed columns.
    pub row: VideoRow,
    /// `V_NAME`.
    pub v_name: String,
}

pub(crate) fn encode_video_row(row: &VideoRowFull) -> Vec<u8> {
    let mut w = RowWriter::new();
    w.u64(row.row.v_id)
        .str(&row.v_name)
        .u32(row.row.video.head)
        .u64(row.row.video.len)
        .u32(row.row.stream.head)
        .u64(row.row.stream.len)
        .u64(row.row.dostore);
    w.finish()
}

pub(crate) fn decode_video_row(buf: &[u8]) -> Result<VideoRowFull> {
    let mut r = RowReader::new(buf);
    let v_id = r.u64()?;
    let v_name = r.str()?;
    let video = BlobRef { head: r.u32()?, len: r.u64()? };
    let stream = BlobRef { head: r.u32()?, len: r.u64()? };
    let dostore = r.u64()?;
    Ok(VideoRowFull { row: VideoRow { v_id, video, stream, dostore }, v_name })
}

/// Insertion payload for `KEY_FRAMES` (ids are assigned by the engine).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyFrameRecord {
    /// `I_NAME VARCHAR2(40)` — frame name (e.g. `v3_kf_007`).
    pub i_name: String,
    /// `IMAGE ORD_Image` — encoded key-frame image bytes.
    pub image: Vec<u8>,
    /// `MIN NUMBER` — range-finder lower bound.
    pub min: u8,
    /// `MAX NUMBER` — range-finder upper bound.
    pub max: u8,
    /// `SCH VARCHAR2(1500)` — simple color histogram string.
    pub sch: String,
    /// `GLCM VARCHAR2(250)` — GLCM texture string.
    pub glcm: String,
    /// `GABOR VARCHAR2(1500)` — Gabor texture string.
    pub gabor: String,
    /// `TAMURA VARCHAR2(500)` — Tamura texture string.
    pub tamura: String,
    /// Extension column: autocorrelogram string.
    pub acc: String,
    /// Extension column: naive signature string.
    pub naive: String,
    /// Extension column: region-growing string (`SRG r h m`).
    pub srg: String,
    /// `MAJORREGIONS NUMBER`.
    pub majorregions: u32,
    /// `V_ID NUMBER` — owning video.
    pub v_id: u64,
}

/// A stored `KEY_FRAMES` row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyFrameRow {
    /// Primary key.
    pub i_id: u64,
    /// Frame name.
    pub i_name: String,
    /// Blob ref for the frame image.
    pub image: BlobRef,
    /// Range-finder lower bound.
    pub min: u8,
    /// Range-finder upper bound.
    pub max: u8,
    /// Color histogram feature string.
    pub sch: String,
    /// GLCM feature string.
    pub glcm: String,
    /// Gabor feature string.
    pub gabor: String,
    /// Tamura feature string.
    pub tamura: String,
    /// Autocorrelogram feature string.
    pub acc: String,
    /// Naive signature feature string.
    pub naive: String,
    /// Region-growing feature string.
    pub srg: String,
    /// Major region count.
    pub majorregions: u32,
    /// Owning video.
    pub v_id: u64,
}

pub(crate) fn encode_key_frame_row(row: &KeyFrameRow) -> Vec<u8> {
    let mut w = RowWriter::new();
    w.u64(row.i_id)
        .str(&row.i_name)
        .u32(row.image.head)
        .u64(row.image.len)
        .u8(row.min)
        .u8(row.max)
        .str(&row.sch)
        .str(&row.glcm)
        .str(&row.gabor)
        .str(&row.tamura)
        .str(&row.acc)
        .str(&row.naive)
        .str(&row.srg)
        .u32(row.majorregions)
        .u64(row.v_id);
    w.finish()
}

pub(crate) fn decode_key_frame_row(buf: &[u8]) -> Result<KeyFrameRow> {
    let mut r = RowReader::new(buf);
    Ok(KeyFrameRow {
        i_id: r.u64()?,
        i_name: r.str()?,
        image: BlobRef { head: r.u32()?, len: r.u64()? },
        min: r.u8()?,
        max: r.u8()?,
        sch: r.str()?,
        glcm: r.str()?,
        gabor: r.str()?,
        tamura: r.str()?,
        acc: r.str()?,
        naive: r.str()?,
        srg: r.str()?,
        majorregions: r.u32()?,
        v_id: r.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kf_row() -> KeyFrameRow {
        KeyFrameRow {
            i_id: 12,
            i_name: "v3_kf_007".into(),
            image: BlobRef { head: 99, len: 4321 },
            min: 64,
            max: 127,
            sch: "RGB 256 1 2 3".into(),
            glcm: "GLCM 100 0.5 1 0 0.9 2".into(),
            gabor: "gabor 60 0.1".into(),
            tamura: "Tamura 18 4 20".into(),
            acc: "ACC 4 0.5".into(),
            naive: "NaiveVector java.awt.Color[r=1,g=2,b=3]".into(),
            srg: "SRG 3 1 2".into(),
            majorregions: 2,
            v_id: 3,
        }
    }

    #[test]
    fn video_row_round_trip() {
        let full = VideoRowFull {
            row: VideoRow {
                v_id: 42,
                video: BlobRef { head: 7, len: 100_000 },
                stream: BlobRef::EMPTY,
                dostore: 1_700_000_000,
            },
            v_name: "sports_04.vsc".into(),
        };
        let buf = encode_video_row(&full);
        assert_eq!(decode_video_row(&buf).unwrap(), full);
    }

    #[test]
    fn key_frame_row_round_trip() {
        let row = sample_kf_row();
        let buf = encode_key_frame_row(&row);
        assert_eq!(decode_key_frame_row(&buf).unwrap(), row);
    }

    #[test]
    fn corrupt_rows_are_detected() {
        let buf = encode_key_frame_row(&sample_kf_row());
        assert!(decode_key_frame_row(&buf[..buf.len() / 2]).is_err());
        assert!(decode_video_row(&[]).is_err());
    }

    #[test]
    fn empty_strings_are_legal() {
        let mut row = sample_kf_row();
        row.sch = String::new();
        row.i_name = String::new();
        let buf = encode_key_frame_row(&row);
        assert_eq!(decode_key_frame_row(&buf).unwrap(), row);
    }
}
