//! Chained-page blob heap.
//!
//! Stores the big byte payloads of the paper's `ORD_Video` / `ORD_Image` /
//! `BLOB` columns: a blob is a singly-linked chain of pages, each holding
//! `next` pointer, a used-byte count and data. [`BlobRef`] (head page +
//! total length) is what rows embed.
//!
//! ```text
//! blob page: next u32 | used u16 | data[PAGE_SIZE - 6]
//! ```

use crate::backend::Backend;
use crate::error::{Result, StorageError};
use crate::page::{Page, PageId, NO_PAGE, PAGE_SIZE};
use crate::pager::Pager;

const HEADER_LEN: usize = 6;
/// Payload bytes per blob page.
pub const CHUNK: usize = PAGE_SIZE - HEADER_LEN;

/// Handle to a stored blob.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct BlobRef {
    /// First page of the chain; [`NO_PAGE`] for the empty blob.
    pub head: PageId,
    /// Total byte length.
    pub len: u64,
}

impl BlobRef {
    /// The empty blob.
    pub const EMPTY: BlobRef = BlobRef { head: NO_PAGE, len: 0 };

    /// True when this references zero bytes.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// Write a blob, returning its handle.
pub fn write_blob<B: Backend>(pager: &mut Pager<B>, data: &[u8]) -> Result<BlobRef> {
    if data.is_empty() {
        return Ok(BlobRef::EMPTY);
    }
    // Allocate the chain first so each page can point at its successor.
    let chunks: Vec<&[u8]> = data.chunks(CHUNK).collect();
    let ids: Vec<PageId> = (0..chunks.len()).map(|_| pager.allocate()).collect::<Result<_>>()?;
    for (i, chunk) in chunks.iter().enumerate() {
        let next = ids.get(i + 1).copied().unwrap_or(NO_PAGE);
        let mut page = Page::new();
        let mut w = page.writer(0);
        w.u32(next)?;
        w.u16(chunk.len() as u16)?;
        w.bytes(chunk)?;
        pager.write_page(ids[i], page)?;
    }
    Ok(BlobRef { head: ids[0], len: data.len() as u64 })
}

/// Read a whole blob.
pub fn read_blob<B: Backend>(pager: &mut Pager<B>, blob: BlobRef) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(blob.len as usize);
    let mut id = blob.head;
    while id != NO_PAGE {
        let page = pager.read_page(id)?;
        let mut r = page.reader(0);
        let next = r.u32()?;
        let used = r.u16()? as usize;
        if used > CHUNK {
            return Err(StorageError::Corruption(format!("blob page {id} claims {used} bytes")));
        }
        out.extend_from_slice(r.bytes(used)?);
        if out.len() as u64 > blob.len {
            return Err(StorageError::Corruption(format!(
                "blob chain longer than declared length {}",
                blob.len
            )));
        }
        id = next;
    }
    if out.len() as u64 != blob.len {
        return Err(StorageError::Corruption(format!(
            "blob chain holds {} bytes, expected {}",
            out.len(),
            blob.len
        )));
    }
    Ok(out)
}

/// Free a blob's pages back to the pager.
pub fn free_blob<B: Backend>(pager: &mut Pager<B>, blob: BlobRef) -> Result<()> {
    let mut id = blob.head;
    while id != NO_PAGE {
        let page = pager.read_page(id)?;
        let next = page.reader(0).u32()?;
        pager.free(id)?;
        id = next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn fresh() -> Pager<MemBackend> {
        Pager::open(MemBackend::new(), MemBackend::new(), 64).unwrap()
    }

    #[test]
    fn empty_blob() {
        let mut pager = fresh();
        let blob = write_blob(&mut pager, &[]).unwrap();
        assert!(blob.is_empty());
        assert_eq!(read_blob(&mut pager, blob).unwrap(), Vec::<u8>::new());
        free_blob(&mut pager, blob).unwrap(); // no-op
    }

    #[test]
    fn single_page_blob() {
        let mut pager = fresh();
        let data = b"hello blob".to_vec();
        let blob = write_blob(&mut pager, &data).unwrap();
        assert_eq!(blob.len, data.len() as u64);
        assert_eq!(read_blob(&mut pager, blob).unwrap(), data);
    }

    #[test]
    fn multi_page_blob_round_trip() {
        let mut pager = fresh();
        let data: Vec<u8> = (0..3 * CHUNK + 1234).map(|i| (i % 251) as u8).collect();
        let blob = write_blob(&mut pager, &data).unwrap();
        assert_eq!(read_blob(&mut pager, blob).unwrap(), data);
    }

    #[test]
    fn exact_chunk_boundary() {
        let mut pager = fresh();
        for pages in 1..=3 {
            let data = vec![7u8; CHUNK * pages];
            let blob = write_blob(&mut pager, &data).unwrap();
            assert_eq!(read_blob(&mut pager, blob).unwrap(), data);
        }
    }

    #[test]
    fn free_recycles_pages() {
        let mut pager = fresh();
        let data = vec![1u8; CHUNK * 4];
        let blob = write_blob(&mut pager, &data).unwrap();
        pager.commit().unwrap();
        let before = pager.page_count();
        free_blob(&mut pager, blob).unwrap();
        pager.commit().unwrap();
        // Writing the same blob again reuses the freed chain: no growth.
        let _again = write_blob(&mut pager, &data).unwrap();
        assert_eq!(pager.page_count(), before);
    }

    #[test]
    fn corrupt_length_detected() {
        let mut pager = fresh();
        let blob = write_blob(&mut pager, &[1, 2, 3]).unwrap();
        let wrong = BlobRef { head: blob.head, len: 5 };
        assert!(read_blob(&mut pager, wrong).is_err());
        let wrong = BlobRef { head: blob.head, len: 2 };
        assert!(read_blob(&mut pager, wrong).is_err());
    }

    #[test]
    fn blob_survives_commit_reload() {
        let data_backend = MemBackend::new();
        let wal = MemBackend::new();
        let data: Vec<u8> = (0..10_000).map(|i| (i * 7 % 256) as u8).collect();
        let blob;
        {
            let mut pager = Pager::open(data_backend.share(), wal.share(), 64).unwrap();
            blob = write_blob(&mut pager, &data).unwrap();
            pager.commit().unwrap();
        }
        let mut pager = Pager::open(data_backend.share(), wal.share(), 64).unwrap();
        assert_eq!(read_blob(&mut pager, blob).unwrap(), data);
    }
}
