//! Storage-layer telemetry counters.
//!
//! This crate sits below `cbvr-core` (which owns the process-wide
//! telemetry registry) and depends on nothing, so it keeps its counters
//! as a plain value struct: every [`crate::pager::Pager`] method already
//! takes `&mut self`, so plain `u64` fields suffice — no atomics. Upper
//! layers snapshot [`crate::db::CbvrDatabase::telemetry`] and merge the
//! numbers into their own exposition (`GET /metrics`,
//! `cbvr stats --telemetry`).

/// Counters accumulated by a pager (and the database on top of it) since
/// open. All monotonic; snapshot-copyable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageTelemetry {
    /// Page reads served from the cache.
    pub cache_hits: u64,
    /// Page reads that went to the data backend.
    pub cache_misses: u64,
    /// Clean pages evicted to stay within the cache capacity.
    pub cache_evictions: u64,
    /// Pages staged for write (dirty insertions into the cache).
    pub page_writes: u64,
    /// Non-empty commits that appended a WAL record.
    pub wal_commits: u64,
    /// Committed WAL records replayed during open (crash recovery).
    pub wal_replays: u64,
    /// Bytes appended to the WAL across all commits.
    pub wal_bytes: u64,
    /// I/O errors attributed to the deterministic fault injector.
    pub fault_injected: u64,
    /// Transient I/O errors absorbed by retry-with-backoff (the retry
    /// succeeded, so no error reached the caller).
    pub fault_retried: u64,
}

impl StorageTelemetry {
    /// The counters as sorted `storage.<name> <value>` exposition lines,
    /// matching the registry's plain-text format so the web and CLI
    /// layers can splice them into one listing.
    pub fn render_lines(&self) -> Vec<String> {
        vec![
            format!("storage.cache.evictions {}", self.cache_evictions),
            format!("storage.cache.hits {}", self.cache_hits),
            format!("storage.cache.misses {}", self.cache_misses),
            format!("storage.fault.injected {}", self.fault_injected),
            format!("storage.fault.retried {}", self.fault_retried),
            format!("storage.page.writes {}", self.page_writes),
            format!("storage.wal.bytes {}", self.wal_bytes),
            format!("storage.wal.commits {}", self.wal_commits),
            format!("storage.wal.replays {}", self.wal_replays),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_lines_are_sorted() {
        let t = StorageTelemetry { cache_hits: 3, wal_bytes: 9, ..Default::default() };
        let lines = t.render_lines();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
        assert!(lines.contains(&"storage.cache.hits 3".to_string()));
        assert!(lines.contains(&"storage.wal.bytes 9".to_string()));
        assert!(lines.contains(&"storage.wal.replays 0".to_string()));
        assert!(lines.contains(&"storage.fault.injected 0".to_string()));
        assert!(lines.contains(&"storage.fault.retried 0".to_string()));
    }
}
