//! A page-backed B+-tree keyed by `u64` with variable-length values.
//!
//! Used for the `VIDEO_STORE` and `KEY_FRAMES` primary keys and the
//! `(v_id, i_id)` secondary index. Leaves are chained for range scans.
//!
//! Node layout (one page per node):
//!
//! ```text
//! leaf:     tag=1 u8 | count u16 | next_leaf u32 | (key u64, len u16, bytes)*
//! internal: tag=2 u8 | count u16 | unused   u32 | child0 u32 | (key u64, child u32)*
//! ```
//!
//! Values are capped at [`MAX_VALUE_LEN`]; larger payloads belong in the
//! blob heap (the table layer spills automatically). Deletion is *lazy*:
//! nodes are not rebalanced or reclaimed on underflow — correct, simple,
//! and adequate for the workload (the paper's system only deletes whole
//! videos, which are rare administrative events). The space cost is
//! bounded by the high-water mark of the tree.

use crate::backend::Backend;
use crate::error::{Result, StorageError};
use crate::page::{Page, PageId, NO_PAGE, PAGE_SIZE};
use crate::pager::Pager;

/// Maximum value size storable inline in a leaf.
pub const MAX_VALUE_LEN: usize = 2048;

const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;
const HEADER_LEN: usize = 7; // tag + count + next/unused

#[derive(Debug, Clone)]
enum Node {
    Leaf { next: PageId, cells: Vec<(u64, Vec<u8>)> },
    Internal { keys: Vec<u64>, children: Vec<PageId> },
}

impl Node {
    fn serialized_len(&self) -> usize {
        match self {
            Node::Leaf { cells, .. } => {
                HEADER_LEN + cells.iter().map(|(_, v)| 8 + 2 + v.len()).sum::<usize>()
            }
            Node::Internal { keys, .. } => HEADER_LEN + 4 + keys.len() * 12,
        }
    }

    fn overflows(&self) -> bool {
        self.serialized_len() > PAGE_SIZE
    }
}

fn read_node<B: Backend>(pager: &mut Pager<B>, id: PageId) -> Result<Node> {
    let page = pager.read_page(id)?;
    let mut r = page.reader(0);
    let tag = r.u8()?;
    let count = r.u16()? as usize;
    let next = r.u32()?;
    match tag {
        TAG_LEAF => {
            let mut cells = Vec::with_capacity(count);
            for _ in 0..count {
                let key = r.u64()?;
                let len = r.u16()? as usize;
                cells.push((key, r.bytes(len)?.to_vec()));
            }
            Ok(Node::Leaf { next, cells })
        }
        TAG_INTERNAL => {
            let mut children = Vec::with_capacity(count + 1);
            children.push(r.u32()?);
            let mut keys = Vec::with_capacity(count);
            for _ in 0..count {
                keys.push(r.u64()?);
                children.push(r.u32()?);
            }
            Ok(Node::Internal { keys, children })
        }
        other => Err(StorageError::Corruption(format!("page {id}: bad node tag {other}"))),
    }
}

fn write_node<B: Backend>(pager: &mut Pager<B>, id: PageId, node: &Node) -> Result<()> {
    debug_assert!(!node.overflows(), "caller must split before writing");
    let mut page = Page::new();
    let mut w = page.writer(0);
    match node {
        Node::Leaf { next, cells } => {
            w.u8(TAG_LEAF)?;
            w.u16(cells.len() as u16)?;
            w.u32(*next)?;
            for (key, value) in cells {
                w.u64(*key)?;
                w.u16(value.len() as u16)?;
                w.bytes(value)?;
            }
        }
        Node::Internal { keys, children } => {
            w.u8(TAG_INTERNAL)?;
            w.u16(keys.len() as u16)?;
            w.u32(0)?;
            w.u32(children[0])?;
            for (key, child) in keys.iter().zip(&children[1..]) {
                w.u64(*key)?;
                w.u32(*child)?;
            }
        }
    }
    pager.write_page(id, page)
}

/// A B+-tree rooted at a page. The root id changes on root splits; the
/// owner must persist [`BTree::root`] (the database keeps it in user
/// meta).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTree {
    root: PageId,
}

/// Outcome of a child insert that split.
struct Split {
    separator: u64,
    right: PageId,
}

impl BTree {
    /// Allocate an empty tree (a single empty leaf).
    pub fn create<B: Backend>(pager: &mut Pager<B>) -> Result<BTree> {
        let root = pager.allocate()?;
        write_node(pager, root, &Node::Leaf { next: NO_PAGE, cells: Vec::new() })?;
        Ok(BTree { root })
    }

    /// Attach to an existing tree.
    pub fn load(root: PageId) -> BTree {
        BTree { root }
    }

    /// Current root page.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Look up a key.
    pub fn get<B: Backend>(&self, pager: &mut Pager<B>, key: u64) -> Result<Option<Vec<u8>>> {
        let mut id = self.root;
        loop {
            match read_node(pager, id)? {
                Node::Leaf { cells, .. } => {
                    return Ok(cells
                        .binary_search_by_key(&key, |(k, _)| *k)
                        .ok()
                        .map(|i| cells[i].1.clone()));
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&k| k <= key);
                    id = children[idx];
                }
            }
        }
    }

    /// True when the key is present.
    pub fn contains<B: Backend>(&self, pager: &mut Pager<B>, key: u64) -> Result<bool> {
        Ok(self.get(pager, key)?.is_some())
    }

    /// Insert a new key.
    ///
    /// # Errors
    /// [`StorageError::Duplicate`] when the key exists,
    /// [`StorageError::TooLarge`] when the value exceeds [`MAX_VALUE_LEN`].
    pub fn insert<B: Backend>(&mut self, pager: &mut Pager<B>, key: u64, value: &[u8]) -> Result<()> {
        self.put(pager, key, value, false)
    }

    /// Insert or overwrite a key.
    pub fn upsert<B: Backend>(&mut self, pager: &mut Pager<B>, key: u64, value: &[u8]) -> Result<()> {
        self.put(pager, key, value, true)
    }

    fn put<B: Backend>(
        &mut self,
        pager: &mut Pager<B>,
        key: u64,
        value: &[u8],
        overwrite: bool,
    ) -> Result<()> {
        if value.len() > MAX_VALUE_LEN {
            return Err(StorageError::TooLarge {
                what: "btree value",
                size: value.len(),
                limit: MAX_VALUE_LEN,
            });
        }
        if let Some(split) = self.put_rec(pager, self.root, key, value, overwrite)? {
            // Grow a new root.
            let new_root = pager.allocate()?;
            write_node(
                pager,
                new_root,
                &Node::Internal { keys: vec![split.separator], children: vec![self.root, split.right] },
            )?;
            self.root = new_root;
        }
        Ok(())
    }

    fn put_rec<B: Backend>(
        &mut self,
        pager: &mut Pager<B>,
        id: PageId,
        key: u64,
        value: &[u8],
        overwrite: bool,
    ) -> Result<Option<Split>> {
        match read_node(pager, id)? {
            Node::Leaf { next, mut cells } => {
                match cells.binary_search_by_key(&key, |(k, _)| *k) {
                    Ok(i) => {
                        if !overwrite {
                            return Err(StorageError::Duplicate(key));
                        }
                        cells[i].1 = value.to_vec();
                    }
                    Err(i) => cells.insert(i, (key, value.to_vec())),
                }
                let node = Node::Leaf { next, cells };
                if !node.overflows() {
                    write_node(pager, id, &node)?;
                    return Ok(None);
                }
                // Split the leaf near the byte midpoint, keeping at least
                // one cell on each side.
                let Node::Leaf { next, cells } = node else { unreachable!() };
                let total: usize = cells.iter().map(|(_, v)| 10 + v.len()).sum();
                let mut acc = 0usize;
                let mut cut = cells.len() / 2; // fallback
                for (i, (_, v)) in cells.iter().enumerate() {
                    acc += 10 + v.len();
                    if acc >= total / 2 {
                        cut = (i + 1).clamp(1, cells.len() - 1);
                        break;
                    }
                }
                let right_cells: Vec<_> = cells[cut..].to_vec();
                let left_cells: Vec<_> = cells[..cut].to_vec();
                let right_id = pager.allocate()?;
                let separator = right_cells[0].0;
                write_node(pager, right_id, &Node::Leaf { next, cells: right_cells })?;
                write_node(pager, id, &Node::Leaf { next: right_id, cells: left_cells })?;
                Ok(Some(Split { separator, right: right_id }))
            }
            Node::Internal { mut keys, mut children } => {
                let idx = keys.partition_point(|&k| k <= key);
                let child = children[idx];
                let Some(split) = self.put_rec(pager, child, key, value, overwrite)? else {
                    return Ok(None);
                };
                keys.insert(idx, split.separator);
                children.insert(idx + 1, split.right);
                let node = Node::Internal { keys, children };
                if !node.overflows() {
                    write_node(pager, id, &node)?;
                    return Ok(None);
                }
                let Node::Internal { mut keys, mut children } = node else { unreachable!() };
                let mid = keys.len() / 2;
                let up_key = keys[mid];
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // up_key moves up, not right
                let right_children = children.split_off(mid + 1);
                let right_id = pager.allocate()?;
                write_node(pager, right_id, &Node::Internal { keys: right_keys, children: right_children })?;
                write_node(pager, id, &Node::Internal { keys, children })?;
                Ok(Some(Split { separator: up_key, right: right_id }))
            }
        }
    }

    /// Remove a key; returns whether it was present. Lazy: no rebalancing.
    pub fn delete<B: Backend>(&mut self, pager: &mut Pager<B>, key: u64) -> Result<bool> {
        let mut id = self.root;
        loop {
            match read_node(pager, id)? {
                Node::Leaf { next, mut cells } => {
                    return match cells.binary_search_by_key(&key, |(k, _)| *k) {
                        Ok(i) => {
                            cells.remove(i);
                            write_node(pager, id, &Node::Leaf { next, cells })?;
                            Ok(true)
                        }
                        Err(_) => Ok(false),
                    };
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&k| k <= key);
                    id = children[idx];
                }
            }
        }
    }

    /// Visit entries with `key >= start` in ascending order until the
    /// visitor returns `false`.
    pub fn scan_from<B: Backend>(
        &self,
        pager: &mut Pager<B>,
        start: u64,
        mut visit: impl FnMut(u64, &[u8]) -> bool,
    ) -> Result<()> {
        // Descend to the leaf containing `start`.
        let mut id = self.root;
        while let Node::Internal { keys, children } = read_node(pager, id)? {
            let idx = keys.partition_point(|&k| k <= start);
            id = children[idx];
        }
        // Walk the leaf chain.
        #[allow(clippy::while_let_loop)] // the else-branch is an error, not a break
        loop {
            let Node::Leaf { next, cells } = read_node(pager, id)? else {
                return Err(StorageError::Corruption(format!("page {id}: expected leaf in chain")));
            };
            for (k, v) in &cells {
                if *k < start {
                    continue;
                }
                if !visit(*k, v) {
                    return Ok(());
                }
            }
            if next == NO_PAGE {
                return Ok(());
            }
            id = next;
        }
    }

    /// Collect all entries (test/diagnostic helper).
    pub fn collect_all<B: Backend>(&self, pager: &mut Pager<B>) -> Result<Vec<(u64, Vec<u8>)>> {
        let mut out = Vec::new();
        self.scan_from(pager, 0, |k, v| {
            out.push((k, v.to_vec()));
            true
        })?;
        Ok(out)
    }

    /// Number of entries (walks the leaf chain).
    pub fn len<B: Backend>(&self, pager: &mut Pager<B>) -> Result<usize> {
        let mut n = 0usize;
        self.scan_from(pager, 0, |_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn fresh() -> (Pager<MemBackend>, BTree) {
        let mut pager = Pager::open(MemBackend::new(), MemBackend::new(), 256).unwrap();
        let tree = BTree::create(&mut pager).unwrap();
        (pager, tree)
    }

    #[test]
    fn insert_get_small() {
        let (mut pager, mut tree) = fresh();
        tree.insert(&mut pager, 5, b"five").unwrap();
        tree.insert(&mut pager, 3, b"three").unwrap();
        tree.insert(&mut pager, 9, b"nine").unwrap();
        assert_eq!(tree.get(&mut pager, 5).unwrap().unwrap(), b"five");
        assert_eq!(tree.get(&mut pager, 3).unwrap().unwrap(), b"three");
        assert!(tree.get(&mut pager, 4).unwrap().is_none());
        assert!(tree.contains(&mut pager, 9).unwrap());
    }

    #[test]
    fn duplicate_insert_rejected_upsert_allowed() {
        let (mut pager, mut tree) = fresh();
        tree.insert(&mut pager, 1, b"a").unwrap();
        assert!(matches!(tree.insert(&mut pager, 1, b"b"), Err(StorageError::Duplicate(1))));
        tree.upsert(&mut pager, 1, b"b").unwrap();
        assert_eq!(tree.get(&mut pager, 1).unwrap().unwrap(), b"b");
    }

    #[test]
    fn oversized_value_rejected() {
        let (mut pager, mut tree) = fresh();
        let big = vec![0u8; MAX_VALUE_LEN + 1];
        assert!(matches!(
            tree.insert(&mut pager, 1, &big),
            Err(StorageError::TooLarge { .. })
        ));
        // Exactly at the limit is fine.
        tree.insert(&mut pager, 1, &vec![7u8; MAX_VALUE_LEN]).unwrap();
    }

    #[test]
    fn thousand_inserts_sorted_scan() {
        let (mut pager, mut tree) = fresh();
        // Insert in a scrambled order.
        let mut keys: Vec<u64> = (0..1000).collect();
        let mut s = 0x12345678u64;
        for i in (1..keys.len()).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            keys.swap(i, (s % (i as u64 + 1)) as usize);
        }
        for &k in &keys {
            tree.insert(&mut pager, k, format!("value-{k}").as_bytes()).unwrap();
        }
        let all = tree.collect_all(&mut pager).unwrap();
        assert_eq!(all.len(), 1000);
        for (i, (k, v)) in all.iter().enumerate() {
            assert_eq!(*k, i as u64);
            assert_eq!(v, format!("value-{i}").as_bytes());
        }
        assert_eq!(tree.len(&mut pager).unwrap(), 1000);
    }

    #[test]
    fn large_values_force_deep_splits() {
        let (mut pager, mut tree) = fresh();
        let value = vec![0xAB; 1500]; // ~2 values per leaf
        for k in 0..200u64 {
            tree.insert(&mut pager, k, &value).unwrap();
        }
        for k in 0..200u64 {
            assert_eq!(tree.get(&mut pager, k).unwrap().unwrap().len(), 1500, "key {k}");
        }
    }

    #[test]
    fn scan_from_midpoint() {
        let (mut pager, mut tree) = fresh();
        for k in (0..100u64).map(|x| x * 2) {
            tree.insert(&mut pager, k, &k.to_le_bytes()).unwrap();
        }
        let mut seen = Vec::new();
        tree.scan_from(&mut pager, 51, |k, _| {
            seen.push(k);
            seen.len() < 5
        })
        .unwrap();
        assert_eq!(seen, vec![52, 54, 56, 58, 60]);
    }

    #[test]
    fn delete_and_reinsert() {
        let (mut pager, mut tree) = fresh();
        for k in 0..500u64 {
            tree.insert(&mut pager, k, b"x").unwrap();
        }
        for k in (0..500u64).step_by(2) {
            assert!(tree.delete(&mut pager, k).unwrap());
        }
        assert!(!tree.delete(&mut pager, 0).unwrap(), "already gone");
        assert_eq!(tree.len(&mut pager).unwrap(), 250);
        for k in (0..500u64).step_by(2) {
            assert!(tree.get(&mut pager, k).unwrap().is_none());
            tree.insert(&mut pager, k, b"y").unwrap();
        }
        assert_eq!(tree.len(&mut pager).unwrap(), 500);
        assert_eq!(tree.get(&mut pager, 4).unwrap().unwrap(), b"y");
        assert_eq!(tree.get(&mut pager, 5).unwrap().unwrap(), b"x");
    }

    #[test]
    fn matches_btreemap_model() {
        use std::collections::BTreeMap;
        let (mut pager, mut tree) = fresh();
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut s = 99u64;
        for step in 0..3000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let key = s % 500;
            match step % 3 {
                0 | 1 => {
                    let val = vec![(s % 251) as u8; (s % 64) as usize + 1];
                    tree.upsert(&mut pager, key, &val).unwrap();
                    model.insert(key, val);
                }
                _ => {
                    let expect = model.remove(&key).is_some();
                    assert_eq!(tree.delete(&mut pager, key).unwrap(), expect);
                }
            }
        }
        let all = tree.collect_all(&mut pager).unwrap();
        let model_all: Vec<(u64, Vec<u8>)> = model.into_iter().collect();
        assert_eq!(all, model_all);
    }

    #[test]
    fn survives_commit_and_reload() {
        let data = MemBackend::new();
        let wal = MemBackend::new();
        let root;
        {
            let mut pager = Pager::open(data.share(), wal.share(), 64).unwrap();
            let mut tree = BTree::create(&mut pager).unwrap();
            for k in 0..300u64 {
                tree.insert(&mut pager, k, format!("v{k}").as_bytes()).unwrap();
            }
            root = tree.root();
            pager.commit().unwrap();
        }
        let mut pager = Pager::open(data.share(), wal.share(), 64).unwrap();
        let tree = BTree::load(root);
        assert_eq!(tree.len(&mut pager).unwrap(), 300);
        assert_eq!(tree.get(&mut pager, 123).unwrap().unwrap(), b"v123");
    }
}
