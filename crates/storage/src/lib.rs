//! # cbvr-storage — the embedded storage engine
//!
//! The paper stores videos and key-frame features in Oracle 9i:
//!
//! ```sql
//! CREATE TABLE VIDEO_STORE (V_ID NUMBER PRIMARY KEY, V_NAME VARCHAR2(60),
//!                           VIDEO ORD_Video, STREAM BLOB, DOSTORE DATE);
//! CREATE TABLE KEY_FRAMES (I_ID NUMBER PRIMARY KEY, I_NAME VARCHAR2(40),
//!                          IMAGE ORD_Image, MIN NUMBER, MAX NUMBER,
//!                          SCH VARCHAR2(1500), GLCM VARCHAR2(250),
//!                          GABOR VARCHAR2(1500), TAMURA VARCHAR2(500),
//!                          MAJORREGIONS NUMBER, V_ID NUMBER);
//! ```
//!
//! This crate is the offline replacement (DESIGN.md substitution table):
//! a from-scratch, page-based embedded engine providing the operations
//! the paper's system actually uses — keyed inserts/lookups/deletes,
//! table scans, BLOB streams, and durability:
//!
//! - [`page`] — 4 KiB pages with typed read/write cursors;
//! - [`backend`] — the byte-level storage abstraction: real files or an
//!   in-memory backend with fault injection for crash tests;
//! - [`wal`] — page-image write-ahead log: commits append full after
//!   images, fsync, then propagate to the data file (no-steal / force,
//!   torn-page safe);
//! - [`pager`] — page cache with LRU eviction (clean pages only) and the
//!   commit/abort/recover protocol;
//! - [`btree`] — a B+-tree keyed by `u64` with variable-length inline
//!   values and leaf-chained range scans (primary keys and the
//!   `(v_id, i_id)` secondary index);
//! - [`heap`] — chained-page BLOB store for `VIDEO`/`STREAM`/`IMAGE`;
//! - [`codec`] — the row serialisation format;
//! - [`tables`] — the two typed tables above plus the secondary index;
//! - [`telemetry`] — plain-value pager/WAL counters the upper layers
//!   merge into the process-wide metrics exposition;
//! - [`fault`] — deterministic operation-counted fault injection and the
//!   crash-sweep harness that proves recovery never invents a third
//!   state;
//! - [`db`] — [`db::CbvrDatabase`], the public facade.
#![warn(missing_docs)]


pub mod backend;
pub mod btree;
pub mod codec;
pub mod db;
pub mod error;
pub mod fault;
pub mod heap;
pub mod page;
pub mod pager;
pub mod tables;
pub mod telemetry;
pub mod wal;

pub use backend::{Backend, FileBackend, MemBackend};
pub use db::{CbvrDatabase, DbStats, ManifestSegment};
pub use error::{Result, StorageError};
pub use fault::{
    run_sweep, state_digest, FaultBackend, FaultInjector, FaultKind, SweepConfig, SweepReport,
    SweepTarget,
};
pub use tables::{KeyFrameRecord, KeyFrameRow, VideoRecord, VideoRow};
pub use telemetry::StorageTelemetry;
