//! Page-image write-ahead log.
//!
//! One commit appends a single record containing full after-images of all
//! dirty pages:
//!
//! ```text
//! magic   u32  = 0x43_57_41_4C ("CWAL")
//! count   u32  number of page images
//! images  count × (page_id u32, PAGE_SIZE bytes)
//! crc     u64  FNV-1a over everything above
//! commit  u32  = 0x434F_4D54 ("COMT") — written after the images land
//! ```
//!
//! Recovery scans the log from the start and applies every record whose
//! CRC verifies *and* whose commit marker is present; the first
//! incomplete or corrupt record ends the scan (everything after it
//! belongs to a torn commit and is discarded). After a successful commit
//! propagates to the data file the log is truncated, so the log holds at
//! most a handful of records in practice.

use crate::backend::Backend;
use crate::error::{Result, StorageError};
use crate::fault::{with_retry, FaultCounters};
use crate::page::{Page, PageId, PAGE_SIZE};

const RECORD_MAGIC: u32 = 0x4357_414C;
const COMMIT_MAGIC: u32 = 0x434F_4D54;

/// FNV-1a, the checksum guarding WAL records.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// `u32::from_le_bytes` over a checked slice — the WAL parses attacker-
/// grade bytes (a torn log), so out-of-bounds reads must surface as
/// corruption, not panics.
fn le_u32(buf: &[u8], at: usize) -> Result<u32> {
    let Some(bytes) = buf.get(at..at + 4) else {
        return Err(StorageError::Corruption(format!("WAL record truncated at byte {at}")));
    };
    let mut b = [0u8; 4];
    b.copy_from_slice(bytes);
    Ok(u32::from_le_bytes(b))
}

/// `u64::from_le_bytes`, same contract as [`le_u32`].
fn le_u64(buf: &[u8], at: usize) -> Result<u64> {
    let Some(bytes) = buf.get(at..at + 8) else {
        return Err(StorageError::Corruption(format!("WAL record truncated at byte {at}")));
    };
    let mut b = [0u8; 8];
    b.copy_from_slice(bytes);
    Ok(u64::from_le_bytes(b))
}

/// The write-ahead log over a byte backend.
pub struct Wal<B: Backend> {
    backend: B,
    faults: FaultCounters,
    /// Byte offset of a failed append. The record after it may be
    /// complete on disk even though the caller saw an error, so it must
    /// be truncated away before anything else is appended — otherwise a
    /// later crash would replay a commit the engine rolled back.
    suspect_from: Option<u64>,
}

impl<B: Backend> Wal<B> {
    /// Wrap a backend.
    pub fn new(backend: B) -> Wal<B> {
        Wal { backend, faults: FaultCounters::default(), suspect_from: None }
    }

    /// Retry counters accumulated by this log (merged into
    /// `storage.fault.*` by the pager).
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults
    }

    /// Drop the suspect tail left by a failed append, if any.
    fn ensure_clean_tail(&mut self) -> Result<()> {
        if let Some(from) = self.suspect_from {
            let Wal { backend, faults, .. } = self;
            with_retry(faults, || {
                backend.truncate(from)?;
                backend.sync()
            })
            .map_err(|e| e.with_context("truncating suspect WAL tail"))?;
            self.suspect_from = None;
        }
        Ok(())
    }

    /// Append one committed record of page images and fsync. Returns the
    /// number of bytes appended (telemetry: `storage.wal.bytes`). The
    /// record is durable — the commit point — exactly when this returns
    /// `Ok`; on error the log is restored (or marked for restoration) to
    /// its previous length.
    pub fn append_commit(&mut self, pages: &[(PageId, &Page)]) -> Result<u64> {
        self.ensure_clean_tail()?;
        let mut buf = Vec::with_capacity(8 + pages.len() * (4 + PAGE_SIZE) + 12);
        buf.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
        buf.extend_from_slice(&(pages.len() as u32).to_le_bytes());
        for (id, page) in pages {
            buf.extend_from_slice(&id.to_le_bytes());
            buf.extend_from_slice(page.as_bytes());
        }
        let crc = fnv1a(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(&COMMIT_MAGIC.to_le_bytes());

        // Pin the append offset before the first attempt: a retry after a
        // partial write must rewrite the same bytes at the same place.
        // Re-probing `len()` there would append after its own garbage.
        let offset = self.backend.len().map_err(|e| e.with_context("probing WAL length"))?;
        let Wal { backend, faults, .. } = self;
        let appended = with_retry(faults, || {
            backend.write_at(offset, &buf)?;
            backend.sync()
        });
        match appended {
            Ok(()) => Ok(buf.len() as u64),
            Err(e) => {
                // The bytes past `offset` are in an unknown state; remove
                // them now or remember to before the next append.
                self.suspect_from = Some(offset);
                let _ = self.ensure_clean_tail();
                Err(e.with_context("appending WAL commit record"))
            }
        }
    }

    /// Scan the log, returning the page images of every fully committed
    /// record in order. Stops silently at the first torn/corrupt record.
    pub fn recover(&mut self) -> Result<Vec<(PageId, Page)>> {
        Ok(self.recover_records()?.0)
    }

    /// [`Wal::recover`], plus the number of committed records replayed
    /// (telemetry: `storage.wal.replays` counts records, not images).
    pub fn recover_records(&mut self) -> Result<(Vec<(PageId, Page)>, u64)> {
        let len = self.backend.len()?;
        let mut images = Vec::new();
        let mut records = 0u64;
        let mut offset = 0u64;
        while offset + 8 <= len {
            let mut header = [0u8; 8];
            let Wal { backend, faults, .. } = self;
            with_retry(faults, || backend.read_at(offset, &mut header))
                .map_err(|e| e.with_context("reading WAL record header"))?;
            let magic = le_u32(&header, 0)?;
            if magic != RECORD_MAGIC {
                break; // garbage tail
            }
            let count = le_u32(&header, 4)? as u64;
            let body_len = 8 + count * (4 + PAGE_SIZE as u64);
            let total_len = body_len + 8 + 4; // + crc + commit marker
            if offset + total_len > len {
                break; // torn record
            }
            let mut body = vec![0u8; body_len as usize];
            let Wal { backend, faults, .. } = self;
            with_retry(faults, || backend.read_at(offset, &mut body))
                .map_err(|e| e.with_context("reading WAL record body"))?;
            let mut tail = [0u8; 12];
            let Wal { backend, faults, .. } = self;
            with_retry(faults, || backend.read_at(offset + body_len, &mut tail))
                .map_err(|e| e.with_context("reading WAL record tail"))?;
            let crc = le_u64(&tail, 0)?;
            let commit = le_u32(&tail, 8)?;
            if crc != fnv1a(&body) || commit != COMMIT_MAGIC {
                break; // corrupt or uncommitted
            }
            let mut pos = 8usize;
            for _ in 0..count {
                let id = le_u32(&body, pos)?;
                pos += 4;
                let page = Page::from_bytes(&body[pos..pos + PAGE_SIZE])
                    .map_err(|e| StorageError::Corruption(format!("bad WAL image: {e}")))?;
                pos += PAGE_SIZE;
                images.push((id, page));
            }
            records += 1;
            offset += total_len;
        }
        Ok((images, records))
    }

    /// Drop every record (after a checkpoint propagated them).
    pub fn reset(&mut self) -> Result<()> {
        let Wal { backend, faults, .. } = self;
        with_retry(faults, || {
            backend.truncate(0)?;
            backend.sync()
        })
        .map_err(|e| e.with_context("resetting WAL"))?;
        self.suspect_from = None;
        Ok(())
    }

    /// Bytes currently in the log.
    pub fn len(&mut self) -> Result<u64> {
        self.backend.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&mut self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn page_of(fill: u8) -> Page {
        let mut p = Page::new();
        p.as_bytes_mut().fill(fill);
        p
    }

    #[test]
    fn empty_log_recovers_nothing() {
        let mut wal = Wal::new(MemBackend::new());
        assert!(wal.recover().unwrap().is_empty());
        assert!(wal.is_empty().unwrap());
    }

    #[test]
    fn single_commit_round_trip() {
        let mut wal = Wal::new(MemBackend::new());
        let p1 = page_of(1);
        let p2 = page_of(2);
        wal.append_commit(&[(5, &p1), (9, &p2)]).unwrap();
        let images = wal.recover().unwrap();
        assert_eq!(images.len(), 2);
        assert_eq!(images[0].0, 5);
        assert_eq!(images[0].1, p1);
        assert_eq!(images[1].0, 9);
        assert_eq!(images[1].1, p2);
    }

    #[test]
    fn multiple_commits_replay_in_order() {
        let mut wal = Wal::new(MemBackend::new());
        wal.append_commit(&[(1, &page_of(10))]).unwrap();
        wal.append_commit(&[(1, &page_of(20))]).unwrap();
        let images = wal.recover().unwrap();
        assert_eq!(images.len(), 2);
        // Later image wins when applied in order.
        assert_eq!(images[1].1, page_of(20));
    }

    #[test]
    fn torn_tail_is_discarded() {
        let backend = MemBackend::new();
        let mut wal = Wal::new(backend.share());
        wal.append_commit(&[(1, &page_of(1))]).unwrap();
        let good_len = wal.len().unwrap();
        wal.append_commit(&[(2, &page_of(2))]).unwrap();
        // Tear the second record: cut off its commit marker.
        let mut raw = backend.share();
        let torn = wal.len().unwrap() - 2;
        raw.truncate(torn).unwrap();
        let images = Wal::new(backend.share()).recover().unwrap();
        assert_eq!(images.len(), 1, "only the first record survives");
        assert!(good_len < torn);
    }

    #[test]
    fn corrupt_crc_is_discarded() {
        let backend = MemBackend::new();
        let mut wal = Wal::new(backend.share());
        wal.append_commit(&[(1, &page_of(1))]).unwrap();
        // Flip a byte inside the page image.
        backend.share().write_at(100, &[0xAA]).unwrap();
        assert!(Wal::new(backend.share()).recover().unwrap().is_empty());
    }

    #[test]
    fn reset_clears_log() {
        let mut wal = Wal::new(MemBackend::new());
        wal.append_commit(&[(1, &page_of(1))]).unwrap();
        assert!(!wal.is_empty().unwrap());
        wal.reset().unwrap();
        assert!(wal.is_empty().unwrap());
        assert!(wal.recover().unwrap().is_empty());
    }

    #[test]
    fn fnv1a_is_stable_and_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn empty_commit_is_valid() {
        let mut wal = Wal::new(MemBackend::new());
        wal.append_commit(&[]).unwrap();
        assert!(wal.recover().unwrap().is_empty());
        assert!(!wal.is_empty().unwrap());
    }

    #[test]
    fn transient_append_fault_is_retried_at_the_same_offset() {
        use crate::fault::{FaultBackend, FaultInjector, FaultKind};
        let mem = MemBackend::new();
        let inj = FaultInjector::new(0);
        let mut wal = Wal::new(FaultBackend::new(mem.share(), inj.clone()));
        wal.append_commit(&[(1, &page_of(1))]).unwrap();
        inj.arm_after(1, FaultKind::Transient); // the next write blips once
        wal.append_commit(&[(2, &page_of(2))]).unwrap();
        assert!(wal.fault_counters().retried >= 1, "retry must be recorded");
        let images = Wal::new(mem.share()).recover().unwrap();
        assert_eq!(images.len(), 2, "both records intact after the retried append");
        assert_eq!(images[1].0, 2);
    }

    #[test]
    fn failed_append_tail_never_replays() {
        use crate::fault::{FaultBackend, FaultInjector, FaultKind};
        let mem = MemBackend::new();
        let inj = FaultInjector::new(0);
        let mut wal = Wal::new(FaultBackend::new(mem.share(), inj.clone()));
        wal.append_commit(&[(1, &page_of(1))]).unwrap(); // ops 1-2
        // Crash the fsync of the second append: its bytes are complete on
        // disk but the caller sees an error and rolls the commit back.
        inj.arm_after(2, FaultKind::Crash); // op 3 write lands, op 4 sync dies
        assert!(wal.append_commit(&[(2, &page_of(2))]).is_err());
        inj.heal();
        // The rolled-back record must be gone before the next append so a
        // later replay cannot resurrect it under record 3.
        wal.append_commit(&[(3, &page_of(3))]).unwrap();
        let images = Wal::new(mem.share()).recover().unwrap();
        let ids: Vec<_> = images.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 3], "aborted record 2 resurrected");
    }
}
