//! Error type for the storage engine.

use std::fmt;

/// Errors produced by the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure (or injected fault).
    Io(std::io::Error),
    /// On-disk structure is corrupt (bad magic, checksum, page type...).
    Corruption(String),
    /// A record with the given key does not exist.
    NotFound(u64),
    /// A record with the given key already exists.
    Duplicate(u64),
    /// A value or row exceeds what a node/page can hold.
    TooLarge {
        /// What overflowed (e.g. "btree value").
        what: &'static str,
        /// Observed size in bytes.
        size: usize,
        /// The enforced limit in bytes.
        limit: usize,
    },
    /// The engine was asked to do something inconsistent (e.g. commit with
    /// no open transaction).
    InvalidState(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
            StorageError::Corruption(m) => write!(f, "corruption detected: {m}"),
            StorageError::NotFound(k) => write!(f, "key {k} not found"),
            StorageError::Duplicate(k) => write!(f, "key {k} already exists"),
            StorageError::TooLarge { what, size, limit } => {
                write!(f, "{what} of {size} bytes exceeds limit {limit}")
            }
            StorageError::InvalidState(m) => write!(f, "invalid engine state: {m}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StorageError::NotFound(42).to_string().contains("42"));
        assert!(StorageError::Duplicate(7).to_string().contains("7"));
        let e = StorageError::TooLarge { what: "row", size: 9000, limit: 1024 };
        assert!(e.to_string().contains("9000"));
        assert!(e.to_string().contains("1024"));
    }

    #[test]
    fn io_conversion() {
        let e: StorageError = std::io::Error::other("disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
    }
}
