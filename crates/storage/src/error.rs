//! Error type for the storage engine.

use std::fmt;

/// Errors produced by the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure (or injected fault).
    Io(std::io::Error),
    /// On-disk structure is corrupt (bad magic, checksum, page type...).
    Corruption(String),
    /// A record with the given key does not exist.
    NotFound(u64),
    /// A record with the given key already exists.
    Duplicate(u64),
    /// A value or row exceeds what a node/page can hold.
    TooLarge {
        /// What overflowed (e.g. "btree value").
        what: &'static str,
        /// Observed size in bytes.
        size: usize,
        /// The enforced limit in bytes.
        limit: usize,
    },
    /// The engine was asked to do something inconsistent (e.g. commit with
    /// no open transaction).
    InvalidState(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
            StorageError::Corruption(m) => write!(f, "corruption detected: {m}"),
            StorageError::NotFound(k) => write!(f, "key {k} not found"),
            StorageError::Duplicate(k) => write!(f, "key {k} already exists"),
            StorageError::TooLarge { what, size, limit } => {
                write!(f, "{what} of {size} bytes exceeds limit {limit}")
            }
            StorageError::InvalidState(m) => write!(f, "invalid engine state: {m}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl StorageError {
    /// True when the error is plausibly transient (interrupted syscall,
    /// would-block, timeout) and a bounded retry may succeed. Corruption,
    /// not-found and state errors are never transient.
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
            ),
            _ => false,
        }
    }

    /// True when the error originated from the deterministic fault
    /// injector ([`crate::fault::FaultInjector`] or the simpler
    /// [`crate::backend::FaultPlan`]). Used by telemetry to separate
    /// injected faults from organic I/O failures.
    pub fn is_injected(&self) -> bool {
        match self {
            StorageError::Io(e) => e.to_string().contains("injected fault"),
            _ => false,
        }
    }

    /// Wrap an I/O error with a `while <context>` note so a fault deep in
    /// the pager surfaces with the operation that hit it. Non-I/O errors
    /// pass through unchanged (they already carry their own context).
    pub fn with_context(self, context: &str) -> StorageError {
        match self {
            StorageError::Io(e) => {
                let kind = e.kind();
                StorageError::Io(std::io::Error::new(kind, format!("{e} (while {context})")))
            }
            other => other,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StorageError::NotFound(42).to_string().contains("42"));
        assert!(StorageError::Duplicate(7).to_string().contains("7"));
        let e = StorageError::TooLarge { what: "row", size: 9000, limit: 1024 };
        assert!(e.to_string().contains("9000"));
        assert!(e.to_string().contains("1024"));
    }

    #[test]
    fn io_conversion() {
        let e: StorageError = std::io::Error::other("disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
    }

    #[test]
    fn transient_classification() {
        let t: StorageError =
            std::io::Error::new(std::io::ErrorKind::Interrupted, "blip").into();
        assert!(t.is_transient());
        let p: StorageError = std::io::Error::other("disk on fire").into();
        assert!(!p.is_transient());
        assert!(!StorageError::Corruption("bad magic".into()).is_transient());
    }

    #[test]
    fn injected_classification() {
        let inj: StorageError = std::io::Error::other("injected fault: crash").into();
        assert!(inj.is_injected());
        let organic: StorageError = std::io::Error::other("disk on fire").into();
        assert!(!organic.is_injected());
    }

    #[test]
    fn context_wraps_io_and_preserves_kind() {
        let e: StorageError =
            std::io::Error::new(std::io::ErrorKind::Interrupted, "blip").into();
        let e = e.with_context("wal append");
        assert!(e.to_string().contains("wal append"));
        assert!(e.is_transient(), "kind must survive context wrapping");
        // Injected marker survives wrapping too.
        let inj: StorageError = std::io::Error::other("injected fault: crash").into();
        assert!(inj.with_context("data write").is_injected());
        // Non-I/O errors pass through.
        let c = StorageError::NotFound(3).with_context("ignored");
        assert!(matches!(c, StorageError::NotFound(3)));
    }
}
