//! Deterministic fault injection and the crash-sweep harness.
//!
//! [`FaultBackend`] wraps any [`Backend`] and injects one seeded fault at
//! the Nth I/O operation: a hard error, a transient error, a short write,
//! a torn (sector-granular) write, or a simulated power cut that
//! truncates the store back to its last-synced length. After any
//! non-transient fault the backend stays dead — every later operation
//! fails — until [`FaultInjector::heal`] simulates the reboot.
//!
//! [`run_sweep`] is the harness built on top: it replays a deterministic
//! multi-batch ingest workload once per (fault kind × operation index)
//! and asserts the reopened database always lands on a state the clean
//! run produced — the pre-commit snapshot of some batch or its committed
//! result, never a third state.
//!
//! Reproduce a CI failure locally by pinning the knobs the sweep test
//! reads from the environment: `CBVR_FAULT_SEED`, `CBVR_FAULT_TARGET`
//! (`pager` | `wal`) and `CBVR_FAULT_OP` (a single operation index).

use crate::backend::{Backend, MemBackend};
use crate::db::{CbvrDatabase, ManifestSegment};
use crate::error::{Result, StorageError};
use crate::tables::{KeyFrameRecord, VideoRecord};
use crate::wal::fnv1a;
use std::sync::{Arc, Mutex};

/// Sector granularity of torn writes: a power loss mid-write leaves some
/// 512-byte device sectors new and others old.
const SECTOR: usize = 512;

/// What the injected fault does at the trigger operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Hard error; the backend is dead until healed (device unplugged).
    Crash,
    /// One-shot `ErrorKind::Interrupted` error; the next attempt
    /// succeeds. Exercises retry-with-backoff.
    Transient,
    /// A seeded prefix of the buffer lands, then a hard error (partial
    /// `write(2)` at power loss).
    ShortWrite,
    /// A seeded subset of 512-byte sectors lands, then a hard error
    /// (torn page).
    TornSectors,
    /// The store is truncated to its last-synced length, then a hard
    /// error (everything not yet fsynced is lost).
    PowerCut,
}

/// Every fault kind, in sweep order.
pub const ALL_FAULT_KINDS: [FaultKind; 5] = [
    FaultKind::Crash,
    FaultKind::Transient,
    FaultKind::ShortWrite,
    FaultKind::TornSectors,
    FaultKind::PowerCut,
];

/// SplitMix64: the seed stream behind torn-write shapes and the workload.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct InjectorInner {
    /// I/O operations observed so far (reads, writes, truncates, syncs).
    ops: u64,
    /// Absolute operation index at which the armed fault fires.
    trigger: Option<(u64, FaultKind)>,
    /// Set once a non-transient fault fires; every operation fails until
    /// [`FaultInjector::heal`].
    dead_since: Option<u64>,
    /// Errors injected so far (fires and dead-backend failures).
    injected: u64,
    seed: u64,
}

/// What the backend must do for the current operation.
enum Decision {
    Proceed,
    /// Fire the armed fault; the `u64` is the firing operation index.
    Fire(FaultKind, u64),
    /// The backend died at the given operation index.
    Dead(u64),
}

/// Shared, clonable trigger for a [`FaultBackend`]. The test holds one
/// handle while the engine owns the backend, mirroring
/// [`crate::backend::FaultPlan`] but operation-counted and seeded.
#[derive(Clone)]
pub struct FaultInjector {
    inner: Arc<Mutex<InjectorInner>>,
}

impl FaultInjector {
    /// A disarmed injector. `seed` drives short/torn write shapes.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            inner: Arc::new(Mutex::new(InjectorInner {
                ops: 0,
                trigger: None,
                dead_since: None,
                injected: 0,
                seed,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, InjectorInner> {
        // A poisoned injector mutex can only come from a panicking test
        // thread; the counters are plain integers, so the state is sound.
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Arm the fault to fire at the `nth` I/O operation counted from now
    /// (`nth = 1` fails the very next operation). Clears any dead state.
    pub fn arm_after(&self, nth: u64, kind: FaultKind) {
        let mut inner = self.lock();
        let at = inner.ops.saturating_add(nth.max(1));
        inner.trigger = Some((at, kind));
        inner.dead_since = None;
    }

    /// Disarm and revive the backend (the reboot).
    pub fn heal(&self) {
        let mut inner = self.lock();
        inner.trigger = None;
        inner.dead_since = None;
    }

    /// Total I/O operations observed.
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// Errors injected so far.
    pub fn injected(&self) -> u64 {
        self.lock().injected
    }

    /// The seed this injector derives fault shapes from.
    pub fn seed(&self) -> u64 {
        self.lock().seed
    }

    /// Count one operation and decide its fate.
    fn on_op(&self) -> Decision {
        let mut inner = self.lock();
        inner.ops += 1;
        if let Some(at) = inner.dead_since {
            inner.injected += 1;
            return Decision::Dead(at);
        }
        if let Some((at, kind)) = inner.trigger {
            if inner.ops >= at {
                inner.trigger = None;
                inner.injected += 1;
                if kind != FaultKind::Transient {
                    inner.dead_since = Some(inner.ops);
                }
                return Decision::Fire(kind, inner.ops);
            }
        }
        Decision::Proceed
    }

    /// Seed stream for the fault firing at operation `op`.
    fn shape_rng(&self, op: u64) -> u64 {
        self.lock().seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

fn injected_err(kind: FaultKind, op: u64) -> StorageError {
    let e = match kind {
        FaultKind::Transient => std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            format!("injected fault: transient i/o error at op {op}"),
        ),
        FaultKind::Crash => std::io::Error::other(format!("injected fault: crash at op {op}")),
        FaultKind::ShortWrite => {
            std::io::Error::other(format!("injected fault: short write at op {op}"))
        }
        FaultKind::TornSectors => {
            std::io::Error::other(format!("injected fault: torn write at op {op}"))
        }
        FaultKind::PowerCut => {
            std::io::Error::other(format!("injected fault: power cut at op {op}"))
        }
    };
    StorageError::Io(e)
}

fn dead_err(since: u64) -> StorageError {
    StorageError::Io(std::io::Error::other(format!(
        "injected fault: backend dead since op {since}"
    )))
}

/// A [`Backend`] wrapper that injects the faults its [`FaultInjector`]
/// is armed with. `len`/`is_empty` are metadata probes and are neither
/// counted nor failed; reads, writes, truncates and syncs each count as
/// one operation.
pub struct FaultBackend<B: Backend> {
    inner: B,
    injector: FaultInjector,
    /// Bytes guaranteed durable: length as of the last successful sync.
    /// A power cut truncates back to this.
    synced_len: u64,
}

impl<B: Backend> FaultBackend<B> {
    /// Wrap `inner`. The current length counts as already durable.
    pub fn new(mut inner: B, injector: FaultInjector) -> FaultBackend<B> {
        let synced_len = inner.len().unwrap_or(0);
        FaultBackend { inner, injector, synced_len }
    }

    /// The injector driving this backend.
    pub fn injector(&self) -> FaultInjector {
        self.injector.clone()
    }

    /// Lose everything not yet synced (best effort: the store itself is
    /// healthy, only the writes above the watermark vanish).
    fn power_cut(&mut self) {
        let _ = self.inner.truncate(self.synced_len);
    }

    /// Apply a fired fault on a non-write operation: kinds that only make
    /// sense for writes degrade to a crash.
    fn fire_plain(&mut self, kind: FaultKind, op: u64) -> StorageError {
        if kind == FaultKind::PowerCut {
            self.power_cut();
        }
        injected_err(kind, op)
    }
}

impl<B: Backend> Backend for FaultBackend<B> {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        match self.injector.on_op() {
            Decision::Proceed => self.inner.read_at(offset, buf),
            Decision::Fire(kind, op) => Err(self.fire_plain(kind, op)),
            Decision::Dead(since) => Err(dead_err(since)),
        }
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<()> {
        match self.injector.on_op() {
            Decision::Proceed => self.inner.write_at(offset, buf),
            Decision::Fire(kind, op) => {
                match kind {
                    FaultKind::ShortWrite => {
                        // A seeded prefix lands before the failure.
                        let mut rng = self.injector.shape_rng(op);
                        let keep = (splitmix64(&mut rng) % (buf.len() as u64 + 1)) as usize;
                        if keep > 0 {
                            let _ = self.inner.write_at(offset, &buf[..keep]);
                        }
                    }
                    FaultKind::TornSectors => {
                        // A seeded subset of sectors lands, out of order
                        // as far as the caller can tell.
                        let mut rng = self.injector.shape_rng(op);
                        for (i, sector) in buf.chunks(SECTOR).enumerate() {
                            if splitmix64(&mut rng) & 1 == 1 {
                                let at = offset + (i * SECTOR) as u64;
                                let _ = self.inner.write_at(at, sector);
                            }
                        }
                    }
                    FaultKind::PowerCut => self.power_cut(),
                    FaultKind::Crash | FaultKind::Transient => {}
                }
                Err(injected_err(kind, op))
            }
            Decision::Dead(since) => Err(dead_err(since)),
        }
    }

    fn len(&mut self) -> Result<u64> {
        self.inner.len()
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        match self.injector.on_op() {
            Decision::Proceed => {
                self.inner.truncate(len)?;
                self.synced_len = self.synced_len.min(len);
                Ok(())
            }
            Decision::Fire(kind, op) => Err(self.fire_plain(kind, op)),
            Decision::Dead(since) => Err(dead_err(since)),
        }
    }

    fn sync(&mut self) -> Result<()> {
        match self.injector.on_op() {
            Decision::Proceed => {
                self.inner.sync()?;
                if let Ok(len) = self.inner.len() {
                    self.synced_len = len;
                }
                Ok(())
            }
            Decision::Fire(kind, op) => Err(self.fire_plain(kind, op)),
            Decision::Dead(since) => Err(dead_err(since)),
        }
    }
}

// ---- retry-with-backoff ------------------------------------------------

/// Attempts per I/O operation (1 initial + 2 retries).
pub const RETRY_ATTEMPTS: u32 = 3;
/// First backoff; doubles per retry. Kept tiny: callers hold no locks
/// worth mentioning, and tests sweep thousands of operations.
const RETRY_BASE: std::time::Duration = std::time::Duration::from_micros(100);

/// Fault counters fed by [`with_retry`], merged into
/// [`crate::telemetry::StorageTelemetry`] by the pager.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Injected errors observed (`storage.fault.injected`).
    pub injected: u64,
    /// Retries attempted after transient errors (`storage.fault.retried`).
    pub retried: u64,
}

impl FaultCounters {
    /// Fold another counter snapshot into this one.
    pub fn merge(&mut self, other: FaultCounters) {
        self.injected += other.injected;
        self.retried += other.retried;
    }
}

/// Run `op`, retrying up to [`RETRY_ATTEMPTS`] times with exponential
/// backoff while the error is transient ([`StorageError::is_transient`]).
/// `op` must be idempotent: callers pin offsets and buffers before the
/// first attempt so a retry rewrites exactly the same bytes.
pub fn with_retry<T>(counters: &mut FaultCounters, mut op: impl FnMut() -> Result<T>) -> Result<T> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                if e.is_injected() {
                    counters.injected += 1;
                }
                attempt += 1;
                if !e.is_transient() || attempt >= RETRY_ATTEMPTS {
                    return Err(e);
                }
                counters.retried += 1;
                std::thread::sleep(RETRY_BASE * attempt);
            }
        }
    }
}

// ---- logical state digest ----------------------------------------------

/// FNV-1a digest of the database's complete logical state: id counters,
/// every video row and its blobs, every key-frame row and its image, and
/// the manifest. Two databases with equal digests are observably
/// identical through the public API.
pub fn state_digest<B: Backend>(db: &mut CbvrDatabase<B>) -> Result<u64> {
    let mut buf = Vec::new();
    let stats = db.stats()?;
    buf.extend_from_slice(&stats.next_v_id.to_le_bytes());
    buf.extend_from_slice(&stats.next_i_id.to_le_bytes());
    for (v_id, name, dostore) in db.list_videos()? {
        let full = db.get_video(v_id)?;
        buf.extend_from_slice(&v_id.to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.push(0);
        buf.extend_from_slice(&dostore.to_le_bytes());
        buf.extend_from_slice(&db.read_video_bytes(&full.row)?);
        buf.extend_from_slice(&db.read_stream_bytes(&full.row)?);
    }
    let mut rows = Vec::new();
    db.scan_key_frames(|row| {
        rows.push(row.clone());
        true
    })?;
    for row in rows {
        buf.extend_from_slice(&row.i_id.to_le_bytes());
        buf.extend_from_slice(row.i_name.as_bytes());
        buf.push(0);
        buf.push(row.min);
        buf.push(row.max);
        for s in
            [&row.sch, &row.glcm, &row.gabor, &row.tamura, &row.acc, &row.naive, &row.srg]
        {
            buf.extend_from_slice(s.as_bytes());
            buf.push(0);
        }
        buf.extend_from_slice(&row.majorregions.to_le_bytes());
        buf.extend_from_slice(&row.v_id.to_le_bytes());
        buf.extend_from_slice(&db.read_image_bytes(&row)?);
    }
    for seg in db.list_manifest()? {
        buf.extend_from_slice(&seg.min_i_id.to_le_bytes());
        buf.extend_from_slice(&seg.max_i_id.to_le_bytes());
        buf.extend_from_slice(&seg.rows.to_le_bytes());
    }
    Ok(fnv1a(&buf))
}

// ---- the sweep workload --------------------------------------------------

/// Batches in the sweep workload. Each batch is one atomic commit, so the
/// only legal recovered states are "after batch k" for `k in 0..=BATCHES`.
pub const WORKLOAD_BATCHES: usize = 5;

fn seeded_bytes(rng: &mut u64, len: usize) -> Vec<u8> {
    (0..len).map(|_| splitmix64(rng) as u8).collect()
}

fn feature_string(rng: &mut u64, terms: usize) -> String {
    let parts: Vec<String> = (0..terms).map(|_| (splitmix64(rng) % 256).to_string()).collect();
    parts.join(" ")
}

fn seeded_key_frame(rng: &mut u64, v_id: u64, f: usize) -> KeyFrameRecord {
    KeyFrameRecord {
        i_name: format!("v{v_id}_kf_{f:03}"),
        image: {
            let len = 300 + (splitmix64(rng) % 200) as usize;
            seeded_bytes(rng, len)
        },
        min: (splitmix64(rng) % 250) as u8,
        max: 250,
        sch: feature_string(rng, 16),
        glcm: feature_string(rng, 6),
        gabor: feature_string(rng, 12),
        tamura: feature_string(rng, 5),
        acc: feature_string(rng, 8),
        naive: feature_string(rng, 4),
        srg: feature_string(rng, 3),
        majorregions: (splitmix64(rng) % 9) as u32,
        v_id,
    }
}

/// Apply workload batch `batch` (0-based) as one atomic commit. Fully
/// deterministic in `(seed, batch)`: batches 0, 1 and 3 are ingest-style
/// (video + key frames + manifest segment), batch 2 mutates in place
/// (rename + key-frame delete) and batch 4 cascade-deletes a video.
pub fn apply_workload_batch<B: Backend>(
    db: &mut CbvrDatabase<B>,
    seed: u64,
    batch: usize,
) -> Result<()> {
    let mut rng = seed ^ (batch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC0FF_EE00;
    match batch {
        0 | 1 | 3 => db.run_batch(|db| {
            let frames = 2 + (splitmix64(&mut rng) % 3) as usize;
            let video_len = 600 + (splitmix64(&mut rng) % 900) as usize;
            let v_id = db.insert_video(&VideoRecord {
                v_name: format!("video-{batch}"),
                video: seeded_bytes(&mut rng, video_len),
                stream: seeded_bytes(&mut rng, 128),
                dostore: 1_750_000_000 + batch as u64,
            })?;
            let mut min_i = u64::MAX;
            let mut max_i = 0u64;
            for f in 0..frames {
                let record = seeded_key_frame(&mut rng, v_id, f);
                let i_id = db.insert_key_frame(&record)?;
                min_i = min_i.min(i_id);
                max_i = max_i.max(i_id);
            }
            db.append_manifest_segment(ManifestSegment {
                min_i_id: min_i,
                max_i_id: max_i,
                rows: frames as u64,
            })
        }),
        2 => db.run_batch(|db| {
            let videos = db.list_videos()?;
            let (v_id, ..) = videos[0];
            db.rename_video(v_id, "renamed-by-batch-2")?;
            let frames = db.key_frames_of_video(v_id)?;
            if let Some(&i_id) = frames.first() {
                db.delete_key_frame(i_id)?;
            }
            Ok(())
        }),
        4 => db.run_batch(|db| {
            let videos = db.list_videos()?;
            let (v_id, ..) = videos[1];
            db.delete_video(v_id)
        }),
        _ => Err(StorageError::InvalidState(format!("workload has no batch {batch}"))),
    }
}

// ---- the sweep driver ----------------------------------------------------

/// Which backend receives the armed injector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepTarget {
    /// The data file (pager writes and reads).
    Pager,
    /// The write-ahead log.
    Wal,
}

/// Parameters of one sweep invocation.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Drives blob contents, workload sizes and fault shapes.
    pub seed: u64,
    /// Which backend is faulted.
    pub target: SweepTarget,
    /// Pin the sweep to a single operation index (`CBVR_FAULT_OP`);
    /// `None` sweeps every index `1..=total_ops`.
    pub only_op: Option<u64>,
}

/// One non-convergent recovery, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct SweepFailure {
    /// Seed of the failing run.
    pub seed: u64,
    /// Operation index the fault was armed at.
    pub op: u64,
    /// Fault kind that was injected.
    pub kind: FaultKind,
    /// Backend the fault hit.
    pub target: SweepTarget,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed={} target={:?} kind={:?} op={}: {}",
            self.seed, self.target, self.kind, self.op, self.detail
        )
    }
}

/// Outcome of [`run_sweep`].
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// I/O operations the clean workload performs on the target backend
    /// (the sweep space).
    pub total_ops: u64,
    /// Fault runs executed (kinds × operation indexes).
    pub runs: u64,
    /// Non-convergent recoveries. Empty on success.
    pub failures: Vec<SweepFailure>,
}

type FaultedDb = CbvrDatabase<FaultBackend<MemBackend>>;

fn open_faulted(
    data: &MemBackend,
    wal: &MemBackend,
    seed: u64,
    target: SweepTarget,
) -> Result<(FaultedDb, FaultInjector)> {
    let data_inj = FaultInjector::new(seed);
    let wal_inj = FaultInjector::new(seed);
    let db = CbvrDatabase::open(
        FaultBackend::new(data.share(), data_inj.clone()),
        FaultBackend::new(wal.share(), wal_inj.clone()),
    )?;
    let inj = match target {
        SweepTarget::Pager => data_inj,
        SweepTarget::Wal => wal_inj,
    };
    Ok((db, inj))
}

/// Run the workload against clean in-memory backends, returning the
/// digest after open plus after every batch — the complete set of states
/// a correct recovery may land on.
fn clean_digests(seed: u64) -> Result<Vec<u64>> {
    let mut db = CbvrDatabase::in_memory()?;
    let mut valid = vec![state_digest(&mut db)?];
    for batch in 0..WORKLOAD_BATCHES {
        apply_workload_batch(&mut db, seed, batch)?;
        valid.push(state_digest(&mut db)?);
    }
    Ok(valid)
}

/// Count the I/O operations the clean workload performs on the target
/// backend, giving the sweep its operation space.
fn count_workload_ops(seed: u64, target: SweepTarget) -> Result<u64> {
    let data = MemBackend::new();
    let wal = MemBackend::new();
    let (mut db, inj) = open_faulted(&data, &wal, seed, target)?;
    let start = inj.ops();
    for batch in 0..WORKLOAD_BATCHES {
        apply_workload_batch(&mut db, seed, batch)?;
    }
    Ok(inj.ops() - start)
}

fn sweep_once(
    cfg: &SweepConfig,
    kind: FaultKind,
    op: u64,
    valid: &[u64],
    final_digest: u64,
) -> std::result::Result<(), SweepFailure> {
    let fail = |detail: String| SweepFailure {
        seed: cfg.seed,
        op,
        kind,
        target: cfg.target,
        detail,
    };

    let data = MemBackend::new();
    let wal = MemBackend::new();
    let (mut db, inj) = open_faulted(&data, &wal, cfg.seed, cfg.target)
        .map_err(|e| fail(format!("clean open failed: {e}")))?;
    inj.arm_after(op, kind);

    let mut first_err: Option<(usize, StorageError)> = None;
    for batch in 0..WORKLOAD_BATCHES {
        match apply_workload_batch(&mut db, cfg.seed, batch) {
            Ok(()) => {}
            Err(e) => {
                first_err = Some((batch, e));
                break;
            }
        }
    }
    let telemetry = db.telemetry();
    drop(db);
    inj.heal();

    if kind == FaultKind::Transient {
        // A single transient blip must be absorbed by retry-with-backoff:
        // the workload completes and matches the clean run exactly.
        if let Some((batch, e)) = first_err {
            return Err(fail(format!("transient fault at batch {batch} escaped retry: {e}")));
        }
        if telemetry.fault_retried == 0 {
            return Err(fail("transient fault left no storage.fault.retried trace".into()));
        }
    } else {
        if inj.injected() == 0 {
            return Err(fail("armed fault never fired inside the workload".into()));
        }
        if telemetry.fault_injected == 0 {
            return Err(fail("injected fault invisible to storage telemetry".into()));
        }
    }

    // Reboot: reopen from the surviving bytes, fault-free.
    let mut db = CbvrDatabase::open(data.share(), wal.share())
        .map_err(|e| fail(format!("reopen after crash failed: {e}")))?;
    let digest = state_digest(&mut db).map_err(|e| fail(format!("post-recovery digest: {e}")))?;
    if kind == FaultKind::Transient {
        if digest != final_digest {
            return Err(fail("state after absorbed transient differs from the clean run".into()));
        }
    } else if !valid.contains(&digest) {
        return Err(fail(format!(
            "recovered to a third state: digest {digest:#018x} matches none of the {} \
             legal pre/post-commit states",
            valid.len()
        )));
    }

    // The recovered database must accept new work.
    let probe = VideoRecord {
        v_name: "post-recovery-probe".into(),
        video: vec![7u8; 64],
        stream: vec![9u8; 16],
        dostore: 1,
    };
    db.insert_video(&probe)
        .map_err(|e| fail(format!("post-recovery probe insert failed: {e}")))?;
    Ok(())
}

/// Replay the multi-batch workload once per (fault kind × operation
/// index), asserting every recovery converges to a pre- or post-commit
/// state of some batch — never a third state. Errors are reserved for a
/// broken harness (the clean run itself failing); non-convergent
/// recoveries are reported in [`SweepReport::failures`].
pub fn run_sweep(cfg: &SweepConfig) -> Result<SweepReport> {
    let valid = clean_digests(cfg.seed)?;
    let final_digest = *valid.last().expect("clean run produced at least one digest");
    let total_ops = count_workload_ops(cfg.seed, cfg.target)?;

    let mut report = SweepReport { total_ops, ..SweepReport::default() };
    for kind in ALL_FAULT_KINDS {
        let ops: Vec<u64> = match cfg.only_op {
            Some(op) => vec![op.clamp(1, total_ops)],
            None => (1..=total_ops).collect(),
        };
        for op in ops {
            report.runs += 1;
            if let Err(failure) = sweep_once(cfg, kind, op, &valid, final_digest) {
                report.failures.push(failure);
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_counts_and_fires_at_nth_op() {
        let inj = FaultInjector::new(0);
        let mut b = FaultBackend::new(MemBackend::new(), inj.clone());
        b.write_at(0, &[1, 2, 3]).unwrap(); // op 1
        inj.arm_after(2, FaultKind::Crash);
        b.sync().unwrap(); // op 2 — one op of budget left
        let err = b.write_at(0, &[4]).unwrap_err(); // op 3 — fires
        assert!(err.is_injected());
        assert!(!err.is_transient());
        // Dead until healed — reads too.
        let mut buf = [0u8; 1];
        assert!(b.read_at(0, &mut buf).is_err());
        assert!(b.sync().is_err());
        inj.heal();
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(buf[0], 1);
        assert!(inj.injected() >= 2);
    }

    #[test]
    fn transient_fires_once_then_recovers() {
        let inj = FaultInjector::new(0);
        let mut b = FaultBackend::new(MemBackend::new(), inj.clone());
        inj.arm_after(1, FaultKind::Transient);
        let err = b.write_at(0, &[1]).unwrap_err();
        assert!(err.is_transient());
        assert!(err.is_injected());
        b.write_at(0, &[1]).unwrap(); // next attempt succeeds
    }

    #[test]
    fn power_cut_loses_unsynced_bytes_only() {
        let inj = FaultInjector::new(7);
        let mem = MemBackend::new();
        let mut b = FaultBackend::new(mem.share(), inj.clone());
        b.write_at(0, &[1u8; 100]).unwrap();
        b.sync().unwrap(); // durable watermark: 100
        b.write_at(100, &[2u8; 50]).unwrap(); // never synced
        inj.arm_after(1, FaultKind::PowerCut);
        assert!(b.sync().is_err());
        inj.heal();
        assert_eq!(mem.share().len().unwrap(), 100, "unsynced tail lost, synced prefix kept");
    }

    #[test]
    fn short_write_lands_a_prefix() {
        let inj = FaultInjector::new(3);
        let mem = MemBackend::new();
        let mut b = FaultBackend::new(mem.share(), inj.clone());
        inj.arm_after(1, FaultKind::ShortWrite);
        assert!(b.write_at(0, &[0xAB; 4096]).is_err());
        let len = mem.share().len().unwrap();
        assert!(len < 4096, "short write must not land the full buffer (landed {len})");
    }

    #[test]
    fn torn_write_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let inj = FaultInjector::new(seed);
            let mem = MemBackend::new();
            let mut b = FaultBackend::new(mem.share(), inj.clone());
            b.write_at(0, &[0u8; 4096]).unwrap();
            b.sync().unwrap();
            inj.arm_after(1, FaultKind::TornSectors);
            assert!(b.write_at(0, &[0xFF; 4096]).is_err());
            let mut buf = vec![0u8; 4096];
            mem.share().read_at(0, &mut buf).unwrap();
            buf
        };
        assert_eq!(run(1), run(1), "same seed, same torn shape");
        assert_ne!(run(1), run(2), "different seeds should tear differently");
    }

    #[test]
    fn with_retry_absorbs_transients_and_counts() {
        let mut counters = FaultCounters::default();
        let mut calls = 0;
        let out: Result<u32> = with_retry(&mut counters, || {
            calls += 1;
            if calls < 3 {
                Err(StorageError::Io(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "injected fault: transient",
                )))
            } else {
                Ok(99)
            }
        });
        assert_eq!(out.unwrap(), 99);
        assert_eq!(calls, 3);
        assert_eq!(counters.retried, 2);
        assert_eq!(counters.injected, 2);
    }

    #[test]
    fn with_retry_gives_up_on_hard_errors() {
        let mut counters = FaultCounters::default();
        let mut calls = 0;
        let out: Result<()> = with_retry(&mut counters, || {
            calls += 1;
            Err(StorageError::Io(std::io::Error::other("disk on fire")))
        });
        assert!(out.is_err());
        assert_eq!(calls, 1, "hard errors must not be retried");
        assert_eq!(counters.retried, 0);
        assert_eq!(counters.injected, 0);
    }

    #[test]
    fn workload_is_deterministic() {
        let run = || -> u64 {
            let mut db = CbvrDatabase::in_memory().unwrap();
            for batch in 0..WORKLOAD_BATCHES {
                apply_workload_batch(&mut db, 42, batch).unwrap();
            }
            state_digest(&mut db).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn workload_batches_change_the_digest() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let mut digests = vec![state_digest(&mut db).unwrap()];
        for batch in 0..WORKLOAD_BATCHES {
            apply_workload_batch(&mut db, 0, batch).unwrap();
            digests.push(state_digest(&mut db).unwrap());
        }
        let unique: std::collections::HashSet<_> = digests.iter().collect();
        assert_eq!(unique.len(), digests.len(), "every batch must move the state");
    }

    #[test]
    fn sweep_single_op_smoke() {
        // Full sweeps live in tests/fault_sweep.rs; here just prove the
        // driver converges on one pinned op per target.
        for target in [SweepTarget::Pager, SweepTarget::Wal] {
            let cfg = SweepConfig { seed: 0, target, only_op: Some(3) };
            let report = run_sweep(&cfg).unwrap();
            assert_eq!(report.runs, ALL_FAULT_KINDS.len() as u64);
            assert!(
                report.failures.is_empty(),
                "sweep failures: {:?}",
                report.failures.iter().map(|f| f.to_string()).collect::<Vec<_>>()
            );
        }
    }
}
