//! Page cache, allocation and the commit protocol.
//!
//! The pager owns the data file and the WAL and enforces the engine's
//! durability discipline (no-steal / force):
//!
//! - mutations land only in the cache (dirty pages never reach the data
//!   file before commit);
//! - [`Pager::commit`] appends all dirty page images to the WAL (fsync),
//!   then writes them to the data file (fsync), then truncates the WAL;
//! - [`Pager::abort`] simply drops the dirty pages — the data file still
//!   holds the last committed state;
//! - [`Pager::open`] replays any committed WAL tail onto the data file
//!   before anything else, making a crash between the two fsyncs
//!   invisible.
//!
//! The WAL fsync is the commit point. Once [`crate::wal::Wal`] reports
//! the record durable, [`Pager::commit`] returns `Ok` even if pushing the
//! images into the data file fails: the pager enters a *degraded* state
//! ([`Pager::wal_pending`]) where the cache pins the committed pages, the
//! WAL keeps the images, and every later commit (or an explicit
//! [`Pager::checkpoint`]) retries the propagation. A crash while degraded
//! is exactly the crash-between-fsyncs case recovery already handles.
//!
//! Transient I/O errors (interrupted syscalls and friends) are absorbed
//! by bounded retry-with-backoff ([`crate::fault::with_retry`]), counted
//! in `storage.fault.retried`.
//!
//! Page 0 is the pager's meta page: magic, page count, free-list head and
//! a 64-byte user area the database layer uses for table roots and id
//! counters.

use crate::backend::Backend;
use crate::error::{Result, StorageError};
use crate::fault::{with_retry, FaultCounters};
use crate::page::{Page, PageId, NO_PAGE, PAGE_SIZE};
use crate::telemetry::StorageTelemetry;
use crate::wal::Wal;
use std::collections::{HashMap, VecDeque};

const META_MAGIC: u32 = 0x4342_5652; // "CBVR"
const META_VERSION: u32 = 1;
/// Size of the user-meta area on page 0.
pub const USER_META_LEN: usize = 64;
const USER_META_OFFSET: usize = 16;

/// Default cache capacity in pages (4 MiB).
pub const DEFAULT_CACHE_PAGES: usize = 1024;

struct CacheEntry {
    page: Page,
    dirty: bool,
}

/// The meta fields as of the last durable commit. [`Pager::abort`]
/// restores from this snapshot instead of re-reading page 0: while a
/// commit is only partially propagated, the data file's meta page may be
/// stale or torn, but this snapshot never is.
#[derive(Clone, Copy)]
struct CommittedMeta {
    page_count: u32,
    free_head: PageId,
    user_meta: [u8; USER_META_LEN],
}

/// The pager.
pub struct Pager<B: Backend> {
    data: B,
    wal: Wal<B>,
    cache: HashMap<PageId, CacheEntry>,
    lru: VecDeque<PageId>,
    capacity: usize,
    // Meta state (mirrors page 0).
    page_count: u32,
    free_head: PageId,
    user_meta: [u8; USER_META_LEN],
    meta_dirty: bool,
    committed: CommittedMeta,
    /// True while the WAL holds committed records the data file does not:
    /// a propagation attempt failed after the commit point. Eviction is
    /// suspended (the cache is the only readable copy of those pages) and
    /// the next commit or [`Pager::checkpoint`] retries the replay.
    wal_pending: bool,
    telemetry: StorageTelemetry,
    fault_counters: FaultCounters,
}

impl<B: Backend> Pager<B> {
    /// Open (or create) a paged store, running WAL recovery first.
    pub fn open(mut data: B, wal_backend: B, capacity: usize) -> Result<Pager<B>> {
        let mut wal = Wal::new(wal_backend);
        let mut fault_counters = FaultCounters::default();

        // Recovery: push committed images into the data file.
        let (images, replayed) = wal.recover_records()?;
        if !images.is_empty() {
            for (id, page) in &images {
                let offset = *id as u64 * PAGE_SIZE as u64;
                with_retry(&mut fault_counters, || data.write_at(offset, page.as_bytes()))
                    .map_err(|e| e.with_context("replaying WAL image during open"))?;
            }
            with_retry(&mut fault_counters, || data.sync())
                .map_err(|e| e.with_context("syncing replayed pages during open"))?;
            wal.reset()?;
        }

        let mut pager = Pager {
            data,
            wal,
            cache: HashMap::new(),
            lru: VecDeque::new(),
            capacity: capacity.max(8),
            page_count: 1,
            free_head: NO_PAGE,
            user_meta: [0u8; USER_META_LEN],
            meta_dirty: false,
            committed: CommittedMeta {
                page_count: 1,
                free_head: NO_PAGE,
                user_meta: [0u8; USER_META_LEN],
            },
            wal_pending: false,
            telemetry: StorageTelemetry { wal_replays: replayed, ..StorageTelemetry::default() },
            fault_counters,
        };

        if pager.data.is_empty()? {
            // Fresh store: write the initial meta page durably.
            pager.meta_dirty = true;
            pager.commit()?;
        } else {
            pager.load_meta()?;
        }
        Ok(pager)
    }

    fn load_meta(&mut self) -> Result<()> {
        let mut bytes = vec![0u8; PAGE_SIZE];
        let Pager { data, fault_counters, .. } = self;
        with_retry(fault_counters, || data.read_at(0, &mut bytes))
            .map_err(|e| e.with_context("reading meta page"))?;
        let page = Page::from_bytes(&bytes)?;
        let mut r = page.reader(0);
        let magic = r.u32()?;
        if magic != META_MAGIC {
            return Err(StorageError::Corruption(format!("bad meta magic {magic:#x}")));
        }
        let version = r.u32()?;
        if version != META_VERSION {
            return Err(StorageError::Corruption(format!("unsupported version {version}")));
        }
        self.page_count = r.u32()?;
        self.free_head = r.u32()?;
        self.user_meta.copy_from_slice(r.bytes(USER_META_LEN)?);
        self.meta_dirty = false;
        self.committed = CommittedMeta {
            page_count: self.page_count,
            free_head: self.free_head,
            user_meta: self.user_meta,
        };
        Ok(())
    }

    fn meta_page(&self) -> Result<Page> {
        let mut page = Page::new();
        let mut w = page.writer(0);
        w.u32(META_MAGIC)?;
        w.u32(META_VERSION)?;
        w.u32(self.page_count)?;
        w.u32(self.free_head)?;
        debug_assert_eq!(w.position(), USER_META_OFFSET);
        w.bytes(&self.user_meta)?;
        Ok(page)
    }

    /// Total pages, including the meta page.
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// The 64-byte user-meta area (table roots, id counters).
    pub fn user_meta(&self) -> &[u8; USER_META_LEN] {
        &self.user_meta
    }

    /// Replace the user-meta area (takes effect at the next commit).
    pub fn set_user_meta(&mut self, meta: [u8; USER_META_LEN]) {
        if meta != self.user_meta {
            self.user_meta = meta;
            self.meta_dirty = true;
        }
    }

    fn touch(&mut self, id: PageId) {
        // Cheap approximate LRU: push on access, dedup lazily on evict.
        self.lru.push_back(id);
        if self.lru.len() > self.capacity * 4 {
            self.compact_lru();
        }
    }

    fn compact_lru(&mut self) {
        let mut seen = std::collections::HashSet::new();
        let mut fresh = VecDeque::with_capacity(self.cache.len());
        // Keep only the most recent mention of each page.
        for &id in self.lru.iter().rev() {
            if seen.insert(id) {
                fresh.push_front(id);
            }
        }
        self.lru = fresh;
    }

    fn evict_if_needed(&mut self) {
        if self.wal_pending {
            // The cache holds the only readable copy of the committed
            // pages the data file is missing; evicting one would re-read
            // a stale or torn page. Overshoot until the replay lands.
            return;
        }
        while self.cache.len() > self.capacity {
            self.compact_lru();
            // Find the least-recently-used clean page.
            let victim = self
                .lru
                .iter()
                .find(|id| self.cache.get(id).is_some_and(|e| !e.dirty))
                .copied();
            match victim {
                Some(id) => {
                    self.cache.remove(&id);
                    self.lru.retain(|&x| x != id);
                    self.telemetry.cache_evictions += 1;
                }
                None => break, // everything dirty: allow overshoot until commit
            }
        }
    }

    /// Read a page (through the cache).
    pub fn read_page(&mut self, id: PageId) -> Result<Page> {
        if id == 0 || id >= self.page_count {
            return Err(StorageError::Corruption(format!(
                "page {id} out of range (count {})",
                self.page_count
            )));
        }
        if let Some(entry) = self.cache.get(&id) {
            let page = entry.page.clone();
            self.telemetry.cache_hits += 1;
            self.touch(id);
            return Ok(page);
        }
        self.telemetry.cache_misses += 1;
        let mut bytes = vec![0u8; PAGE_SIZE];
        let offset = id as u64 * PAGE_SIZE as u64;
        let Pager { data, fault_counters, .. } = self;
        with_retry(fault_counters, || data.read_at(offset, &mut bytes))
            .map_err(|e| e.with_context("reading data page"))?;
        let page = Page::from_bytes(&bytes)?;
        self.cache.insert(id, CacheEntry { page: page.clone(), dirty: false });
        self.touch(id);
        self.evict_if_needed();
        Ok(page)
    }

    /// Stage a page write (visible to subsequent reads, durable at commit).
    pub fn write_page(&mut self, id: PageId, page: Page) -> Result<()> {
        if id == 0 || id >= self.page_count {
            return Err(StorageError::Corruption(format!(
                "page {id} out of range (count {})",
                self.page_count
            )));
        }
        self.telemetry.page_writes += 1;
        self.cache.insert(id, CacheEntry { page, dirty: true });
        self.touch(id);
        self.evict_if_needed();
        Ok(())
    }

    /// Allocate a page: reuse the free list, else grow the file.
    pub fn allocate(&mut self) -> Result<PageId> {
        if self.free_head != NO_PAGE {
            let id = self.free_head;
            let page = self.read_page(id)?;
            self.free_head = page.reader(0).u32()?;
            self.meta_dirty = true;
            // Hand back a zeroed page.
            self.write_page(id, Page::new())?;
            return Ok(id);
        }
        let id = self.page_count;
        self.page_count += 1;
        self.meta_dirty = true;
        self.write_page(id, Page::new())?;
        Ok(id)
    }

    /// Return a page to the free list.
    pub fn free(&mut self, id: PageId) -> Result<()> {
        if id == 0 || id >= self.page_count {
            return Err(StorageError::Corruption(format!("cannot free page {id}")));
        }
        let mut page = Page::new();
        page.writer(0).u32(self.free_head)?;
        self.write_page(id, page)?;
        self.free_head = id;
        self.meta_dirty = true;
        Ok(())
    }

    /// Snapshot of the counters accumulated since open, including the
    /// fault/retry counters from both the data path and the WAL.
    pub fn telemetry(&self) -> StorageTelemetry {
        let mut t = self.telemetry;
        let mut faults = self.fault_counters;
        faults.merge(self.wal.fault_counters());
        t.fault_injected += faults.injected;
        t.fault_retried += faults.retried;
        t
    }

    /// Number of dirty pages staged for the next commit.
    pub fn dirty_count(&self) -> usize {
        self.cache.values().filter(|e| e.dirty).count() + usize::from(self.meta_dirty)
    }

    /// True while a durable commit still awaits propagation to the data
    /// file (the degraded state; see the module docs).
    pub fn wal_pending(&self) -> bool {
        self.wal_pending
    }

    /// Push every committed WAL record into the data file and truncate
    /// the log. No-op when nothing is pending. This is the in-process
    /// twin of open-time recovery: full page images, idempotent, safe to
    /// retry forever.
    pub fn checkpoint(&mut self) -> Result<()> {
        if !self.wal_pending {
            return Ok(());
        }
        let (images, _) = self.wal.recover_records()?;
        for (id, page) in &images {
            let offset = *id as u64 * PAGE_SIZE as u64;
            let Pager { data, fault_counters, .. } = self;
            with_retry(fault_counters, || data.write_at(offset, page.as_bytes()))
                .map_err(|e| e.with_context("propagating committed page"))?;
        }
        let Pager { data, fault_counters, .. } = self;
        with_retry(fault_counters, || data.sync())
            .map_err(|e| e.with_context("syncing propagated pages"))?;
        self.wal.reset()?;
        self.wal_pending = false;
        self.evict_if_needed();
        Ok(())
    }

    /// Write the staged images directly (the fast path that skips
    /// re-reading the WAL). The caller must already have appended them.
    fn propagate(&mut self, images: &[(PageId, Page)]) -> Result<()> {
        for (id, page) in images {
            let offset = *id as u64 * PAGE_SIZE as u64;
            let Pager { data, fault_counters, .. } = self;
            with_retry(fault_counters, || data.write_at(offset, page.as_bytes()))
                .map_err(|e| e.with_context("propagating committed page"))?;
        }
        let Pager { data, fault_counters, .. } = self;
        with_retry(fault_counters, || data.sync())
            .map_err(|e| e.with_context("syncing propagated pages"))?;
        self.wal.reset()?;
        Ok(())
    }

    /// Durably commit all staged writes: WAL append+fsync → data
    /// write+fsync → WAL reset.
    ///
    /// The WAL fsync is the commit point: once the record is durable this
    /// returns `Ok` even if the data-file propagation fails — the commit
    /// survives a crash via replay, and the pager stays degraded
    /// ([`Pager::wal_pending`]) until a later commit or
    /// [`Pager::checkpoint`] lands the images. An `Err` means the commit
    /// did NOT happen and the staged writes are still pending (abort to
    /// drop them).
    pub fn commit(&mut self) -> Result<()> {
        let mut dirty: Vec<(PageId, Page)> = self
            .cache
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(&id, e)| (id, e.page.clone()))
            .collect();
        dirty.sort_by_key(|(id, _)| *id);
        let meta = if self.meta_dirty { Some(self.meta_page()?) } else { None };
        if dirty.is_empty() && meta.is_none() {
            // Nothing new; use the opportunity to retry a pending replay.
            return self.checkpoint();
        }

        let mut images: Vec<(PageId, Page)> = Vec::with_capacity(dirty.len() + 1);
        if let Some(m) = meta {
            images.push((0, m));
        }
        images.extend(dirty);
        let refs: Vec<(PageId, &Page)> = images.iter().map(|(id, p)| (*id, p)).collect();
        let appended = self.wal.append_commit(&refs)?;
        self.telemetry.wal_commits += 1;
        self.telemetry.wal_bytes += appended;

        // Commit point passed: the staged pages are now the durable
        // truth, whatever happens to the data file below.
        for (_, entry) in self.cache.iter_mut() {
            entry.dirty = false;
        }
        self.meta_dirty = false;
        self.committed = CommittedMeta {
            page_count: self.page_count,
            free_head: self.free_head,
            user_meta: self.user_meta,
        };

        let propagated = if self.wal_pending {
            // Earlier images are still owed; replay the whole log in
            // order (ours included) rather than racing ahead of them.
            self.checkpoint()
        } else {
            self.wal_pending = true;
            self.propagate(&images)
        };
        match propagated {
            Ok(()) => {
                self.wal_pending = false;
                self.evict_if_needed();
            }
            Err(_) => {
                // Degraded, not failed: the WAL holds the record and the
                // cache pins the pages. Surfaced via telemetry and
                // `wal_pending()`, healed by the next commit/checkpoint
                // or by open-time recovery after a crash.
            }
        }
        Ok(())
    }

    /// Discard all staged writes, restoring the last committed state.
    /// Purely in-memory: the committed meta snapshot is authoritative
    /// even while the data file lags the WAL.
    pub fn abort(&mut self) -> Result<()> {
        self.cache.retain(|_, e| !e.dirty);
        // While the data file lags the WAL, a dropped dirty entry may have
        // shadowed the only readable copy of a committed page; reinstate
        // the committed images from the WAL (later records win).
        if self.wal_pending {
            let (images, _) = self.wal.recover_records()?;
            for (id, page) in images {
                self.cache.insert(id, CacheEntry { page, dirty: false });
            }
        }
        self.lru.clear();
        for id in self.cache.keys() {
            self.lru.push_back(*id);
        }
        self.page_count = self.committed.page_count;
        self.free_head = self.committed.free_head;
        self.user_meta = self.committed.user_meta;
        self.meta_dirty = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn open_mem() -> (Pager<MemBackend>, MemBackend, MemBackend) {
        let data = MemBackend::new();
        let wal = MemBackend::new();
        let pager = Pager::open(data.share(), wal.share(), 16).unwrap();
        (pager, data, wal)
    }

    fn page_of(fill: u8) -> Page {
        let mut p = Page::new();
        p.as_bytes_mut().fill(fill);
        p
    }

    #[test]
    fn allocate_write_read_commit_reopen() {
        let (mut pager, data, wal) = open_mem();
        let id = pager.allocate().unwrap();
        pager.write_page(id, page_of(7)).unwrap();
        pager.commit().unwrap();
        drop(pager);
        let mut pager = Pager::open(data.share(), wal.share(), 16).unwrap();
        assert_eq!(pager.read_page(id).unwrap(), page_of(7));
        assert_eq!(pager.page_count(), 2);
    }

    #[test]
    fn abort_discards_staged_writes() {
        let (mut pager, _, _) = open_mem();
        let id = pager.allocate().unwrap();
        pager.write_page(id, page_of(1)).unwrap();
        pager.commit().unwrap();
        pager.write_page(id, page_of(2)).unwrap();
        assert_eq!(pager.read_page(id).unwrap(), page_of(2), "dirty read");
        pager.abort().unwrap();
        assert_eq!(pager.read_page(id).unwrap(), page_of(1), "rolled back");
    }

    #[test]
    fn abort_rolls_back_allocation() {
        let (mut pager, _, _) = open_mem();
        let before = pager.page_count();
        pager.allocate().unwrap();
        pager.abort().unwrap();
        assert_eq!(pager.page_count(), before);
    }

    #[test]
    fn free_list_reuses_pages() {
        let (mut pager, _, _) = open_mem();
        let a = pager.allocate().unwrap();
        let _b = pager.allocate().unwrap();
        pager.commit().unwrap();
        pager.free(a).unwrap();
        pager.commit().unwrap();
        let c = pager.allocate().unwrap();
        assert_eq!(c, a, "freed page should be recycled");
        // Recycled page arrives zeroed.
        assert_eq!(pager.read_page(c).unwrap(), Page::new());
    }

    #[test]
    fn out_of_range_access_is_error() {
        let (mut pager, _, _) = open_mem();
        assert!(pager.read_page(0).is_err(), "meta page is private");
        assert!(pager.read_page(99).is_err());
        assert!(pager.write_page(99, Page::new()).is_err());
        assert!(pager.free(0).is_err());
    }

    #[test]
    fn user_meta_round_trips_through_reopen() {
        let (mut pager, data, wal) = open_mem();
        let mut meta = [0u8; USER_META_LEN];
        meta[0] = 0xAB;
        meta[63] = 0xCD;
        pager.set_user_meta(meta);
        pager.commit().unwrap();
        drop(pager);
        let pager = Pager::open(data.share(), wal.share(), 16).unwrap();
        assert_eq!(pager.user_meta()[0], 0xAB);
        assert_eq!(pager.user_meta()[63], 0xCD);
    }

    #[test]
    fn crash_before_data_write_recovers_from_wal() {
        let data = MemBackend::new();
        let wal = MemBackend::new();
        let faults = data.faults();
        {
            let mut pager = Pager::open(data.share(), wal.share(), 16).unwrap();
            let id = pager.allocate().unwrap();
            pager.write_page(id, page_of(42)).unwrap();
            pager.commit().unwrap();
            // Stage a second commit, then crash after the WAL lands but
            // before any data-file write: the WAL fsync consumes no data
            // backend writes, so fail the data backend immediately.
            pager.write_page(id, page_of(43)).unwrap();
            faults.fail_after_writes(0);
            // The WAL fsync is the commit point: the commit succeeds and
            // the pager degrades until the images can propagate.
            pager.commit().unwrap();
            assert!(pager.wal_pending(), "propagation failure must leave the pager degraded");
            // The committed page stays readable from the pinned cache.
            assert_eq!(pager.read_page(id).unwrap(), page_of(43));
        }
        faults.heal();
        // Reopen: recovery must replay the committed WAL record.
        let mut pager = Pager::open(data.share(), wal.share(), 16).unwrap();
        assert_eq!(pager.read_page(1).unwrap(), page_of(43), "WAL image applied");
    }

    #[test]
    fn checkpoint_heals_a_degraded_pager_in_process() {
        let data = MemBackend::new();
        let wal = MemBackend::new();
        let faults = data.faults();
        let mut pager = Pager::open(data.share(), wal.share(), 16).unwrap();
        let id = pager.allocate().unwrap();
        pager.write_page(id, page_of(7)).unwrap();
        faults.fail_after_writes(0);
        pager.commit().unwrap();
        assert!(pager.wal_pending());
        // Still sick: checkpoint fails, degradation persists.
        assert!(pager.checkpoint().is_err());
        assert!(pager.wal_pending());
        // Backend recovers; checkpoint propagates and clears the state.
        faults.heal();
        pager.checkpoint().unwrap();
        assert!(!pager.wal_pending());
        assert_eq!(pager.read_page(id).unwrap(), page_of(7));
        // The data file now really holds the page: a fresh pager agrees.
        drop(pager);
        let mut pager = Pager::open(data.share(), wal.share(), 16).unwrap();
        assert_eq!(pager.read_page(id).unwrap(), page_of(7));
    }

    #[test]
    fn abort_while_degraded_restores_the_committed_snapshot() {
        let data = MemBackend::new();
        let wal = MemBackend::new();
        let faults = data.faults();
        let mut pager = Pager::open(data.share(), wal.share(), 16).unwrap();
        let id = pager.allocate().unwrap();
        pager.write_page(id, page_of(1)).unwrap();
        let mut meta = [0u8; USER_META_LEN];
        meta[0] = 0x11;
        pager.set_user_meta(meta);
        faults.fail_after_writes(0);
        pager.commit().unwrap(); // durable in WAL, data file lags
        assert!(pager.wal_pending());
        // Stage more work, then abort it: the restore point must be the
        // committed snapshot (meta[0] == 0x11), not the torn data file.
        let mut meta2 = meta;
        meta2[0] = 0x22;
        pager.set_user_meta(meta2);
        pager.write_page(id, page_of(9)).unwrap();
        pager.abort().unwrap();
        assert_eq!(pager.user_meta()[0], 0x11, "abort restored pre-commit meta");
        assert_eq!(pager.read_page(id).unwrap(), page_of(1), "abort dropped staged page");
        faults.heal();
    }

    #[test]
    fn degraded_commits_accumulate_and_replay_in_order() {
        let data = MemBackend::new();
        let wal = MemBackend::new();
        let faults = data.faults();
        {
            let mut pager = Pager::open(data.share(), wal.share(), 16).unwrap();
            let id = pager.allocate().unwrap();
            pager.write_page(id, page_of(1)).unwrap();
            pager.commit().unwrap();
            faults.fail_after_writes(0);
            // Two more commits while the data file is unreachable; the
            // WAL keeps both records.
            pager.write_page(id, page_of(2)).unwrap();
            pager.commit().unwrap();
            pager.write_page(id, page_of(3)).unwrap();
            pager.commit().unwrap();
            assert!(pager.wal_pending());
            assert_eq!(pager.read_page(id).unwrap(), page_of(3));
        }
        faults.heal();
        let mut pager = Pager::open(data.share(), wal.share(), 16).unwrap();
        assert_eq!(pager.read_page(1).unwrap(), page_of(3), "latest commit wins after replay");
    }

    #[test]
    fn transient_data_faults_are_retried_and_counted() {
        let data = MemBackend::new();
        let wal = MemBackend::new();
        // Use the operation-counted injector for a one-shot transient.
        let inj = crate::fault::FaultInjector::new(0);
        let mut pager = Pager::open(
            crate::fault::FaultBackend::new(data.share(), inj.clone()),
            crate::fault::FaultBackend::new(wal.share(), crate::fault::FaultInjector::new(0)),
            16,
        )
        .unwrap();
        let id = pager.allocate().unwrap();
        pager.write_page(id, page_of(5)).unwrap();
        inj.arm_after(1, crate::fault::FaultKind::Transient);
        pager.commit().unwrap();
        assert!(!pager.wal_pending(), "a retried transient must not degrade the pager");
        let t = pager.telemetry();
        assert!(t.fault_retried >= 1, "retry must be visible in telemetry");
        assert!(t.fault_injected >= 1, "injected fault must be visible in telemetry");
    }

    #[test]
    fn crash_before_wal_sync_loses_only_the_torn_commit() {
        let data = MemBackend::new();
        let wal = MemBackend::new();
        let wal_faults = wal.faults();
        {
            let mut pager = Pager::open(data.share(), wal.share(), 16).unwrap();
            let id = pager.allocate().unwrap();
            pager.write_page(id, page_of(1)).unwrap();
            pager.commit().unwrap();
            pager.write_page(id, page_of(2)).unwrap();
            // Crash during the WAL append itself.
            wal_faults.fail_after_writes(0);
            assert!(pager.commit().is_err());
        }
        wal_faults.heal();
        let mut pager = Pager::open(data.share(), wal.share(), 16).unwrap();
        assert_eq!(pager.read_page(1).unwrap(), page_of(1), "previous commit intact");
    }

    #[test]
    fn cache_eviction_keeps_correctness() {
        let data = MemBackend::new();
        let wal = MemBackend::new();
        let mut pager = Pager::open(data.share(), wal.share(), 8).unwrap();
        let mut ids = Vec::new();
        for i in 0..50u8 {
            let id = pager.allocate().unwrap();
            pager.write_page(id, page_of(i)).unwrap();
            ids.push(id);
        }
        pager.commit().unwrap();
        // Read everything back through a tiny cache.
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(pager.read_page(*id).unwrap(), page_of(i as u8));
        }
    }

    #[test]
    fn empty_commit_is_noop() {
        let (mut pager, _, mut wal_handle) = open_mem();
        pager.commit().unwrap();
        pager.commit().unwrap();
        assert_eq!(wal_handle.len().unwrap(), 0);
    }

    #[test]
    fn dirty_count_tracks_staging() {
        let (mut pager, _, _) = open_mem();
        assert_eq!(pager.dirty_count(), 0);
        let id = pager.allocate().unwrap();
        assert!(pager.dirty_count() >= 2, "page + meta dirty");
        pager.commit().unwrap();
        assert_eq!(pager.dirty_count(), 0);
        pager.write_page(id, page_of(1)).unwrap();
        assert_eq!(pager.dirty_count(), 1);
    }
}
