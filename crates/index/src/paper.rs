//! The exact §4.2 range-finder, pseudocode quirks preserved.
//!
//! The pseudocode normalises bin sums by `900.0` because its rescaled
//! frames hold 90 000 pixels (300×300) — `sum/900.0` is the *percentage*
//! of mass in the range. We compute the percentage from the actual pixel
//! count so the algorithm works at any resolution, which is the only
//! generalisation. Every branch below mirrors a numbered step:
//!
//! - 1st block test (>55%): choose `[0,127]`, *else `[128,255]`
//!   unconditionally* (the paper has no third outcome);
//! - 2nd block tests (>60%): refine to a 64-wide range or stay;
//! - 3rd block tests (>60%): refine to a 32-wide range or stay.
//!
//! The pseudocode's loop bounds are also faithfully reproduced where they
//! matter: its second-level loops scan `64..127` / `128..191` /
//! `192..255` with an *exclusive* upper bound, silently dropping the last
//! bin of each range (e.g. bin 127). We keep the inclusive-range
//! semantics instead — the off-by-one is a transcription error, not a
//! design decision, and changes assignments only for frames whose mass
//! sits exactly on a boundary bin.

use cbvr_imgproc::Histogram256;

/// First-level mass threshold, percent (pseudocode step 4.D).
pub const FIRST_LEVEL_THRESHOLD: f64 = 55.0;
/// Second/third-level mass threshold, percent (steps 6–16).
pub const LOWER_LEVEL_THRESHOLD: f64 = 60.0;

/// An inclusive intensity range assigned by the range finder — the
/// `MIN`/`MAX` columns of the `KEY_FRAMES` table.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RangeKey {
    /// Inclusive lower bound.
    pub min: u8,
    /// Inclusive upper bound.
    pub max: u8,
}

impl RangeKey {
    /// Construct; normalises a reversed pair.
    pub fn new(min: u8, max: u8) -> RangeKey {
        if min <= max { RangeKey { min, max } } else { RangeKey { min: max, max: min } }
    }

    /// Width of the range in bins (inclusive).
    pub fn width(self) -> u16 {
        self.max as u16 - self.min as u16 + 1
    }

    /// True when the two ranges share at least one bin.
    pub fn overlaps(self, other: RangeKey) -> bool {
        self.min <= other.max && other.min <= self.max
    }

    /// True when `self` fully contains `other`.
    pub fn contains(self, other: RangeKey) -> bool {
        self.min <= other.min && other.max <= self.max
    }

    /// Tree depth this range lives at: 0 for the 128-wide first level,
    /// 1 for 64-wide, 2 for 32-wide.
    pub fn level(self) -> u8 {
        match self.width() {
            128 => 0,
            64 => 1,
            32 => 2,
            _ => u8::MAX, // not a range the paper's finder produces
        }
    }
}

impl std::fmt::Display for RangeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}..={}]", self.min, self.max)
    }
}

/// `mass(lo..=hi) / total > threshold%`, evaluated by cross-multiplication
/// so an exact 55% never sneaks past `> 55.0` through float rounding.
pub(crate) fn passes(hist: &Histogram256, lo: u8, hi: u8, threshold_percent: f64) -> bool {
    let total = hist.total();
    if total == 0 {
        return false;
    }
    (hist.mass(lo, hi) as f64) * 100.0 > threshold_percent * total as f64
}

/// Run the exact §4.2 range finder on a luminance histogram.
pub fn paper_range(hist: &Histogram256) -> RangeKey {
    // 1st block test: >55% in the lower half picks it, anything else
    // falls to the upper half (the pseudocode's unconditional else).
    let (mut min, mut max): (u8, u8) = if passes(hist, 0, 127, FIRST_LEVEL_THRESHOLD) {
        (0, 127)
    } else {
        (128, 255)
    };

    // 2nd block tests: refine the 128-range into a 64-range when one
    // half holds >60%.
    let refine = |lo: u8, hi: u8| -> Option<(u8, u8)> {
        let mid = lo + (hi - lo) / 2;
        if passes(hist, lo, mid, LOWER_LEVEL_THRESHOLD) {
            Some((lo, mid))
        } else if passes(hist, mid + 1, hi, LOWER_LEVEL_THRESHOLD) {
            Some((mid + 1, hi))
        } else {
            None
        }
    };

    if let Some((lo, hi)) = refine(min, max) {
        min = lo;
        max = hi;
        // 3rd block tests: refine the 64-range into a 32-range.
        if let Some((lo, hi)) = refine(min, max) {
            min = lo;
            max = hi;
        }
    }
    RangeKey { min, max }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_with(values: &[(u8, u64)]) -> Histogram256 {
        let mut h = Histogram256::new();
        for &(v, count) in values {
            for _ in 0..count {
                h.record(v);
            }
        }
        h
    }

    #[test]
    fn concentrated_dark_mass_descends_to_level_three() {
        // All mass at intensity 10 → [0,31].
        let h = hist_with(&[(10, 100)]);
        assert_eq!(paper_range(&h), RangeKey { min: 0, max: 31 });
    }

    #[test]
    fn concentrated_bright_mass_descends_to_level_three() {
        let h = hist_with(&[(240, 100)]);
        assert_eq!(paper_range(&h), RangeKey { min: 224, max: 255 });
    }

    #[test]
    fn spread_within_lower_half_stays_at_level_one() {
        // 50/50 split between the two quarters of the lower half: neither
        // quarter passes 60%, so the range stays [0,127].
        let h = hist_with(&[(10, 50), (100, 50)]);
        assert_eq!(paper_range(&h), RangeKey { min: 0, max: 127 });
    }

    #[test]
    fn mid_level_stop() {
        // 100% in [64,127] but split across its two 32-wide halves.
        let h = hist_with(&[(70, 50), (120, 50)]);
        assert_eq!(paper_range(&h), RangeKey { min: 64, max: 127 });
    }

    #[test]
    fn balanced_halves_fall_to_upper_range() {
        // Exactly 50% ≤ 55% in the lower half → the else branch assigns
        // the upper half, the pseudocode's documented quirk.
        let h = hist_with(&[(10, 50), (200, 50)]);
        let r = paper_range(&h);
        assert_eq!((r.min, r.max), (128, 255));
    }

    #[test]
    fn empty_histogram_takes_upper_half() {
        // 0% everywhere → else-branch cascade: [128,255], never refined.
        let h = Histogram256::new();
        assert_eq!(paper_range(&h), RangeKey { min: 128, max: 255 });
    }

    #[test]
    fn threshold_is_strict() {
        // Exactly 55% in the lower half is NOT >55 → upper half.
        let h = hist_with(&[(10, 55), (200, 45)]);
        assert_eq!(paper_range(&h).min, 128);
        // 56% passes.
        let h = hist_with(&[(10, 56), (200, 44)]);
        assert_eq!(paper_range(&h).max, 127);
    }

    #[test]
    fn produced_widths_are_dyadic() {
        for seed in 0..50u64 {
            let mut h = Histogram256::new();
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for _ in 0..200 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                h.record((state % 256) as u8);
            }
            let r = paper_range(&h);
            assert!(matches!(r.width(), 32 | 64 | 128), "width {} for seed {seed}", r.width());
            assert!(r.level() <= 2);
            // Range is dyadic-aligned.
            assert_eq!(r.min as u16 % r.width(), 0);
        }
    }

    #[test]
    fn range_key_geometry() {
        let a = RangeKey::new(0, 63);
        let b = RangeKey::new(32, 95);
        let c = RangeKey::new(128, 255);
        assert!(a.overlaps(b));
        assert!(b.overlaps(a));
        assert!(!a.overlaps(c));
        assert!(c.contains(RangeKey::new(192, 223)));
        assert!(!a.contains(b));
        assert_eq!(RangeKey::new(9, 3), RangeKey::new(3, 9));
        assert_eq!(a.width(), 64);
        assert_eq!(RangeKey::new(0, 127).level(), 0);
        assert_eq!(RangeKey::new(0, 31).level(), 2);
        assert_eq!(format!("{a}"), "[0..=63]");
    }
}
