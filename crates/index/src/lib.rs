//! # cbvr-index — histogram-based range-finder indexing (§4.2)
//!
//! The paper indexes key frames by recursively halving the 0–255
//! intensity axis: a frame belongs to the deepest dyadic range that still
//! holds more than a threshold share of its histogram mass (55% at the
//! first level, 60% below — Fig. 7's tree). The `(min, max)` pair is
//! stored per key frame (the `MIN`/`MAX` columns of `KEY_FRAMES`) and
//! used at query time to prune the candidate set before any expensive
//! feature distance is computed.
//!
//! - [`paper::paper_range`] is the exact pseudocode: three levels, its
//!   threshold quirks included;
//! - [`tree::RangeTree`] generalises it to any depth/threshold (used by
//!   the ablation benches);
//! - [`bucket::RangeIndex`] is the bucket store mapping ranges to frame
//!   ids, with overlap-based candidate lookup and Fig. 7-style tree
//!   rendering.
#![warn(missing_docs)]


pub mod bucket;
pub mod paper;
pub mod tree;

pub use bucket::{BucketCounts, IndexStats, RangeIndex};
pub use paper::{paper_range, RangeKey, FIRST_LEVEL_THRESHOLD, LOWER_LEVEL_THRESHOLD};
pub use tree::{RangeTree, RangeTreeConfig};
