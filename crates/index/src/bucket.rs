//! Range-keyed bucket store and candidate lookup.
//!
//! Key frames are grouped by their assigned [`RangeKey`]; at query time
//! the query frame's range selects candidate buckets, pruning the feature
//! search. Two pruning policies are provided:
//!
//! - [`RangeIndex::bucket_candidates`] — only the exact bucket (fastest,
//!   lowest recall);
//! - [`RangeIndex::overlap_candidates`] — every bucket whose range
//!   overlaps the query's (the default: a level-1 stop like `[0,127]`
//!   must still reach frames filed under `[0,63]`).

use crate::paper::RangeKey;
use std::collections::BTreeMap;

/// Aggregate statistics of an index (for Fig. 7 output and the ablation
/// benches).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexStats {
    /// Total items indexed.
    pub items: usize,
    /// Number of non-empty buckets.
    pub buckets: usize,
    /// Largest bucket size.
    pub max_bucket: usize,
    /// Items per level (0 = 128-wide, 1 = 64-wide, 2 = 32-wide ranges).
    pub per_level: Vec<usize>,
}

/// A bucketed range index over items of type `T` (frame ids in the
/// pipeline; any payload in tests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeIndex<T> {
    buckets: BTreeMap<RangeKey, Vec<T>>,
    items: usize,
}

impl<T> Default for RangeIndex<T> {
    fn default() -> Self {
        RangeIndex { buckets: BTreeMap::new(), items: 0 }
    }
}

impl<T: Clone> RangeIndex<T> {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// File an item under a range.
    pub fn insert(&mut self, key: RangeKey, item: T) {
        self.buckets.entry(key).or_default().push(item);
        self.items += 1;
    }

    /// Items filed under exactly `key`.
    pub fn bucket_candidates(&self, key: RangeKey) -> Vec<T> {
        self.buckets.get(&key).cloned().unwrap_or_default()
    }

    /// Items filed under any range overlapping `key`, in bucket order.
    pub fn overlap_candidates(&self, key: RangeKey) -> Vec<T> {
        let mut out = Vec::new();
        for (k, items) in &self.buckets {
            if k.overlaps(key) {
                out.extend(items.iter().cloned());
            }
        }
        out
    }

    /// Every indexed item, in bucket order (the no-index baseline).
    pub fn all(&self) -> Vec<T> {
        self.buckets.values().flatten().cloned().collect()
    }

    /// Items filed under any range overlapping `key`, sorted ascending.
    /// For `usize` catalog indices this is *arena order*: a columnar
    /// candidate scan walks each descriptor slab strictly forward instead
    /// of hopping between bucket insertion orders.
    pub fn overlap_candidates_sorted(&self, key: RangeKey) -> Vec<T>
    where
        T: Ord,
    {
        let mut out = self.overlap_candidates(key);
        out.sort_unstable();
        out
    }

    /// Occupied buckets with their sizes, ordered by range.
    pub fn occupancy(&self) -> Vec<(RangeKey, usize)> {
        self.buckets.iter().map(|(k, v)| (*k, v.len())).collect()
    }

    /// Visit every `(key, item)` pair in bucket order. This is what lets
    /// a caller holding several per-segment indexes fold them — with a
    /// per-item filter — into one [`BucketCounts`] view.
    pub fn for_each_item(&self, mut f: impl FnMut(RangeKey, &T)) {
        for (k, items) in &self.buckets {
            for item in items {
                f(*k, item);
            }
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> IndexStats {
        let mut counts = BucketCounts::new();
        counts.add_index(self, |_| true);
        counts.stats()
    }

    /// Render the Fig. 7 indexing tree with per-node occupancy.
    pub fn render_tree(&self) -> String {
        let mut counts = BucketCounts::new();
        counts.add_index(self, |_| true);
        counts.render_tree()
    }
}

/// Per-bucket occupancy merged across one or more indexes.
///
/// The segmented catalog keeps one [`RangeIndex`] per sealed segment;
/// this accumulator folds them (optionally filtering out tombstoned
/// items) into the single [`IndexStats`] / Fig. 7 rendering the
/// diagnostics surface expects. A bucket present in several segments
/// counts once, with its sizes summed — exactly what one monolithic
/// index over the same items would report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BucketCounts {
    counts: BTreeMap<RangeKey, usize>,
    items: usize,
}

impl BucketCounts {
    /// An empty accumulator.
    pub fn new() -> BucketCounts {
        BucketCounts::default()
    }

    /// Count one item filed under `key`.
    pub fn add_item(&mut self, key: RangeKey) {
        *self.counts.entry(key).or_insert(0) += 1;
        self.items += 1;
    }

    /// Fold in every item of `index` accepted by `keep`.
    pub fn add_index<T: Clone>(&mut self, index: &RangeIndex<T>, mut keep: impl FnMut(&T) -> bool) {
        index.for_each_item(|key, item| {
            if keep(item) {
                self.add_item(key);
            }
        });
    }

    /// Items counted so far.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Aggregate statistics over the merged view.
    pub fn stats(&self) -> IndexStats {
        let mut per_level = vec![0usize; 3];
        let mut max_bucket = 0;
        for (k, &n) in &self.counts {
            max_bucket = max_bucket.max(n);
            let level = k.level() as usize;
            if level < per_level.len() {
                per_level[level] += n;
            }
        }
        IndexStats { items: self.items, buckets: self.counts.len(), max_bucket, per_level }
    }

    /// Render the Fig. 7 indexing tree with per-node occupancy of the
    /// merged view.
    pub fn render_tree(&self) -> String {
        let mut out = String::from("0-255 (root)\n");
        let count =
            |min: u8, max: u8| self.counts.get(&RangeKey { min, max }).copied().unwrap_or(0);
        for level in 1..=3u32 {
            let width = 256u32 >> level;
            let mut lo = 0u32;
            out.push_str(&"  ".repeat(level as usize));
            let mut first = true;
            while lo < 256 {
                let hi = lo + width - 1;
                if !first {
                    out.push_str("  ");
                }
                first = false;
                out.push_str(&format!("{}-{} [{}]", lo, hi, count(lo as u8, hi as u8)));
                lo += width;
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(min: u8, max: u8) -> RangeKey {
        RangeKey { min, max }
    }

    #[test]
    fn insert_and_exact_lookup() {
        let mut idx = RangeIndex::new();
        idx.insert(key(0, 63), "a");
        idx.insert(key(0, 63), "b");
        idx.insert(key(128, 255), "c");
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.bucket_candidates(key(0, 63)), vec!["a", "b"]);
        assert_eq!(idx.bucket_candidates(key(64, 127)), Vec::<&str>::new());
    }

    #[test]
    fn overlap_lookup_crosses_levels() {
        let mut idx = RangeIndex::new();
        idx.insert(key(0, 127), 1); // level-1 stop
        idx.insert(key(0, 63), 2);
        idx.insert(key(96, 127), 3);
        idx.insert(key(128, 191), 4);
        // A query at [0,31] overlaps [0,127] and [0,63] but not [96,127].
        let c = idx.overlap_candidates(key(0, 31));
        assert_eq!(c, vec![2, 1]); // BTreeMap order: (0,63) < (0,127)
        // A query spanning [0,127] reaches everything in the lower half.
        let c = idx.overlap_candidates(key(0, 127));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn overlap_candidates_sorted_yields_arena_order() {
        let mut idx = RangeIndex::new();
        idx.insert(key(0, 127), 1);
        idx.insert(key(0, 63), 2);
        idx.insert(key(96, 127), 3);
        // Raw overlap order follows bucket insertion: (0,63) before (0,127).
        assert_eq!(idx.overlap_candidates(key(0, 31)), vec![2, 1]);
        // The sorted variant is ascending regardless of bucket layout.
        assert_eq!(idx.overlap_candidates_sorted(key(0, 31)), vec![1, 2]);
        assert_eq!(idx.overlap_candidates_sorted(key(0, 127)), vec![1, 2, 3]);
    }

    #[test]
    fn all_returns_everything() {
        let mut idx = RangeIndex::new();
        for i in 0..10 {
            idx.insert(key(32 * (i % 4) as u8, 32 * (i % 4) as u8 + 31), i);
        }
        assert_eq!(idx.all().len(), 10);
    }

    #[test]
    fn stats_reflect_levels() {
        let mut idx = RangeIndex::new();
        idx.insert(key(0, 127), "l0");
        idx.insert(key(0, 63), "l1");
        idx.insert(key(0, 63), "l1b");
        idx.insert(key(0, 31), "l2");
        let s = idx.stats();
        assert_eq!(s.items, 4);
        assert_eq!(s.buckets, 3);
        assert_eq!(s.max_bucket, 2);
        assert_eq!(s.per_level, vec![1, 2, 1]);
    }

    #[test]
    fn empty_index_behaviour() {
        let idx: RangeIndex<u32> = RangeIndex::new();
        assert!(idx.is_empty());
        assert!(idx.bucket_candidates(key(0, 127)).is_empty());
        assert!(idx.overlap_candidates(key(0, 255)).is_empty());
        assert!(idx.all().is_empty());
        assert_eq!(idx.stats().buckets, 0);
    }

    #[test]
    fn render_tree_shows_occupancy() {
        let mut idx = RangeIndex::new();
        idx.insert(key(0, 63), 1);
        idx.insert(key(0, 63), 2);
        idx.insert(key(224, 255), 3);
        let rendered = idx.render_tree();
        assert!(rendered.contains("0-63 [2]"), "{rendered}");
        assert!(rendered.contains("224-255 [1]"), "{rendered}");
        assert!(rendered.contains("0-255 (root)"));
        assert_eq!(rendered.lines().count(), 4);
    }

    #[test]
    fn bucket_counts_merge_matches_monolithic() {
        // Two "segments" holding disjoint items of one logical catalog.
        let mut seg_a = RangeIndex::new();
        seg_a.insert(key(0, 63), 0usize);
        seg_a.insert(key(0, 127), 1);
        let mut seg_b = RangeIndex::new();
        seg_b.insert(key(0, 63), 0usize); // same bucket, different segment
        seg_b.insert(key(224, 255), 1);

        let mut mono = RangeIndex::new();
        mono.insert(key(0, 63), 0usize);
        mono.insert(key(0, 127), 1);
        mono.insert(key(0, 63), 2);
        mono.insert(key(224, 255), 3);

        let mut merged = BucketCounts::new();
        merged.add_index(&seg_a, |_| true);
        merged.add_index(&seg_b, |_| true);
        assert_eq!(merged.items(), 4);
        assert_eq!(merged.stats(), mono.stats());
        assert_eq!(merged.render_tree(), mono.render_tree());
    }

    #[test]
    fn bucket_counts_filter_drops_tombstoned_items() {
        let mut idx = RangeIndex::new();
        idx.insert(key(0, 63), 1u64);
        idx.insert(key(0, 63), 2);
        idx.insert(key(128, 191), 2);
        let mut counts = BucketCounts::new();
        counts.add_index(&idx, |&v| v != 2);
        let s = counts.stats();
        assert_eq!(s.items, 1);
        assert_eq!(s.buckets, 1);
        assert!(counts.render_tree().contains("0-63 [1]"));
        assert!(counts.render_tree().contains("128-191 [0]"));
    }

    #[test]
    fn for_each_item_visits_in_bucket_order() {
        let mut idx = RangeIndex::new();
        idx.insert(key(128, 191), "late");
        idx.insert(key(0, 31), "early");
        let mut seen = Vec::new();
        idx.for_each_item(|k, &v| seen.push((k, v)));
        assert_eq!(seen, vec![(key(0, 31), "early"), (key(128, 191), "late")]);
    }

    #[test]
    fn occupancy_is_sorted_by_range() {
        let mut idx = RangeIndex::new();
        idx.insert(key(128, 191), 0);
        idx.insert(key(0, 31), 1);
        let occ = idx.occupancy();
        assert_eq!(occ[0].0, key(0, 31));
        assert_eq!(occ[1].0, key(128, 191));
    }
}
