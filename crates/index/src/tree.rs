//! Generalised range-finder tree.
//!
//! §4.2's finder is a fixed 3-level, {55%, 60%, 60%} instance of a simple
//! family: at each level, descend into the dyadic half that holds more
//! than a threshold share of histogram mass, stop when neither does.
//! [`RangeTree`] lets depth and thresholds vary — the ablation bench uses
//! it to show how pruning power and recall trade off against the paper's
//! constants.

use crate::paper::RangeKey;
use cbvr_imgproc::Histogram256;

/// Configuration of a generalised range tree.
#[derive(Clone, Debug, PartialEq)]
pub struct RangeTreeConfig {
    /// Mass thresholds (percent) per level; the tree is as deep as this
    /// vector. The paper is `[55.0, 60.0, 60.0]`.
    pub thresholds: Vec<f64>,
}

impl Default for RangeTreeConfig {
    /// The paper's configuration.
    fn default() -> Self {
        RangeTreeConfig { thresholds: vec![55.0, 60.0, 60.0] }
    }
}

impl RangeTreeConfig {
    /// Validate: at least one level and a max depth that keeps ranges at
    /// least 2 bins wide (depth ≤ 7).
    pub fn validated(self) -> Result<Self, String> {
        if self.thresholds.is_empty() {
            return Err("range tree needs at least one level".into());
        }
        if self.thresholds.len() > 7 {
            return Err(format!("depth {} exceeds the 7 dyadic levels of 0..=255", self.thresholds.len()));
        }
        if self.thresholds.iter().any(|t| !(0.0..=100.0).contains(t)) {
            return Err("thresholds must be percentages in [0, 100]".into());
        }
        Ok(self)
    }
}

/// A generalised range-finder.
#[derive(Clone, Debug, PartialEq)]
pub struct RangeTree {
    config: RangeTreeConfig,
}

impl RangeTree {
    /// Build from a validated config.
    pub fn new(config: RangeTreeConfig) -> Result<RangeTree, String> {
        Ok(RangeTree { config: config.validated()? })
    }

    /// The paper's 3-level tree.
    pub fn paper() -> RangeTree {
        RangeTree { config: RangeTreeConfig::default() }
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        self.config.thresholds.len()
    }

    /// Assign a range to a histogram.
    ///
    /// Level 0 mirrors the paper's asymmetric first test: if the lower
    /// half does not pass the threshold the *upper* half is taken
    /// unconditionally. Lower levels refine only while a half passes.
    pub fn assign(&self, hist: &Histogram256) -> RangeKey {
        let mut lo: u8 = 0;
        let mut hi: u8 = 255;
        for (level, &threshold) in self.config.thresholds.iter().enumerate() {
            let mid = lo + (hi - lo) / 2;
            if crate::paper::passes(hist, lo, mid, threshold) {
                hi = mid;
            } else if level == 0 {
                // Paper quirk: the first level always picks a half.
                lo = mid + 1;
            } else if crate::paper::passes(hist, mid + 1, hi, threshold) {
                lo = mid + 1;
            } else {
                break;
            }
        }
        RangeKey { min: lo, max: hi }
    }

    /// All ranges the tree can produce, shallowest first (Fig. 7's nodes,
    /// minus the never-produced root).
    pub fn possible_ranges(&self) -> Vec<RangeKey> {
        let mut out = Vec::new();
        for level in 1..=self.depth() {
            let width = 256u32 >> level;
            let mut lo = 0u32;
            while lo < 256 {
                out.push(RangeKey { min: lo as u8, max: (lo + width - 1) as u8 });
                lo += width;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_at(v: u8, n: u64) -> Histogram256 {
        let mut h = Histogram256::new();
        for _ in 0..n {
            h.record(v);
        }
        h
    }

    #[test]
    fn paper_tree_matches_paper_function() {
        let tree = RangeTree::paper();
        for v in [0u8, 17, 63, 64, 127, 128, 200, 255] {
            let h = hist_at(v, 50);
            assert_eq!(tree.assign(&h), crate::paper::paper_range(&h), "intensity {v}");
        }
        // Mixed-mass cases too.
        let mut h = Histogram256::new();
        for _ in 0..50 {
            h.record(70);
        }
        for _ in 0..50 {
            h.record(120);
        }
        assert_eq!(tree.assign(&h), crate::paper::paper_range(&h));
    }

    #[test]
    fn deeper_trees_refine_further() {
        let deep = RangeTree::new(RangeTreeConfig { thresholds: vec![55.0, 60.0, 60.0, 60.0, 60.0] })
            .unwrap();
        let h = hist_at(3, 100);
        let r = deep.assign(&h);
        assert_eq!((r.min, r.max), (0, 7));
    }

    #[test]
    fn depth_one_only_halves() {
        let shallow = RangeTree::new(RangeTreeConfig { thresholds: vec![55.0] }).unwrap();
        assert_eq!(shallow.assign(&hist_at(10, 10)), RangeKey { min: 0, max: 127 });
        assert_eq!(shallow.assign(&hist_at(200, 10)), RangeKey { min: 128, max: 255 });
    }

    #[test]
    fn config_validation() {
        assert!(RangeTree::new(RangeTreeConfig { thresholds: vec![] }).is_err());
        assert!(RangeTree::new(RangeTreeConfig { thresholds: vec![50.0; 8] }).is_err());
        assert!(RangeTree::new(RangeTreeConfig { thresholds: vec![101.0] }).is_err());
        assert!(RangeTree::new(RangeTreeConfig { thresholds: vec![-1.0] }).is_err());
    }

    #[test]
    fn possible_ranges_enumerates_fig7() {
        let tree = RangeTree::paper();
        let ranges = tree.possible_ranges();
        // 2 + 4 + 8 = 14 nodes below the root.
        assert_eq!(ranges.len(), 14);
        assert!(ranges.contains(&RangeKey { min: 0, max: 127 }));
        assert!(ranges.contains(&RangeKey { min: 128, max: 255 }));
        assert!(ranges.contains(&RangeKey { min: 96, max: 127 }));
        assert!(ranges.contains(&RangeKey { min: 224, max: 255 }));
    }

    #[test]
    fn lower_threshold_descends_more_eagerly() {
        // 55% of mass in [0,31]: paper's 60% second level refuses to
        // descend past [0,127]→[0,63]? — check a lax tree descends deeper.
        let mut h = Histogram256::new();
        for _ in 0..55 {
            h.record(10);
        }
        for _ in 0..45 {
            h.record(100);
        }
        let strict = RangeTree::paper().assign(&h);
        let lax = RangeTree::new(RangeTreeConfig { thresholds: vec![50.0, 50.0, 50.0] })
            .unwrap()
            .assign(&h);
        assert!(lax.width() <= strict.width());
        assert!(lax.width() < 128);
    }
}
