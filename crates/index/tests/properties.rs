//! Property tests for the range-finder index.

use cbvr_imgproc::Histogram256;
use cbvr_index::{paper_range, RangeIndex, RangeKey, RangeTree};
use proptest::prelude::*;

fn arb_histogram() -> impl Strategy<Value = Histogram256> {
    proptest::collection::vec(any::<u8>(), 1..300).prop_map(|values| {
        let mut h = Histogram256::new();
        for v in values {
            h.record(v);
        }
        h
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn paper_tree_equals_paper_function(h in arb_histogram()) {
        prop_assert_eq!(RangeTree::paper().assign(&h), paper_range(&h));
    }

    #[test]
    fn assignment_is_a_fig7_node(h in arb_histogram()) {
        let r = paper_range(&h);
        let nodes = RangeTree::paper().possible_ranges();
        prop_assert!(nodes.contains(&r), "{r} not a Fig. 7 node");
    }

    #[test]
    fn overlap_candidates_match_brute_force(
        keys in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..60),
        probe in (any::<u8>(), any::<u8>()),
    ) {
        let mut index = RangeIndex::new();
        let mut items = Vec::new();
        for (i, (a, b)) in keys.iter().enumerate() {
            let key = RangeKey::new(*a, *b);
            index.insert(key, i);
            items.push((key, i));
        }
        let probe = RangeKey::new(probe.0, probe.1);
        let mut got = index.overlap_candidates(probe);
        let mut want: Vec<usize> =
            items.iter().filter(|(k, _)| k.overlaps(probe)).map(|(_, i)| *i).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn deeper_trees_never_widen(h in arb_histogram()) {
        let shallow = RangeTree::new(cbvr_index::RangeTreeConfig { thresholds: vec![55.0, 60.0] })
            .unwrap()
            .assign(&h);
        let deep = RangeTree::new(cbvr_index::RangeTreeConfig {
            thresholds: vec![55.0, 60.0, 60.0, 60.0],
        })
        .unwrap()
        .assign(&h);
        prop_assert!(deep.width() <= shallow.width());
        prop_assert!(shallow.contains(deep), "{shallow} should contain {deep}");
    }

    #[test]
    fn stats_items_equal_inserts(
        keys in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..40),
    ) {
        let mut index = RangeIndex::new();
        for (i, (a, b)) in keys.iter().enumerate() {
            index.insert(RangeKey::new(*a, *b), i);
        }
        prop_assert_eq!(index.stats().items, keys.len());
        prop_assert_eq!(index.all().len(), keys.len());
    }
}
