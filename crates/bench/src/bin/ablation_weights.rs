//! Ablation **A2**: combined-weight sweep.
//!
//! DESIGN.md calls out the combined ranking's weights as the main free
//! parameter the paper leaves unpublished. This bin sweeps candidate
//! weightings over one corpus and reports p@20/p@100 per setting,
//! also demonstrating how the shipped default was chosen (it is tuned on
//! a *validation* seed and evaluated here on the experiment seed).
//!
//! ```text
//! cargo run -p cbvr-bench --release --bin ablation_weights [-- --videos N]
//! ```

use cbvr_core::FeatureWeights;
use cbvr_eval::corpus::Corpus;
use cbvr_eval::table1::Table1Config;
use cbvr_eval::CorpusConfig;
use cbvr_features::FeatureKind;

fn settings() -> Vec<(String, FeatureWeights)> {
    vec![
        ("uniform".into(), FeatureWeights::uniform()),
        ("default (tuned)".into(), FeatureWeights::default()),
        (
            "table1-proportional".into(),
            FeatureWeights::from_pairs(&[
                (FeatureKind::Glcm, 0.435),
                (FeatureKind::Gabor, 0.586),
                (FeatureKind::Tamura, 0.568),
                (FeatureKind::ColorHistogram, 0.398),
                (FeatureKind::Correlogram, 0.412),
                (FeatureKind::Regions, 0.520),
                (FeatureKind::Naive, 0.398),
            ]),
        ),
        (
            "color-only".into(),
            FeatureWeights::from_pairs(&[
                (FeatureKind::ColorHistogram, 1.0),
                (FeatureKind::Correlogram, 1.0),
                (FeatureKind::Naive, 1.0),
            ]),
        ),
        (
            "texture-only".into(),
            FeatureWeights::from_pairs(&[
                (FeatureKind::Glcm, 1.0),
                (FeatureKind::Gabor, 1.0),
                (FeatureKind::Tamura, 1.0),
            ]),
        ),
        ("best-single (gabor)".into(), FeatureWeights::single(FeatureKind::Gabor)),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut videos = 10u32;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--videos" => {
                i += 1;
                videos = args[i].parse().expect("--videos takes a number");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let config = Table1Config {
        corpus: CorpusConfig { videos_per_category: videos, ..CorpusConfig::default() },
        queries_per_category: 4,
        frames_per_query: 2,
        ..Table1Config::default()
    };
    eprintln!("building corpus ({videos} videos/category)...");
    let corpus = Corpus::build(config.corpus.clone()).expect("corpus build");

    println!("Ablation A2 — combined-weight sweep (catalog: {} key frames)\n", corpus.engine.len());
    println!("{:<22} {:>8} {:>8} {:>8} {:>8}", "weighting", "p@20", "p@30", "p@50", "p@100");

    for (name, weights) in settings() {
        // Reuse the Table 1 machinery with only the Combined method by
        // swapping the default weights through a modified query pass.
        let report = run_combined(&corpus, &config, &weights);
        println!(
            "{:<22} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            name, report[0], report[1], report[2], report[3]
        );
    }
}

/// Precision at the four cutoffs for a single weighting.
fn run_combined(corpus: &Corpus, config: &Table1Config, weights: &FeatureWeights) -> [f64; 4] {
    // Table 1's driver measures fixed methods; for the sweep, rerun the
    // combined method with each weighting via a one-method config.
    use cbvr_core::engine::QueryOptions;
    use cbvr_eval::metrics::{mean, precision_at_k};

    let query_videos = corpus.query_videos(config.queries_per_category).expect("queries");
    let mut per_cutoff: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (category, video) in &query_videos {
        let n = video.frame_count();
        let samples = config.frames_per_query.max(1).min(n);
        for s in 0..samples {
            let idx = s * n / samples;
            let frame = video.frame(idx).expect("in range");
            let frame = if config.degrade_queries {
                cbvr_eval::table1::degrade_query(frame, ((idx as u64) << 8) | *category as u64)
            } else {
                frame.clone()
            };
            let options = QueryOptions {
                k: 100,
                weights: weights.clone(),
                use_index: config.use_index,
                ..Default::default()
            };
            let results = corpus.engine.query_frame(&frame, &options);
            let truth: Vec<bool> =
                results.iter().map(|m| corpus.category_of(m.v_id) == *category).collect();
            for (slot, &k) in per_cutoff.iter_mut().zip([20usize, 30, 50, 100].iter()) {
                slot.push(precision_at_k(&truth, k));
            }
        }
    }
    [mean(&per_cutoff[0]), mean(&per_cutoff[1]), mean(&per_cutoff[2]), mean(&per_cutoff[3])]
}
