//! Regenerates **Figure 7**: the range-finder indexing tree, printed with
//! the occupancy a real corpus produces at each node.
//!
//! ```text
//! cargo run -p cbvr-bench --release --bin fig7_index [-- --videos N]
//! ```

use cbvr_eval::{Corpus, CorpusConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut videos = 4u32;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--videos" => {
                i += 1;
                videos = args[i].parse().expect("--videos takes a number");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!("building corpus ({videos} videos/category)...");
    let corpus = Corpus::build(CorpusConfig { videos_per_category: videos, ..CorpusConfig::default() })
        .expect("corpus build");

    println!("Figure 7 — indexing tree (min–max ranges with key-frame occupancy)\n");
    println!("{}", corpus.engine.render_index_tree());

    let stats = corpus.engine.index_stats();
    println!("key frames indexed : {}", stats.items);
    println!("occupied buckets   : {}", stats.buckets);
    println!("largest bucket     : {}", stats.max_bucket);
    println!(
        "per level          : 128-wide {} | 64-wide {} | 32-wide {}",
        stats.per_level[0], stats.per_level[1], stats.per_level[2]
    );
}
