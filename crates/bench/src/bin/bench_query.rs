//! Query hot-path benchmark: columnar arena + early-abandon cascade vs
//! the naive full scan, swept over catalog size × thread count.
//!
//! For every configuration the run records wall time, ns/candidate, and
//! the *exact* work counters the engine's telemetry exposes
//! (`query.scan.elements`, `query.abandon.<stage>`, `query.scan.survivors`),
//! then writes everything to `BENCH_query.json`.
//!
//! ```text
//! cargo run -p cbvr-bench --release --bin bench_query [-- --smoke] [--out FILE]
//! ```
//!
//! `--smoke` is the CI mode: a single 10 240-frame sweep at `k = 10`
//! that **fails (exit 1)** unless the serial cascade visits ≤ 70% of the
//! distance-kernel elements the full scan visits — the PR acceptance
//! floor of a ≥30% reduction in element operations.
//!
//! The run also performs a query-during-ingest sweep over the segmented
//! catalog — query latency measured idle vs racing a writer thread that
//! ingests, removes and compacts — and writes it to
//! `BENCH_concurrency.json` (`--out-concurrency FILE`).

use cbvr_core::{QueryEngine, QueryOptions, Registry};
use cbvr_core::engine::CatalogEntry;
use cbvr_features::FeatureSet;
use cbvr_imgproc::{Histogram256, Rgb, RgbImage};
use cbvr_index::paper_range;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Distinct base frames; catalogs tile these (feature extraction is the
/// expensive part — the scan cost under test only depends on descriptor
/// variety, which 64 distinct frames provide).
const BASE_FRAMES: usize = 64;

fn synthetic_frame(rng: &mut rand::rngs::StdRng) -> RgbImage {
    let base = Rgb::new(
        rng.gen_range(0..=255u8),
        rng.gen_range(0..=255u8),
        rng.gen_range(0..=255u8),
    );
    let fx = rng.gen_range(1..=9u32);
    let fy = rng.gen_range(1..=9u32);
    RgbImage::from_fn(32, 32, |x, y| {
        Rgb::new(
            base.r.wrapping_add((x * fx) as u8),
            base.g.wrapping_add((y * fy) as u8),
            base.b.wrapping_add(((x * y) % 251) as u8),
        )
    })
    .unwrap()
}

struct Run {
    size: usize,
    threads: usize,
    abandon: bool,
    wall_ns: u64,
    candidates: u64,
    elements: u64,
    survivors: u64,
    abandoned: u64,
}

impl Run {
    fn ns_per_candidate(&self) -> f64 {
        if self.candidates == 0 {
            return 0.0;
        }
        self.wall_ns as f64 / self.candidates as f64
    }

    fn abandoned_fraction(&self) -> f64 {
        if self.candidates == 0 {
            return 0.0;
        }
        self.abandoned as f64 / self.candidates as f64
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"size\": {}, \"threads\": {}, \"abandon\": {}, ",
                "\"wall_ns\": {}, \"ns_per_candidate\": {:.2}, ",
                "\"candidates\": {}, \"elements\": {}, \"survivors\": {}, ",
                "\"abandoned\": {}, \"abandoned_fraction\": {:.4}}}"
            ),
            self.size,
            self.threads,
            self.abandon,
            self.wall_ns,
            self.ns_per_candidate(),
            self.candidates,
            self.elements,
            self.survivors,
            self.abandoned,
            self.abandoned_fraction(),
        )
    }
}

struct ConcurrencyRun {
    mode: &'static str,
    threads: usize,
    queries: usize,
    mean_ns: f64,
    p50_ns: u64,
    p99_ns: u64,
    snapshot_swaps: u64,
    compaction_runs: u64,
    segments_final: usize,
    writer_rounds: u64,
}

impl ConcurrencyRun {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"mode\": \"{}\", \"threads\": {}, \"queries\": {}, ",
                "\"mean_ns\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, ",
                "\"snapshot_swaps\": {}, \"compaction_runs\": {}, ",
                "\"segments_final\": {}, \"writer_rounds\": {}}}"
            ),
            self.mode,
            self.threads,
            self.queries,
            self.mean_ns,
            self.p50_ns,
            self.p99_ns,
            self.snapshot_swaps,
            self.compaction_runs,
            self.segments_final,
            self.writer_rounds,
        )
    }
}

/// Query latency over the segmented catalog, idle vs racing a writer
/// thread that ingests new videos, tombstones old ones, and compacts.
/// Readers never block: each run also reports the snapshot swaps and
/// compactions that happened underneath the measured queries.
fn concurrency_sweep(
    bases: &[CatalogEntry],
    probe: &FeatureSet,
    probe_range: cbvr_index::RangeKey,
    smoke: bool,
    out: &str,
) {
    use std::sync::atomic::{AtomicBool, Ordering};

    let size = if smoke { 2_048 } else { 4_096 };
    let queries = if smoke { 40 } else { 200 };
    let thread_counts: &[usize] = if smoke { &[1] } else { &[1, 4] };
    let k = 10;

    let mut runs: Vec<ConcurrencyRun> = Vec::new();
    for &threads in thread_counts {
        for racing in [false, true] {
            let entries: Vec<CatalogEntry> = (0..size)
                .map(|i| {
                    let b = &bases[i % BASE_FRAMES];
                    CatalogEntry {
                        i_id: i as u64 + 1,
                        v_id: (i as u64 % 16) + 1,
                        range: b.range,
                        features: b.features.clone(),
                    }
                })
                .collect();
            let mut engine = QueryEngine::from_catalog(entries, HashMap::new());
            let registry = Arc::new(Registry::new());
            engine.set_telemetry(Arc::clone(&registry));
            let engine = Arc::new(engine);

            let done = Arc::new(AtomicBool::new(false));
            let writer = racing.then(|| {
                let engine = Arc::clone(&engine);
                let done = Arc::clone(&done);
                let batch: Vec<CatalogEntry> = bases.to_vec();
                std::thread::spawn(move || {
                    let mut round = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        let v_id = 1_000 + round;
                        let fresh: Vec<CatalogEntry> = batch
                            .iter()
                            .enumerate()
                            .map(|(j, b)| CatalogEntry {
                                i_id: 1_000_000 + round * 1_000 + j as u64,
                                v_id,
                                range: b.range,
                                features: b.features.clone(),
                            })
                            .collect();
                        engine.add_video(&format!("ingest-{round}"), fresh);
                        if round >= 2 {
                            engine.remove_video(1_000 + round - 2);
                        }
                        if round % 4 == 3 {
                            engine.compact();
                        }
                        round += 1;
                    }
                    round
                })
            });

            let options = QueryOptions {
                k,
                threads,
                use_index: false,
                abandon: true,
                ..QueryOptions::default()
            };
            let mut latencies: Vec<u64> = Vec::with_capacity(queries);
            for _ in 0..queries {
                let start = Instant::now();
                let results = engine.query_features(probe, probe_range, &options);
                latencies.push(start.elapsed().as_nanos() as u64);
                assert!(results.len() >= k.min(size));
            }

            done.store(true, Ordering::Relaxed);
            let writer_rounds = writer.map(|h| h.join().expect("writer panicked")).unwrap_or(0);

            latencies.sort_unstable();
            let mean_ns =
                latencies.iter().sum::<u64>() as f64 / latencies.len() as f64;
            let run = ConcurrencyRun {
                mode: if racing { "racing" } else { "idle" },
                threads,
                queries,
                mean_ns,
                p50_ns: latencies[latencies.len() / 2],
                p99_ns: latencies[(latencies.len() * 99) / 100],
                snapshot_swaps: registry.counter("catalog.snapshot.swaps").get(),
                compaction_runs: registry.counter("compaction.runs").get(),
                segments_final: engine.segment_count(),
                writer_rounds,
            };
            eprintln!(
                "concurrency mode={:<6} threads={} mean={:>9.1}ns p50={:>8}ns p99={:>8}ns swaps={} compactions={} rounds={}",
                run.mode,
                run.threads,
                run.mean_ns,
                run.p50_ns,
                run.p99_ns,
                run.snapshot_swaps,
                run.compaction_runs,
                run.writer_rounds,
            );
            runs.push(run);
        }
    }

    let body: Vec<String> = runs.iter().map(|r| format!("    {}", r.to_json())).collect();
    let json = format!(
        "{{\n  \"bench\": \"query_during_ingest\",\n  \"k\": {k},\n  \"catalog_size\": {size},\n  \"runs\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(out, &json).expect("write concurrency bench output");
    eprintln!("wrote {out}");
}

/// Sum of the per-stage abandon counters (exact in serial runs).
fn abandon_total(registry: &Registry) -> u64 {
    cbvr_features::FeatureKind::ALL
        .iter()
        .map(|k| registry.counter(&format!("query.abandon.{}", k.name())).get())
        .sum()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_query.json");
    let mut out_concurrency = String::from("BENCH_concurrency.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--out-concurrency" => {
                i += 1;
                out_concurrency = args[i].clone();
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let sizes: &[usize] = if smoke { &[10_240] } else { &[2_048, 10_240] };
    let thread_counts: &[usize] = if smoke { &[1] } else { &[1, 4] };
    let k = 10;

    eprintln!("extracting {BASE_FRAMES} base feature sets...");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xbe5c);
    let frames: Vec<RgbImage> = (0..BASE_FRAMES).map(|_| synthetic_frame(&mut rng)).collect();
    let bases: Vec<CatalogEntry> = frames
        .iter()
        .map(|f| CatalogEntry {
            i_id: 0,
            v_id: 0,
            range: paper_range(&Histogram256::of_rgb_luma(f)),
            features: FeatureSet::extract(f),
        })
        .collect();
    // The probe is a perturbation of one base frame: near the catalog's
    // distribution (so the cascade threshold tightens realistically) but
    // not an exact duplicate.
    let probe_frame = {
        let f = &frames[7];
        RgbImage::from_fn(f.width(), f.height(), |x, y| {
            let p = f.get(x, y);
            Rgb::new(p.r.wrapping_add(3), p.g, p.b.wrapping_add(1))
        })
        .unwrap()
    };
    let probe = FeatureSet::extract(&probe_frame);
    let probe_range = paper_range(&Histogram256::of_rgb_luma(&probe_frame));

    let mut runs: Vec<Run> = Vec::new();
    for &size in sizes {
        // Tile the base entries up to `size` with distinct ids.
        let entries: Vec<CatalogEntry> = (0..size)
            .map(|i| {
                let b = &bases[i % BASE_FRAMES];
                CatalogEntry {
                    i_id: i as u64 + 1,
                    v_id: (i as u64 % 16) + 1,
                    range: b.range,
                    features: b.features.clone(),
                }
            })
            .collect();
        let mut engine = QueryEngine::from_catalog(entries, HashMap::new());
        for &threads in thread_counts {
            for abandon in [false, true] {
                // Fresh registry per run so counter diffs are per-run
                // absolutes (counters are monotone, never reset).
                let registry = Arc::new(Registry::new());
                engine.set_telemetry(Arc::clone(&registry));
                let options = QueryOptions {
                    k,
                    threads,
                    use_index: false,
                    abandon,
                    ..QueryOptions::default()
                };
                // Warm-up, then the measured pass.
                let warm = engine.query_features(&probe, probe_range, &options);
                assert_eq!(warm.len(), k.min(size));
                let el0 = registry.counter("query.scan.elements").get();
                let sv0 = registry.counter("query.scan.survivors").get();
                let ab0 = abandon_total(&registry);
                let start = Instant::now();
                let results = engine.query_features(&probe, probe_range, &options);
                let wall_ns = start.elapsed().as_nanos() as u64;
                assert_eq!(results.len(), k.min(size));
                let run = Run {
                    size,
                    threads,
                    abandon,
                    wall_ns,
                    candidates: size as u64,
                    elements: registry.counter("query.scan.elements").get() - el0,
                    survivors: registry.counter("query.scan.survivors").get() - sv0,
                    abandoned: abandon_total(&registry) - ab0,
                };
                eprintln!(
                    "size={:>6} threads={} abandon={:<5} wall={:>9}ns ns/cand={:>8.1} elements={:>10} abandoned={:.1}%",
                    run.size,
                    run.threads,
                    run.abandon,
                    run.wall_ns,
                    run.ns_per_candidate(),
                    run.elements,
                    run.abandoned_fraction() * 100.0,
                );
                runs.push(run);
            }
        }
    }

    let body: Vec<String> = runs.iter().map(|r| format!("    {}", r.to_json())).collect();
    let json = format!(
        "{{\n  \"bench\": \"query\",\n  \"k\": {k},\n  \"base_frames\": {BASE_FRAMES},\n  \"runs\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out, &json).expect("write bench output");
    eprintln!("wrote {out}");

    concurrency_sweep(&bases, &probe, probe_range, smoke, &out_concurrency);

    // CI gate: the serial cascade must visit ≤ 70% of the full scan's
    // distance-kernel elements on the 10k catalog (≥30% reduction).
    let elements_at = |abandon: bool| {
        runs.iter()
            .find(|r| r.size == 10_240 && r.threads == 1 && r.abandon == abandon)
            .map(|r| r.elements)
            .expect("10k serial run present")
    };
    let full = elements_at(false);
    let cascade = elements_at(true);
    let ratio = cascade as f64 / full as f64;
    eprintln!(
        "10k serial element ratio: cascade {cascade} / full {full} = {ratio:.3} (gate: <= 0.70)"
    );
    if smoke && ratio > 0.70 {
        eprintln!("FAIL: cascade element reduction below the 30% acceptance floor");
        std::process::exit(1);
    }
}
