//! Regenerates **Figures 9–10**: the search-result screen and the
//! playback view, as terminal output plus optional frame dumps.
//!
//! The full pipeline runs end to end: a corpus is ingested through the
//! storage engine, a query frame is submitted "by the user", the ranked
//! matches print with names and scores (Fig. 9's thumbnail grid), and
//! the top video's key frames are decoded back out of the database
//! (Fig. 10's maximised player).
//!
//! ```text
//! cargo run -p cbvr-bench --release --bin fig9_search [-- --out DIR] [--videos N]
//! ```

use cbvr_core::{ingest_video, IngestConfig, QueryEngine, QueryOptions};
use cbvr_imgproc::codec::{encode, ImageFormat};
use cbvr_storage::CbvrDatabase;
use cbvr_video::{decode_vsc, Category, GeneratorConfig, VideoGenerator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir: Option<String> = None;
    let mut videos = 3u32;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_dir = Some(args[i].clone());
            }
            "--videos" => {
                i += 1;
                videos = args[i].parse().expect("--videos takes a number");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Administrator: add videos to the database.
    let mut db = CbvrDatabase::in_memory().expect("open db");
    let generator = VideoGenerator::new(GeneratorConfig::default()).expect("valid config");
    let config = IngestConfig { timestamp: 1_760_000_000, ..IngestConfig::default() };
    eprintln!("ingesting {} videos...", videos as usize * Category::ALL.len());
    for category in Category::ALL {
        for seed in 0..videos as u64 {
            let clip = generator.generate(category, seed).expect("generation");
            let name = format!("{}_{seed:02}.vsc", category.name());
            ingest_video(&mut db, &name, &clip, &config).expect("ingest");
        }
    }

    // User: submit a query frame (an unseen sports clip's frame).
    let engine = QueryEngine::from_database(&mut db).expect("engine build");
    let probe = generator.generate(Category::Sports, 424_242).expect("generation");
    let query_frame = probe.frame(5).expect("clip has frames");

    println!("Figure 9 — screen showing result of match\n");
    println!("query: frame 5 of an unseen 'sports' clip\n");
    let results = engine.query_frame(query_frame, &QueryOptions { k: 10, ..Default::default() });
    println!("{:<6} {:<22} {:<10} {:>8}", "rank", "video", "keyframe", "score");
    for (rank, m) in results.iter().enumerate() {
        println!(
            "{:<6} {:<22} kf #{:<7} {:>8.4}",
            rank + 1,
            engine.video_name(m.v_id).unwrap_or_else(|| "?".to_string()),
            m.i_id,
            m.score
        );
    }

    // Figure 10: "play" the top match by decoding its stored container.
    let top = results.first().expect("non-empty catalog");
    let full = db.get_video(top.v_id).expect("video row");
    let bytes = db.read_video_bytes(&full.row).expect("video blob");
    let clip = decode_vsc(&bytes).expect("stored container decodes");
    println!("\nFigure 10 — video player maximized");
    println!(
        "playing '{}': {} frames, {}x{} @ {} fps ({:.1}s)",
        full.v_name,
        clip.frame_count(),
        clip.width(),
        clip.height(),
        clip.fps(),
        clip.duration_secs()
    );

    if let Some(dir) = out_dir {
        std::fs::create_dir_all(&dir).expect("create output dir");
        std::fs::write(format!("{dir}/fig9_query.bmp"), encode(query_frame, ImageFormat::Bmp))
            .expect("write query");
        for (rank, m) in results.iter().take(4).enumerate() {
            let row = db.get_key_frame(m.i_id).expect("key frame row");
            let img_bytes = db.read_image_bytes(&row).expect("image blob");
            let img = cbvr_imgproc::decode_auto(&img_bytes).expect("stored image decodes");
            std::fs::write(
                format!("{dir}/fig9_match_{}.bmp", rank + 1),
                encode(&img, ImageFormat::Bmp),
            )
            .expect("write match");
        }
        for idx in [0usize, clip.frame_count() / 2, clip.frame_count() - 1] {
            std::fs::write(
                format!("{dir}/fig10_play_{idx:03}.bmp"),
                encode(clip.frame(idx).expect("in range"), ImageFormat::Bmp),
            )
            .expect("write playback frame");
        }
        eprintln!("wrote query, match and playback frames to {dir}/");
    }
}
