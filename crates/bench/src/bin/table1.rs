//! Regenerates **Table 1**: average precision at 20/30/50/100 retrieved
//! frames for each single feature and the combined method, side by side
//! with the paper's published numbers.
//!
//! ```text
//! cargo run -p cbvr-bench --release --bin table1 [-- --no-index] [--videos N]
//!           [--queries N] [--judge-error P] [--json PATH]
//! ```

use cbvr_eval::{run_table1, CorpusConfig, Table1Config};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = Table1Config {
        corpus: CorpusConfig { videos_per_category: 8, ..CorpusConfig::default() },
        queries_per_category: 3,
        frames_per_query: 2,
        ..Table1Config::default()
    };
    let mut json_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--no-index" => config.use_index = false,
            "--videos" => {
                i += 1;
                config.corpus.videos_per_category =
                    args[i].parse().expect("--videos takes a number");
            }
            "--queries" => {
                i += 1;
                config.queries_per_category = args[i].parse().expect("--queries takes a number");
            }
            "--judge-error" => {
                i += 1;
                config.judge_error_rate = args[i].parse().expect("--judge-error takes a rate");
            }
            "--json" => {
                i += 1;
                json_path = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!(
        "building corpus: {} videos/category, index = {}...",
        config.corpus.videos_per_category, config.use_index
    );
    let report = run_table1(&config).expect("table 1 experiment failed");
    println!("{}", report.render());
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json_pretty()).expect("write json");
        eprintln!("wrote {path}");
    }
    if !report.shape.all_pass() {
        eprintln!("WARNING: shape checks failed: {:?}", report.shape);
        std::process::exit(1);
    }
}
