//! Regenerates **Figure 8**: the input query image and the string output
//! of every algorithm, in the paper's own formats
//! (`Histogram : RGB 256 ...`, `GLCM_Texture`, `gabor 60 ...`,
//! `Tamura 18 ...`, `SimpleRegionGrowing → Majorregions`,
//! `AutoColorCorrelogram → ACC 4 ...`, `NaiveVector java.awt.Color[...]`).
//!
//! ```text
//! cargo run -p cbvr-bench --release --bin fig8 [-- --out DIR]
//! ```

use cbvr_features::FeatureSet;
use cbvr_imgproc::codec::{encode, ImageFormat};
use cbvr_imgproc::Histogram256;
use cbvr_index::paper_range;
use cbvr_video::{Category, GeneratorConfig, VideoGenerator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_dir = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // The query image: one frame of a generated clip (the paper's Fig. 8
    // input is a movie-style frame).
    let generator = VideoGenerator::new(GeneratorConfig::default()).expect("valid config");
    let video = generator.generate(Category::Movie, 8).expect("generation succeeds");
    let frame = video.frame(0).expect("clip has frames");

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output dir");
        let path = format!("{dir}/fig8_query.bmp");
        std::fs::write(&path, encode(frame, ImageFormat::Bmp)).expect("write query image");
        eprintln!("wrote query image to {path}");
    }

    println!("Figure 8 — input query image and per-algorithm outputs\n");
    println!("Input: {}x{} frame, category 'movie'\n", frame.width(), frame.height());

    let set = FeatureSet::extract(frame);
    let range = paper_range(&Histogram256::of_rgb_luma(frame));

    println!("Algorithm : SimpleColorHistogram");
    println!("Output : min = {}, max={}", range.min, range.max);
    println!("Histogram : {}\n", set.histogram.to_feature_string());

    println!("Algorithm : GLCM_Texture");
    println!("Output :");
    println!(
        "{} {} {} {} {} {}\n",
        set.glcm.pixel_counter, set.glcm.asm, set.glcm.contrast, set.glcm.correlation,
        set.glcm.idm, set.glcm.entropy
    );

    println!("Algorithm : Gabor Texture");
    println!("Output :");
    println!("{}\n", set.gabor.to_feature_string());

    println!("Algorithm : Tamura Texture");
    println!("Output :");
    println!("{}\n", set.tamura.to_feature_string());

    println!("Algorithm : SimpleRegionGrowing");
    println!("Output : Majorregions : {}\n", set.regions.major_regions);

    println!("Algorithm : AutoColorCorrelogram");
    println!("Output :");
    println!("{}\n", set.correlogram.to_feature_string());

    println!("Algorithm : NaiveVector");
    println!("Output :");
    println!("{}", set.naive.to_feature_string());
}
