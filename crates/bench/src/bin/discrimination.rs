//! The abstract's discrimination task: 1-NN category classification
//! accuracy per method, plus the combined method's confusion matrix.
//!
//! ```text
//! cargo run -p cbvr-bench --release --bin discrimination [-- --videos N] [--queries N]
//! ```

use cbvr_eval::{run_discrimination, Corpus, CorpusConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut videos = 8u32;
    let mut queries = 4u32;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--videos" => {
                i += 1;
                videos = args[i].parse().expect("--videos takes a number");
            }
            "--queries" => {
                i += 1;
                queries = args[i].parse().expect("--queries takes a number");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    eprintln!("building corpus ({videos} videos/category)...");
    let corpus = Corpus::build(CorpusConfig { videos_per_category: videos, ..CorpusConfig::default() })
        .expect("corpus build");
    let report = run_discrimination(&corpus, queries, 2).expect("discrimination run");
    println!("{}", report.render());
}
