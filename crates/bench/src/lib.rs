//! cbvr-bench: experiment bins and criterion benches.
