//! §4.1 key-frame extraction cost vs cut density and the two run
//! strategies.

use cbvr_keyframe::{
    extract_keyframes, extract_keyframes_adaptive, AdaptiveConfig, KeyframeConfig, Strategy,
};
use cbvr_video::{Category, GeneratorConfig, Video, VideoGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn clip(shots: u32, frames_per_shot: u32) -> Video {
    let generator = VideoGenerator::new(GeneratorConfig {
        width: 96,
        height: 72,
        shots_per_video: shots,
        min_shot_frames: frames_per_shot,
        max_shot_frames: frames_per_shot,
        ..GeneratorConfig::default()
    })
    .expect("valid config");
    generator.generate(Category::Cartoon, 5).expect("generation")
}

fn bench_keyframe(c: &mut Criterion) {
    let mut group = c.benchmark_group("keyframe");
    group.sample_size(10);

    // Same total length (48 frames), different cut densities.
    for (shots, per_shot) in [(2u32, 24u32), (6, 8), (12, 4)] {
        let video = clip(shots, per_shot);
        group.bench_with_input(
            BenchmarkId::new("extract", format!("{shots}cuts_x{per_shot}f")),
            &video,
            |b, v| b.iter(|| extract_keyframes(v, &KeyframeConfig::default())),
        );
    }

    // Adaptive shot-boundary detection vs the fixed threshold.
    let video = clip(6, 8);
    group.bench_with_input(BenchmarkId::new("adaptive", "6cuts_x8f"), &video, |b, v| {
        b.iter(|| extract_keyframes_adaptive(v, &AdaptiveConfig::default()))
    });

    // Strategy comparison on one clip.
    let video = clip(6, 8);
    for (name, strategy) in [("first_of_run", Strategy::FirstOfRun), ("middle_of_run", Strategy::MiddleOfRun)] {
        let config = KeyframeConfig { strategy, ..KeyframeConfig::default() };
        group.bench_with_input(BenchmarkId::new("strategy", name), &video, |b, v| {
            b.iter(|| extract_keyframes(v, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_keyframe);
criterion_main!(benches);
