//! §4.2 range-finder: assignment cost and candidate lookup vs the linear
//! scan it replaces (ablation A1's latency side).

use cbvr_imgproc::{Gray, GrayImage, Histogram256};
use cbvr_index::{paper_range, RangeIndex, RangeKey, RangeTree};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn histogram(seed: u64) -> Histogram256 {
    let img = GrayImage::from_fn(64, 64, |x, y| {
        let mut s = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((y as u64) << 32 | x as u64);
        s ^= s >> 33;
        s = s.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        Gray((s >> 56) as u8)
    })
    .expect("nonzero dims");
    Histogram256::of_gray(&img)
}

fn bench_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("index");

    let h = histogram(1);
    group.bench_function("paper_range_assign", |b| b.iter(|| paper_range(&h)));

    let deep = RangeTree::new(cbvr_index::RangeTreeConfig { thresholds: vec![55.0; 6] }).unwrap();
    group.bench_function("deep_tree_assign", |b| b.iter(|| deep.assign(&h)));

    for n in [1_000usize, 10_000] {
        // Build an index of n items spread over the realistic buckets.
        let mut index = RangeIndex::new();
        for i in 0..n {
            let key = paper_range(&histogram(i as u64));
            index.insert(key, i as u32);
        }
        let probe = RangeKey::new(96, 127);
        group.bench_with_input(BenchmarkId::new("overlap_lookup", n), &index, |b, idx| {
            b.iter(|| idx.overlap_candidates(probe))
        });
        group.bench_with_input(BenchmarkId::new("exact_lookup", n), &index, |b, idx| {
            b.iter(|| idx.bucket_candidates(probe))
        });
        group.bench_with_input(BenchmarkId::new("full_scan_baseline", n), &index, |b, idx| {
            b.iter(|| idx.all())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
