//! End-to-end query latency, with and without the §4.2 range index
//! (ablation A1: pruning speeds queries; the table1 bin's `--no-index`
//! flag covers the precision side).

use cbvr_core::engine::QueryOptions;
use cbvr_eval::{Corpus, CorpusConfig};
use cbvr_features::FeatureSet;
use cbvr_imgproc::Histogram256;
use cbvr_index::paper_range;
use cbvr_video::GeneratorConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_retrieval(c: &mut Criterion) {
    let corpus = Corpus::build(CorpusConfig {
        videos_per_category: 4,
        generator: GeneratorConfig { width: 64, height: 48, ..GeneratorConfig::default() },
        ..CorpusConfig::default()
    })
    .expect("corpus build");

    // One pre-extracted query (extraction cost is measured in features.rs;
    // here we isolate ranking).
    let probe = corpus.query_videos(1).expect("queries");
    let frame = probe[0].1.frame(0).expect("has frames");
    let features = FeatureSet::extract(frame);
    let range = paper_range(&Histogram256::of_rgb_luma(frame));

    let mut group = c.benchmark_group("retrieval");
    group.sample_size(30);
    for (name, use_index) in [("with_index", true), ("no_index", false)] {
        let options = QueryOptions { k: 20, use_index, ..Default::default() };
        group.bench_with_input(BenchmarkId::new("query_frame_ranked", name), &options, |b, opts| {
            b.iter(|| corpus.engine.query_features(&features, range, opts))
        });
    }

    // Whole query including feature extraction (the user-visible latency).
    group.bench_function("query_frame_end_to_end", |b| {
        b.iter(|| corpus.engine.query_frame(frame, &QueryOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_retrieval);
criterion_main!(benches);
