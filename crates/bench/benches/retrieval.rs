//! End-to-end query latency, with and without the §4.2 range index
//! (ablation A1: pruning speeds queries; the table1 bin's `--no-index`
//! flag covers the precision side).

use cbvr_core::engine::{CatalogEntry, QueryEngine, QueryOptions};
use cbvr_eval::{Corpus, CorpusConfig};
use cbvr_features::FeatureSet;
use cbvr_imgproc::{Histogram256, Rgb, RgbImage};
use cbvr_index::paper_range;
use cbvr_video::GeneratorConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;

fn bench_retrieval(c: &mut Criterion) {
    let corpus = Corpus::build(CorpusConfig {
        videos_per_category: 4,
        generator: GeneratorConfig { width: 64, height: 48, ..GeneratorConfig::default() },
        ..CorpusConfig::default()
    })
    .expect("corpus build");

    // One pre-extracted query (extraction cost is measured in features.rs;
    // here we isolate ranking).
    let probe = corpus.query_videos(1).expect("queries");
    let frame = probe[0].1.frame(0).expect("has frames");
    let features = FeatureSet::extract(frame);
    let range = paper_range(&Histogram256::of_rgb_luma(frame));

    let mut group = c.benchmark_group("retrieval");
    group.sample_size(30);
    for (name, use_index) in [("with_index", true), ("no_index", false)] {
        let options = QueryOptions { k: 20, use_index, ..Default::default() };
        group.bench_with_input(BenchmarkId::new("query_frame_ranked", name), &options, |b, opts| {
            b.iter(|| corpus.engine.query_features(&features, range, opts))
        });
    }

    // Whole query including feature extraction (the user-visible latency).
    group.bench_function("query_frame_end_to_end", |b| {
        b.iter(|| corpus.engine.query_frame(frame, &QueryOptions::default()))
    });
    group.finish();
}

/// A synthetic catalog of `size` entries built by tiling a pool of
/// distinct extracted feature sets (extraction is too slow to produce
/// thousands of unique sets; scoring cost is identical either way).
fn synthetic_engine(size: usize) -> (QueryEngine, FeatureSet, cbvr_index::RangeKey) {
    let pool: Vec<RgbImage> = (0..64u32)
        .map(|s| {
            RgbImage::from_fn(32, 24, move |x, y| {
                Rgb::new(
                    (x * (1 + s % 7) + s * 11) as u8,
                    (y * (1 + s % 5) + s * 17) as u8,
                    ((x + y) * 3 + s * 29) as u8,
                )
            })
            .unwrap()
        })
        .collect();
    let sets: Vec<(cbvr_index::RangeKey, FeatureSet)> = pool
        .iter()
        .map(|img| (paper_range(&Histogram256::of_rgb_luma(img)), FeatureSet::extract(img)))
        .collect();
    let entries: Vec<CatalogEntry> = (0..size)
        .map(|i| {
            let (range, features) = &sets[i % sets.len()];
            CatalogEntry {
                i_id: i as u64 + 1,
                v_id: (i as u64 % 100) + 1,
                range: *range,
                features: features.clone(),
            }
        })
        .collect();
    let engine = QueryEngine::from_catalog(entries, HashMap::new());
    let probe = RgbImage::from_fn(32, 24, |x, y| {
        Rgb::new((x * 5 + 3) as u8, (y * 3 + 40) as u8, ((x * y) % 251) as u8)
    })
    .unwrap();
    let range = paper_range(&Histogram256::of_rgb_luma(&probe));
    (engine, FeatureSet::extract(&probe), range)
}

/// Parallel top-k scaling: full-scan frame ranking over synthetic
/// catalogs, sweeping pool participation. `threads = 1` is the serial
/// baseline the speedup is measured against (the results are
/// bit-identical at every thread count — see
/// `crates/core/tests/parallel_equivalence.rs`).
fn bench_query_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_parallel");
    group.sample_size(20);
    for size in [1024usize, 5120] {
        let (engine, features, range) = synthetic_engine(size);
        for threads in [1usize, 2, 4, 8] {
            let options =
                QueryOptions { k: 20, use_index: false, threads, ..Default::default() };
            group.bench_with_input(
                BenchmarkId::new(format!("catalog_{size}"), format!("threads_{threads}")),
                &options,
                |b, opts| b.iter(|| engine.query_features(&features, range, opts)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_retrieval, bench_query_parallel);
criterion_main!(benches);
