//! Storage-engine primitives: B+-tree insert/get, blob write/read and
//! the durable-commit protocol.

use cbvr_storage::backend::MemBackend;
use cbvr_storage::btree::BTree;
use cbvr_storage::heap::{read_blob, write_blob};
use cbvr_storage::pager::Pager;
use cbvr_storage::{CbvrDatabase, VideoRecord};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/btree");
    group.sample_size(20);

    group.bench_function("insert_1000", |b| {
        b.iter(|| {
            let mut pager = Pager::open(MemBackend::new(), MemBackend::new(), 256).unwrap();
            let mut tree = BTree::create(&mut pager).unwrap();
            for k in 0..1000u64 {
                tree.insert(&mut pager, k, b"value-bytes-here").unwrap();
            }
            tree
        })
    });

    // Pre-built tree for lookups.
    let mut pager = Pager::open(MemBackend::new(), MemBackend::new(), 1024).unwrap();
    let mut tree = BTree::create(&mut pager).unwrap();
    for k in 0..10_000u64 {
        tree.insert(&mut pager, k, b"value-bytes-here").unwrap();
    }
    group.bench_function("get_hot", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % 10_000;
            tree.get(&mut pager, k).unwrap()
        })
    });
    group.finish();
}

fn bench_blob(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/blob");
    group.sample_size(20);
    for size in [4_096usize, 262_144] {
        let data = vec![0xA5u8; size];
        group.bench_with_input(BenchmarkId::new("write", size), &data, |b, data| {
            let mut pager = Pager::open(MemBackend::new(), MemBackend::new(), 4096).unwrap();
            b.iter(|| write_blob(&mut pager, data).unwrap())
        });
        let mut pager = Pager::open(MemBackend::new(), MemBackend::new(), 4096).unwrap();
        let blob = write_blob(&mut pager, &data).unwrap();
        group.bench_with_input(BenchmarkId::new("read", size), &blob, |b, blob| {
            b.iter(|| read_blob(&mut pager, *blob).unwrap())
        });
    }
    group.finish();
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/commit");
    group.sample_size(20);
    group.bench_function("insert_video_durable", |b| {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let record = VideoRecord {
            v_name: "bench.vsc".into(),
            video: vec![1u8; 100_000],
            stream: vec![2u8; 10_000],
            dostore: 0,
        };
        b.iter(|| db.insert_video(&record).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_btree, bench_blob, bench_commit);
criterion_main!(benches);
