//! Telemetry-primitive overhead: the counters and histograms sit on the
//! hot query and ingest paths, so their per-op cost must stay in the
//! nanoseconds (the acceptance bar is ≤5% on `query_parallel`).

use cbvr_core::telemetry::Registry;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_telemetry(c: &mut Criterion) {
    let registry = Arc::new(Registry::new());
    let counter = registry.counter("bench.counter");
    let histogram = registry.histogram("bench.hist_nanos");

    let mut group = c.benchmark_group("telemetry");

    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    group.bench_function("counter_add", |b| b.iter(|| counter.add(black_box(17))));
    group.bench_function("histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            histogram.record_nanos(black_box(v >> 33));
        })
    });
    group.bench_function("span_start_stop", |b| {
        b.iter(|| drop(registry.timer(black_box(&histogram))))
    });
    // Lookup by name — the cold path callers should avoid in loops, kept
    // here to quantify why handles are cached.
    group.bench_function("counter_lookup", |b| {
        b.iter(|| registry.counter(black_box("bench.counter")).get())
    });

    // Snapshot cost with a realistically-sized registry.
    for i in 0..64 {
        registry.counter(&format!("bench.fill.c{i}")).add(i);
        registry.histogram(&format!("bench.fill.h{i}_nanos")).record_nanos(i * 37);
    }
    group.bench_function("render_lines_129_metrics", |b| b.iter(|| registry.render_lines()));
    group.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
