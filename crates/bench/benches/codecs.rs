//! VSC frame-codec comparison: encode/decode throughput and compressed
//! size across category styles (flat cartoon, speckled sports, smooth
//! movie pans).

use cbvr_video::{encode_vsc, decode_vsc, Category, FrameCodec, GeneratorConfig, Video, VideoGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn clip(category: Category) -> Video {
    VideoGenerator::new(GeneratorConfig {
        width: 96,
        height: 72,
        shots_per_video: 2,
        min_shot_frames: 8,
        max_shot_frames: 8,
        ..GeneratorConfig::default()
    })
    .expect("valid config")
    .generate(category, 3)
    .expect("generation")
}

fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("codecs");
    group.sample_size(10);
    for category in [Category::Cartoon, Category::Sports, Category::Movie] {
        let video = clip(category);
        for codec in [FrameCodec::Raw, FrameCodec::Rle, FrameCodec::Delta, FrameCodec::MotionComp] {
            let label = format!("{}/{codec:?}", category.name());
            group.bench_with_input(BenchmarkId::new("encode", &label), &video, |b, v| {
                b.iter(|| encode_vsc(v, codec))
            });
            let bytes = encode_vsc(&video, codec);
            group.bench_with_input(BenchmarkId::new("decode", &label), &bytes, |b, bytes| {
                b.iter(|| decode_vsc(bytes).expect("valid stream"))
            });
        }
    }
    group.finish();

    // One-shot size report (criterion measures time; sizes go to stderr
    // so `cargo bench` output records the compression shape too).
    eprintln!("\ncompressed size per codec (bytes):");
    for category in [Category::Cartoon, Category::Sports, Category::Movie] {
        let video = clip(category);
        let raw = encode_vsc(&video, FrameCodec::Raw).len();
        eprint!("  {:<8}", category.name());
        for codec in [FrameCodec::Raw, FrameCodec::Rle, FrameCodec::Delta, FrameCodec::MotionComp] {
            let n = encode_vsc(&video, codec).len();
            eprint!(" {codec:?}={n} ({:.0}%)", 100.0 * n as f64 / raw as f64);
        }
        eprintln!();
    }
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
