//! DP/DTW sequence-similarity scaling: full vs banded, and the
//! clip-to-clip query that uses it.

use cbvr_core::dtw::{dtw_distance, dtw_distance_banded};
use cbvr_core::engine::QueryOptions;
use cbvr_core::KeyframeConfig;
use cbvr_eval::{Corpus, CorpusConfig};
use cbvr_video::GeneratorConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn sequence(n: usize, phase: f64) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.37 + phase).sin() * 10.0).collect()
}

fn bench_dtw(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity/dtw");
    for n in [16usize, 64, 256] {
        let a = sequence(n, 0.0);
        let b = sequence(n, 0.4);
        group.bench_with_input(BenchmarkId::new("full", n), &n, |bch, _| {
            bch.iter(|| dtw_distance(&a, &b, |x, y| (x - y).abs()))
        });
        group.bench_with_input(BenchmarkId::new("banded_8", n), &n, |bch, _| {
            bch.iter(|| dtw_distance_banded(&a, &b, 8, |x, y| (x - y).abs()))
        });
    }
    group.finish();
}

fn bench_clip_query(c: &mut Criterion) {
    let corpus = Corpus::build(CorpusConfig {
        videos_per_category: 2,
        generator: GeneratorConfig {
            width: 64,
            height: 48,
            shots_per_video: 3,
            min_shot_frames: 4,
            max_shot_frames: 6,
            ..GeneratorConfig::default()
        },
        ..CorpusConfig::default()
    })
    .expect("corpus build");
    let probe = corpus.query_videos(1).expect("queries");
    let video = &probe[0].1;

    let mut group = c.benchmark_group("similarity/clip_query");
    group.sample_size(10);
    group.bench_function("query_video_end_to_end", |b| {
        b.iter(|| {
            corpus
                .engine
                .query_video(video, &KeyframeConfig::default(), &QueryOptions { k: 5, ..Default::default() })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dtw, bench_clip_query);
criterion_main!(benches);
