//! Per-extractor throughput: the cost column behind Table 1's feature
//! set. One group per feature, at 64×48 and 128×96 frames.

use cbvr_features::correlogram::AutoColorCorrelogram;
use cbvr_features::gabor::GaborTexture;
use cbvr_features::glcm::GlcmTexture;
use cbvr_features::histogram::ColorHistogram;
use cbvr_features::naive::NaiveSignature;
use cbvr_features::region::RegionGrowing;
use cbvr_features::tamura::TamuraTexture;
use cbvr_features::FeatureSet;
use cbvr_imgproc::RgbImage;
use cbvr_video::{Category, GeneratorConfig, VideoGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn frame(width: u32, height: u32) -> RgbImage {
    let generator = VideoGenerator::new(GeneratorConfig {
        width,
        height,
        ..GeneratorConfig::default()
    })
    .expect("valid config");
    let video = generator.generate(Category::Sports, 3).expect("generation");
    video.frame(0).expect("has frames").clone()
}

fn bench_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("features");
    group.sample_size(20);
    for (w, h) in [(64u32, 48u32), (128, 96)] {
        let img = frame(w, h);
        let label = format!("{w}x{h}");
        group.bench_with_input(BenchmarkId::new("histogram", &label), &img, |b, img| {
            b.iter(|| ColorHistogram::extract(img))
        });
        group.bench_with_input(BenchmarkId::new("glcm", &label), &img, |b, img| {
            b.iter(|| GlcmTexture::extract(img))
        });
        group.bench_with_input(BenchmarkId::new("gabor", &label), &img, |b, img| {
            b.iter(|| GaborTexture::extract(img))
        });
        group.bench_with_input(BenchmarkId::new("tamura", &label), &img, |b, img| {
            b.iter(|| TamuraTexture::extract(img))
        });
        group.bench_with_input(BenchmarkId::new("autocorrelogram", &label), &img, |b, img| {
            b.iter(|| AutoColorCorrelogram::extract(img))
        });
        group.bench_with_input(BenchmarkId::new("naive", &label), &img, |b, img| {
            b.iter(|| NaiveSignature::extract(img))
        });
        group.bench_with_input(BenchmarkId::new("region_growing", &label), &img, |b, img| {
            b.iter(|| RegionGrowing::extract(img))
        });
        group.bench_with_input(BenchmarkId::new("full_set", &label), &img, |b, img| {
            b.iter(|| FeatureSet::extract(img))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
