//! A from-scratch HTTP/1.1 subset: exactly what the application needs.
//!
//! Supports `GET` and `POST`, percent-decoded query strings, a bounded
//! `Content-Length` body, and plain (non-chunked, non-keep-alive)
//! responses. Parsing works over any `BufRead`, so unit tests feed byte
//! slices instead of sockets.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, Write};

/// Maximum accepted body (an uploaded query image): 16 MiB.
pub const MAX_BODY: usize = 16 << 20;
/// Maximum accepted header section.
const MAX_HEADER_BYTES: usize = 64 << 10;

/// Supported methods.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Method {
    /// HTTP GET.
    Get,
    /// HTTP POST.
    Post,
}

/// Response status subset.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StatusCode {
    /// 200.
    Ok,
    /// 400.
    BadRequest,
    /// 404.
    NotFound,
    /// 405.
    MethodNotAllowed,
    /// 413.
    PayloadTooLarge,
    /// 500.
    InternalServerError,
    /// 503 (handler pool saturated; retry later).
    ServiceUnavailable,
}

impl StatusCode {
    fn line(self) -> &'static str {
        match self {
            StatusCode::Ok => "200 OK",
            StatusCode::BadRequest => "400 Bad Request",
            StatusCode::NotFound => "404 Not Found",
            StatusCode::MethodNotAllowed => "405 Method Not Allowed",
            StatusCode::PayloadTooLarge => "413 Payload Too Large",
            StatusCode::InternalServerError => "500 Internal Server Error",
            StatusCode::ServiceUnavailable => "503 Service Unavailable",
        }
    }
}

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Path without the query string, e.g. `/video`.
    pub path: String,
    /// Percent-decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Lower-cased header map.
    pub headers: BTreeMap<String, String>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for `key`.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Parse `key` as an integer parameter.
    pub fn param_u64(&self, key: &str) -> Option<u64> {
        self.param(key)?.parse().ok()
    }
}

/// A parse failure with a status to answer with.
#[derive(Debug)]
pub struct HttpError {
    /// The status this error maps to.
    pub status: StatusCode,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

fn bad(message: impl Into<String>) -> HttpError {
    HttpError { status: StatusCode::BadRequest, message: message.into() }
}

/// Percent-decode a URL component (`%41` → `A`, `+` → space).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Split and decode a query string.
pub fn parse_query(qs: &str) -> Vec<(String, String)> {
    qs.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Read and parse one request from a buffered stream.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut line = String::new();
    let mut header_bytes = 0usize;
    reader.read_line(&mut line).map_err(|e| bad(format!("read request line: {e}")))?;
    header_bytes += line.len();
    let line = line.trim_end();
    if line.is_empty() {
        return Err(bad("empty request"));
    }
    let mut parts = line.split_whitespace();
    let method = match parts.next() {
        Some("GET") => Method::Get,
        Some("POST") => Method::Post,
        Some(other) => {
            return Err(HttpError {
                status: StatusCode::MethodNotAllowed,
                message: format!("method {other} not supported"),
            })
        }
        None => return Err(bad("missing method")),
    };
    let target = parts.next().ok_or_else(|| bad("missing request target"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    let mut headers = BTreeMap::new();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|e| bad(format!("read header: {e}")))?;
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(bad("header section too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            headers.insert(k.trim().to_lowercase(), v.trim().to_string());
        }
    }

    let mut body = Vec::new();
    if let Some(len) = headers.get("content-length") {
        let len: usize = len.parse().map_err(|e| bad(format!("bad content-length: {e}")))?;
        if len > MAX_BODY {
            return Err(HttpError {
                status: StatusCode::PayloadTooLarge,
                message: format!("body of {len} bytes exceeds {MAX_BODY}"),
            });
        }
        body.resize(len, 0);
        std::io::Read::read_exact(reader, &mut body)
            .map_err(|e| bad(format!("read body: {e}")))?;
    }
    Ok(Request { method, path, query, headers, body })
}

/// A response ready to serialise.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// `Content-Type` value.
    pub content_type: String,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An HTML page.
    pub fn html(body: impl Into<String>) -> Response {
        Response {
            status: StatusCode::Ok,
            content_type: "text/html; charset=utf-8".into(),
            body: body.into().into_bytes(),
        }
    }

    /// Plain text.
    pub fn text(status: StatusCode, body: impl Into<String>) -> Response {
        Response { status, content_type: "text/plain; charset=utf-8".into(), body: body.into().into_bytes() }
    }

    /// JSON payload.
    pub fn json(body: impl Into<String>) -> Response {
        Response { status: StatusCode::Ok, content_type: "application/json".into(), body: body.into().into_bytes() }
    }

    /// Raw bytes with an explicit content type.
    pub fn bytes(content_type: &str, body: Vec<u8>) -> Response {
        Response { status: StatusCode::Ok, content_type: content_type.into(), body }
    }

    /// Serialise onto a writer (`Connection: close` semantics).
    pub fn write_to(&self, writer: &mut impl Write) -> std::io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status.line(),
            self.content_type,
            self.body.len()
        )?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// Escape text for HTML interpolation.
pub fn html_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '&' => "&amp;".chars().collect::<Vec<_>>(),
            '<' => "&lt;".chars().collect(),
            '>' => "&gt;".chars().collect(),
            '"' => "&quot;".chars().collect(),
            '\'' => "&#39;".chars().collect(),
            other => vec![other],
        })
        .collect()
}

/// Escape text for JSON string interpolation.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse(b"GET /video?id=3&name=a%20b HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/video");
        assert_eq!(r.param("id"), Some("3"));
        assert_eq!(r.param_u64("id"), Some(3));
        assert_eq!(r.param("name"), Some("a b"));
        assert_eq!(r.headers.get("host").map(String::as_str), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse(b"POST /query HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(parse(b"").is_err());
        assert!(parse(b"\r\n").is_err());
        let e = parse(b"DELETE /x HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(e.status, StatusCode::MethodNotAllowed);
        assert!(parse(b"GET\r\n\r\n").is_err());
        assert!(parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        let e = parse(raw.as_bytes()).unwrap_err();
        assert_eq!(e.status, StatusCode::PayloadTooLarge);
    }

    #[test]
    fn truncated_body_is_an_error() {
        assert!(parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").is_err());
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("%41%42"), "AB");
        assert_eq!(percent_decode("100%"), "100%"); // dangling % passes through
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn query_parsing() {
        let q = parse_query("a=1&b=&c&a=2");
        assert_eq!(q.len(), 4);
        assert_eq!(q[0], ("a".into(), "1".into()));
        assert_eq!(q[1], ("b".into(), "".into()));
        assert_eq!(q[2], ("c".into(), "".into()));
    }

    #[test]
    fn response_serialises() {
        let mut out = Vec::new();
        Response::html("<p>hi</p>").write_to(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 9\r\n"));
        assert!(s.ends_with("<p>hi</p>"));
    }

    #[test]
    fn escapes() {
        assert_eq!(html_escape("<a b=\"c\">&'"), "&lt;a b=&quot;c&quot;&gt;&amp;&#39;");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn percent_decode_never_panics(s in ".*") {
            let _ = percent_decode(&s);
        }

        #[test]
        fn parse_query_never_panics(s in ".*") {
            let _ = parse_query(&s);
        }

        #[test]
        fn arbitrary_request_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut reader = std::io::BufReader::new(&data[..]);
            let _ = read_request(&mut reader); // Ok or Err, never panic
        }

        #[test]
        fn responses_always_serialise(body in proptest::collection::vec(any::<u8>(), 0..256)) {
            let r = Response::bytes("application/octet-stream", body.clone());
            let mut out = Vec::new();
            r.write_to(&mut out).unwrap();
            prop_assert!(out.ends_with(&body));
        }

        #[test]
        fn html_escape_output_has_no_raw_angle_brackets(s in ".*") {
            let e = html_escape(&s);
            prop_assert!(!e.contains('<') && !e.contains('>'));
        }

        #[test]
        fn json_escape_round_trips_as_valid_token(s in "[ -~]{0,60}") {
            // The escaped string placed inside quotes must not terminate
            // the JSON string early.
            let e = json_escape(&s);
            let mut chars = e.chars().peekable();
            let mut escaped = false;
            for c in chars.by_ref() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else {
                    prop_assert!(c != '"', "unescaped quote in {e}");
                }
            }
        }
    }
}
