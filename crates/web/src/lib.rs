//! # cbvr-web — the web application
//!
//! "Proposed Video Storage and Retrieval System ... is interactive web
//! based application which takes video frame from users and retrieve the
//! information from the database" (§1). This crate is that application:
//! a dependency-free HTTP/1.1 server over the embedded database, serving
//! the User role's three query modes and the browse screens of
//! Figs. 9–10.
//!
//! | route | role |
//! |---|---|
//! | `GET /` | video list (Fig. 9's catalog view) |
//! | `GET /video?id=N` | one video: metadata + key-frame strip |
//! | `GET /keyframe?id=N` | a stored key frame as BMP |
//! | `GET /search?name=S` | metadata search |
//! | `POST /query?k=N[&feature=F][&format=json]` | content search — body is the query image (PPM/BMP/PGM/VJP) |
//! | `GET /stats` | database statistics |
//! | `GET /metrics` | plain-text telemetry exposition (counters, latency histograms, `storage.*`) |
//!
//! [`http`] is a from-scratch request parser / response writer (no
//! external dependencies, per DESIGN.md); [`app`] holds the pure,
//! socket-free request handler the tests drive directly; [`server`] is
//! the threaded accept loop.
#![warn(missing_docs)]


pub mod app;
pub mod http;
pub mod server;

pub use app::{AppState, HtmlPage};
pub use http::{Method, Request, Response, StatusCode};
pub use server::Server;
