//! The threaded accept loop.

use crate::app::AppState;
use crate::http::{read_request, Response};
use cbvr_storage::backend::Backend;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running server: one accept thread, one handler thread per
/// connection (connections are short-lived: `Connection: close`).
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving.
    pub fn start<B: Backend + 'static>(
        state: Arc<AppState<B>>,
        addr: &str,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = Arc::clone(&shutdown);

        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shutdown_flag.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        let state = Arc::clone(&state);
                        std::thread::spawn(move || serve_connection(state, stream));
                    }
                    Err(_) => continue,
                }
            }
        });

        Ok(Server { addr, shutdown, accept_thread: Some(accept_thread) })
    }

    /// The bound address (port resolved when binding to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread. In-flight connections
    /// finish on their own threads.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a wake-up connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn serve_connection<B: Backend>(state: Arc<AppState<B>>, stream: TcpStream) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let response = match read_request(&mut reader) {
        Ok(request) => state.handle(&request),
        Err(e) => Response::text(e.status, e.message),
    };
    let _ = response.write_to(&mut writer);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_core::{ingest_video, IngestConfig};
    use cbvr_storage::CbvrDatabase;
    use cbvr_video::{Category, GeneratorConfig, VideoGenerator};
    use std::io::{Read, Write};

    fn running_server() -> Server {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let generator = VideoGenerator::new(GeneratorConfig {
            width: 48,
            height: 36,
            shots_per_video: 2,
            min_shot_frames: 3,
            max_shot_frames: 4,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let clip = generator.generate(Category::Sports, 1).unwrap();
        ingest_video(&mut db, "over_http", &clip, &IngestConfig::default()).unwrap();
        let state = AppState::new(db).unwrap();
        Server::start(state, "127.0.0.1:0").unwrap()
    }

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        // Bodies may be binary (BMP); lossy conversion keeps the headers
        // assertable either way.
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn serves_catalog_over_real_sockets() {
        let server = running_server();
        let response = http_get(server.addr(), "/");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("over_http"), "{response}");
        // Image route delivers binary BMP with the right content type.
        let response = http_get(server.addr(), "/keyframe?id=1");
        assert!(response.contains("image/bmp"), "{response}");
        // 404 for unknown routes.
        let response = http_get(server.addr(), "/nothing");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        server.stop();
    }

    #[test]
    fn query_over_post() {
        let server = running_server();
        // Fetch a key frame, then POST it back as the query.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "GET /keyframe?id=1 HTTP/1.1\r\n\r\n").unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let split = raw.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        let image = &raw[split..];

        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(
            stream,
            "POST /query?k=1&format=json HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            image.len()
        )
        .unwrap();
        stream.write_all(image).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
        assert!(out.contains("\"score\":1.000000"), "{out}");
        server.stop();
    }

    #[test]
    fn malformed_requests_get_http_errors() {
        let server = running_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"BREW /coffee HTTP/1.1\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
        server.stop();
    }

    #[test]
    fn stop_is_idempotent_and_drop_safe() {
        let server = running_server();
        let addr = server.addr();
        server.stop();
        // Further connections fail or hang up immediately — either way no
        // panic and the port is released quickly enough for rebinding.
        let _ = TcpStream::connect(addr);
    }
}
