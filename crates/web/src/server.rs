//! The accept loop and its bounded handler pool.
//!
//! The old design spawned one OS thread per connection — unbounded: a
//! connection burst spawned a thread burst, and a slow query pile-up
//! could take the process down. Connections now flow through a bounded
//! queue into a fixed set of handler threads; when the queue is full the
//! accept thread answers `503 Service Unavailable` inline instead of
//! queueing without limit (backpressure, not collapse).

use crate::app::AppState;
use crate::http::{read_request, Response, StatusCode};
use cbvr_storage::backend::Backend;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Server sizing knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Handler threads (each serves one connection at a time).
    pub workers: usize,
    /// Accepted connections waiting for a free handler beyond the ones
    /// in flight; `try_send` beyond this answers 503.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { workers: 4, queue_capacity: 64 }
    }
}

/// A running server: one accept thread feeding `workers` handler threads
/// through a bounded queue (connections are short-lived:
/// `Connection: close`).
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    rejected: Arc<AtomicU64>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// with the default pool sizing.
    pub fn start<B: Backend + 'static>(
        state: Arc<AppState<B>>,
        addr: &str,
    ) -> std::io::Result<Server> {
        Server::start_with(state, addr, &ServerConfig::default())
    }

    /// Bind `addr` and start serving with explicit pool sizing.
    pub fn start_with<B: Backend + 'static>(
        state: Arc<AppState<B>>,
        addr: &str,
        config: &ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = Arc::clone(&shutdown);
        let rejected = Arc::new(AtomicU64::new(0));
        let rejected_count = Arc::clone(&rejected);
        // Resolved once; the accept loop records rejections lock-free.
        let rejected_counter = state.telemetry().counter("web.backpressure.rejected");
        let rejected_status = state.telemetry().counter(crate::app::status_class_metric(
            StatusCode::ServiceUnavailable,
        ));

        let workers = config.workers.max(1);
        let (queue, receiver) = std::sync::mpsc::sync_channel::<TcpStream>(config.queue_capacity);
        let receiver = Arc::new(Mutex::new(receiver));
        let workers: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let rx: Arc<Mutex<Receiver<TcpStream>>> = Arc::clone(&receiver);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("cbvr-web-{i}"))
                    .spawn(move || loop {
                        let next = rx.lock().expect("handler queue poisoned").recv();
                        match next {
                            Ok(stream) => serve_connection(Arc::clone(&state), stream),
                            Err(_) => break, // queue closed: server stopping
                        }
                    })
                    .expect("spawn web handler")
            })
            .collect();

        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shutdown_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                match queue.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        // Overloaded: answer inline rather than queue
                        // without bound. Writing a short response is
                        // cheap enough for the accept thread.
                        rejected_count.fetch_add(1, Ordering::Relaxed);
                        rejected_counter.inc();
                        rejected_status.inc();
                        let mut stream = stream;
                        let _ = Response::text(
                            StatusCode::ServiceUnavailable,
                            "server overloaded, retry later\n",
                        )
                        .write_to(&mut stream);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            // Dropping `queue` closes the channel; handlers drain what
            // was accepted and then exit.
        });

        Ok(Server { addr, shutdown, accept_thread: Some(accept_thread), workers, rejected })
    }

    /// The bound address (port resolved when binding to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections answered 503 because the queue was full.
    pub fn rejected_count(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Stop accepting, drain queued connections and join every thread.
    pub fn stop(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a wake-up connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.join_all();
    }
}

fn serve_connection<B: Backend>(state: Arc<AppState<B>>, stream: TcpStream) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let response = match read_request(&mut reader) {
        Ok(request) => state.handle(&request),
        Err(e) => Response::text(e.status, e.message),
    };
    let _ = response.write_to(&mut writer);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_core::{ingest_video, IngestConfig};
    use cbvr_storage::CbvrDatabase;
    use cbvr_video::{Category, GeneratorConfig, VideoGenerator};
    use std::io::{Read, Write};

    fn running_server_with(config: &ServerConfig) -> Server {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let generator = VideoGenerator::new(GeneratorConfig {
            width: 48,
            height: 36,
            shots_per_video: 2,
            min_shot_frames: 3,
            max_shot_frames: 4,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let clip = generator.generate(Category::Sports, 1).unwrap();
        ingest_video(&mut db, "over_http", &clip, &IngestConfig::default()).unwrap();
        let state = AppState::new(db).unwrap();
        Server::start_with(state, "127.0.0.1:0", config).unwrap()
    }

    fn running_server() -> Server {
        running_server_with(&ServerConfig::default())
    }

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        // Bodies may be binary (BMP); lossy conversion keeps the headers
        // assertable either way.
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn serves_catalog_over_real_sockets() {
        let server = running_server();
        let response = http_get(server.addr(), "/");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("over_http"), "{response}");
        // Image route delivers binary BMP with the right content type.
        let response = http_get(server.addr(), "/keyframe?id=1");
        assert!(response.contains("image/bmp"), "{response}");
        // 404 for unknown routes.
        let response = http_get(server.addr(), "/nothing");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        server.stop();
    }

    #[test]
    fn query_over_post() {
        let server = running_server();
        // Fetch a key frame, then POST it back as the query.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "GET /keyframe?id=1 HTTP/1.1\r\n\r\n").unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let split = raw.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        let image = &raw[split..];

        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(
            stream,
            "POST /query?k=1&format=json HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            image.len()
        )
        .unwrap();
        stream.write_all(image).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
        assert!(out.contains("\"score\":1.000000"), "{out}");
        server.stop();
    }

    #[test]
    fn malformed_requests_get_http_errors() {
        let server = running_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"BREW /coffee HTTP/1.1\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
        server.stop();
    }

    #[test]
    fn overload_answers_503_instead_of_queueing_unbounded() {
        use std::time::Duration;
        let server =
            running_server_with(&ServerConfig { workers: 1, queue_capacity: 1 });

        // Occupy the only handler with a half-sent request (read_request
        // blocks until the blank line arrives).
        let mut busy = TcpStream::connect(server.addr()).unwrap();
        write!(busy, "GET / HTTP/1.1\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(100));

        // Flood: with the handler blocked and the queue bounded at 1,
        // a connection soon gets an immediate 503.
        let mut held = Vec::new();
        let mut got_503 = false;
        for _ in 0..10 {
            let mut c = TcpStream::connect(server.addr()).unwrap();
            write!(c, "GET / HTTP/1.1\r\n\r\n").unwrap();
            c.set_read_timeout(Some(Duration::from_millis(300))).unwrap();
            let mut buf = [0u8; 128];
            match c.read(&mut buf) {
                Ok(n) if n > 0 => {
                    let text = String::from_utf8_lossy(&buf[..n]).into_owned();
                    assert!(text.starts_with("HTTP/1.1 503"), "unexpected response: {text}");
                    got_503 = true;
                    break;
                }
                // Timed out: this connection is queued; keep it open so
                // it keeps occupying the queue slot.
                _ => held.push(c),
            }
        }
        assert!(got_503, "bounded queue never pushed back");
        assert!(server.rejected_count() >= 1);

        // Release the handler: the stalled request completes and the
        // queued connection still gets served (backpressure dropped new
        // work, not accepted work).
        write!(busy, "\r\n").unwrap();
        let mut out = Vec::new();
        busy.read_to_end(&mut out).unwrap();
        assert!(String::from_utf8_lossy(&out).starts_with("HTTP/1.1 200"), "busy connection");
        if let Some(mut q) = held.into_iter().next() {
            q.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut out = Vec::new();
            q.read_to_end(&mut out).unwrap();
            assert!(
                String::from_utf8_lossy(&out).starts_with("HTTP/1.1 200"),
                "queued connection should drain once the handler frees up"
            );
        }
        server.stop();
    }

    #[test]
    fn stop_drains_queued_connections_before_joining() {
        use std::time::Duration;
        let server = running_server_with(&ServerConfig { workers: 1, queue_capacity: 8 });
        let addr = server.addr();

        // Park the only handler on a half-sent request, then queue a few
        // complete requests behind it.
        let mut busy = TcpStream::connect(addr).unwrap();
        write!(busy, "GET / HTTP/1.1\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let clients: Vec<TcpStream> = (0..3)
            .map(|_| {
                let mut c = TcpStream::connect(addr).unwrap();
                write!(c, "GET / HTTP/1.1\r\n\r\n").unwrap();
                c
            })
            .collect();
        // Give the accept thread time to move all three into the queue.
        std::thread::sleep(Duration::from_millis(200));

        // Release the handler and stop: every accepted connection must
        // still get an answer, because stop() only closes the queue —
        // handlers drain what was already accepted before exiting.
        write!(busy, "\r\n").unwrap();
        server.stop();
        let mut out = Vec::new();
        busy.read_to_end(&mut out).unwrap();
        assert!(String::from_utf8_lossy(&out).starts_with("HTTP/1.1 200"));
        for mut c in clients {
            let mut out = Vec::new();
            c.read_to_end(&mut out).unwrap();
            assert!(
                String::from_utf8_lossy(&out).starts_with("HTTP/1.1 200"),
                "accepted connection dropped during stop"
            );
        }
    }

    #[test]
    fn stop_is_idempotent_and_drop_safe() {
        let server = running_server();
        let addr = server.addr();
        server.stop();
        // Further connections fail or hang up immediately — either way no
        // panic and the port is released quickly enough for rebinding.
        let _ = TcpStream::connect(addr);
    }
}
