//! The application: routes over shared state, socket-free and testable.

use crate::http::{html_escape, json_escape, Method, Request, Response, StatusCode};
use cbvr_core::telemetry::Registry;
use cbvr_core::{FeatureWeights, QueryEngine, QueryOptions};
use cbvr_features::FeatureKind;
use cbvr_imgproc::codec::{encode as encode_image, ImageFormat};
use cbvr_storage::backend::Backend;
use cbvr_storage::CbvrDatabase;
use std::sync::Mutex;
use std::sync::Arc;

/// Shared application state: the database plus the loaded query engine.
///
/// The engine is *not* behind a lock: it serves queries from an
/// atomically swapped catalog snapshot, so search/query handlers run
/// lock-free and concurrent ingest or reload never blocks them. Only the
/// raw database handle (page cache, BLOB reads) still needs the mutex.
pub struct AppState<B: Backend> {
    db: Mutex<CbvrDatabase<B>>,
    engine: QueryEngine,
    telemetry: Arc<Registry>,
}

/// An assembled HTML page (title + body fragments).
pub struct HtmlPage {
    title: String,
    body: String,
}

impl HtmlPage {
    /// Start a page.
    pub fn new(title: &str) -> HtmlPage {
        HtmlPage { title: title.to_string(), body: String::new() }
    }

    /// Append a body fragment (caller escapes its own interpolations).
    pub fn push(&mut self, fragment: &str) -> &mut Self {
        self.body.push_str(fragment);
        self
    }

    /// Render the full document.
    pub fn render(&self) -> String {
        format!(
            "<!doctype html><html><head><meta charset=\"utf-8\"><title>{}</title>\
             <style>body{{font-family:sans-serif;margin:2em}}table{{border-collapse:collapse}}\
             td,th{{border:1px solid #ccc;padding:4px 8px}}img{{image-rendering:pixelated}}</style>\
             </head><body><h1>{}</h1><p><a href=\"/\">catalog</a> · <a href=\"/stats\">stats</a></p>{}\
             </body></html>",
            html_escape(&self.title),
            html_escape(&self.title),
            self.body
        )
    }
}

impl<B: Backend> AppState<B> {
    /// Build the state: loads the engine from the database once.
    /// Telemetry goes to [`Registry::global`].
    pub fn new(db: CbvrDatabase<B>) -> Result<Arc<AppState<B>>, cbvr_core::CoreError> {
        AppState::with_registry(db, Registry::global().clone())
    }

    /// [`AppState::new`] recording into an explicit registry (tests
    /// inject a [`cbvr_core::TestClock`]-driven one for deterministic
    /// `/metrics` goldens).
    pub fn with_registry(
        mut db: CbvrDatabase<B>,
        registry: Arc<Registry>,
    ) -> Result<Arc<AppState<B>>, cbvr_core::CoreError> {
        let mut engine = QueryEngine::from_database(&mut db)?;
        engine.set_telemetry(registry.clone());
        Ok(Arc::new(AppState { db: Mutex::new(db), engine, telemetry: registry }))
    }

    /// The registry this state records requests into.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// Take the database lock, turning poisoning into an HTTP 500 for
    /// this request instead of propagating the panic and killing the
    /// worker thread. The engine is not behind this lock, so query and
    /// search handlers keep serving even after such a failure.
    fn lock_db(&self) -> Result<std::sync::MutexGuard<'_, CbvrDatabase<B>>, Response> {
        self.db.lock().map_err(|_| {
            Response::text(
                StatusCode::InternalServerError,
                "database lock poisoned by a previous panicking request",
            )
        })
    }

    /// Reload the engine after external database changes. The database
    /// scan happens under the db lock, but the engine itself is updated
    /// by publishing a new catalog snapshot — in-flight queries finish
    /// on the old one.
    pub fn reload_engine(&self) -> Result<(), cbvr_core::CoreError> {
        let mut db = self
            .db
            .lock()
            .map_err(|_| cbvr_core::CoreError::Config("database lock poisoned".to_string()))?;
        self.engine.reload_from_database(&mut db)?;
        Ok(())
    }

    /// Route one request.
    ///
    /// Request/status counters and the latency sample are recorded
    /// *after* the response is computed, so a `/metrics` response never
    /// includes its own in-flight request — the exposition is a
    /// consistent snapshot (and deterministic in golden tests).
    pub fn handle(&self, request: &Request) -> Response {
        let start = self.telemetry.now_nanos();
        let (route, response) = self.route(request);
        let elapsed = self.telemetry.now_nanos().saturating_sub(start);
        self.telemetry.histogram("web.request_nanos").record_nanos(elapsed);
        self.telemetry.counter(&format!("web.requests.{route}")).inc();
        self.telemetry.counter(status_class_metric(response.status)).inc();
        response
    }

    /// Dispatch, returning the route's metric label alongside the
    /// response.
    fn route(&self, request: &Request) -> (&'static str, Response) {
        match (request.method, request.path.as_str()) {
            (Method::Get, "/") => ("index", self.index()),
            (Method::Get, "/video") => ("video", self.video_page(request)),
            (Method::Get, "/keyframe") => ("keyframe", self.keyframe_image(request)),
            (Method::Get, "/search") => ("search", self.search(request)),
            (Method::Get, "/health") => ("health", self.health()),
            (Method::Get, "/stats") => ("stats", self.stats()),
            (Method::Get, "/metrics") => ("metrics", self.metrics()),
            (Method::Post, "/query") => ("query", self.query(request)),
            (Method::Get, "/query") => (
                "query",
                Response::text(
                    StatusCode::MethodNotAllowed,
                    "POST an image (PPM/BMP/PGM/VJP) to /query",
                ),
            ),
            _ => (
                "other",
                Response::text(StatusCode::NotFound, format!("no route for {}", request.path)),
            ),
        }
    }

    /// `GET /metrics`: the plain-text exposition — every registry
    /// counter/histogram plus the storage engine's `storage.*` counters,
    /// one `name value` pair per line, sorted.
    fn metrics(&self) -> Response {
        let db = match self.lock_db() {
            Ok(db) => db,
            Err(r) => return r,
        };
        let mut lines = self.telemetry.render_lines();
        lines.extend(db.telemetry().render_lines());
        lines.sort();
        let mut out = String::new();
        for line in &lines {
            out.push_str(line);
            out.push('\n');
        }
        Response::text(StatusCode::Ok, out)
    }

    /// `GET /health`: liveness plus storage degradation.
    ///
    /// A degraded database (commits WAL-durable but data-file propagation
    /// pending after an I/O fault) first gets one checkpoint attempt; if
    /// it stays degraded the probe answers 503 and bumps
    /// `storage.fault.degraded`. Query, search and catalog routes keep
    /// serving throughout — the engine reads a pinned catalog snapshot
    /// and the pager pins the committed pages in cache, so degradation
    /// never takes reads down with it.
    fn health(&self) -> Response {
        let mut db = match self.lock_db() {
            Ok(db) => db,
            Err(r) => return r,
        };
        if db.is_degraded() {
            // Self-heal: replays the pending WAL records into the data
            // file. Harmless to fail — the WAL keeps everything until a
            // later attempt (or crash recovery) succeeds.
            let _ = db.try_heal();
        }
        if db.is_degraded() {
            self.telemetry.counter("storage.fault.degraded").inc();
            Response::text(
                StatusCode::ServiceUnavailable,
                "degraded: committed pages await data-file propagation; \
                 reads keep serving from the pinned snapshot",
            )
        } else {
            Response::text(StatusCode::Ok, "ok")
        }
    }

    fn index(&self) -> Response {
        let mut db = match self.lock_db() {
            Ok(db) => db,
            Err(r) => return r,
        };
        let videos = match db.list_videos() {
            Ok(v) => v,
            Err(e) => return Response::text(StatusCode::InternalServerError, e.to_string()),
        };
        let mut page = HtmlPage::new("CBVR — video catalog");
        page.push("<form action=\"/search\"><input name=\"name\" placeholder=\"name contains...\">\
                   <button>search</button></form>");
        page.push("<table><tr><th>v_id</th><th>name</th><th>key frames</th></tr>");
        for (v_id, name, _) in &videos {
            let kf = db.key_frames_of_video(*v_id).map(|k| k.len()).unwrap_or(0);
            page.push(&format!(
                "<tr><td>{v_id}</td><td><a href=\"/video?id={v_id}\">{}</a></td><td>{kf}</td></tr>",
                html_escape(name)
            ));
        }
        page.push("</table>");
        page.push(&format!("<p>{} videos stored.</p>", videos.len()));
        Response::html(page.render())
    }

    fn video_page(&self, request: &Request) -> Response {
        let Some(id) = request.param_u64("id") else {
            return Response::text(StatusCode::BadRequest, "missing ?id=N");
        };
        let mut db = match self.lock_db() {
            Ok(db) => db,
            Err(r) => return r,
        };
        let full = match db.get_video(id) {
            Ok(v) => v,
            Err(e) => return Response::text(StatusCode::NotFound, e.to_string()),
        };
        let kf_ids = db.key_frames_of_video(id).unwrap_or_default();
        let mut page = HtmlPage::new(&format!("video {id}: {}", full.v_name));
        page.push(&format!(
            "<p>stored at {} · container {} bytes · stream {} bytes</p>",
            full.row.dostore, full.row.video.len, full.row.stream.len
        ));
        page.push("<h2>key frames</h2><p>");
        for i_id in &kf_ids {
            page.push(&format!(
                "<a href=\"/keyframe?id={i_id}\"><img src=\"/keyframe?id={i_id}\" \
                 alt=\"key frame {i_id}\" width=\"160\"></a> "
            ));
        }
        page.push("</p>");
        // Per-key-frame rows with range and region info.
        page.push("<table><tr><th>i_id</th><th>name</th><th>min–max</th><th>major regions</th></tr>");
        for i_id in &kf_ids {
            if let Ok(row) = db.get_key_frame(*i_id) {
                page.push(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{}–{}</td><td>{}</td></tr>",
                    row.i_id,
                    html_escape(&row.i_name),
                    row.min,
                    row.max,
                    row.majorregions
                ));
            }
        }
        page.push("</table>");
        Response::html(page.render())
    }

    fn keyframe_image(&self, request: &Request) -> Response {
        let Some(id) = request.param_u64("id") else {
            return Response::text(StatusCode::BadRequest, "missing ?id=N");
        };
        let mut db = match self.lock_db() {
            Ok(db) => db,
            Err(r) => return r,
        };
        let row = match db.get_key_frame(id) {
            Ok(r) => r,
            Err(e) => return Response::text(StatusCode::NotFound, e.to_string()),
        };
        let bytes = match db.read_image_bytes(&row) {
            Ok(b) => b,
            Err(e) => return Response::text(StatusCode::InternalServerError, e.to_string()),
        };
        match cbvr_imgproc::decode_auto(&bytes) {
            Ok(img) => Response::bytes("image/bmp", encode_image(&img, ImageFormat::Bmp)),
            Err(e) => Response::text(StatusCode::InternalServerError, e.to_string()),
        }
    }

    fn search(&self, request: &Request) -> Response {
        let needle = request.param("name").unwrap_or("");
        let hits = self.engine.find_videos_by_name(needle);
        let mut page = HtmlPage::new(&format!("search: '{needle}'"));
        if hits.is_empty() {
            page.push("<p>no matches.</p>");
        } else {
            page.push("<ul>");
            for (v_id, name) in hits {
                page.push(&format!(
                    "<li><a href=\"/video?id={v_id}\">{}</a></li>",
                    html_escape(&name)
                ));
            }
            page.push("</ul>");
        }
        Response::html(page.render())
    }

    fn stats(&self) -> Response {
        let mut db = match self.lock_db() {
            Ok(db) => db,
            Err(r) => return r,
        };
        match db.stats() {
            Ok(s) => Response::text(
                StatusCode::Ok,
                format!(
                    "pages: {}\nvideos: {}\nkey frames: {}\ncatalog entries: {}\n\
                     segments: {}\ntombstones: {}",
                    s.pages,
                    s.videos,
                    s.key_frames,
                    self.engine.len(),
                    self.engine.segment_count(),
                    self.engine.tombstone_count(),
                ),
            ),
            Err(e) => Response::text(StatusCode::InternalServerError, e.to_string()),
        }
    }

    fn query(&self, request: &Request) -> Response {
        if request.body.is_empty() {
            return Response::text(StatusCode::BadRequest, "empty body: POST the query image bytes");
        }
        let frame = match cbvr_imgproc::decode_auto(&request.body) {
            Ok(f) => f,
            Err(e) => return Response::text(StatusCode::BadRequest, format!("bad image: {e}")),
        };
        let k = request.param_u64("k").unwrap_or(10) as usize;
        let weights = match request.param("feature") {
            None => FeatureWeights::default(),
            Some(name) => match FeatureKind::from_name(name) {
                Some(kind) => FeatureWeights::single(kind),
                None => {
                    return Response::text(
                        StatusCode::BadRequest,
                        format!("unknown feature '{name}'"),
                    )
                }
            },
        };
        let use_index = request.param("no_index").is_none();
        let abandon = request.param("no_abandon").is_none();
        let engine = &self.engine;
        let results = engine.query_frame(
            &frame,
            &QueryOptions { k, weights, use_index, abandon, ..Default::default() },
        );

        if request.param("format") == Some("json") {
            let items: Vec<String> = results
                .iter()
                .map(|m| {
                    format!(
                        "{{\"i_id\":{},\"v_id\":{},\"video\":\"{}\",\"score\":{:.6}}}",
                        m.i_id,
                        m.v_id,
                        json_escape(&engine.video_name(m.v_id).unwrap_or_else(|| "?".to_string())),
                        m.score
                    )
                })
                .collect();
            return Response::json(format!("{{\"matches\":[{}]}}", items.join(",")));
        }

        let mut page = HtmlPage::new("query results");
        page.push("<table><tr><th>rank</th><th>video</th><th>key frame</th><th>score</th></tr>");
        for (rank, m) in results.iter().enumerate() {
            page.push(&format!(
                "<tr><td>{}</td><td><a href=\"/video?id={}\">{}</a></td>\
                 <td><img src=\"/keyframe?id={}\" width=\"120\"></td><td>{:.4}</td></tr>",
                rank + 1,
                m.v_id,
                html_escape(&engine.video_name(m.v_id).unwrap_or_else(|| "?".to_string())),
                m.i_id,
                m.score
            ));
        }
        page.push("</table>");
        Response::html(page.render())
    }
}

/// The status-class counter a response increments (`web.status.2xx` …).
pub(crate) fn status_class_metric(status: StatusCode) -> &'static str {
    match status {
        StatusCode::Ok => "web.status.2xx",
        StatusCode::BadRequest
        | StatusCode::NotFound
        | StatusCode::MethodNotAllowed
        | StatusCode::PayloadTooLarge => "web.status.4xx",
        StatusCode::InternalServerError | StatusCode::ServiceUnavailable => "web.status.5xx",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_core::{ingest_video, IngestConfig};
    use cbvr_storage::backend::MemBackend;
    use cbvr_video::{Category, GeneratorConfig, VideoGenerator};
    use std::collections::BTreeMap;

    fn state() -> Arc<AppState<MemBackend>> {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let generator = VideoGenerator::new(GeneratorConfig {
            width: 48,
            height: 36,
            shots_per_video: 2,
            min_shot_frames: 3,
            max_shot_frames: 4,
            ..GeneratorConfig::default()
        })
        .unwrap();
        for (i, category) in [Category::Sports, Category::News].iter().enumerate() {
            let clip = generator.generate(*category, i as u64).unwrap();
            ingest_video(&mut db, &format!("{}_{i}", category.name()), &clip, &IngestConfig::default())
                .unwrap();
        }
        AppState::new(db).unwrap()
    }

    fn get(path: &str) -> Request {
        let (p, q) = path.split_once('?').unwrap_or((path, ""));
        Request {
            method: Method::Get,
            path: p.to_string(),
            query: crate::http::parse_query(q),
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    fn post(path: &str, body: Vec<u8>) -> Request {
        let mut r = get(path);
        r.method = Method::Post;
        r.body = body;
        r
    }

    fn body_str(r: &Response) -> String {
        String::from_utf8_lossy(&r.body).into_owned()
    }

    #[test]
    fn index_lists_videos() {
        let app = state();
        let r = app.handle(&get("/"));
        assert_eq!(r.status, StatusCode::Ok);
        let html = body_str(&r);
        assert!(html.contains("sports_0"), "{html}");
        assert!(html.contains("news_1"), "{html}");
        assert!(html.contains("2 videos stored"));
    }

    #[test]
    fn video_page_shows_keyframes() {
        let app = state();
        let r = app.handle(&get("/video?id=1"));
        assert_eq!(r.status, StatusCode::Ok);
        let html = body_str(&r);
        assert!(html.contains("/keyframe?id="), "{html}");
        assert!(html.contains("min–max") || html.contains("min"), "{html}");
        // Unknown id is a 404.
        assert_eq!(app.handle(&get("/video?id=99")).status, StatusCode::NotFound);
        assert_eq!(app.handle(&get("/video")).status, StatusCode::BadRequest);
    }

    #[test]
    fn keyframe_serves_bmp() {
        let app = state();
        let r = app.handle(&get("/keyframe?id=1"));
        assert_eq!(r.status, StatusCode::Ok);
        assert_eq!(r.content_type, "image/bmp");
        assert_eq!(&r.body[..2], b"BM");
        assert!(cbvr_imgproc::decode_auto(&r.body).is_ok());
    }

    #[test]
    fn search_finds_substrings() {
        let app = state();
        let html = body_str(&app.handle(&get("/search?name=SPORTS")));
        assert!(html.contains("sports_0"), "{html}");
        let html = body_str(&app.handle(&get("/search?name=zzz")));
        assert!(html.contains("no matches"), "{html}");
    }

    #[test]
    fn query_ranks_same_category_first() {
        let app = state();
        // Query with a stored key frame image: self-match tops the list.
        let kf = app.handle(&get("/keyframe?id=1"));
        let r = app.handle(&post("/query?k=3", kf.body.clone()));
        assert_eq!(r.status, StatusCode::Ok, "{}", body_str(&r));
        let html = body_str(&r);
        assert!(html.contains("1.0000"), "self match scores 1.0: {html}");

        // JSON format.
        let r = app.handle(&post("/query?k=2&format=json", kf.body.clone()));
        let json = body_str(&r);
        assert!(json.starts_with("{\"matches\":[{"), "{json}");
        assert!(json.contains("\"score\":1.000000"), "{json}");

        // Single-feature query.
        let r = app.handle(&post("/query?k=2&feature=gabor", kf.body.clone()));
        assert_eq!(r.status, StatusCode::Ok);
        // Unknown feature is a 400.
        let r = app.handle(&post("/query?feature=bogus", kf.body));
        assert_eq!(r.status, StatusCode::BadRequest);
    }

    #[test]
    fn query_rejects_garbage() {
        let app = state();
        assert_eq!(app.handle(&post("/query", Vec::new())).status, StatusCode::BadRequest);
        assert_eq!(
            app.handle(&post("/query", b"not an image".to_vec())).status,
            StatusCode::BadRequest
        );
        assert_eq!(app.handle(&get("/query")).status, StatusCode::MethodNotAllowed);
    }

    #[test]
    fn stats_and_unknown_routes() {
        let app = state();
        let r = app.handle(&get("/stats"));
        assert!(body_str(&r).contains("videos: 2"));
        assert_eq!(app.handle(&get("/nope")).status, StatusCode::NotFound);
    }

    #[test]
    fn html_is_escaped() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let generator = VideoGenerator::new(GeneratorConfig {
            width: 32,
            height: 24,
            shots_per_video: 1,
            min_shot_frames: 3,
            max_shot_frames: 3,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let clip = generator.generate(Category::Movie, 1).unwrap();
        ingest_video(&mut db, "<script>alert(1)</script>", &clip, &IngestConfig::default()).unwrap();
        let app = AppState::new(db).unwrap();
        let html = body_str(&app.handle(&get("/")));
        assert!(!html.contains("<script>alert"), "unescaped name: {html}");
        assert!(html.contains("&lt;script&gt;"));
    }

    #[test]
    fn reload_engine_sees_new_content() {
        let app = state();
        assert!(body_str(&app.handle(&get("/stats"))).contains("videos: 2"));
        {
            let mut db = app.db.lock().unwrap();
            let generator =
                VideoGenerator::new(GeneratorConfig { width: 32, height: 24, ..Default::default() })
                    .unwrap();
            let clip = generator.generate(Category::Cartoon, 9).unwrap();
            ingest_video(&mut db, "late", &clip, &IngestConfig::default()).unwrap();
        }
        app.reload_engine().unwrap();
        let html = body_str(&app.handle(&get("/")));
        assert!(html.contains("late"), "{html}");
    }

    #[test]
    fn health_reports_degradation_and_self_heals() {
        let (mut db, faults, _data, _wal) = CbvrDatabase::in_memory_with_faults().unwrap();
        let generator = VideoGenerator::new(GeneratorConfig {
            width: 32,
            height: 24,
            shots_per_video: 1,
            min_shot_frames: 3,
            max_shot_frames: 3,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let clip = generator.generate(Category::Sports, 1).unwrap();
        ingest_video(&mut db, "sports_0", &clip, &IngestConfig::default()).unwrap();
        let app = AppState::new(db).unwrap();
        assert_eq!(app.handle(&get("/health")).status, StatusCode::Ok);
        let degraded = app.telemetry().counter("storage.fault.degraded");
        let before = degraded.get();

        // Kill the data file mid-commit: the WAL record is durable, so
        // the ingest succeeds and the database degrades.
        {
            let mut db = app.db.lock().unwrap();
            faults.fail_after_writes(0);
            let clip = generator.generate(Category::News, 2).unwrap();
            ingest_video(&mut db, "news_1", &clip, &IngestConfig::default()).unwrap();
            assert!(db.is_degraded(), "data-file fault must degrade the db");
        }

        // The probe reports 503 (the data file is still sick, so the
        // heal attempt inside the handler fails) and counts it...
        let r = app.handle(&get("/health"));
        assert_eq!(r.status, StatusCode::ServiceUnavailable, "{}", body_str(&r));
        assert!(degraded.get() > before);

        // ...while read routes keep serving: catalog and search answer
        // from the pinned cache / engine snapshot.
        assert_eq!(app.handle(&get("/")).status, StatusCode::Ok);
        app.reload_engine().unwrap();
        let html = body_str(&app.handle(&get("/search?name=news")));
        assert!(html.contains("news_1"), "{html}");

        // Once the backend recovers, the next probe self-heals.
        faults.heal();
        assert_eq!(app.handle(&get("/health")).status, StatusCode::Ok);
        assert!(!app.db.lock().unwrap().is_degraded(), "probe must checkpoint the WAL");
    }

    #[test]
    fn poisoned_db_lock_yields_500_but_queries_still_serve() {
        let app = state();
        // Grab a self-match query image while the db is still healthy.
        let kf = app.handle(&get("/keyframe?id=1"));
        assert_eq!(kf.status, StatusCode::Ok);

        // Poison the db mutex the way a panicking handler would.
        let poisoner = Arc::clone(&app);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.db.lock().unwrap();
            panic!("poison the db lock");
        })
        .join();
        assert!(app.db.lock().is_err(), "lock should be poisoned");

        // db-backed routes answer 500 instead of killing the thread...
        for path in ["/", "/video?id=1", "/keyframe?id=1", "/stats", "/metrics"] {
            let r = app.handle(&get(path));
            assert_eq!(r.status, StatusCode::InternalServerError, "{path}");
            assert!(body_str(&r).contains("poisoned"), "{path}");
        }
        // ...while the lock-free engine routes keep serving.
        let html = body_str(&app.handle(&get("/search?name=sports")));
        assert!(html.contains("sports_0"), "{html}");
        let r = app.handle(&post("/query?k=2", kf.body));
        assert_eq!(r.status, StatusCode::Ok, "{}", body_str(&r));
    }
}
