//! `cbvr-web` binary: serve a database directory over HTTP.
//!
//! ```text
//! cbvr-web --db DIR [--addr 127.0.0.1:8080]
//! ```

use cbvr_storage::CbvrDatabase;
use cbvr_web::{AppState, Server};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut db_dir: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:8080".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--db" => {
                i += 1;
                db_dir = Some(PathBuf::from(&args[i]));
            }
            "--addr" => {
                i += 1;
                addr = args[i].clone();
            }
            other => {
                eprintln!("unknown flag {other}\nusage: cbvr-web --db DIR [--addr HOST:PORT]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(db_dir) = db_dir else {
        eprintln!("usage: cbvr-web --db DIR [--addr HOST:PORT]");
        std::process::exit(2);
    };

    let db = CbvrDatabase::open_dir(&db_dir).unwrap_or_else(|e| {
        eprintln!("cannot open database: {e}");
        std::process::exit(1);
    });
    let state = AppState::new(db).unwrap_or_else(|e| {
        eprintln!("cannot load catalog: {e}");
        std::process::exit(1);
    });
    let server = Server::start(state, &addr).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    println!("serving http://{}/ (ctrl-c to stop)", server.addr());
    loop {
        std::thread::park();
    }
}
