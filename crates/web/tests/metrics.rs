//! `/metrics` exposition golden tests.
//!
//! The exposition must be a *stable* plain-text format: one
//! `name value` pair per line, sorted, names escaped to single tokens —
//! so scrapers and shell pipelines can rely on it. A TestClock-driven
//! registry makes the interesting lines exactly reproducible, and the
//! real backpressure path must surface through
//! `web.backpressure.rejected`.

use cbvr_core::telemetry::{Registry, TestClock};
use cbvr_core::{ingest_video, IngestConfig};
use cbvr_storage::backend::MemBackend;
use cbvr_storage::CbvrDatabase;
use cbvr_video::{Category, GeneratorConfig, VideoGenerator};
use cbvr_web::server::ServerConfig;
use cbvr_web::{AppState, Method, Request, Server, StatusCode};
use std::collections::BTreeMap;
use std::sync::Arc;

fn seeded_db() -> CbvrDatabase<MemBackend> {
    let mut db = CbvrDatabase::in_memory().unwrap();
    let generator = VideoGenerator::new(GeneratorConfig {
        width: 48,
        height: 36,
        shots_per_video: 2,
        min_shot_frames: 3,
        max_shot_frames: 4,
        ..GeneratorConfig::default()
    })
    .unwrap();
    let clip = generator.generate(Category::Sports, 1).unwrap();
    ingest_video(&mut db, "metrics_clip", &clip, &IngestConfig::default()).unwrap();
    db
}

fn test_state() -> (Arc<AppState<MemBackend>>, Arc<TestClock>) {
    let clock = Arc::new(TestClock::new());
    let registry = Arc::new(Registry::with_clock(clock.clone()));
    let state = AppState::with_registry(seeded_db(), registry).unwrap();
    (state, clock)
}

fn get(path: &str) -> Request {
    Request {
        method: Method::Get,
        path: path.to_string(),
        query: Vec::new(),
        headers: BTreeMap::new(),
        body: Vec::new(),
    }
}

fn metric(body: &str, name: &str) -> Option<u64> {
    body.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .and_then(|v| v.parse().ok())
}

#[test]
fn metrics_lines_are_sorted_single_tokens() {
    let (state, _) = test_state();
    state.handle(&get("/"));
    state.handle(&get("/stats"));
    let response = state.handle(&get("/metrics"));
    assert_eq!(response.status, StatusCode::Ok);
    let body = String::from_utf8(response.body).unwrap();

    let lines: Vec<&str> = body.lines().collect();
    assert!(!lines.is_empty());
    let mut sorted = lines.clone();
    sorted.sort();
    assert_eq!(lines, sorted, "exposition must come out pre-sorted");
    for line in &lines {
        let (name, value) = line.split_once(' ').expect("name value pairs");
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.'),
            "unescaped metric name: {name}"
        );
        assert!(value.parse::<u64>().is_ok(), "non-integer value in: {line}");
    }
}

#[test]
fn request_counters_and_latency_are_deterministic_under_test_clock() {
    let (state, clock) = test_state();
    // Three routed requests, each "taking" a pinned duration.
    state.handle(&get("/"));
    state.handle(&get("/nope"));
    state.handle(&get("/stats"));
    clock.advance(0); // clock untouched during handling: latencies are 0

    let body = String::from_utf8(state.handle(&get("/metrics")).body).unwrap();
    assert_eq!(metric(&body, "web.requests.index"), Some(1));
    assert_eq!(metric(&body, "web.requests.other"), Some(1));
    assert_eq!(metric(&body, "web.requests.stats"), Some(1));
    assert_eq!(metric(&body, "web.status.2xx"), Some(2));
    assert_eq!(metric(&body, "web.status.4xx"), Some(1));
    assert_eq!(metric(&body, "web.request_nanos.count"), Some(3));
    assert_eq!(metric(&body, "web.request_nanos.sum"), Some(0));
    assert_eq!(metric(&body, "web.request_nanos.p99"), Some(0));

    // The /metrics request itself is excluded from its own snapshot but
    // counted in the next one.
    let body = String::from_utf8(state.handle(&get("/metrics")).body).unwrap();
    assert_eq!(metric(&body, "web.requests.metrics"), Some(1));
    assert_eq!(metric(&body, "web.request_nanos.count"), Some(4));
}

#[test]
fn metrics_includes_engine_and_storage_counters() {
    let (state, _) = test_state();
    let body = String::from_utf8(state.handle(&get("/metrics")).body).unwrap();
    // The engine reports into the state's registry…
    assert_eq!(metric(&body, "query.frame.requests"), Some(0));
    // …and the storage engine's own counters are merged in. The ingest
    // in `seeded_db` committed real pages through the WAL.
    let commits = metric(&body, "storage.wal.commits").expect("storage lines merged");
    assert!(commits >= 1, "ingest must have committed: {commits}");
    assert!(metric(&body, "storage.wal.bytes").unwrap() > 0);
    assert_eq!(metric(&body, "storage.wal.replays"), Some(0), "clean open never replays");
}

#[test]
fn repeated_snapshots_are_byte_identical_when_idle() {
    let (state, _) = test_state();
    state.handle(&get("/"));
    let first = state.handle(&get("/metrics"));
    let second = state.handle(&get("/metrics"));
    // Between the two snapshots exactly one request (the first /metrics)
    // was recorded; strip the lines it changes and the rest must match
    // byte-for-byte.
    let changing = ["web.requests.metrics ", "web.request_nanos.", "web.status.2xx "];
    let stable = |r: &[u8]| -> String {
        String::from_utf8(r.to_vec())
            .unwrap()
            .lines()
            .filter(|l| !changing.iter().any(|p| l.starts_with(p)))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(stable(&first.body), stable(&second.body));
}

#[test]
fn backpressure_rejections_surface_in_metrics() {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    let (state, _) = test_state();
    let server = Server::start_with(
        Arc::clone(&state),
        "127.0.0.1:0",
        &ServerConfig { workers: 1, queue_capacity: 1 },
    )
    .unwrap();

    // Park the only handler on a half-sent request.
    let mut busy = TcpStream::connect(server.addr()).unwrap();
    write!(busy, "GET / HTTP/1.1\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // Flood until the bounded queue answers a real 503.
    let mut held = Vec::new();
    let mut got_503 = false;
    for _ in 0..10 {
        let mut c = TcpStream::connect(server.addr()).unwrap();
        write!(c, "GET / HTTP/1.1\r\n\r\n").unwrap();
        c.set_read_timeout(Some(Duration::from_millis(300))).unwrap();
        let mut buf = [0u8; 128];
        match c.read(&mut buf) {
            Ok(n) if n > 0 => {
                assert!(String::from_utf8_lossy(&buf[..n]).starts_with("HTTP/1.1 503"));
                got_503 = true;
                break;
            }
            _ => held.push(c),
        }
    }
    assert!(got_503, "bounded queue never pushed back");

    // The rejection went through the real accept-loop path and must be
    // visible both on the server handle and in the registry.
    let rejected = state.telemetry().counter("web.backpressure.rejected").get();
    assert!(rejected >= 1, "rejection counter not incremented");
    assert_eq!(rejected, server.rejected_count());
    assert!(state.telemetry().counter("web.status.5xx").get() >= rejected);

    // Unblock the handler and confirm /metrics itself reports it.
    write!(busy, "\r\n").unwrap();
    let mut out = Vec::new();
    busy.read_to_end(&mut out).unwrap();
    drop(held);
    let body = String::from_utf8(state.handle(&get("/metrics")).body).unwrap();
    assert!(metric(&body, "web.backpressure.rejected").unwrap() >= 1);
    server.stop();
}
