//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the criterion 0.5 surface its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each `iter` call warms up briefly, sizes a batch so
//! one sample takes a few milliseconds, then records `sample_size` samples
//! and reports the median, min and max nanoseconds per iteration. There is
//! no statistical regression analysis or HTML report — numbers print to
//! stdout in a `group/name/param  time: [...]` line, and a positional CLI
//! argument filters benchmarks by substring (so
//! `cargo bench --bench retrieval -- query_parallel` works as expected).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver; owns the CLI filter.
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Build from process arguments, keeping the first non-flag argument
    /// as a substring filter (flags like `--bench` are cargo plumbing).
    pub fn from_args() -> Criterion {
        let filter = std::env::args()
            .skip(1)
            .find(|arg| !arg.starts_with('-'));
        Criterion { filter }
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion::from_args()
    }
}

/// Identifier for a parameterised benchmark: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("lookup", 1024)` renders as `lookup/1024`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples collected per benchmark (default 100).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        if self.criterion.matches(&full) {
            let mut bencher = Bencher::new(self.sample_size);
            f(&mut bencher);
            bencher.report(&full);
        }
        self
    }

    /// Run a benchmark against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.matches(&full) {
            let mut bencher = Bencher::new(self.sample_size);
            f(&mut bencher, input);
            bencher.report(&full);
        }
        self
    }

    /// End the group (retained for API compatibility; prints nothing).
    pub fn finish(&mut self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher { sample_size, samples_ns: Vec::new() }
    }

    /// Time the closure: warm up, pick a batch size targeting a few
    /// milliseconds per sample, then record `sample_size` samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run until ~50ms elapse (at least once) to fault in
        // caches and give an estimate of the per-iteration cost.
        let warmup_budget = Duration::from_millis(50);
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters == 0 || warmup_start.elapsed() < warmup_budget {
            black_box(f());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64).max(1.0);

        // Size each sample at ~5ms, bounded so the whole benchmark stays
        // near a couple of seconds even for very fast bodies.
        let target_sample_ns = 5_000_000.0_f64;
        let iters_per_sample = ((target_sample_ns / est_ns) as u64).clamp(1, 5_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters_per_sample as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<50} (no samples: iter was never called)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{id:<50} time: [{} {} {}]",
            format_ns(min),
            format_ns(median),
            format_ns(max)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` invoking each `criterion_group!` runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("lookup", 1024).id, "lookup/1024");
        let label = String::from("64x64");
        assert_eq!(BenchmarkId::new("histogram", &label).id, "histogram/64x64");
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut bencher = Bencher::new(5);
        bencher.iter(|| black_box(3u64).wrapping_mul(7));
        assert_eq!(bencher.samples_ns.len(), 5);
        assert!(bencher.samples_ns.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn filter_matches_substrings() {
        let criterion = Criterion { filter: Some("topk".into()) };
        assert!(criterion.matches("retrieval/topk/4t"));
        assert!(!criterion.matches("retrieval/full_sort"));
        let unfiltered = Criterion { filter: None };
        assert!(unfiltered.matches("anything"));
    }
}
