//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of the rand 0.8 API it actually uses: [`SeedableRng`],
//! the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`, and
//! the [`rngs::SmallRng`] / [`rngs::StdRng`] generators. Both generators
//! are deterministic splitmix64/xoshiro256++ — statistically solid for
//! synthetic-corpus generation and tests, not cryptographic.
//!
//! Determinism contract: for a fixed seed the output stream is stable
//! across runs and platforms (the corpus generator and the noisy-judge
//! model rely on this).
#![warn(missing_docs)]

pub mod rngs;

/// A random number generator core: the uniform `u64` source.
pub trait RngCore {
    /// The next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`]. Generic over the element
/// type so integer literals infer from the call site, as in real rand.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// A uniform value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9u8);
            assert!((3..9).contains(&v));
            let v = rng.gen_range(-8..8);
            assert!((-8..8).contains(&v));
            let v = rng.gen_range(2..=6usize);
            assert!((2..=6).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).map(|_| rng.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| rng.gen_bool(1.0)).all(|b| b));
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
