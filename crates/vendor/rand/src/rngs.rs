//! The generators: xoshiro256++ behind both [`SmallRng`] and [`StdRng`].

use crate::{RngCore, SeedableRng};

/// xoshiro256++ state, seeded via splitmix64.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Xoshiro256 {
        // splitmix64 expansion of the 64-bit seed into 256 bits of state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The small, fast generator (matches the role of rand's `SmallRng`).
#[derive(Clone, Debug)]
pub struct SmallRng(Xoshiro256);

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng(Xoshiro256::from_u64(seed))
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// The default generator (matches the role of rand's `StdRng`).
#[derive(Clone, Debug)]
pub struct StdRng(Xoshiro256);

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // Domain-separate from SmallRng so the two never correlate.
        StdRng(Xoshiro256::from_u64(seed ^ 0xA076_1D64_78BD_642F))
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
