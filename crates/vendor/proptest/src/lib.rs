//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the proptest 1.x surface it actually uses: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`Just`], `prop_oneof!` (weighted and unweighted), string-literal
//! strategies for simple character-class patterns, `collection::vec`,
//! `any::<T>()` for primitive types and [`sample::Index`], and the
//! `proptest!` test macro.
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failing case panics with the regular assert
//!   message; the per-test RNG seed is a stable hash of the test path, so
//!   failures reproduce deterministically run-to-run.
//! - String patterns are interpreted by a tiny character-class generator
//!   (`".*"`, `"[ -~]{0,60}"` and friends), not a full regex engine.

use rand::rngs::SmallRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = SmallRng;

/// A generator of test values.
///
/// Unlike real proptest there is no value tree: `new_value` draws a fresh
/// value directly and failing cases are not shrunk.
pub trait Strategy {
    /// The type of values this strategy yields.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feed generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Box the strategy, erasing its concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`] / `prop_oneof!`.
trait DynStrategy<V> {
    fn new_value_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn new_value_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.inner.new_value_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String strategy from a pattern literal.
///
/// Supported grammar (enough for this workspace's tests): `".*"` for
/// arbitrary strings, and `"[<ranges>]{lo,hi}"` where `<ranges>` is a list
/// of chars or `a-z` spans and `{lo,hi}` bounds the length. A bare class
/// (no repetition) yields one char; anything else falls back to arbitrary.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        pattern_string(self, rng)
    }
}

fn pattern_string(pattern: &str, rng: &mut TestRng) -> String {
    if let Some((class, lo, hi)) = parse_class_pattern(pattern) {
        let len = rng.gen_range(lo..=hi);
        return (0..len).map(|_| class[rng.gen_range(0..class.len())]).collect();
    }
    // ".*" or any unrecognised pattern: arbitrary string, mixing ASCII,
    // whitespace/control, and multi-byte unicode.
    let len = rng.gen_range(0usize..=48);
    (0..len)
        .map(|_| match rng.gen_range(0u32..10) {
            0 => char::from(rng.gen_range(0u8..0x20)), // control chars incl \n \r \t
            1 => ['é', 'λ', '中', '🎥', '\u{7f}', '"', '\\'][rng.gen_range(0usize..7)],
            _ => char::from(rng.gen_range(0x20u8..0x7f)),
        })
        .collect()
}

/// Parse `[<ranges>]{lo,hi}` / `[<ranges>]{n}` / `[<ranges>]` patterns.
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class_src, tail) = rest.split_at(close);
    let tail = &tail[1..];

    let mut class = Vec::new();
    let chars: Vec<char> = class_src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            for c in lo..=hi {
                class.push(c);
            }
            i += 3;
        } else {
            class.push(chars[i]);
            i += 1;
        }
    }
    if class.is_empty() {
        return None;
    }

    if tail.is_empty() {
        return Some((class, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((class, lo, hi))
}

/// Types with a canonical "any value" strategy, see [`any`].
pub trait Arbitrary: Sized {
    /// The strategy produced by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for the full value range of a primitive type.
pub struct AnyPrimitive<T>(PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The canonical strategy for `T`: `any::<u8>()`, `any::<sample::Index>()`, …
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: an exact `usize` or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "vec size range is empty");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from the size spec.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element drawn from `element`, length from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{AnyPrimitive, Arbitrary, Strategy, TestRng};
    use rand::Rng;
    use std::marker::PhantomData;

    /// An index into a collection whose length is only known at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of `len` elements. Panics on 0.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Strategy for AnyPrimitive<Index> {
        type Value = Index;
        fn new_value(&self, rng: &mut TestRng) -> Index {
            Index(rng.gen())
        }
    }

    impl Arbitrary for Index {
        type Strategy = AnyPrimitive<Index>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(PhantomData)
        }
    }
}

/// Module-path aliases so `prop::sample::Index` etc. resolve.
pub mod prop {
    pub use crate::{collection, sample};
}

/// Weighted union of strategies; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn DynStrategy<V>>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Empty union; populate with [`Union::arm`].
    pub fn new() -> Union<V> {
        Union { arms: Vec::new(), total_weight: 0 }
    }

    /// Add an arm with the given relative weight.
    pub fn arm<S>(mut self, weight: u32, strategy: S) -> Union<V>
    where
        S: Strategy<Value = V> + 'static,
    {
        assert!(weight > 0, "prop_oneof! arm weight must be positive");
        self.arms.push((weight, Box::new(strategy)));
        self.total_weight += u64::from(weight);
        self
    }
}

impl<V> Default for Union<V> {
    fn default() -> Union<V> {
        Union::new()
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, arm) in &self.arms {
            if pick < u64::from(*weight) {
                return arm.new_value_dyn(rng);
            }
            pick -= u64::from(*weight);
        }
        unreachable!("weighted pick out of range")
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::TestRng;
    use rand::SeedableRng;

    /// Deterministic RNG for a test, seeded from its module path + name.
    /// Stable across runs so failures reproduce.
    pub fn rng_for(test_path: &str) -> TestRng {
        let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for byte in test_path.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::seed_from_u64(hash)
    }
}

/// Define property tests: each `fn name(x in strategy, ...)` body runs for
/// `cases` random draws (default 256, override with `#![proptest_config]`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::new_value(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Choose among strategies, optionally weighted: `prop_oneof![a, b]` or
/// `prop_oneof![3 => a, 1 => b]`. All arms must yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new()$(.arm($weight, $strategy))+
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new()$(.arm(1, $strategy))+
    };
}

/// Assert within a property body (no shrinking; plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property body (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// The glob-import surface test files expect.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::rng_for;

    #[test]
    fn class_pattern_respects_bounds_and_alphabet() {
        let mut rng = rng_for("class_pattern");
        for _ in 0..200 {
            let s = Strategy::new_value(&"[ -~]{0,60}", &mut rng);
            assert!(s.chars().count() <= 60);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn dot_star_generates_varied_strings() {
        let mut rng = rng_for("dot_star");
        let samples: Vec<String> =
            (0..100).map(|_| Strategy::new_value(&".*", &mut rng)).collect();
        assert!(samples.iter().any(|s| s.is_empty()));
        assert!(samples.iter().any(|s| !s.is_empty()));
    }

    #[test]
    fn union_honours_weights_roughly() {
        let strategy = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let mut rng = rng_for("union_weights");
        let ones = (0..1000)
            .filter(|_| Strategy::new_value(&strategy, &mut rng) == 1)
            .count();
        assert!((800..1000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn vec_and_flat_map_compose() {
        let strategy = (1usize..5).prop_flat_map(|n| {
            super::collection::vec(0u8..10, n).prop_map(move |v| (n, v))
        });
        let mut rng = rng_for("vec_flat_map");
        for _ in 0..100 {
            let (n, v) = Strategy::new_value(&strategy, &mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&b| b < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_multiple_args(a in 0u64..100, b in 0.0f64..1.0, idx in any::<prop::sample::Index>()) {
            prop_assert!(a < 100);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert_eq!(idx.index(7) < 7, true);
        }
    }
}
