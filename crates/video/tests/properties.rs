//! Property tests for the VSC container and frame codecs.

use cbvr_imgproc::RgbImage;
use cbvr_video::codec::{decode_frame, encode_frame, rle_decode, rle_encode, FrameCodec};
use cbvr_video::mc::{decode_frame_mc, encode_frame_mc};
use cbvr_video::{decode_vsc, encode_vsc, Video};
use proptest::prelude::*;

fn arb_frame(w: u32, h: u32) -> impl Strategy<Value = RgbImage> {
    proptest::collection::vec(any::<u8>(), (w * h * 3) as usize)
        .prop_map(move |data| RgbImage::from_raw(w, h, data).expect("exact length"))
}

fn arb_video() -> impl Strategy<Value = Video> {
    (2u32..24, 2u32..24, 1usize..6).prop_flat_map(|(w, h, n)| {
        proptest::collection::vec(arb_frame(w, h), n)
            .prop_map(|frames| Video::new(25, frames).expect("valid"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rle_round_trips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let enc = rle_encode(&data);
        prop_assert_eq!(rle_decode(&enc, data.len()).unwrap(), data);
    }

    #[test]
    fn vsc_round_trips_arbitrary_videos(video in arb_video()) {
        for codec in [FrameCodec::Raw, FrameCodec::Rle, FrameCodec::Delta, FrameCodec::MotionComp] {
            let bytes = encode_vsc(&video, codec);
            prop_assert_eq!(decode_vsc(&bytes).unwrap(), video.clone());
        }
    }

    #[test]
    fn frame_codecs_round_trip_pairs(a in arb_frame(20, 14), b in arb_frame(20, 14)) {
        for codec in [FrameCodec::Raw, FrameCodec::Rle, FrameCodec::Delta, FrameCodec::MotionComp] {
            let enc = encode_frame(codec, &b, Some(&a));
            let dec = decode_frame(codec, &enc, 20, 14, Some(&a)).unwrap();
            prop_assert_eq!(&dec, &b);
        }
    }

    #[test]
    fn mc_is_lossless_for_arbitrary_content(a in arb_frame(33, 17), b in arb_frame(33, 17)) {
        // Odd dimensions force partial blocks; MC must stay exact.
        let enc = encode_frame_mc(&b, Some(&a));
        prop_assert_eq!(decode_frame_mc(&enc, 33, 17, Some(&a)).unwrap(), b);
    }

    #[test]
    fn truncated_streams_never_panic(video in arb_video(), cut in 0usize..200) {
        let bytes = encode_vsc(&video, FrameCodec::Delta);
        let cut = cut.min(bytes.len());
        // Must return Ok (full stream) or Err — never panic.
        let _ = decode_vsc(&bytes[..bytes.len() - cut]);
    }

    #[test]
    fn corrupted_byte_never_panics(video in arb_video(), pos in any::<prop::sample::Index>(), val in any::<u8>()) {
        let mut bytes = encode_vsc(&video, FrameCodec::MotionComp);
        let i = pos.index(bytes.len());
        bytes[i] = val;
        let _ = decode_vsc(&bytes); // Ok or Err, no panic
    }
}
