//! Error type for video encoding, decoding and generation.

use std::fmt;

/// Errors produced by the VSC container, frame codecs and generator.
#[derive(Debug)]
pub enum VideoError {
    /// The byte stream is not a valid VSC container.
    Container(String),
    /// A frame payload failed to decode.
    FrameCodec(String),
    /// Generator configuration is inconsistent (zero frames, zero fps, ...).
    Config(String),
    /// Propagated image error.
    Image(cbvr_imgproc::ImgError),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for VideoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VideoError::Container(m) => write!(f, "VSC container error: {m}"),
            VideoError::FrameCodec(m) => write!(f, "frame codec error: {m}"),
            VideoError::Config(m) => write!(f, "generator config error: {m}"),
            VideoError::Image(e) => write!(f, "image error: {e}"),
            VideoError::Io(e) => write!(f, "video i/o error: {e}"),
        }
    }
}

impl std::error::Error for VideoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VideoError::Image(e) => Some(e),
            VideoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cbvr_imgproc::ImgError> for VideoError {
    fn from(e: cbvr_imgproc::ImgError) -> Self {
        VideoError::Image(e)
    }
}

impl From<std::io::Error> for VideoError {
    fn from(e: std::io::Error) -> Self {
        VideoError::Io(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, VideoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(VideoError::Container("bad magic".into()).to_string().contains("bad magic"));
        assert!(VideoError::Config("zero fps".into()).to_string().contains("zero fps"));
    }

    #[test]
    fn image_error_converts_and_chains() {
        use std::error::Error;
        let e: VideoError = cbvr_imgproc::ImgError::Decode("x".into()).into();
        assert!(e.source().is_some());
    }
}
