//! # cbvr-video — video container, codecs and synthetic footage
//!
//! The paper ingests MPEG/AVI clips downloaded from archive.org and runs
//! them through a "video to jpeg converter" before key-frame extraction.
//! Neither the footage nor ffmpeg is available offline, so this crate
//! provides (per the substitution table in DESIGN.md):
//!
//! - **VSC**, a from-scratch video container ([`container`]) with raw,
//!   run-length and temporal-delta frame codecs ([`codec`]) — the
//!   `VIDEO` / `ORD_Video` blob the storage layer persists;
//! - a **synthetic generator** ([`synth`]) that renders category-styled
//!   clips (e-learning, sports, cartoon, movie, news) with scripted scene
//!   cuts. Categories double as retrieval ground truth: a frame is
//!   *relevant* to a query iff their source videos share a category,
//!   which is exactly the relevance judgement of the paper's user study;
//! - quality metrics ([`quality`]) to verify the codecs are lossless.
//!
//! The feature extractors downstream consume only decoded [`cbvr_imgproc::RgbImage`]
//! frames, so nothing in the retrieval pipeline depends on VSC itself.
#![warn(missing_docs)]


pub mod codec;
pub mod container;
pub mod error;
pub mod mc;
pub mod quality;
pub mod synth;
pub mod video;

pub use codec::FrameCodec;
pub use container::{decode_vsc, encode_vsc, VscReader};
pub use error::{Result, VideoError};
pub use synth::{Category, GeneratorConfig, SceneScript, VideoGenerator};
pub use video::Video;
