//! Frame quality metrics used to validate codecs and to measure how far
//! apart two frames are (mean-squared error, PSNR).

use crate::error::{Result, VideoError};
use cbvr_imgproc::RgbImage;

/// Mean squared error across all channels of two same-sized frames.
pub fn mse(a: &RgbImage, b: &RgbImage) -> Result<f64> {
    if a.dimensions() != b.dimensions() {
        return Err(VideoError::Config(format!(
            "mse dimension mismatch: {:?} vs {:?}",
            a.dimensions(),
            b.dimensions()
        )));
    }
    let sum: u64 = a
        .as_raw()
        .iter()
        .zip(b.as_raw())
        .map(|(&x, &y)| {
            let d = x as i64 - y as i64;
            (d * d) as u64
        })
        .sum();
    Ok(sum as f64 / a.as_raw().len() as f64)
}

/// Peak signal-to-noise ratio in dB; `f64::INFINITY` for identical frames.
pub fn psnr(a: &RgbImage, b: &RgbImage) -> Result<f64> {
    let m = mse(a, b)?;
    if m == 0.0 {
        Ok(f64::INFINITY)
    } else {
        Ok(10.0 * (255.0f64 * 255.0 / m).log10())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_imgproc::Rgb;

    #[test]
    fn identical_frames_have_infinite_psnr() {
        let f = RgbImage::filled(8, 8, Rgb::new(1, 2, 3)).unwrap();
        assert_eq!(mse(&f, &f).unwrap(), 0.0);
        assert!(psnr(&f, &f).unwrap().is_infinite());
    }

    #[test]
    fn known_mse() {
        let a = RgbImage::filled(2, 2, Rgb::new(10, 10, 10)).unwrap();
        let b = RgbImage::filled(2, 2, Rgb::new(13, 10, 10)).unwrap();
        // One channel off by 3 → 9, averaged over 3 channels → 3.
        assert!((mse(&a, &b).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let a = RgbImage::filled(8, 8, Rgb::new(100, 100, 100)).unwrap();
        let b = RgbImage::filled(8, 8, Rgb::new(105, 100, 100)).unwrap();
        let c = RgbImage::filled(8, 8, Rgb::new(150, 100, 100)).unwrap();
        assert!(psnr(&a, &b).unwrap() > psnr(&a, &c).unwrap());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = RgbImage::new(4, 4).unwrap();
        let b = RgbImage::new(4, 5).unwrap();
        assert!(mse(&a, &b).is_err());
        assert!(psnr(&a, &b).is_err());
    }
}
