//! VSC — the on-disk/in-blob video container.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "VSC1"
//! 4       4     width
//! 8       4     height
//! 12      4     fps
//! 16      4     frame count N
//! 20      1     codec wire id
//! 21      3     reserved (zero)
//! 24      8*N   frame payload lengths (u64 each)
//! ...           N frame payloads, concatenated
//! ```
//!
//! The explicit length table lets a reader seek to intra-coded frames and
//! lets corruption be detected before any payload is touched. This is the
//! byte stream stored in the `VIDEO` column of `VIDEO_STORE` (§3.4).

use crate::codec::{decode_frame, encode_frame, FrameCodec};
use crate::error::{Result, VideoError};
use crate::video::Video;
use cbvr_imgproc::RgbImage;

const MAGIC: &[u8; 4] = b"VSC1";
const HEADER_LEN: usize = 24;

/// Serialise a video into a VSC byte stream with the given frame codec.
pub fn encode_vsc(video: &Video, codec: FrameCodec) -> Vec<u8> {
    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(video.frame_count());
    let mut prev: Option<&RgbImage> = None;
    for frame in video.frames() {
        payloads.push(encode_frame(codec, frame, prev));
        prev = Some(frame);
    }

    let total: usize = payloads.iter().map(Vec::len).sum();
    let mut out = Vec::<u8>::with_capacity(HEADER_LEN + 8 * payloads.len() + total);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(video.width()).to_le_bytes());
    out.extend_from_slice(&(video.height()).to_le_bytes());
    out.extend_from_slice(&(video.fps()).to_le_bytes());
    out.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
    out.push(codec.wire_id());
    out.extend_from_slice(&[0u8; 3]);
    for p in &payloads {
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
    }
    for p in &payloads {
        out.extend_from_slice(p);
    }
    out
}

/// Parsed VSC header plus the frame length table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VscHeader {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Frames per second.
    pub fps: u32,
    /// Number of frames in the stream.
    pub frame_count: u32,
    /// Payload codec.
    pub codec: FrameCodec,
    /// Byte length of each frame payload, in order.
    pub frame_lens: Vec<u64>,
}

fn parse_header(data: &[u8]) -> Result<(VscHeader, usize)> {
    if data.len() < HEADER_LEN {
        return Err(VideoError::Container("stream shorter than header".into()));
    }
    if &data[..4] != MAGIC {
        return Err(VideoError::Container("bad magic (expected VSC1)".into()));
    }
    let u32_at = |o: usize| u32::from_le_bytes([data[o], data[o + 1], data[o + 2], data[o + 3]]);
    let width = u32_at(4);
    let height = u32_at(8);
    let fps = u32_at(12);
    let frame_count = u32_at(16);
    let codec = FrameCodec::from_wire_id(data[20])?;
    if width == 0 || height == 0 || fps == 0 {
        return Err(VideoError::Container(format!(
            "bad geometry {width}x{height}@{fps}fps"
        )));
    }

    let table_end = HEADER_LEN
        .checked_add(frame_count as usize * 8)
        .ok_or_else(|| VideoError::Container("length table overflow".into()))?;
    if data.len() < table_end {
        return Err(VideoError::Container("length table truncated".into()));
    }
    let mut frame_lens = Vec::with_capacity(frame_count as usize);
    for i in 0..frame_count as usize {
        let o = HEADER_LEN + i * 8;
        frame_lens.push(u64::from_le_bytes(data[o..o + 8].try_into().expect("8 bytes")));
    }
    Ok((VscHeader { width, height, fps, frame_count, codec, frame_lens }, table_end))
}

/// Streaming VSC reader: decodes frames one at a time without
/// materialising the whole clip.
pub struct VscReader<'a> {
    header: VscHeader,
    payloads: &'a [u8],
    cursor: usize,
    next_frame: usize,
    prev: Option<RgbImage>,
}

impl<'a> VscReader<'a> {
    /// Open a VSC byte stream, validating the header and total length.
    pub fn open(data: &'a [u8]) -> Result<Self> {
        let (header, table_end) = parse_header(data)?;
        let body = &data[table_end..];
        let need: u64 = header.frame_lens.iter().sum();
        if (body.len() as u64) < need {
            return Err(VideoError::Container(format!(
                "payload truncated: need {need} bytes, have {}",
                body.len()
            )));
        }
        Ok(VscReader { header, payloads: body, cursor: 0, next_frame: 0, prev: None })
    }

    /// The parsed header.
    pub fn header(&self) -> &VscHeader {
        &self.header
    }

    /// Decode the next frame, or `None` at end of stream.
    pub fn next_frame(&mut self) -> Result<Option<RgbImage>> {
        if self.next_frame >= self.header.frame_count as usize {
            return Ok(None);
        }
        let len = self.header.frame_lens[self.next_frame] as usize;
        let payload = &self.payloads[self.cursor..self.cursor + len];
        let frame = decode_frame(
            self.header.codec,
            payload,
            self.header.width,
            self.header.height,
            self.prev.as_ref(),
        )?;
        self.cursor += len;
        self.next_frame += 1;
        self.prev = Some(frame.clone());
        Ok(Some(frame))
    }
}

/// Decode an entire VSC stream into an in-memory [`Video`].
pub fn decode_vsc(data: &[u8]) -> Result<Video> {
    let mut reader = VscReader::open(data)?;
    let fps = reader.header().fps;
    let mut frames = Vec::with_capacity(reader.header().frame_count as usize);
    while let Some(f) = reader.next_frame()? {
        frames.push(f);
    }
    Video::new(fps, frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_imgproc::Rgb;

    fn clip(n: usize) -> Video {
        let frames: Vec<RgbImage> = (0..n)
            .map(|i| {
                RgbImage::from_fn(16, 12, |x, y| {
                    Rgb::new((x * 10 + i as u32) as u8, (y * 10) as u8, i as u8)
                })
                .unwrap()
            })
            .collect();
        Video::new(24, frames).unwrap()
    }

    #[test]
    fn round_trip_all_codecs() {
        let v = clip(6);
        for codec in [FrameCodec::Raw, FrameCodec::Rle, FrameCodec::Delta, FrameCodec::MotionComp] {
            let bytes = encode_vsc(&v, codec);
            let back = decode_vsc(&bytes).unwrap();
            assert_eq!(back, v, "{codec:?}");
        }
    }

    #[test]
    fn header_fields_survive() {
        let v = clip(3);
        let bytes = encode_vsc(&v, FrameCodec::Delta);
        let reader = VscReader::open(&bytes).unwrap();
        let h = reader.header();
        assert_eq!((h.width, h.height, h.fps, h.frame_count), (16, 12, 24, 3));
        assert_eq!(h.codec, FrameCodec::Delta);
        assert_eq!(h.frame_lens.len(), 3);
    }

    #[test]
    fn streaming_matches_batch() {
        let v = clip(5);
        let bytes = encode_vsc(&v, FrameCodec::Delta);
        let mut reader = VscReader::open(&bytes).unwrap();
        let mut i = 0;
        while let Some(f) = reader.next_frame().unwrap() {
            assert_eq!(&f, v.frame(i).unwrap(), "frame {i}");
            i += 1;
        }
        assert_eq!(i, 5);
        assert!(reader.next_frame().unwrap().is_none(), "reader stays exhausted");
    }

    #[test]
    fn rejects_bad_magic() {
        let v = clip(1);
        let mut bytes = encode_vsc(&v, FrameCodec::Raw);
        bytes[0] = b'X';
        assert!(decode_vsc(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let v = clip(4);
        let bytes = encode_vsc(&v, FrameCodec::Rle);
        // Header truncation.
        assert!(decode_vsc(&bytes[..10]).is_err());
        // Table truncation.
        assert!(decode_vsc(&bytes[..HEADER_LEN + 4]).is_err());
        // Payload truncation.
        assert!(decode_vsc(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn rejects_zero_geometry() {
        let v = clip(1);
        let mut bytes = encode_vsc(&v, FrameCodec::Raw);
        bytes[4..8].copy_from_slice(&0u32.to_le_bytes()); // width = 0
        assert!(decode_vsc(&bytes).is_err());
    }

    #[test]
    fn delta_stream_is_smaller_for_static_content() {
        let frames = vec![RgbImage::filled(32, 32, Rgb::new(10, 20, 30)).unwrap(); 20];
        let v = Video::new(25, frames).unwrap();
        let raw = encode_vsc(&v, FrameCodec::Raw);
        let delta = encode_vsc(&v, FrameCodec::Delta);
        // The intra frame RLE-codes interleaved RGB poorly, but the 19
        // all-zero residual frames shrink to almost nothing.
        assert!(delta.len() * 4 < raw.len(), "raw {} vs delta {}", raw.len(), delta.len());
    }
}
