//! Synthetic, category-styled video generation.
//!
//! The paper evaluates on clips downloaded from archive.org in "different
//! categories of images like e-learning, sports, cartoon, movies, etc."
//! (§5). Those clips are unavailable offline, so this module renders
//! procedural stand-ins whose *low-level statistics* separate by category
//! the same way real footage does:
//!
//! | category   | signature |
//! |------------|-----------|
//! | e-learning | bright slide background, dark text blocks, low motion |
//! | sports     | green field, white markings, fast-moving players/ball |
//! | cartoon    | few flat saturated colors, thick outlines, low texture entropy |
//! | movie      | dark smooth gradients, slow pans, vignette |
//! | news       | blue studio gradient, lower-third banner, static anchor |
//!
//! Because the extractors downstream measure exactly color distribution
//! (histogram, correlogram), texture (GLCM, Gabor, Tamura) and region
//! structure (region growing), these signatures drive retrieval behaviour
//! the way the paper's categories do. Category labels double as relevance
//! ground truth for precision@k (see `cbvr-eval`).
//!
//! Every video is a [`SceneScript`] — a list of shots with hard cuts
//! between them — rendered deterministically from a seed, so corpora are
//! reproducible bit-for-bit.

use crate::error::{Result, VideoError};
use crate::video::Video;
use cbvr_imgproc::draw;
use cbvr_imgproc::{hsv_to_rgb, Rgb, RgbImage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Video category; doubles as the ground-truth relevance label.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Slides with text: bright, static.
    ELearning,
    /// Field sports: green, fast motion.
    Sports,
    /// Animation: flat saturated regions.
    Cartoon,
    /// Film: dark gradients, slow pans.
    Movie,
    /// Studio news: blue set, banner, anchor.
    News,
}

impl Category {
    /// All categories, in a stable order.
    pub const ALL: [Category; 5] =
        [Category::ELearning, Category::Sports, Category::Cartoon, Category::Movie, Category::News];

    /// Human-readable name (used in video names and reports).
    pub fn name(self) -> &'static str {
        match self {
            Category::ELearning => "elearning",
            Category::Sports => "sports",
            Category::Cartoon => "cartoon",
            Category::Movie => "movie",
            Category::News => "news",
        }
    }

    /// Parse from [`Category::name`] output.
    pub fn from_name(s: &str) -> Option<Category> {
        Category::ALL.iter().copied().find(|c| c.name() == s)
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One shot: a contiguous run of frames rendered from a single scene seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shot {
    /// Scene randomisation seed (palette, layout, motion phases).
    pub scene_seed: u64,
    /// Number of frames in the shot.
    pub frames: u32,
}

/// A full clip script: category plus ordered shots with hard cuts between.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SceneScript {
    /// The clip's category.
    pub category: Category,
    /// Ordered shots.
    pub shots: Vec<Shot>,
}

impl SceneScript {
    /// Total frame count across shots.
    pub fn total_frames(&self) -> u32 {
        self.shots.iter().map(|s| s.frames).sum()
    }
}

/// Generator parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Frames per second.
    pub fps: u32,
    /// Number of shots per clip.
    pub shots_per_video: u32,
    /// Minimum shot length in frames.
    pub min_shot_frames: u32,
    /// Maximum shot length in frames (inclusive).
    pub max_shot_frames: u32,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            width: 160,
            height: 120,
            fps: 25,
            shots_per_video: 4,
            min_shot_frames: 8,
            max_shot_frames: 16,
        }
    }
}

impl GeneratorConfig {
    fn validate(&self) -> Result<()> {
        if self.width == 0 || self.height == 0 || self.fps == 0 {
            return Err(VideoError::Config("zero geometry or fps".into()));
        }
        if self.shots_per_video == 0 {
            return Err(VideoError::Config("need at least one shot".into()));
        }
        if self.min_shot_frames == 0 || self.min_shot_frames > self.max_shot_frames {
            return Err(VideoError::Config(format!(
                "bad shot length range {}..={}",
                self.min_shot_frames, self.max_shot_frames
            )));
        }
        Ok(())
    }
}

/// Deterministic category-styled clip renderer.
#[derive(Clone, Debug)]
pub struct VideoGenerator {
    config: GeneratorConfig,
}

impl VideoGenerator {
    /// Build a generator; validates the config.
    pub fn new(config: GeneratorConfig) -> Result<Self> {
        config.validate()?;
        Ok(VideoGenerator { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Derive the scene script for `(category, video_seed)`. Deterministic.
    pub fn script(&self, category: Category, video_seed: u64) -> SceneScript {
        let mut rng = SmallRng::seed_from_u64(mix(video_seed, category as u64));
        let shots = (0..self.config.shots_per_video)
            .map(|_| Shot {
                scene_seed: rng.gen(),
                frames: rng.gen_range(self.config.min_shot_frames..=self.config.max_shot_frames),
            })
            .collect();
        SceneScript { category, shots }
    }

    /// Render the full clip for `(category, video_seed)`. Deterministic.
    pub fn generate(&self, category: Category, video_seed: u64) -> Result<Video> {
        let script = self.script(category, video_seed);
        self.render_script(&script)
    }

    /// Render an explicit script.
    pub fn render_script(&self, script: &SceneScript) -> Result<Video> {
        let mut frames = Vec::with_capacity(script.total_frames() as usize);
        for shot in &script.shots {
            let scene = Scene::new(script.category, shot.scene_seed, &self.config);
            for t in 0..shot.frames {
                frames.push(scene.render(t, &self.config)?);
            }
        }
        Video::new(self.config.fps, frames)
    }
}

/// Scrambles two u64s into one seed.
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x
}

/// Frozen per-shot scene parameters.
struct Scene {
    category: Category,
    base_hue: u16,
    accent: Rgb,
    layout_seed: u64,
    motion_px_per_frame: i32,
    object_count: u32,
}

impl Scene {
    fn new(category: Category, seed: u64, _config: &GeneratorConfig) -> Scene {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Hue ranges deliberately overlap across categories so that plain
        // color statistics alone cannot solve retrieval — texture and
        // structure must contribute, as on real footage.
        let (hue_lo, hue_hi, motion, objects): (u16, u16, i32, u32) = match category {
            Category::ELearning => (0, 359, 0, 2),
            Category::Sports => (80, 150, 6, 5),
            Category::Cartoon => (0, 359, 2, 4),
            Category::Movie => (0, 359, 1, 2),
            Category::News => (190, 250, 0, 1),
        };
        Scene {
            category,
            base_hue: rng.gen_range(hue_lo..=hue_hi),
            accent: hsv_to_rgb(rng.gen_range(0..360), 200, 230),
            layout_seed: rng.gen(),
            motion_px_per_frame: motion,
            object_count: objects,
        }
    }

    fn render(&self, t: u32, config: &GeneratorConfig) -> Result<RgbImage> {
        let mut img = RgbImage::new(config.width, config.height)?;
        match self.category {
            Category::ELearning => self.render_elearning(&mut img, t),
            Category::Sports => self.render_sports(&mut img, t),
            Category::Cartoon => self.render_cartoon(&mut img, t),
            Category::Movie => self.render_movie(&mut img, t),
            Category::News => self.render_news(&mut img, t),
        }
        Ok(img)
    }

    fn rng(&self, salt: u64) -> SmallRng {
        SmallRng::seed_from_u64(mix(self.layout_seed, salt))
    }

    /// Bright slide, dark title + body text appearing progressively.
    fn render_elearning(&self, img: &mut RgbImage, t: u32) {
        let mut rng = self.rng(1);
        let bg = hsv_to_rgb(self.base_hue, 18, 245);
        draw::fill(img, bg);
        let ink = Rgb::new(25, 25, 35);
        let title: String =
            (0..6).map(|_| (b'A' + rng.gen_range(0..26u8)) as char).collect();
        draw::draw_text(img, 8, 6, &title, 2, ink);
        draw::fill_rect(img, 8, 24, img.width() - 16, 2, self.accent);
        // Body lines appear one per few frames (slide build-in).
        let lines_visible = 1 + (t / 3).min(4);
        for line in 0..lines_visible {
            let words: String = (0..10)
                .map(|_| {
                    let c = rng.gen_range(0..27u8);
                    if c == 26 { ' ' } else { (b'A' + c) as char }
                })
                .collect();
            draw::draw_text(img, 10, 32 + 12 * line as i32, &words, 1, ink);
        }
        // A small diagram box in the corner.
        let bx = img.width() as i32 - 46;
        let by = img.height() as i32 - 40;
        draw::stroke_rect(img, bx, by, 38, 30, ink);
        draw::fill_circle(img, bx + 19, by + 15, 8, self.accent);
    }

    /// Green field, white markings, moving players and a ball.
    fn render_sports(&self, img: &mut RgbImage, t: u32) {
        let mut rng = self.rng(2);
        let grass = hsv_to_rgb(self.base_hue, 170, 150);
        draw::fill(img, grass);
        draw::speckle(img, 12, self.layout_seed);
        let w = img.width() as i32;
        let h = img.height() as i32;
        // Field markings: touchline, halfway line, centre circle.
        draw::stroke_rect(img, 4, 4, (w - 8) as u32, (h - 8) as u32, Rgb::WHITE);
        draw::fill_rect(img, w / 2, 4, 1, (h - 8) as u32, Rgb::WHITE);
        // Players: colored discs moving across the field.
        for p in 0..self.object_count {
            let team = if p % 2 == 0 { Rgb::new(220, 40, 40) } else { Rgb::new(40, 60, 220) };
            let start_x = rng.gen_range(0..w);
            let start_y = rng.gen_range(h / 4..3 * h / 4);
            let dir = if rng.gen_bool(0.5) { 1 } else { -1 };
            let x = (start_x + dir * self.motion_px_per_frame * t as i32).rem_euclid(w);
            let bob = ((t as f32 / 2.0).sin() * 3.0) as i32;
            draw::fill_circle(img, x, start_y + bob, 4, team);
        }
        // Ball: fast small white disc.
        let bx = (10 + 2 * self.motion_px_per_frame * t as i32).rem_euclid(w);
        let by = h / 2 + ((t as f32 / 1.5).cos() * 10.0) as i32;
        draw::fill_circle(img, bx, by, 2, Rgb::WHITE);
    }

    /// Flat saturated regions with thick dark outlines.
    fn render_cartoon(&self, img: &mut RgbImage, t: u32) {
        let mut rng = self.rng(3);
        let sky = hsv_to_rgb(self.base_hue, 230, 240);
        draw::fill(img, sky);
        let w = img.width() as i32;
        let h = img.height() as i32;
        // Ground band in a complementary flat color.
        let ground = hsv_to_rgb((self.base_hue + 160) % 360, 220, 200);
        draw::fill_rect(img, 0, 2 * h / 3, w as u32, (h / 3) as u32, ground);
        // A few flat blobs with outlines; one bounces with t.
        for i in 0..self.object_count {
            let hue = (self.base_hue + 70 * (i as u16 + 1)) % 360;
            let fill = hsv_to_rgb(hue, 255, 255);
            let cx = rng.gen_range(10..w - 10);
            let base_cy = rng.gen_range(10..h - 10);
            let cy = if i == 0 {
                base_cy - ((t as f32 * 0.8).sin().abs() * 12.0) as i32
            } else {
                base_cy
            };
            let r = rng.gen_range(8..18) as u32;
            draw::fill_circle(img, cx, cy, r, Rgb::new(20, 20, 20));
            draw::fill_circle(img, cx, cy, r.saturating_sub(2), fill);
        }
        // Thick horizon outline.
        draw::fill_rect(img, 0, 2 * h / 3 - 1, w as u32, 2, Rgb::new(20, 20, 20));
    }

    /// Dark gradients with a slow pan and vignette.
    fn render_movie(&self, img: &mut RgbImage, t: u32) {
        let top = hsv_to_rgb(self.base_hue, 180, 60);
        let bottom = hsv_to_rgb((self.base_hue + 30) % 360, 140, 15);
        draw::vertical_gradient(img, top, bottom);
        let w = img.width() as i32;
        let h = img.height() as i32;
        // A dim moon/highlight drifting with the pan.
        let mx = (w / 4 + self.motion_px_per_frame * t as i32) % w;
        draw::fill_circle(img, mx, h / 4, 7, hsv_to_rgb(self.base_hue, 40, 180));
        // Silhouette skyline: dark rectangles along the bottom.
        let mut rng = self.rng(4);
        let mut x = -(self.motion_px_per_frame * t as i32) % 24;
        while x < w {
            let bw = rng.gen_range(8..20);
            let bh = rng.gen_range(h / 6..h / 3);
            draw::fill_rect(img, x, h - bh, bw as u32, bh as u32, Rgb::new(8, 8, 12));
            x += bw + rng.gen_range(2..6);
        }
        // Letterbox bars: the movie giveaway.
        draw::fill_rect(img, 0, 0, w as u32, (h / 10) as u32, Rgb::BLACK);
        draw::fill_rect(img, 0, h - h / 10, w as u32, (h / 10) as u32, Rgb::BLACK);
    }

    /// Blue studio, anchor bust, lower-third banner with ticker text.
    fn render_news(&self, img: &mut RgbImage, t: u32) {
        let mut rng = self.rng(5);
        let back = hsv_to_rgb(self.base_hue, 200, 120);
        let front = hsv_to_rgb(self.base_hue, 160, 200);
        draw::vertical_gradient(img, back, front);
        let w = img.width() as i32;
        let h = img.height() as i32;
        // Anchor: head + shoulders, static.
        let ax = w / 3 + rng.gen_range(-8..8);
        let skin = Rgb::new(224, 172, 138);
        let suit = Rgb::new(60, 60, 70);
        draw::fill_rect(img, ax - 14, 2 * h / 3 - 10, 28, (h / 3 + 10) as u32, suit);
        draw::fill_circle(img, ax, 2 * h / 3 - 20, 10, skin);
        // Lower-third banner with scrolling headline.
        let banner_h = (h / 5) as u32;
        draw::fill_rect(img, 0, h - banner_h as i32, w as u32, banner_h, Rgb::new(180, 20, 30));
        draw::fill_rect(img, 0, h - banner_h as i32, w as u32, 3, Rgb::WHITE);
        let headline: String = (0..12)
            .map(|_| {
                let c = rng.gen_range(0..27u8);
                if c == 26 { ' ' } else { (b'A' + c) as char }
            })
            .collect();
        let scroll = (t as i32 * 3) % (w + 80);
        draw::draw_text(img, w - scroll, h - banner_h as i32 + 6, &headline, 1, Rgb::WHITE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_imgproc::hist::Histogram256;

    fn generator() -> VideoGenerator {
        VideoGenerator::new(GeneratorConfig::default()).unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let g = generator();
        let a = g.generate(Category::Sports, 7).unwrap();
        let b = g.generate(Category::Sports, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let g = generator();
        let a = g.generate(Category::Sports, 7).unwrap();
        let b = g.generate(Category::Sports, 8).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn different_categories_differ() {
        let g = generator();
        let a = g.generate(Category::Cartoon, 7).unwrap();
        let b = g.generate(Category::Movie, 7).unwrap();
        assert_ne!(a.frame(0), b.frame(0));
    }

    #[test]
    fn script_controls_frame_count() {
        let g = generator();
        let script = g.script(Category::News, 3);
        let v = g.render_script(&script).unwrap();
        assert_eq!(v.frame_count() as u32, script.total_frames());
        assert_eq!(script.shots.len() as u32, g.config().shots_per_video);
        for s in &script.shots {
            assert!(s.frames >= g.config().min_shot_frames);
            assert!(s.frames <= g.config().max_shot_frames);
        }
    }

    #[test]
    fn config_validation() {
        let bad = GeneratorConfig { width: 0, ..GeneratorConfig::default() };
        assert!(VideoGenerator::new(bad).is_err());
        let bad = GeneratorConfig { min_shot_frames: 9, max_shot_frames: 5, ..GeneratorConfig::default() };
        assert!(VideoGenerator::new(bad).is_err());
        let bad = GeneratorConfig { shots_per_video: 0, ..GeneratorConfig::default() };
        assert!(VideoGenerator::new(bad).is_err());
    }

    #[test]
    fn category_brightness_signatures_hold() {
        // E-learning slides must be much brighter than movie footage —
        // that separation is what the histogram feature retrieves on.
        let g = generator();
        let slide = g.generate(Category::ELearning, 1).unwrap();
        let film = g.generate(Category::Movie, 1).unwrap();
        let mean = |v: &Video| Histogram256::of_rgb_luma(v.frame(0).unwrap()).mean();
        assert!(
            mean(&slide) > mean(&film) + 60.0,
            "slide {} vs film {}",
            mean(&slide),
            mean(&film)
        );
    }

    #[test]
    fn sports_is_green_dominant() {
        let g = generator();
        let v = g.generate(Category::Sports, 2).unwrap();
        let f = v.frame(0).unwrap();
        let (mut r_sum, mut g_sum, mut b_sum) = (0u64, 0u64, 0u64);
        for p in f.pixels() {
            r_sum += p.r as u64;
            g_sum += p.g as u64;
            b_sum += p.b as u64;
        }
        assert!(g_sum > r_sum && g_sum > b_sum, "r={r_sum} g={g_sum} b={b_sum}");
    }

    #[test]
    fn shots_produce_visible_cuts() {
        // Consecutive frames within a shot are near-identical; frames across
        // a cut differ strongly. This is the property §4.1 key-frame
        // extraction relies on.
        let g = generator();
        let script = g.script(Category::Cartoon, 11);
        let v = g.render_script(&script).unwrap();
        let first_shot_len = script.shots[0].frames as usize;

        let within = v.frame(0).unwrap().to_gray().mean_abs_diff(&v.frame(1).unwrap().to_gray()).unwrap();
        let across = v
            .frame(first_shot_len - 1)
            .unwrap()
            .to_gray()
            .mean_abs_diff(&v.frame(first_shot_len).unwrap().to_gray())
            .unwrap();
        assert!(
            across > within * 3.0 + 1.0,
            "cut should dominate in-shot motion: within={within:.2} across={across:.2}"
        );
    }

    #[test]
    fn category_name_round_trip() {
        for c in Category::ALL {
            assert_eq!(Category::from_name(c.name()), Some(c));
        }
        assert_eq!(Category::from_name("nope"), None);
    }

    #[test]
    fn mix_changes_with_either_argument() {
        assert_ne!(mix(1, 2), mix(1, 3));
        assert_ne!(mix(1, 2), mix(2, 2));
    }
}
