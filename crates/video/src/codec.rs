//! Frame payload codecs for the VSC container.
//!
//! Three lossless codecs, trading compression for speed:
//!
//! - [`FrameCodec::Raw`] — the packed RGB buffer verbatim;
//! - [`FrameCodec::Rle`] — byte-level run-length encoding, effective on
//!   the synthetic generator's flat regions (cartoon, slides);
//! - [`FrameCodec::Delta`] — wrapping byte difference against the previous
//!   frame, then RLE; effective on temporally stable shots, which is where
//!   almost all frames of real footage live.
//!
//! Every codec round-trips exactly: the key-frame extractor and feature
//! stack see bit-identical pixels regardless of the codec chosen.

use crate::error::{Result, VideoError};
use cbvr_imgproc::RgbImage;

/// Frame payload encoding used inside a VSC stream.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum FrameCodec {
    /// Packed RGB bytes, no compression.
    Raw,
    /// Byte-level run-length encoding.
    #[default]
    Rle,
    /// Temporal delta against the previous frame, RLE-compressed.
    /// The first frame of a stream is always intra-coded (plain RLE).
    Delta,
    /// Motion-compensated prediction (16×16 block matching) with a
    /// lossless RLE-coded residual; see [`crate::mc`]. Beats `Delta` on
    /// panning and object motion.
    MotionComp,
}

impl FrameCodec {
    /// Stable wire id.
    pub fn wire_id(self) -> u8 {
        match self {
            FrameCodec::Raw => 0,
            FrameCodec::Rle => 1,
            FrameCodec::Delta => 2,
            FrameCodec::MotionComp => 3,
        }
    }

    /// Inverse of [`FrameCodec::wire_id`].
    pub fn from_wire_id(id: u8) -> Result<FrameCodec> {
        match id {
            0 => Ok(FrameCodec::Raw),
            1 => Ok(FrameCodec::Rle),
            2 => Ok(FrameCodec::Delta),
            3 => Ok(FrameCodec::MotionComp),
            other => Err(VideoError::FrameCodec(format!("unknown codec id {other}"))),
        }
    }
}

/// Run-length encode a byte slice as `(count, value)` pairs with
/// `count ∈ 1..=255`.
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::<u8>::with_capacity(data.len() / 4 + 16);
    let mut i = 0;
    while i < data.len() {
        let value = data[i];
        let mut run = 1usize;
        while run < 255 && i + run < data.len() && data[i + run] == value {
            run += 1;
        }
        out.push(run as u8);
        out.push(value);
        i += run;
    }
    out
}

/// Decode an RLE stream produced by [`rle_encode`]; `expected_len` guards
/// against corrupt payloads.
pub fn rle_decode(data: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    if !data.len().is_multiple_of(2) {
        return Err(VideoError::FrameCodec("RLE stream has odd length".into()));
    }
    let mut out = Vec::with_capacity(expected_len);
    for pair in data.chunks_exact(2) {
        let run = pair[0] as usize;
        if run == 0 {
            return Err(VideoError::FrameCodec("RLE run of zero".into()));
        }
        if out.len() + run > expected_len {
            return Err(VideoError::FrameCodec(format!(
                "RLE overflow: decoded > expected {expected_len}"
            )));
        }
        out.resize(out.len() + run, pair[1]);
    }
    if out.len() != expected_len {
        return Err(VideoError::FrameCodec(format!(
            "RLE underflow: decoded {} of expected {expected_len}",
            out.len()
        )));
    }
    Ok(out)
}

/// Encode a frame. `prev` must be `Some` for every frame after the first
/// when using [`FrameCodec::Delta`] (and is ignored otherwise).
pub fn encode_frame(codec: FrameCodec, frame: &RgbImage, prev: Option<&RgbImage>) -> Vec<u8> {
    match codec {
        FrameCodec::Raw => frame.as_raw().to_vec(),
        FrameCodec::Rle => rle_encode(frame.as_raw()),
        FrameCodec::Delta => match prev {
            None => rle_encode(frame.as_raw()),
            Some(p) => {
                let residual: Vec<u8> = frame
                    .as_raw()
                    .iter()
                    .zip(p.as_raw())
                    .map(|(&cur, &old)| cur.wrapping_sub(old))
                    .collect();
                rle_encode(&residual)
            }
        },
        FrameCodec::MotionComp => crate::mc::encode_frame_mc(frame, prev),
    }
}

/// Decode a frame payload produced by [`encode_frame`] with the same codec
/// and the same `prev` frame.
pub fn decode_frame(
    codec: FrameCodec,
    payload: &[u8],
    width: u32,
    height: u32,
    prev: Option<&RgbImage>,
) -> Result<RgbImage> {
    let expected = width as usize * height as usize * 3;
    let raw = match codec {
        FrameCodec::Raw => {
            if payload.len() != expected {
                return Err(VideoError::FrameCodec(format!(
                    "raw frame has {} bytes, expected {expected}",
                    payload.len()
                )));
            }
            payload.to_vec()
        }
        FrameCodec::Rle => rle_decode(payload, expected)?,
        FrameCodec::Delta => {
            let decoded = rle_decode(payload, expected)?;
            match prev {
                None => decoded,
                Some(p) => decoded
                    .iter()
                    .zip(p.as_raw())
                    .map(|(&res, &old)| old.wrapping_add(res))
                    .collect(),
            }
        }
        FrameCodec::MotionComp => {
            return crate::mc::decode_frame_mc(payload, width, height, prev);
        }
    };
    RgbImage::from_raw(width, height, raw).map_err(|e| VideoError::FrameCodec(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_imgproc::Rgb;

    fn gradient_frame(w: u32, h: u32, shift: u8) -> RgbImage {
        RgbImage::from_fn(w, h, |x, y| {
            Rgb::new((x as u8).wrapping_add(shift), (y as u8).wrapping_mul(3), shift)
        })
        .unwrap()
    }

    #[test]
    fn rle_round_trip_runs_and_noise() {
        for data in [
            vec![],
            vec![5u8; 1000],
            (0..=255u8).collect::<Vec<_>>(),
            vec![1, 1, 2, 2, 2, 3],
        ] {
            let enc = rle_encode(&data);
            assert_eq!(rle_decode(&enc, data.len()).unwrap(), data);
        }
    }

    #[test]
    fn rle_long_run_splits_at_255() {
        let data = vec![9u8; 600];
        let enc = rle_encode(&data);
        assert_eq!(enc.len(), 6); // 255+255+90 → three pairs
        assert_eq!(rle_decode(&enc, 600).unwrap(), data);
    }

    #[test]
    fn rle_rejects_corruption() {
        assert!(rle_decode(&[1], 1).is_err()); // odd length
        assert!(rle_decode(&[0, 5], 0).is_err()); // zero run
        assert!(rle_decode(&[2, 5], 1).is_err()); // overflow
        assert!(rle_decode(&[1, 5], 2).is_err()); // underflow
    }

    #[test]
    fn every_codec_round_trips_first_frame() {
        let f = gradient_frame(17, 9, 0);
        for codec in [FrameCodec::Raw, FrameCodec::Rle, FrameCodec::Delta, FrameCodec::MotionComp] {
            let enc = encode_frame(codec, &f, None);
            let dec = decode_frame(codec, &enc, 17, 9, None).unwrap();
            assert_eq!(dec, f, "{codec:?}");
        }
    }

    #[test]
    fn delta_round_trips_sequence() {
        let frames: Vec<RgbImage> = (0..5).map(|i| gradient_frame(12, 10, i * 40)).collect();
        let mut prev: Option<&RgbImage> = None;
        let mut decoded_prev: Option<RgbImage> = None;
        for f in &frames {
            let enc = encode_frame(FrameCodec::Delta, f, prev);
            let dec = decode_frame(FrameCodec::Delta, &enc, 12, 10, decoded_prev.as_ref()).unwrap();
            assert_eq!(&dec, f);
            prev = Some(f);
            decoded_prev = Some(dec);
        }
    }

    #[test]
    fn delta_compresses_static_scene() {
        let f = gradient_frame(64, 64, 7);
        let intra = encode_frame(FrameCodec::Delta, &f, None);
        let inter = encode_frame(FrameCodec::Delta, &f, Some(&f));
        assert!(
            inter.len() < intra.len() / 4,
            "static delta frame should be tiny: intra={} inter={}",
            intra.len(),
            inter.len()
        );
    }

    #[test]
    fn raw_length_check() {
        let f = gradient_frame(4, 4, 0);
        let enc = encode_frame(FrameCodec::Raw, &f, None);
        assert!(decode_frame(FrameCodec::Raw, &enc[..enc.len() - 1], 4, 4, None).is_err());
    }

    #[test]
    fn motion_comp_round_trips_sequence() {
        let frames: Vec<RgbImage> = (0..4).map(|i| gradient_frame(40, 24, i * 30)).collect();
        let mut prev: Option<&RgbImage> = None;
        let mut decoded_prev: Option<RgbImage> = None;
        for f in &frames {
            let enc = encode_frame(FrameCodec::MotionComp, f, prev);
            let dec =
                decode_frame(FrameCodec::MotionComp, &enc, 40, 24, decoded_prev.as_ref()).unwrap();
            assert_eq!(&dec, f);
            prev = Some(f);
            decoded_prev = Some(dec);
        }
    }

    #[test]
    fn wire_ids_round_trip() {
        for codec in [FrameCodec::Raw, FrameCodec::Rle, FrameCodec::Delta, FrameCodec::MotionComp] {
            assert_eq!(FrameCodec::from_wire_id(codec.wire_id()).unwrap(), codec);
        }
        assert!(FrameCodec::from_wire_id(99).is_err());
    }
}
