//! Motion-compensated inter-frame coding.
//!
//! [`crate::FrameCodec::MotionComp`] predicts each 16×16 block of a frame
//! by translating a block of the previous frame (three-step block
//! matching on luma, ±[`SEARCH_RANGE`] px), then entropy-codes the exact
//! prediction residual — lossless like every VSC codec, but far smaller
//! than plain temporal delta on panning or object-motion content, which
//! is what the synthetic sports/movie categories produce.
//!
//! Inter-frame payload layout:
//!
//! ```text
//! tag u8 = 1 | mv array (dx i8, dy i8 per block, row-major) | RLE(residual)
//! ```
//!
//! Intra frames (the first frame, or any frame the encoder decides to
//! refresh) carry `tag = 0 | RLE(raw)`.

use crate::codec::{rle_decode, rle_encode};
use crate::error::{Result, VideoError};
use cbvr_imgproc::{GrayImage, RgbImage};

/// Block side in pixels.
pub const BLOCK: u32 = 16;
/// Maximum motion-vector magnitude per axis.
pub const SEARCH_RANGE: i32 = 7;

const TAG_INTRA: u8 = 0;
const TAG_INTER: u8 = 1;

/// Sum of absolute luma differences between a block of `cur` at `(bx,
/// by)` and a block of `prev` displaced by `(dx, dy)`; out-of-frame
/// reference pixels clamp to the edge.
fn block_sad(cur: &GrayImage, prev: &GrayImage, bx: u32, by: u32, dx: i32, dy: i32) -> u64 {
    let (w, h) = cur.dimensions();
    let mut sad = 0u64;
    for y in by..(by + BLOCK).min(h) {
        for x in bx..(bx + BLOCK).min(w) {
            let c = cur.get(x, y).0 as i64;
            let p = prev.get_clamped(x as i64 + dx as i64, y as i64 + dy as i64).0 as i64;
            sad += (c - p).unsigned_abs();
        }
    }
    sad
}

/// Three-step search for the best motion vector of one block.
fn search_block(cur: &GrayImage, prev: &GrayImage, bx: u32, by: u32) -> (i8, i8) {
    let mut best = (0i32, 0i32);
    let mut best_sad = block_sad(cur, prev, bx, by, 0, 0);
    let mut step = 4i32;
    while step >= 1 {
        let centre = best;
        for dy in [-step, 0, step] {
            for dx in [-step, 0, step] {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let cand = (centre.0 + dx, centre.1 + dy);
                if cand.0.abs() > SEARCH_RANGE || cand.1.abs() > SEARCH_RANGE {
                    continue;
                }
                let sad = block_sad(cur, prev, bx, by, cand.0, cand.1);
                if sad < best_sad {
                    best_sad = sad;
                    best = cand;
                }
            }
        }
        step /= 2;
    }
    (best.0 as i8, best.1 as i8)
}

/// Build the motion-compensated prediction of `cur` from `prev`.
fn predict(prev: &RgbImage, mvs: &[(i8, i8)], w: u32, h: u32) -> RgbImage {
    let blocks_x = w.div_ceil(BLOCK);
    RgbImage::from_fn(w, h, |x, y| {
        let block = ((y / BLOCK) * blocks_x + (x / BLOCK)) as usize;
        let (dx, dy) = mvs[block];
        prev.get_clamped(x as i64 + dx as i64, y as i64 + dy as i64)
    })
    .expect("same nonzero dims")
}

/// Encode a frame against its predecessor (`None` → intra).
pub fn encode_frame_mc(frame: &RgbImage, prev: Option<&RgbImage>) -> Vec<u8> {
    let Some(prev) = prev else {
        let mut out = vec![TAG_INTRA];
        out.extend_from_slice(&rle_encode(frame.as_raw()));
        return out;
    };
    let (w, h) = frame.dimensions();
    let cur_gray = frame.to_gray();
    let prev_gray = prev.to_gray();

    let blocks_x = w.div_ceil(BLOCK);
    let blocks_y = h.div_ceil(BLOCK);
    let mut mvs = Vec::with_capacity((blocks_x * blocks_y) as usize);
    for by in 0..blocks_y {
        for bx in 0..blocks_x {
            mvs.push(search_block(&cur_gray, &prev_gray, bx * BLOCK, by * BLOCK));
        }
    }

    let prediction = predict(prev, &mvs, w, h);
    let residual: Vec<u8> = frame
        .as_raw()
        .iter()
        .zip(prediction.as_raw())
        .map(|(&c, &p)| c.wrapping_sub(p))
        .collect();

    let mut out = Vec::with_capacity(1 + mvs.len() * 2 + residual.len() / 8);
    out.push(TAG_INTER);
    for (dx, dy) in &mvs {
        out.push(*dx as u8);
        out.push(*dy as u8);
    }
    out.extend_from_slice(&rle_encode(&residual));
    out
}

/// Decode a frame produced by [`encode_frame_mc`].
pub fn decode_frame_mc(
    payload: &[u8],
    width: u32,
    height: u32,
    prev: Option<&RgbImage>,
) -> Result<RgbImage> {
    let expected = width as usize * height as usize * 3;
    let tag = *payload
        .first()
        .ok_or_else(|| VideoError::FrameCodec("empty MC payload".into()))?;
    match tag {
        TAG_INTRA => {
            let raw = rle_decode(&payload[1..], expected)?;
            RgbImage::from_raw(width, height, raw).map_err(|e| VideoError::FrameCodec(e.to_string()))
        }
        TAG_INTER => {
            let prev = prev.ok_or_else(|| {
                VideoError::FrameCodec("inter frame without a reference frame".into())
            })?;
            let blocks_x = width.div_ceil(BLOCK);
            let blocks_y = height.div_ceil(BLOCK);
            let mv_bytes = (blocks_x * blocks_y) as usize * 2;
            let mv_end = 1 + mv_bytes;
            if payload.len() < mv_end {
                return Err(VideoError::FrameCodec("MC motion vectors truncated".into()));
            }
            let mvs: Vec<(i8, i8)> = payload[1..mv_end]
                .chunks_exact(2)
                .map(|p| (p[0] as i8, p[1] as i8))
                .collect();
            let residual = rle_decode(&payload[mv_end..], expected)?;
            let prediction = predict(prev, &mvs, width, height);
            let raw: Vec<u8> = residual
                .iter()
                .zip(prediction.as_raw())
                .map(|(&r, &p)| p.wrapping_add(r))
                .collect();
            RgbImage::from_raw(width, height, raw).map_err(|e| VideoError::FrameCodec(e.to_string()))
        }
        other => Err(VideoError::FrameCodec(format!("bad MC frame tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_imgproc::geom::translate;
    use cbvr_imgproc::{draw, Rgb};

    fn scene() -> RgbImage {
        let mut img = RgbImage::filled(64, 48, Rgb::new(40, 90, 40)).unwrap();
        draw::fill_circle(&mut img, 20, 24, 6, Rgb::new(220, 40, 40));
        draw::fill_rect(&mut img, 40, 10, 12, 12, Rgb::new(40, 40, 220));
        draw::speckle(&mut img, 5, 7);
        img
    }

    #[test]
    fn intra_round_trip() {
        let f = scene();
        let enc = encode_frame_mc(&f, None);
        assert_eq!(enc[0], TAG_INTRA);
        let dec = decode_frame_mc(&enc, 64, 48, None).unwrap();
        assert_eq!(dec, f);
    }

    #[test]
    fn inter_round_trip_is_lossless() {
        let a = scene();
        let b = translate(&a, 3, -2, Rgb::new(40, 90, 40));
        let enc = encode_frame_mc(&b, Some(&a));
        assert_eq!(enc[0], TAG_INTER);
        let dec = decode_frame_mc(&enc, 64, 48, Some(&a)).unwrap();
        assert_eq!(dec, b, "motion compensation must be exactly invertible");
    }

    #[test]
    fn panning_compresses_better_than_plain_delta() {
        let a = scene();
        // Global pan of 5 px: delta coding sees every pixel change, MC
        // captures it with motion vectors.
        let b = translate(&a, 5, 0, Rgb::new(40, 90, 40));
        let mc = encode_frame_mc(&b, Some(&a));
        let delta = crate::codec::encode_frame(crate::codec::FrameCodec::Delta, &b, Some(&a));
        // The speckled texture keeps residual RLE from collapsing fully,
        // but motion compensation still wins clearly.
        assert!(
            mc.len() * 4 < delta.len() * 3,
            "MC {} should beat delta {} on a pan",
            mc.len(),
            delta.len()
        );
    }

    #[test]
    fn static_scene_compresses_to_near_nothing() {
        let a = scene();
        let enc = encode_frame_mc(&a, Some(&a));
        // All-zero MVs and an all-zero residual.
        let expected_mv_bytes = (64u32.div_ceil(BLOCK) * 48u32.div_ceil(BLOCK)) as usize * 2;
        assert!(enc.len() < 1 + expected_mv_bytes + 100, "len {}", enc.len());
    }

    #[test]
    fn scene_cut_still_round_trips() {
        let a = scene();
        let mut b = RgbImage::filled(64, 48, Rgb::new(200, 200, 10)).unwrap();
        draw::fill_circle(&mut b, 32, 24, 10, Rgb::BLACK);
        let enc = encode_frame_mc(&b, Some(&a));
        let dec = decode_frame_mc(&enc, 64, 48, Some(&a)).unwrap();
        assert_eq!(dec, b);
    }

    #[test]
    fn non_multiple_of_block_dimensions() {
        let a = RgbImage::from_fn(50, 35, |x, y| Rgb::new((x * 5) as u8, (y * 7) as u8, 99)).unwrap();
        let b = translate(&a, -2, 3, Rgb::BLACK);
        let enc = encode_frame_mc(&b, Some(&a));
        let dec = decode_frame_mc(&enc, 50, 35, Some(&a)).unwrap();
        assert_eq!(dec, b);
    }

    #[test]
    fn corrupt_payloads_rejected() {
        let a = scene();
        assert!(decode_frame_mc(&[], 64, 48, Some(&a)).is_err());
        assert!(decode_frame_mc(&[9, 0, 0], 64, 48, Some(&a)).is_err());
        // Inter frame without a reference.
        let enc = encode_frame_mc(&a, Some(&a));
        assert!(decode_frame_mc(&enc, 64, 48, None).is_err());
        // Truncated MVs.
        assert!(decode_frame_mc(&enc[..3], 64, 48, Some(&a)).is_err());
    }

    #[test]
    fn search_finds_known_translation() {
        let a = scene().to_gray();
        let b = translate(&scene(), 4, 2, Rgb::new(40, 90, 40)).to_gray();
        // A central block moves by exactly (4, 2); the search should find
        // dv = (-4, -2) (prediction samples prev at cur + mv).
        let (dx, dy) = search_block(&b, &a, 16, 16);
        assert_eq!((dx, dy), (-4, -2));
    }
}
