//! In-memory video: an ordered sequence of RGB frames plus timing metadata.

use crate::error::{Result, VideoError};
use cbvr_imgproc::RgbImage;

/// A decoded video clip: constant-rate, constant-size RGB frames.
///
/// This is the unit that flows through the pipeline: the generator
/// produces one, the VSC container round-trips one, and ingestion iterates
/// its frames ("frames extracted by video to jpeg converter", §4.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Video {
    width: u32,
    height: u32,
    fps: u32,
    frames: Vec<RgbImage>,
}

impl Video {
    /// Assemble a video from frames. All frames must share dimensions and
    /// there must be at least one.
    pub fn new(fps: u32, frames: Vec<RgbImage>) -> Result<Self> {
        if fps == 0 {
            return Err(VideoError::Config("fps must be positive".into()));
        }
        let first = frames
            .first()
            .ok_or_else(|| VideoError::Config("video needs at least one frame".into()))?;
        let (width, height) = first.dimensions();
        for (i, f) in frames.iter().enumerate() {
            if f.dimensions() != (width, height) {
                return Err(VideoError::Config(format!(
                    "frame {i} is {}x{}, expected {width}x{height}",
                    f.width(),
                    f.height()
                )));
            }
        }
        Ok(Video { width, height, fps, frames })
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Frames per second.
    pub fn fps(&self) -> u32 {
        self.fps
    }

    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.frames.len() as f64 / self.fps as f64
    }

    /// Borrow one frame by index.
    pub fn frame(&self, i: usize) -> Option<&RgbImage> {
        self.frames.get(i)
    }

    /// Borrow all frames in display order.
    pub fn frames(&self) -> &[RgbImage] {
        &self.frames
    }

    /// Consume the video, returning its frames.
    pub fn into_frames(self) -> Vec<RgbImage> {
        self.frames
    }

    /// Timestamp of frame `i` in seconds.
    pub fn timestamp(&self, i: usize) -> f64 {
        i as f64 / self.fps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_imgproc::Rgb;

    fn frame(w: u32, h: u32, v: u8) -> RgbImage {
        RgbImage::filled(w, h, Rgb::new(v, v, v)).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let v = Video::new(25, vec![frame(8, 6, 0), frame(8, 6, 1), frame(8, 6, 2)]).unwrap();
        assert_eq!(v.width(), 8);
        assert_eq!(v.height(), 6);
        assert_eq!(v.fps(), 25);
        assert_eq!(v.frame_count(), 3);
        assert!((v.duration_secs() - 0.12).abs() < 1e-12);
        assert_eq!(v.frame(1).unwrap().get(0, 0), Rgb::new(1, 1, 1));
        assert!(v.frame(3).is_none());
    }

    #[test]
    fn rejects_empty_and_zero_fps() {
        assert!(Video::new(25, vec![]).is_err());
        assert!(Video::new(0, vec![frame(2, 2, 0)]).is_err());
    }

    #[test]
    fn rejects_mixed_dimensions() {
        let err = Video::new(25, vec![frame(8, 6, 0), frame(4, 4, 1)]);
        assert!(err.is_err());
        assert!(err.unwrap_err().to_string().contains("frame 1"));
    }

    #[test]
    fn timestamps() {
        let v = Video::new(10, vec![frame(2, 2, 0); 5]).unwrap();
        assert_eq!(v.timestamp(0), 0.0);
        assert_eq!(v.timestamp(3), 0.3);
    }
}
