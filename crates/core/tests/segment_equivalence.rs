//! The segmented catalog must be invisible in results: for every
//! catalog, random segment split, weight profile, `k` regime and thread
//! count, an engine built via [`QueryEngine::from_segmented`] returns
//! *exactly* the matches (ids AND bit-identical scores) of the
//! single-segment [`QueryEngine::from_catalog`] build, for both frame
//! and clip queries. Tombstoned removal and compaction are pinned the
//! same way against their monolithic equivalents.

use cbvr_core::engine::CatalogEntry;
use cbvr_core::{QueryEngine, QueryOptions, THREADS_AUTO};
use cbvr_features::FeatureSet;
use cbvr_imgproc::{Histogram256, Rgb, RgbImage};
use cbvr_index::paper_range;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Force real helper threads even on a single-core host, so parallel
/// runs genuinely race chunk claims and shared-threshold updates.
fn force_parallel_pool() {
    std::env::set_var("CBVR_POOL_HELPERS", "3");
}

fn random_frame(rng: &mut rand::rngs::StdRng) -> RgbImage {
    let base = Rgb::new(
        rng.gen_range(0..=255u8),
        rng.gen_range(0..=255u8),
        rng.gen_range(0..=255u8),
    );
    let fx = rng.gen_range(1..=7u32);
    let fy = rng.gen_range(1..=7u32);
    RgbImage::from_fn(16, 16, |x, y| {
        Rgb::new(
            base.r.wrapping_add((x * fx) as u8),
            base.g.wrapping_add((y * fy) as u8),
            base.b.wrapping_add(((x + y) * 3) as u8),
        )
    })
    .unwrap()
}

fn entry_from_frame(i_id: u64, v_id: u64, frame: &RgbImage) -> CatalogEntry {
    CatalogEntry {
        i_id,
        v_id,
        range: paper_range(&Histogram256::of_rgb_luma(frame)),
        features: FeatureSet::extract(frame),
    }
}

fn random_entries(rng: &mut rand::rngs::StdRng, n: usize) -> Vec<CatalogEntry> {
    (0..n)
        .map(|i| entry_from_frame(i as u64 + 1, (i as u64 % 3) + 1, &random_frame(rng)))
        .collect()
}

/// Cut the entry list at 1–3 random points, preserving global order.
/// Empty groups are legal (`from_segmented` skips them), so cuts may
/// coincide or land at the ends.
fn random_split(
    entries: &[CatalogEntry],
    rng: &mut rand::rngs::StdRng,
) -> Vec<Vec<CatalogEntry>> {
    let n = entries.len();
    let cuts = rng.gen_range(1..=3usize);
    let mut points: Vec<usize> = (0..cuts).map(|_| rng.gen_range(0..=n)).collect();
    points.sort_unstable();
    let mut groups = Vec::with_capacity(cuts + 1);
    let mut start = 0;
    for p in points {
        groups.push(entries[start..p].to_vec());
        start = p;
    }
    groups.push(entries[start..].to_vec());
    groups
}

fn options(k: usize, threads: usize, use_index: bool, abandon: bool) -> QueryOptions {
    QueryOptions { k, threads, use_index, abandon, ..QueryOptions::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn segmented_frame_query_matches_monolithic(
        seed in 0u64..1_000_000,
        n in 4usize..=18,
    ) {
        force_parallel_pool();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let entries = random_entries(&mut rng, n);
        let mono = QueryEngine::from_catalog(entries.clone(), HashMap::new());
        let probe_frame = random_frame(&mut rng);
        let probe = FeatureSet::extract(&probe_frame);
        let range = paper_range(&Histogram256::of_rgb_luma(&probe_frame));
        // Several random layouts of the SAME catalog per case.
        for _ in 0..3 {
            let split = random_split(&entries, &mut rng);
            let layout: Vec<usize> = split.iter().map(Vec::len).collect();
            let seg = QueryEngine::from_segmented(split, HashMap::new());
            prop_assert_eq!(seg.len(), mono.len());
            prop_assert_eq!(seg.calibration(), mono.calibration());
            for use_index in [false, true] {
                for k in [1, n / 2, n + 3] {
                    for threads in [THREADS_AUTO, 1, 4] {
                        for abandon in [false, true] {
                            let want = mono.query_features(
                                &probe, range, &options(k, threads, use_index, abandon),
                            );
                            let got = seg.query_features(
                                &probe, range, &options(k, threads, use_index, abandon),
                            );
                            // Vec<FrameMatch> equality: ids, v_ids AND
                            // bit-identical scores.
                            prop_assert_eq!(
                                &want, &got,
                                "layout={:?} k={} threads={} use_index={} abandon={}",
                                layout, k, threads, use_index, abandon
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn segmented_clip_query_matches_monolithic(
        seed in 0u64..1_000_000,
        n in 4usize..=12,
    ) {
        force_parallel_pool();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5e9_3e47);
        let entries = random_entries(&mut rng, n);
        let mono = QueryEngine::from_catalog(entries.clone(), HashMap::new());
        let query: Vec<FeatureSet> =
            (0..3).map(|_| FeatureSet::extract(&random_frame(&mut rng))).collect();
        let nvid = mono.video_ids().len();
        for _ in 0..3 {
            let split = random_split(&entries, &mut rng);
            let seg = QueryEngine::from_segmented(split, HashMap::new());
            for k in [1, nvid, nvid + 2] {
                for threads in [THREADS_AUTO, 1, 4] {
                    for abandon in [false, true] {
                        let want = mono.query_feature_sequence(
                            &query, &options(k, threads, true, abandon),
                        );
                        let got = seg.query_feature_sequence(
                            &query, &options(k, threads, true, abandon),
                        );
                        prop_assert_eq!(
                            &want, &got,
                            "k={} threads={} abandon={}", k, threads, abandon
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tombstoned_removal_matches_monolithic_removal(
        seed in 0u64..1_000_000,
        n in 6usize..=15,
    ) {
        force_parallel_pool();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x70_b5_70_e5);
        let entries = random_entries(&mut rng, n);
        let victim = rng.gen_range(1..=3u64);
        // Both engines carry the full-catalog calibration through the
        // removal, so their results must agree bit-for-bit.
        let mono = QueryEngine::from_catalog(entries.clone(), HashMap::new());
        let seg = QueryEngine::from_segmented(random_split(&entries, &mut rng), HashMap::new());
        prop_assert_eq!(mono.remove_video(victim), seg.remove_video(victim));
        prop_assert_eq!(mono.len(), seg.len());
        prop_assert_eq!(mono.video_ids(), seg.video_ids());

        let probe_frame = random_frame(&mut rng);
        let probe = FeatureSet::extract(&probe_frame);
        let range = paper_range(&Histogram256::of_rgb_luma(&probe_frame));
        for use_index in [false, true] {
            for threads in [1, 4] {
                let opts = options(n + 3, threads, use_index, true);
                let want = mono.query_features(&probe, range, &opts);
                let got = seg.query_features(&probe, range, &opts);
                prop_assert!(got.iter().all(|m| m.v_id != victim));
                prop_assert_eq!(&want, &got, "use_index={} threads={}", use_index, threads);
            }
        }

        // After compaction the tombstones are gone and results equal a
        // from-scratch rebuild over the survivors (calibration included).
        let report = seg.compact();
        prop_assert_eq!(report.segments_after, 1);
        prop_assert_eq!(seg.tombstone_count(), 0);
        let survivors: Vec<CatalogEntry> =
            entries.iter().filter(|e| e.v_id != victim).cloned().collect();
        let rebuilt = QueryEngine::from_catalog(survivors, HashMap::new());
        prop_assert_eq!(seg.calibration(), rebuilt.calibration());
        let opts = options(n + 3, 1, false, true);
        prop_assert_eq!(
            rebuilt.query_features(&probe, range, &opts),
            seg.query_features(&probe, range, &opts)
        );
        prop_assert_eq!(
            rebuilt.query_feature_sequence(std::slice::from_ref(&probe), &opts),
            seg.query_feature_sequence(&[probe], &opts)
        );
    }
}
