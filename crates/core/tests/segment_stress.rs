//! Queries racing ingest, removal and compaction: every query must
//! observe exactly one *published* snapshot — never a torn catalog with
//! missing or duplicated key frames, and never a state that was not
//! published. Also pins the lock-freedom contract: a query completes
//! while the commit lock is held by a writer.

use cbvr_core::engine::CatalogEntry;
use cbvr_core::{QueryEngine, QueryOptions, Registry};
use cbvr_features::FeatureSet;
use cbvr_imgproc::{Histogram256, Rgb, RgbImage};
use cbvr_index::paper_range;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn random_frame(rng: &mut rand::rngs::StdRng) -> RgbImage {
    let base = Rgb::new(
        rng.gen_range(0..=255u8),
        rng.gen_range(0..=255u8),
        rng.gen_range(0..=255u8),
    );
    RgbImage::from_fn(16, 16, |x, y| {
        Rgb::new(
            base.r.wrapping_add((x * 3) as u8),
            base.g.wrapping_add((y * 5) as u8),
            base.b.wrapping_add(((x + y) * 2) as u8),
        )
    })
    .unwrap()
}

fn video_entries(rng: &mut rand::rngs::StdRng, v_id: u64, frames: usize) -> Vec<CatalogEntry> {
    (0..frames)
        .map(|j| {
            let frame = random_frame(rng);
            CatalogEntry {
                i_id: v_id * 100 + j as u64,
                v_id,
                range: paper_range(&Histogram256::of_rgb_luma(&frame)),
                features: FeatureSet::extract(&frame),
            }
        })
        .collect()
}

fn i_ids(entries: &[CatalogEntry]) -> BTreeSet<u64> {
    entries.iter().map(|e| e.i_id).collect()
}

/// All-rows query: k covers everything, no index pruning, so the result
/// set is exactly the live catalog of whichever snapshot the query took.
fn observe(engine: &QueryEngine, probe: &FeatureSet, range: cbvr_index::RangeKey) -> Vec<u64> {
    let opts =
        QueryOptions { k: 1000, use_index: false, threads: 1, ..QueryOptions::default() };
    engine.query_features(probe, range, &opts).iter().map(|m| m.i_id).collect()
}

#[test]
fn queries_racing_mutations_observe_only_published_snapshots() {
    std::env::set_var("CBVR_POOL_HELPERS", "3");
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let v1 = video_entries(&mut rng, 1, 3);
    let v2 = video_entries(&mut rng, 2, 3);
    let v3 = video_entries(&mut rng, 3, 3);
    let v4 = video_entries(&mut rng, 4, 3);
    let probe_frame = random_frame(&mut rng);
    let probe = FeatureSet::extract(&probe_frame);
    let range = paper_range(&Histogram256::of_rgb_luma(&probe_frame));

    // The exact catalog states the writer publishes, in order. A query
    // may land on any of them, but must match one exactly.
    let s0: BTreeSet<u64> = i_ids(&v1).union(&i_ids(&v2)).copied().collect();
    let s1: BTreeSet<u64> = s0.union(&i_ids(&v3)).copied().collect();
    let s2: BTreeSet<u64> = s1.difference(&i_ids(&v2)).copied().collect();
    // Compaction publishes s2 again (same live set, new layout).
    let s3: BTreeSet<u64> = s2.union(&i_ids(&v4)).copied().collect();
    let published: Vec<BTreeSet<u64>> = vec![s0, s1, s2.clone(), s3.clone()];

    let mut engine = QueryEngine::from_segmented(
        vec![v1.clone(), v2.clone()],
        HashMap::from([(1, "one".to_string()), (2, "two".to_string())]),
    );
    let registry = Arc::new(Registry::new());
    engine.set_telemetry(registry.clone());
    let engine = Arc::new(engine);

    let done = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for reader in 0..2 {
        let engine = Arc::clone(&engine);
        let done = Arc::clone(&done);
        let probe = probe.clone();
        let published = published.clone();
        readers.push(std::thread::spawn(move || {
            let mut observations = 0usize;
            while !done.load(Ordering::SeqCst) || observations == 0 {
                let got = observe(&engine, &probe, range);
                let unique: BTreeSet<u64> = got.iter().copied().collect();
                assert_eq!(unique.len(), got.len(), "duplicate frames in reader {reader}: {got:?}");
                assert!(
                    published.contains(&unique),
                    "reader {reader} observed a torn/unpublished catalog: {unique:?}"
                );
                observations += 1;
            }
            observations
        }));
    }

    // Writer: ingest v3, remove v2, compact, ingest v4 — yielding between
    // steps so readers interleave with every state.
    let pause = || std::thread::sleep(std::time::Duration::from_millis(5));
    pause();
    engine.add_video("three", v3);
    pause();
    assert_eq!(engine.remove_video(2), 3);
    pause();
    let report = engine.compact();
    assert_eq!(report.rows_dropped, 3);
    pause();
    engine.add_video("four", v4);
    pause();
    done.store(true, Ordering::SeqCst);

    for handle in readers {
        let observations = handle.join().expect("reader panicked");
        assert!(observations > 0);
    }

    // Final state is the last published set, and the swap counter saw
    // every mutation (4 mutations = 4 swaps beyond the initial publish,
    // which predates this registry).
    let final_set: BTreeSet<u64> = observe(&engine, &probe, range).into_iter().collect();
    assert_eq!(final_set, s3);
    assert_eq!(registry.counter("catalog.snapshot.swaps").get(), 4);
    assert_eq!(registry.counter("compaction.runs").get(), 1);
    assert_eq!(registry.counter("compaction.rows_dropped").get(), 3);
}

#[test]
fn queries_complete_while_commit_lock_is_held() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let v1 = video_entries(&mut rng, 1, 4);
    let expected = i_ids(&v1);
    let probe_frame = random_frame(&mut rng);
    let probe = FeatureSet::extract(&probe_frame);
    let range = paper_range(&Histogram256::of_rgb_luma(&probe_frame));
    let engine = QueryEngine::from_catalog(v1, HashMap::new());
    // The read path takes no engine-wide lock: a query issued while a
    // writer holds the commit lock (as any in-flight mutation does) runs
    // to completion on the current thread instead of deadlocking.
    let got: BTreeSet<u64> =
        engine.with_commit_locked(|| observe(&engine, &probe, range)).into_iter().collect();
    assert_eq!(got, expected);
}
