//! Property tests for relevance feedback and score calibration.

use cbvr_core::engine::{CatalogEntry, QueryEngine};
use cbvr_core::feedback::adapt_weights;
use cbvr_core::FeatureWeights;
use cbvr_features::{FeatureKind, FeatureSet};
use cbvr_imgproc::{Rgb, RgbImage};
use cbvr_index::RangeKey;
use proptest::prelude::*;
use std::collections::HashMap;

fn frame(seed: u8) -> RgbImage {
    RgbImage::from_fn(20, 20, |x, y| {
        Rgb::new(
            (x * 11).wrapping_add(seed as u32 * 53) as u8,
            (y * 7).wrapping_add(seed as u32 * 29) as u8,
            seed.wrapping_mul(17),
        )
    })
    .unwrap()
}

fn engine_of(seeds: &[u8]) -> (QueryEngine, Vec<FeatureSet>) {
    let sets: Vec<FeatureSet> = seeds.iter().map(|&s| FeatureSet::extract(&frame(s))).collect();
    let entries: Vec<CatalogEntry> = sets
        .iter()
        .enumerate()
        .map(|(i, s)| CatalogEntry {
            i_id: i as u64 + 1,
            v_id: 1,
            range: RangeKey::new(0, 255),
            features: s.clone(),
        })
        .collect();
    (QueryEngine::from_catalog(entries, HashMap::from([(1, "v".to_string())])), sets)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn adapted_weights_preserve_total_and_positivity(
        seeds in proptest::collection::vec(any::<u8>(), 4..8),
        rel_mask in proptest::collection::vec(any::<bool>(), 4..8),
    ) {
        let (engine, sets) = engine_of(&seeds);
        let query = &sets[0];
        let mut relevant = Vec::new();
        let mut irrelevant = Vec::new();
        for (set, &rel) in sets[1..].iter().zip(rel_mask.iter()) {
            if rel {
                relevant.push(set);
            } else {
                irrelevant.push(set);
            }
        }
        let base = FeatureWeights::uniform();
        let adapted = adapt_weights(&engine, query, &relevant, &irrelevant, &base);
        prop_assert!((adapted.total() - base.total()).abs() < 1e-6);
        for kind in FeatureKind::ALL {
            prop_assert!(adapted.get(kind) >= 0.0, "{kind} negative");
        }
    }

    #[test]
    fn calibration_similarities_are_probabilities(
        seeds in proptest::collection::vec(any::<u8>(), 2..8),
        distance in 0.0f64..1e6,
    ) {
        let (engine, _) = engine_of(&seeds);
        for kind in FeatureKind::ALL {
            let s = engine.calibration().similarity(kind, distance);
            prop_assert!((0.0..=1.0).contains(&s), "{kind}: {s}");
        }
    }
}
