//! Parallel paths must be bit-identical to the serial (`threads = 1`)
//! path: the pool only changes *who* computes each candidate, never the
//! arithmetic or the selected set. These tests pin that contract for
//! frame scoring, clip DTW and ingest extraction over randomised
//! catalogs and every interesting `k` regime.

use cbvr_core::engine::CatalogEntry;
use cbvr_core::{FeatureWeights, QueryEngine, QueryOptions, THREADS_AUTO};
use cbvr_features::FeatureSet;
use cbvr_imgproc::{Histogram256, Rgb, RgbImage};
use cbvr_index::{paper_range, RangeKey};
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Force the global pool to spawn real helper threads even on a
/// single-core host, so these tests genuinely race chunk claims.
/// Every test sets the same value, and it is read exactly once (at the
/// pool's first use), so the cross-test race is benign.
fn force_parallel_pool() {
    std::env::set_var("CBVR_POOL_HELPERS", "3");
}

/// A small random frame (random enough that scores are distinct, small
/// enough that extracting dozens of feature sets stays fast).
fn random_frame(rng: &mut rand::rngs::StdRng) -> RgbImage {
    let base = Rgb::new(
        rng.gen_range(0..=255u8),
        rng.gen_range(0..=255u8),
        rng.gen_range(0..=255u8),
    );
    let fx = rng.gen_range(1..=7u32);
    let fy = rng.gen_range(1..=7u32);
    RgbImage::from_fn(24, 24, |x, y| {
        Rgb::new(
            base.r.wrapping_add((x * fx) as u8),
            base.g.wrapping_add((y * fy) as u8),
            base.b.wrapping_add(((x + y) * 3) as u8),
        )
    })
    .unwrap()
}

fn entry_from_frame(i_id: u64, v_id: u64, frame: &RgbImage) -> CatalogEntry {
    CatalogEntry {
        i_id,
        v_id,
        range: paper_range(&Histogram256::of_rgb_luma(frame)),
        features: FeatureSet::extract(frame),
    }
}

/// Build a random catalog of `n` entries spread over `videos` videos,
/// plus a query feature set + range.
fn random_catalog(
    seed: u64,
    n: usize,
    videos: u64,
) -> (QueryEngine, FeatureSet, RangeKey) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut entries = Vec::with_capacity(n);
    for i in 0..n {
        let frame = random_frame(&mut rng);
        entries.push(entry_from_frame(i as u64 + 1, (i as u64 % videos) + 1, &frame));
    }
    let names: HashMap<u64, String> =
        (1..=videos).map(|v| (v, format!("video_{v}"))).collect();
    let engine = QueryEngine::from_catalog(entries, names);
    let probe = random_frame(&mut rng);
    let range = paper_range(&Histogram256::of_rgb_luma(&probe));
    (engine, FeatureSet::extract(&probe), range)
}

fn options(k: usize, threads: usize, use_index: bool) -> QueryOptions {
    QueryOptions { k, threads, use_index, ..QueryOptions::default() }
}

#[test]
fn frame_query_is_identical_across_thread_counts() {
    force_parallel_pool();
    let (engine, probe, range) = random_catalog(7, 48, 5);
    let n = engine.len();
    for use_index in [false, true] {
        for k in [0, 1, 3, n, n + 7] {
            let serial = engine.query_features(&probe, range, &options(k, 1, use_index));
            assert_eq!(serial.len(), if use_index { serial.len() } else { k.min(n) });
            for threads in [2, 3, 4, 8, THREADS_AUTO] {
                let parallel =
                    engine.query_features(&probe, range, &options(k, threads, use_index));
                assert_eq!(
                    serial, parallel,
                    "k={k} threads={threads} use_index={use_index}"
                );
            }
        }
    }
}

#[test]
fn frame_query_ties_break_by_ascending_id_in_every_mode() {
    force_parallel_pool();
    // Duplicate the same frame under many ids: every copy scores
    // identically, so the ranking is decided purely by the tie-break.
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let dup = random_frame(&mut rng);
    let mut entries = Vec::new();
    for i in 0..24u64 {
        entries.push(entry_from_frame(100 + i, (i % 3) + 1, &dup));
    }
    // A few distinct entries mixed in so the heap sees both regimes.
    for i in 0..8u64 {
        let f = random_frame(&mut rng);
        entries.push(entry_from_frame(i + 1, (i % 3) + 1, &f));
    }
    let engine = QueryEngine::from_catalog(entries, HashMap::new());
    let probe = FeatureSet::extract(&dup);
    let range = paper_range(&Histogram256::of_rgb_luma(&dup));
    for threads in [1, 2, 4, THREADS_AUTO] {
        let results = engine.query_features(&probe, range, &options(10, threads, false));
        assert_eq!(results.len(), 10);
        // All ten are perfect-score duplicates, listed in id order.
        for (j, m) in results.iter().enumerate() {
            assert!((m.score - 1.0).abs() < 1e-12, "threads={threads}");
            assert_eq!(m.i_id, 100 + j as u64, "threads={threads}");
        }
    }
}

#[test]
fn clip_query_is_identical_across_thread_counts() {
    force_parallel_pool();
    let (engine, _, _) = random_catalog(23, 36, 6);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let query: Vec<FeatureSet> =
        (0..4).map(|_| FeatureSet::extract(&random_frame(&mut rng))).collect();
    let videos = engine.video_ids().len();
    for k in [0, 1, videos, videos + 3] {
        let serial = engine.query_feature_sequence(&query, &options(k, 1, true));
        assert_eq!(serial.len(), k.min(videos));
        for threads in [2, 4, 8, THREADS_AUTO] {
            let parallel = engine.query_feature_sequence(&query, &options(k, threads, true));
            assert_eq!(serial, parallel, "k={k} threads={threads}");
        }
    }
}

#[test]
fn parallel_extraction_preserves_order_and_values() {
    force_parallel_pool();
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let frames: Vec<RgbImage> = (0..17).map(|_| random_frame(&mut rng)).collect();
    let refs: Vec<&RgbImage> = frames.iter().collect();
    let serial = cbvr_core::ingest::extract_feature_sets_parallel(&refs, 1);
    assert_eq!(serial.len(), frames.len());
    for (i, set) in serial.iter().enumerate() {
        assert_eq!(set, &FeatureSet::extract(&frames[i]), "slot {i}");
    }
    for threads in [2, 4, THREADS_AUTO] {
        let parallel = cbvr_core::ingest::extract_feature_sets_parallel(&refs, threads);
        assert_eq!(serial, parallel, "threads={threads}");
    }
}

#[test]
fn single_feature_weights_stay_identical_in_parallel() {
    force_parallel_pool();
    let (engine, probe, range) = random_catalog(55, 30, 4);
    for kind in cbvr_features::FeatureKind::ALL {
        let opts = |threads| QueryOptions {
            k: 8,
            threads,
            use_index: false,
            weights: FeatureWeights::single(kind),
            ..QueryOptions::default()
        };
        let serial = engine.query_features(&probe, range, &opts(1));
        let parallel = engine.query_features(&probe, range, &opts(4));
        assert_eq!(serial, parallel, "{kind}");
    }
}
