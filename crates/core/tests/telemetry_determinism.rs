//! The telemetry subsystem must be *deterministic*: under a
//! [`TestClock`] every histogram bucket, percentile readout and span
//! duration is exact, and counters driven from `ExecPool` concurrency
//! merge without loss at every `CBVR_POOL_HELPERS` setting (CI runs the
//! suite at `1` and `4`). These tests also pin the engine's edge cases —
//! `k = 0`, `k > catalog`, empty catalog, `threads > items` — as both
//! result-identical and telemetry-consistent serial vs parallel.

use cbvr_core::engine::CatalogEntry;
use cbvr_core::{
    ExecPool, QueryEngine, QueryOptions, Registry, TestClock, THREADS_AUTO,
};
use cbvr_features::FeatureSet;
use cbvr_imgproc::{Histogram256, Rgb, RgbImage};
use cbvr_index::{paper_range, RangeKey};
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialises the tests that drive execution pools: `pool.*` metrics
/// land in the process-global registry, so concurrent pool activity
/// would perturb the exact-delta assertions below.
fn pool_lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn random_frame(rng: &mut rand::rngs::StdRng) -> RgbImage {
    let base = Rgb::new(
        rng.gen_range(0..=255u8),
        rng.gen_range(0..=255u8),
        rng.gen_range(0..=255u8),
    );
    let fx = rng.gen_range(1..=7u32);
    let fy = rng.gen_range(1..=7u32);
    RgbImage::from_fn(24, 24, |x, y| {
        Rgb::new(
            base.r.wrapping_add((x * fx) as u8),
            base.g.wrapping_add((y * fy) as u8),
            base.b.wrapping_add(((x + y) * 3) as u8),
        )
    })
    .unwrap()
}

fn entry_from_frame(i_id: u64, v_id: u64, frame: &RgbImage) -> CatalogEntry {
    CatalogEntry {
        i_id,
        v_id,
        range: paper_range(&Histogram256::of_rgb_luma(frame)),
        features: FeatureSet::extract(frame),
    }
}

/// An engine over `n` random entries, reporting into a fresh
/// TestClock-driven registry (isolated from the global).
fn test_engine(seed: u64, n: usize) -> (QueryEngine, Arc<Registry>, FeatureSet, RangeKey) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut entries = Vec::with_capacity(n);
    for i in 0..n {
        let frame = random_frame(&mut rng);
        entries.push(entry_from_frame(i as u64 + 1, (i as u64 % 3) + 1, &frame));
    }
    let mut engine = QueryEngine::from_catalog(entries, HashMap::new());
    let registry = Arc::new(Registry::with_clock(Arc::new(TestClock::new())));
    engine.set_telemetry(registry.clone());
    let probe = random_frame(&mut rng);
    let range = paper_range(&Histogram256::of_rgb_luma(&probe));
    (engine, registry, FeatureSet::extract(&probe), range)
}

fn options(k: usize, threads: usize) -> QueryOptions {
    QueryOptions { k, threads, use_index: false, ..QueryOptions::default() }
}

#[test]
fn bucket_boundaries_are_pinned_through_the_public_api() {
    let registry = Registry::with_clock(Arc::new(TestClock::new()));
    let h = registry.histogram("pinned");
    // Bucket 0 holds exactly 0; bucket i ≥ 1 holds [2^(i-1), 2^i - 1].
    for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
        h.record_nanos(v);
    }
    assert_eq!(h.bucket(0), 1, "only 0 lands in the underflow bucket");
    assert_eq!(h.bucket(1), 1, "1");
    assert_eq!(h.bucket(2), 2, "2 and 3");
    assert_eq!(h.bucket(3), 2, "4 and 7 share bucket [4,7]");
    assert_eq!(h.bucket(4), 1, "8");
    assert_eq!(h.bucket(10), 1, "1023");
    assert_eq!(h.bucket(11), 1, "1024");
    assert_eq!(h.bucket(64), 1, "u64::MAX");
    assert_eq!(h.count(), 10);
}

#[test]
fn percentile_readouts_are_exact() {
    let h = Registry::new().histogram("q");
    // 100 samples: 1..=100. p50 rank = 50 → sample 50 → bucket
    // [32,63] → readout 63. p99 rank = 99 → sample 99 → bucket
    // [64,127] → readout 127.
    for v in 1..=100u64 {
        h.record_nanos(v);
    }
    assert_eq!(h.count(), 100);
    assert_eq!(h.sum(), 5050);
    assert_eq!(h.p50(), 63);
    assert_eq!(h.p99(), 127);
    assert_eq!(h.quantile(0.0), 1, "rank clamps to the first sample");
    assert_eq!(h.quantile(1.0), 127);
}

#[test]
fn nested_spans_attribute_time_exactly() {
    let clock = Arc::new(TestClock::new());
    let registry = Registry::with_clock(clock.clone());
    {
        let _outer = registry.span("outer");
        clock.advance(100);
        {
            let _inner = registry.span("inner");
            clock.advance(250);
        }
        clock.advance(50);
    }
    let inner = registry.histogram("inner");
    let outer = registry.histogram("outer");
    assert_eq!(inner.count(), 1);
    assert_eq!(inner.sum(), 250, "inner sees only its own advance");
    assert_eq!(outer.count(), 1);
    assert_eq!(outer.sum(), 400, "outer spans the whole nest");
    // Re-entering the same stage accumulates into the same histogram.
    {
        let _again = registry.span("outer");
        clock.advance(600);
    }
    assert_eq!(outer.count(), 2);
    assert_eq!(outer.sum(), 1000);
    assert_eq!(outer.p50(), 511, "samples 400 and 600 share bucket [256,511] and [512,1023]");
}

#[test]
fn counters_merge_losslessly_under_pool_concurrency() {
    // N threads × M increments must equal exactly N·M — the counter is
    // one Relaxed fetch_add, so no increment can be lost at any helper
    // count. Run the same workload through pools of several sizes
    // (including 0 = serial) and through raw std threads.
    let _serial = pool_lock();
    let registry = Registry::with_clock(Arc::new(TestClock::new()));
    let counter = registry.counter("merge");
    const ITEMS: usize = 1000;
    let mut expected = 0u64;
    for helpers in [0usize, 1, 3, 7] {
        let pool = ExecPool::with_helpers(helpers);
        for threads in [1, 2, THREADS_AUTO] {
            pool.run(ITEMS, 16, threads, |range| {
                for _ in range {
                    counter.inc();
                }
            });
            expected += ITEMS as u64;
            assert_eq!(counter.get(), expected, "helpers={helpers} threads={threads}");
        }
    }
    // Raw threads: 8 × 500.
    let shared = registry.counter("merge.raw");
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let c = shared.clone();
            scope.spawn(move || {
                for _ in 0..500 {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(shared.get(), 8 * 500);
}

#[test]
fn pool_job_and_chunk_counters_are_deterministic() {
    // `pool.jobs` and `pool.chunks` land in the *global* registry (all
    // pools share it), so measure deltas around an exclusive workload.
    let _serial = pool_lock();
    let registry = Registry::global();
    let jobs = registry.counter("pool.jobs");
    let chunks = registry.counter("pool.chunks");
    let pool = ExecPool::with_helpers(2);

    let (j0, c0) = (jobs.get(), chunks.get());
    pool.run(100, 10, 1, |_| {});
    assert_eq!(jobs.get() - j0, 1, "one job per run");
    assert_eq!(chunks.get() - c0, 1, "serial path executes as a single chunk");

    let (j1, c1) = (jobs.get(), chunks.get());
    pool.run(100, 10, THREADS_AUTO, |_| {});
    assert_eq!(jobs.get() - j1, 1);
    assert_eq!(chunks.get() - c1, 10, "parallel path claims ceil(100/10) chunks");

    let (j2, c2) = (jobs.get(), chunks.get());
    pool.run(0, 10, THREADS_AUTO, |_| {});
    assert_eq!(jobs.get() - j2, 0, "empty runs are not jobs");
    assert_eq!(chunks.get() - c2, 0);
}

#[test]
fn engine_edge_cases_are_identical_and_telemetry_consistent() {
    let _serial = pool_lock();
    let (engine, registry, probe, range) = test_engine(301, 29);
    let n = engine.len();
    let requests = registry.counter("query.frame.requests");
    let candidates = registry.counter("query.frame.candidates");
    let scan = registry.histogram("query.frame.scan_nanos");
    let score = registry.histogram("query.frame.score_nanos");

    // k = 0: empty result, counted as a request, never scored.
    assert!(engine.query_features(&probe, range, &options(0, 1)).is_empty());
    assert!(engine.query_features(&probe, range, &options(0, THREADS_AUTO)).is_empty());
    assert_eq!(requests.get(), 2);
    assert_eq!(candidates.get(), 2 * n as u64);
    assert_eq!(scan.count(), 2, "candidate scan still ran");
    assert_eq!(score.count(), 0, "k = 0 short-circuits before scoring");

    // k > catalog: every entry returned, serial == parallel, and the
    // scoring stage records one sample per request on both paths.
    let serial = engine.query_features(&probe, range, &options(n + 7, 1));
    let parallel = engine.query_features(&probe, range, &options(n + 7, THREADS_AUTO));
    assert_eq!(serial.len(), n);
    assert_eq!(serial, parallel);
    assert_eq!(requests.get(), 4);
    assert_eq!(score.count(), 2);

    // threads > items: still identical.
    let narrow = engine.query_features(&probe, range, &options(3, 64));
    assert_eq!(narrow, engine.query_features(&probe, range, &options(3, 1)));

    // TestClock never advanced: every recorded duration is exactly 0.
    assert_eq!(scan.sum(), 0);
    assert_eq!(score.sum(), 0);
    assert_eq!(score.p99(), 0);
}

#[test]
fn empty_catalog_is_graceful_and_counted() {
    let mut engine = QueryEngine::from_catalog(Vec::new(), HashMap::new());
    let registry = Arc::new(Registry::with_clock(Arc::new(TestClock::new())));
    engine.set_telemetry(registry.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let probe_frame = random_frame(&mut rng);
    let probe = FeatureSet::extract(&probe_frame);
    let range = paper_range(&Histogram256::of_rgb_luma(&probe_frame));

    for threads in [1, THREADS_AUTO] {
        assert!(engine.query_features(&probe, range, &options(5, threads)).is_empty());
        assert!(engine
            .query_feature_sequence(std::slice::from_ref(&probe), &options(5, threads))
            .is_empty());
    }
    assert_eq!(registry.counter("query.frame.requests").get(), 2);
    assert_eq!(registry.counter("query.clip.requests").get(), 2);
    assert_eq!(registry.counter("query.frame.candidates").get(), 0);
    assert_eq!(registry.histogram("query.frame.score_nanos").count(), 0);
}

#[test]
fn clip_queries_record_dtw_and_rank_stages() {
    let _serial = pool_lock();
    let (engine, registry, probe, _) = test_engine(77, 18);
    let videos = engine.video_ids().len();
    let query = vec![probe.clone(), probe];

    let serial = engine.query_feature_sequence(&query, &options(videos + 2, 1));
    let parallel = engine.query_feature_sequence(&query, &options(videos + 2, THREADS_AUTO));
    assert_eq!(serial.len(), videos);
    assert_eq!(serial, parallel);

    assert_eq!(registry.counter("query.clip.requests").get(), 2);
    assert_eq!(registry.histogram("query.clip.dtw_nanos").count(), 2);
    assert_eq!(registry.histogram("query.clip.rank_nanos").count(), 2);
    // k = 0 counts the request but skips both stages.
    assert!(engine.query_feature_sequence(&query, &options(0, 1)).is_empty());
    assert_eq!(registry.counter("query.clip.requests").get(), 3);
    assert_eq!(registry.histogram("query.clip.dtw_nanos").count(), 2);
}

#[test]
fn render_snapshot_is_stable_for_a_fixed_workload() {
    // Same workload on a fresh TestClock registry → byte-identical
    // exposition, independent of thread scheduling.
    let run = || {
        let clock = Arc::new(TestClock::new());
        let registry = Registry::with_clock(clock.clone());
        registry.counter("a.count").add(3);
        {
            let _s = registry.span("b.stage_nanos");
            clock.advance(2000);
        }
        registry.histogram("c hist").record_nanos(5);
        registry.render_text()
    };
    let first = run();
    assert_eq!(first, run());
    assert_eq!(
        first,
        "a.count 3\n\
         b.stage_nanos.count 1\n\
         b.stage_nanos.p50 2047\n\
         b.stage_nanos.p99 2047\n\
         b.stage_nanos.sum 2000\n\
         c_hist.count 1\n\
         c_hist.p50 7\n\
         c_hist.p99 7\n\
         c_hist.sum 5\n"
    );
}
