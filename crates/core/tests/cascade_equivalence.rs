//! The early-abandon cascade must be invisible in results: for every
//! catalog, weight profile, `k` regime and thread count, `abandon: true`
//! returns *exactly* the matches (ids AND bit-identical scores) of the
//! naive full scan (`abandon: false`), which in turn matches a
//! per-entry [`QueryEngine::combined_similarity`] reference ranking.
//! Randomised via proptest so the pin covers the whole input space, not
//! a handful of hand-picked frames.

use cbvr_core::engine::CatalogEntry;
use cbvr_core::{FeatureWeights, QueryEngine, QueryOptions, THREADS_AUTO};
use cbvr_features::{FeatureKind, FeatureSet};
use cbvr_imgproc::{Histogram256, Rgb, RgbImage};
use cbvr_index::{paper_range, RangeKey};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Force real helper threads even on a single-core host, so parallel
/// runs genuinely race chunk claims and shared-threshold updates.
fn force_parallel_pool() {
    std::env::set_var("CBVR_POOL_HELPERS", "3");
}

fn random_frame(rng: &mut rand::rngs::StdRng) -> RgbImage {
    let base = Rgb::new(
        rng.gen_range(0..=255u8),
        rng.gen_range(0..=255u8),
        rng.gen_range(0..=255u8),
    );
    let fx = rng.gen_range(1..=7u32);
    let fy = rng.gen_range(1..=7u32);
    RgbImage::from_fn(16, 16, |x, y| {
        Rgb::new(
            base.r.wrapping_add((x * fx) as u8),
            base.g.wrapping_add((y * fy) as u8),
            base.b.wrapping_add(((x + y) * 3) as u8),
        )
    })
    .unwrap()
}

fn entry_from_frame(i_id: u64, v_id: u64, frame: &RgbImage) -> CatalogEntry {
    CatalogEntry {
        i_id,
        v_id,
        range: paper_range(&Histogram256::of_rgb_luma(frame)),
        features: FeatureSet::extract(frame),
    }
}

fn random_catalog(seed: u64, n: usize) -> (QueryEngine, FeatureSet, RangeKey) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut entries = Vec::with_capacity(n);
    for i in 0..n {
        let frame = random_frame(&mut rng);
        entries.push(entry_from_frame(i as u64 + 1, (i as u64 % 3) + 1, &frame));
    }
    let engine = QueryEngine::from_catalog(entries, HashMap::new());
    let probe = random_frame(&mut rng);
    let range = paper_range(&Histogram256::of_rgb_luma(&probe));
    (engine, FeatureSet::extract(&probe), range)
}

/// Weight profiles the cascade must stay exact under: the paper default,
/// uniform, a single expensive stage, a single cheap stage, and a skewed
/// hand-rolled mix (including a zeroed-out stage).
fn weight_profiles(seed: u64) -> Vec<FeatureWeights> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let mut random = FeatureWeights::default();
    for kind in FeatureKind::ALL {
        random.set(kind, (rng.gen_range(0..=100u32) as f64) / 50.0);
    }
    vec![
        FeatureWeights::default(),
        FeatureWeights::uniform(),
        FeatureWeights::single(FeatureKind::ColorHistogram),
        FeatureWeights::single(FeatureKind::Regions),
        random,
    ]
}

fn options(
    k: usize,
    threads: usize,
    use_index: bool,
    weights: &FeatureWeights,
    abandon: bool,
) -> QueryOptions {
    QueryOptions {
        k,
        threads,
        use_index,
        weights: weights.clone(),
        abandon,
        ..QueryOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn frame_query_cascade_matches_naive_scan(
        seed in 0u64..1_000_000,
        n in 4usize..=20,
    ) {
        force_parallel_pool();
        let (engine, probe, range) = random_catalog(seed, n);
        for weights in &weight_profiles(seed) {
            for use_index in [false, true] {
                for k in [0, 1, n / 2, n, n + 7] {
                    // The naive full scan at one thread is the ground truth.
                    let naive = engine.query_features(
                        &probe, range, &options(k, 1, use_index, weights, false),
                    );
                    for threads in [1, 4, THREADS_AUTO] {
                        for abandon in [false, true] {
                            let got = engine.query_features(
                                &probe, range,
                                &options(k, threads, use_index, weights, abandon),
                            );
                            // Vec<FrameMatch> equality: ids, v_ids AND
                            // bit-identical scores.
                            prop_assert_eq!(
                                &naive, &got,
                                "k={} threads={} abandon={} use_index={}",
                                k, threads, abandon, use_index
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn clip_query_cascade_matches_naive_scan(
        seed in 0u64..1_000_000,
        n in 4usize..=14,
    ) {
        force_parallel_pool();
        let (engine, _, _) = random_catalog(seed, n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xdead_beef);
        let query: Vec<FeatureSet> =
            (0..3).map(|_| FeatureSet::extract(&random_frame(&mut rng))).collect();
        let nvid = engine.video_ids().len();
        for weights in &weight_profiles(seed) {
            for k in [1, nvid, nvid + 2] {
                let naive = engine.query_feature_sequence(
                    &query, &options(k, 1, true, weights, false),
                );
                for threads in [1, 4] {
                    for abandon in [false, true] {
                        let got = engine.query_feature_sequence(
                            &query, &options(k, threads, true, weights, abandon),
                        );
                        prop_assert_eq!(
                            &naive, &got,
                            "k={} threads={} abandon={}", k, threads, abandon
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn frame_query_matches_similarity_reference(
        seed in 0u64..1_000_000,
        n in 4usize..=12,
    ) {
        force_parallel_pool();
        // Reference ranking computed entry-by-entry from the public
        // combined_similarity (f64, no arena): the cascade's scores must
        // agree to float-noise tolerance and rank identically.
        let (engine, probe, range) = random_catalog(seed, n);
        let weights = FeatureWeights::default();
        let got = engine.query_features(
            &probe, range, &options(n, 1, false, &weights, true),
        );
        prop_assert_eq!(got.len(), n);
        let mut reference: Vec<(u64, f64)> = (0..n)
            .map(|i| {
                let e = engine.entry(i);
                (e.i_id, engine.combined_similarity(&probe, &e.features, &weights))
            })
            .collect();
        reference.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0))
        });
        for (m, (ref_id, ref_score)) in got.iter().zip(&reference) {
            // The arena stores descriptors as f32, the reference keeps
            // f64 end-to-end, so agreement is to f32 quantisation noise
            // (~1e-7 relative), not bit-exact.
            prop_assert!(
                (m.score - ref_score).abs() < 1e-6,
                "score drift: arena {} vs reference {}", m.score, ref_score
            );
            // Ranks may only differ where reference scores genuinely tie
            // within float noise; outside that, ids must line up.
            if (m.score - ref_score).abs() == 0.0 {
                prop_assert_eq!(m.i_id, *ref_id);
            }
        }
    }
}

/// A self-query over a catalog containing the probe itself must put the
/// exact duplicate first with a score of exactly 1.0 — the arena
/// quantises query and catalog identically, so the cascade cannot lose
/// the perfect match no matter how aggressively it abandons.
#[test]
fn self_query_survives_cascade_with_perfect_score() {
    force_parallel_pool();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
    let dup = random_frame(&mut rng);
    let mut entries = vec![entry_from_frame(1, 1, &dup)];
    for i in 0..11u64 {
        entries.push(entry_from_frame(i + 2, (i % 3) + 1, &random_frame(&mut rng)));
    }
    let engine = QueryEngine::from_catalog(entries, HashMap::new());
    let probe = FeatureSet::extract(&dup);
    let range = paper_range(&Histogram256::of_rgb_luma(&dup));
    for threads in [1, 4] {
        for abandon in [false, true] {
            let got = engine.query_features(
                &probe,
                range,
                &options(3, threads, false, &FeatureWeights::default(), abandon),
            );
            assert_eq!(got[0].i_id, 1, "threads={threads} abandon={abandon}");
            assert_eq!(got[0].score, 1.0, "threads={threads} abandon={abandon}");
        }
    }
}
