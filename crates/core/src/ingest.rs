//! The ingestion pipeline (Administrator's *add video*).
//!
//! decode → key frames (§4.1) → features (§4.3–§4.8, parallel) → range
//! key (§4.2) → one atomic batch into `VIDEO_STORE` + `KEY_FRAMES`.
//!
//! Stored artifacts per video, mirroring the paper's schema:
//!
//! - `VIDEO`   — the full clip, VSC-encoded;
//! - `STREAM`  — "stream of keyframes": the key frames alone as a 1 fps
//!   VSC clip (what the UI pages through);
//! - one `KEY_FRAMES` row per key frame: PPM image blob, `MIN`/`MAX`
//!   range, and all seven feature strings.

use crate::error::{CoreError, Result};
use crate::telemetry::Registry;
use cbvr_features::gabor::GaborTexture;
use cbvr_features::glcm::GlcmTexture;
use cbvr_features::histogram::ColorHistogram;
use cbvr_features::naive::NaiveSignature;
use cbvr_features::region::RegionGrowing;
use cbvr_features::tamura::TamuraTexture;
use cbvr_features::correlogram::AutoColorCorrelogram;
use cbvr_features::FeatureSet;
use cbvr_imgproc::codec::{encode, ImageFormat};
use cbvr_imgproc::{Histogram256, RgbImage};
use cbvr_index::{paper_range, RangeKey};
use cbvr_keyframe::{extract_keyframes, Keyframe, KeyframeConfig};
use cbvr_storage::backend::Backend;
use cbvr_storage::{CbvrDatabase, KeyFrameRecord, ManifestSegment, VideoRecord};
use cbvr_video::{encode_vsc, FrameCodec, Video};

/// Ingestion parameters.
#[derive(Clone, Debug)]
pub struct IngestConfig {
    /// Key-frame extraction parameters (threshold 800.0 by default).
    pub keyframe: KeyframeConfig,
    /// Frame codec for the stored VSC blobs.
    pub frame_codec: FrameCodec,
    /// Container for the stored key-frame images (`IMAGE` column).
    /// `Ppm` is lossless; `Vjp` matches the paper's JPEG storage and
    /// shrinks the blob several-fold. Features are extracted from the
    /// *original* frame either way, so retrieval quality is unaffected.
    pub image_format: ImageFormat,
    /// Worker threads for feature extraction (1 = sequential).
    pub threads: usize,
    /// `DOSTORE` timestamp, epoch seconds (callers supply it; the library
    /// takes no clock dependency).
    pub timestamp: u64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            keyframe: KeyframeConfig::default(),
            frame_codec: FrameCodec::Delta,
            image_format: ImageFormat::Ppm,
            threads: 4,
            timestamp: 0,
        }
    }
}

/// What ingestion produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestReport {
    /// Assigned `VIDEO_STORE` primary key.
    pub v_id: u64,
    /// Assigned `KEY_FRAMES` primary keys, in frame order.
    pub keyframe_ids: Vec<u64>,
    /// Source-frame index of each key frame.
    pub keyframe_indices: Vec<usize>,
    /// Range-finder key of each key frame.
    pub ranges: Vec<RangeKey>,
}

/// Extract all seven features for each frame on the shared
/// [`crate::pool::ExecPool`] (order is preserved).
///
/// Chunk size 1: per-frame cost varies wildly (region growing and Gabor
/// depend on content), so fine-grained stealing keeps workers busy where
/// the old fixed `div_ceil` split left them idle behind one slow chunk.
pub fn extract_feature_sets_parallel(frames: &[&RgbImage], threads: usize) -> Vec<FeatureSet> {
    // Per-kind extraction timings map onto the paper's Table 1 rows.
    // Handles are resolved once here; the parallel bodies only touch
    // atomics. Building the set field-by-field with a timer around each
    // extractor produces the exact same values as `FeatureSet::extract`
    // (which calls the same seven extractors in the same order).
    let registry = Registry::global();
    let sch = registry.histogram("ingest.extract.sch_nanos");
    let glcm = registry.histogram("ingest.extract.glcm_nanos");
    let gabor = registry.histogram("ingest.extract.gabor_nanos");
    let tamura = registry.histogram("ingest.extract.tamura_nanos");
    let acc = registry.histogram("ingest.extract.acc_nanos");
    let naive = registry.histogram("ingest.extract.naive_nanos");
    let srg = registry.histogram("ingest.extract.srg_nanos");
    crate::pool::ExecPool::global().map(frames, 1, threads, |_, frame| FeatureSet {
        histogram: {
            let _t = registry.timer(&sch);
            ColorHistogram::extract(frame)
        },
        glcm: {
            let _t = registry.timer(&glcm);
            GlcmTexture::extract(frame)
        },
        gabor: {
            let _t = registry.timer(&gabor);
            GaborTexture::extract(frame)
        },
        tamura: {
            let _t = registry.timer(&tamura);
            TamuraTexture::extract(frame)
        },
        correlogram: {
            let _t = registry.timer(&acc);
            AutoColorCorrelogram::extract(frame)
        },
        naive: {
            let _t = registry.timer(&naive);
            NaiveSignature::extract(frame)
        },
        regions: {
            let _t = registry.timer(&srg);
            RegionGrowing::extract(frame)
        },
    })
}

/// Ingest one video under `name`. The whole operation is one atomic
/// batch: a failure leaves the database exactly as it was.
///
/// Every failed ingest — bad input, encode error, or a storage error
/// surfaced by the commit — bumps `ingest.failures`.
pub fn ingest_video<B: Backend>(
    db: &mut CbvrDatabase<B>,
    name: &str,
    video: &Video,
    config: &IngestConfig,
) -> Result<IngestReport> {
    let result = ingest_video_impl(db, name, video, config);
    if result.is_err() {
        Registry::global().counter("ingest.failures").inc();
    }
    result
}

fn ingest_video_impl<B: Backend>(
    db: &mut CbvrDatabase<B>,
    name: &str,
    video: &Video,
    config: &IngestConfig,
) -> Result<IngestReport> {
    if name.is_empty() {
        return Err(CoreError::Config("video name must not be empty".into()));
    }
    let registry = Registry::global();
    registry.counter("ingest.requests").inc();

    // 1. Key frames.
    let keyframes: Vec<Keyframe> = {
        let _t = registry.span("ingest.keyframes_nanos");
        extract_keyframes(video, &config.keyframe)
    };
    registry.counter("ingest.keyframes").add(keyframes.len() as u64);

    // 2. Features, fanned out.
    let frames: Vec<&RgbImage> = keyframes.iter().map(|k| &k.frame).collect();
    let features = {
        let _t = registry.span("ingest.extract_nanos");
        extract_feature_sets_parallel(&frames, config.threads)
    };

    // 3. Range keys from the luminance histogram (§4.2).
    let ranges: Vec<RangeKey> = {
        let _t = registry.span("ingest.range_nanos");
        keyframes
            .iter()
            .map(|k| paper_range(&Histogram256::of_rgb_luma(&k.frame)))
            .collect()
    };

    // 4. Blobs.
    let _encode = registry.span("ingest.encode_nanos");
    let video_bytes = encode_vsc(video, config.frame_codec);
    let stream_frames: Vec<RgbImage> = keyframes.iter().map(|k| k.frame.clone()).collect();
    let stream_bytes = encode_vsc(
        &Video::new(1, stream_frames).map_err(CoreError::Video)?,
        config.frame_codec,
    );
    drop(_encode);

    // 5. One atomic batch.
    let _store = registry.span("ingest.store_nanos");
    let timestamp = config.timestamp;
    let report = db.run_batch(|db| {
        let v_id = db.insert_video(&VideoRecord {
            v_name: name.to_string(),
            video: video_bytes.clone(),
            stream: stream_bytes.clone(),
            dostore: timestamp,
        })?;
        let mut keyframe_ids = Vec::with_capacity(keyframes.len());
        for ((kf, set), range) in keyframes.iter().zip(&features).zip(&ranges) {
            let record = KeyFrameRecord {
                i_name: format!("v{v_id}_kf_{:05}", kf.index),
                image: encode(&kf.frame, config.image_format),
                min: range.min,
                max: range.max,
                sch: set.histogram.to_feature_string(),
                glcm: set.glcm.to_feature_string(),
                gabor: set.gabor.to_feature_string(),
                tamura: set.tamura.to_feature_string(),
                acc: set.correlogram.to_feature_string(),
                naive: set.naive.to_feature_string(),
                srg: set.regions.to_feature_string(),
                majorregions: set.regions.major_regions,
                v_id,
            };
            keyframe_ids.push(db.insert_key_frame(&record)?);
        }
        // Seal the batch as one catalog segment. Same atomic unit as the
        // rows: a crash recovers to the previous published snapshot.
        if let (Some(&min_i_id), Some(&max_i_id)) = (keyframe_ids.first(), keyframe_ids.last()) {
            db.append_manifest_segment(ManifestSegment {
                min_i_id,
                max_i_id,
                rows: keyframe_ids.len() as u64,
            })?;
        }
        Ok((v_id, keyframe_ids))
    })?;

    Ok(IngestReport {
        v_id: report.0,
        keyframe_ids: report.1,
        keyframe_indices: keyframes.iter().map(|k| k.index).collect(),
        ranges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbvr_video::{Category, GeneratorConfig, VideoGenerator};

    fn small_clip(seed: u64) -> Video {
        let config = GeneratorConfig {
            width: 64,
            height: 48,
            shots_per_video: 2,
            min_shot_frames: 4,
            max_shot_frames: 6,
            ..GeneratorConfig::default()
        };
        VideoGenerator::new(config).unwrap().generate(Category::Cartoon, seed).unwrap()
    }

    #[test]
    fn ingest_stores_video_and_keyframes() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let video = small_clip(1);
        let report = ingest_video(&mut db, "cartoon_01", &video, &IngestConfig::default()).unwrap();
        assert!(!report.keyframe_ids.is_empty());
        assert_eq!(report.keyframe_ids.len(), report.ranges.len());
        assert_eq!(report.keyframe_ids.len(), report.keyframe_indices.len());

        // The video round-trips.
        let full = db.get_video(report.v_id).unwrap();
        assert_eq!(full.v_name, "cartoon_01");
        let bytes = db.read_video_bytes(&full.row).unwrap();
        let decoded = cbvr_video::decode_vsc(&bytes).unwrap();
        assert_eq!(decoded, video);

        // The key-frame stream decodes to the key frames.
        let stream = db.read_stream_bytes(&full.row).unwrap();
        let stream_video = cbvr_video::decode_vsc(&stream).unwrap();
        assert_eq!(stream_video.frame_count(), report.keyframe_ids.len());

        // Rows carry parseable feature strings and matching ranges.
        let row = db.get_key_frame(report.keyframe_ids[0]).unwrap();
        assert_eq!(row.v_id, report.v_id);
        assert_eq!(row.min, report.ranges[0].min);
        assert_eq!(row.max, report.ranges[0].max);
        assert!(cbvr_features::histogram::ColorHistogram::parse(&row.sch).is_ok());
        assert!(cbvr_features::glcm::GlcmTexture::parse(&row.glcm).is_ok());
        assert!(cbvr_features::gabor::GaborTexture::parse(&row.gabor).is_ok());
        assert!(cbvr_features::tamura::TamuraTexture::parse(&row.tamura).is_ok());
        assert!(cbvr_features::correlogram::AutoColorCorrelogram::parse(&row.acc).is_ok());
        assert!(cbvr_features::naive::NaiveSignature::parse(&row.naive).is_ok());
        assert!(cbvr_features::region::RegionGrowing::parse(&row.srg).is_ok());

        // The stored image decodes to the exact key frame.
        let image_bytes = db.read_image_bytes(&row).unwrap();
        let img = cbvr_imgproc::decode_auto(&image_bytes).unwrap();
        assert_eq!(&img, video.frame(report.keyframe_indices[0]).unwrap());
    }

    #[test]
    fn empty_name_rejected_without_side_effects() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let video = small_clip(2);
        let failures = Registry::global().counter("ingest.failures");
        let before = failures.get();
        assert!(ingest_video(&mut db, "", &video, &IngestConfig::default()).is_err());
        assert_eq!(db.video_count().unwrap(), 0);
        assert!(failures.get() > before, "failed ingest must bump ingest.failures");
    }

    #[test]
    fn parallel_extraction_matches_sequential() {
        let video = small_clip(3);
        let frames: Vec<&RgbImage> = video.frames().iter().take(4).collect();
        let seq = extract_feature_sets_parallel(&frames, 1);
        let par = extract_feature_sets_parallel(&frames, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_extraction_empty_input() {
        assert!(extract_feature_sets_parallel(&[], 4).is_empty());
    }

    #[test]
    fn vjp_image_storage_shrinks_blobs_and_still_decodes() {
        let video = small_clip(5);
        let mut db_ppm = CbvrDatabase::in_memory().unwrap();
        let mut db_vjp = CbvrDatabase::in_memory().unwrap();
        let ppm_cfg = IngestConfig::default();
        let vjp_cfg = IngestConfig { image_format: ImageFormat::Vjp, ..IngestConfig::default() };
        let r1 = ingest_video(&mut db_ppm, "v", &video, &ppm_cfg).unwrap();
        let r2 = ingest_video(&mut db_vjp, "v", &video, &vjp_cfg).unwrap();
        assert_eq!(r1.keyframe_ids.len(), r2.keyframe_ids.len());
        let row_ppm = db_ppm.get_key_frame(r1.keyframe_ids[0]).unwrap();
        let row_vjp = db_vjp.get_key_frame(r2.keyframe_ids[0]).unwrap();
        // Cartoon frames (hard edges) are DCT's worst case; still expect a
        // solid saving over raw PPM.
        assert!(
            row_vjp.image.len * 3 < row_ppm.image.len * 2,
            "VJP {} should be well below PPM {}",
            row_vjp.image.len,
            row_ppm.image.len
        );
        // Lossy image decodes and has the right dimensions.
        let bytes = db_vjp.read_image_bytes(&row_vjp).unwrap();
        let img = cbvr_imgproc::decode_auto(&bytes).unwrap();
        assert_eq!(img.dimensions(), (video.width(), video.height()));
        // Feature strings are identical: extraction used the original.
        assert_eq!(row_ppm.sch, row_vjp.sch);
        assert_eq!(row_ppm.gabor, row_vjp.gabor);
    }

    #[test]
    fn two_videos_get_distinct_ids() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let a = ingest_video(&mut db, "a", &small_clip(1), &IngestConfig::default()).unwrap();
        let b = ingest_video(&mut db, "b", &small_clip(2), &IngestConfig::default()).unwrap();
        assert_ne!(a.v_id, b.v_id);
        assert_eq!(db.video_count().unwrap(), 2);
        let kf_a = db.key_frames_of_video(a.v_id).unwrap();
        assert_eq!(kf_a, a.keyframe_ids);
    }

    #[test]
    fn ingest_seals_one_manifest_segment_per_video() {
        let mut db = CbvrDatabase::in_memory().unwrap();
        let a = ingest_video(&mut db, "a", &small_clip(1), &IngestConfig::default()).unwrap();
        let b = ingest_video(&mut db, "b", &small_clip(2), &IngestConfig::default()).unwrap();
        let manifest = db.list_manifest().unwrap();
        assert_eq!(manifest.len(), 2);
        assert_eq!(manifest[0].min_i_id, *a.keyframe_ids.first().unwrap());
        assert_eq!(manifest[0].max_i_id, *a.keyframe_ids.last().unwrap());
        assert_eq!(manifest[0].rows, a.keyframe_ids.len() as u64);
        assert_eq!(manifest[1].min_i_id, *b.keyframe_ids.first().unwrap());
        assert_eq!(manifest[1].rows, b.keyframe_ids.len() as u64);
    }
}
