//! Deterministic runtime telemetry: counters, latency histograms and
//! RAII stage spans.
//!
//! The paper reports its system operationally — per-feature extraction
//! cost (Table 1), index search time (Fig. 9) — but the repro had no
//! runtime measurement at all. This module is the observability
//! substrate every layer reports through:
//!
//! - [`Counter`] — a lock-free monotonic event count (one atomic);
//! - [`Gauge`] — a lock-free last-value readout (current segment count,
//!   tombstoned videos) that can go down as well as up;
//! - [`Histogram`] — a fixed-log2-bucket latency histogram with
//!   `count`/`sum`/`p50`/`p99` readouts, recorded in nanoseconds;
//! - [`Span`] — an RAII guard timing one pipeline stage into a
//!   histogram (`registry.span("query.frame.score")`);
//! - [`Registry`] — the named collection of the above, rendered as
//!   stable plain text for `GET /metrics` and `cbvr stats --telemetry`.
//!
//! **Determinism.** All time flows through the injectable [`Clock`]
//! trait: production uses [`MonotonicClock`] (`std::time::Instant`),
//! tests inject a manually-advanced [`TestClock`] so every histogram
//! and span duration is bit-reproducible
//! (`crates/core/tests/telemetry_determinism.rs` pins bucket
//! boundaries, percentile math and span nesting exactly).
//!
//! **Hot-path cost.** Recording is atomics only (`Relaxed` fetch-adds);
//! the registry's name→handle maps are behind an `RwLock` but hot paths
//! resolve their handles once (see the engine's cached handle struct)
//! and never touch the lock per event. The whole module is
//! dependency-free, per the workspace's hermetic-build rule.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// A source of monotonic time in nanoseconds.
///
/// The zero point is arbitrary (only differences are meaningful), which
/// is what lets tests substitute a hand-advanced clock.
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's (arbitrary) origin.
    fn now_nanos(&self) -> u64;
}

/// Production clock: `std::time::Instant` relative to construction.
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock { origin: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // ~584 years of nanoseconds fit in u64; saturate rather than wrap.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Test clock: time advances only when the test says so, making every
/// span duration and histogram bucket exactly reproducible.
#[derive(Default)]
pub struct TestClock {
    nanos: AtomicU64,
}

impl TestClock {
    /// A clock frozen at zero.
    pub fn new() -> TestClock {
        TestClock::default()
    }

    /// Advance time by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }

    /// Jump to an absolute reading.
    pub fn set(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::SeqCst);
    }
}

impl Clock for TestClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

/// A lock-free monotonic event counter.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A lock-free last-value gauge.
///
/// Unlike a [`Counter`] the value is *set*, not accumulated: readouts
/// report current state (segments in the catalog, tombstoned videos)
/// rather than history, and may go down as well as up.
#[derive(Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the current value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket count: one underflow bucket for 0, then one bucket per power
/// of two up to `u64::MAX` (bucket `i ≥ 1` holds `[2^(i-1), 2^i - 1]`).
const BUCKETS: usize = 65;

/// A fixed-log2-bucket histogram of `u64` samples (by convention,
/// nanoseconds).
///
/// Log2 buckets give constant memory, a branch-free `record` (one
/// `leading_zeros` + two fetch-adds) and relative-error-bounded
/// percentiles: a reported quantile is at most 2× the true value, which
/// is the right fidelity for latency monitoring where magnitudes —
/// microseconds vs milliseconds — matter and third digits do not.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The bucket index holding `value`.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// The largest value bucket `i` can hold (the reported quantile bound).
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample (nanoseconds by convention).
    pub fn record_nanos(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Samples recorded into bucket `i` (diagnostics and tests).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// The quantile readout: the upper bound of the bucket containing
    /// the `ceil(q·count)`-th smallest sample (`0` for an empty
    /// histogram). Deterministic integer math — no interpolation.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Median readout (`quantile(0.5)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Tail readout (`quantile(0.99)`).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// RAII stage timer: measures from construction to drop and records the
/// elapsed nanoseconds into its histogram.
pub struct Span {
    histogram: Arc<Histogram>,
    clock: Arc<dyn Clock>,
    start: u64,
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.clock.now_nanos().saturating_sub(self.start);
        self.histogram.record_nanos(elapsed);
    }
}

/// A named collection of counters and histograms sharing one clock.
///
/// Handles ([`Arc<Counter>`], [`Arc<Histogram>`]) are get-or-created
/// under a short registration lock and then recorded to lock-free; hot
/// paths resolve their handles once and keep them.
pub struct Registry {
    clock: Arc<dyn Clock>,
    counters: RwLock<std::collections::BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<std::collections::BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<std::collections::BTreeMap<String, Arc<Histogram>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A registry on the production [`MonotonicClock`].
    pub fn new() -> Registry {
        Registry::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A registry on an explicit clock (tests inject [`TestClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Registry {
        Registry {
            clock,
            counters: RwLock::new(std::collections::BTreeMap::new()),
            gauges: RwLock::new(std::collections::BTreeMap::new()),
            histograms: RwLock::new(std::collections::BTreeMap::new()),
        }
    }

    /// The process-wide registry every production path records into.
    ///
    /// Returned as an `Arc` so layers that hold a registry handle (the
    /// engine, the web state) can share the global by default and have a
    /// test-injected registry swapped in.
    pub fn global() -> &'static Arc<Registry> {
        static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(Registry::new()))
    }

    /// The registry's clock reading (spans and ad-hoc timing share it).
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// The clock itself (cached-handle structs keep a clone).
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().expect("telemetry lock poisoned").get(name) {
            return Arc::clone(c);
        }
        let mut map = self.counters.write().expect("telemetry lock poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().expect("telemetry lock poisoned").get(name) {
            return Arc::clone(g);
        }
        let mut map = self.gauges.write().expect("telemetry lock poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().expect("telemetry lock poisoned").get(name) {
            return Arc::clone(h);
        }
        let mut map = self.histograms.write().expect("telemetry lock poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Start a span recording into histogram `name` when dropped.
    pub fn span(&self, name: &str) -> Span {
        self.timer(&self.histogram(name))
    }

    /// Start a span on an already-resolved histogram handle (the
    /// lock-free hot path).
    pub fn timer(&self, histogram: &Arc<Histogram>) -> Span {
        Span {
            histogram: Arc::clone(histogram),
            clock: Arc::clone(&self.clock),
            start: self.clock.now_nanos(),
        }
    }

    /// All metrics as `name value` lines, one per counter and four per
    /// histogram (`.count`, `.sum`, `.p50`, `.p99`), names escaped and
    /// the whole set sorted — the stable exposition order `/metrics`
    /// golden tests rely on.
    pub fn render_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (name, c) in self.counters.read().expect("telemetry lock poisoned").iter() {
            lines.push(format!("{} {}", escape_metric_name(name), c.get()));
        }
        for (name, g) in self.gauges.read().expect("telemetry lock poisoned").iter() {
            lines.push(format!("{} {}", escape_metric_name(name), g.get()));
        }
        for (name, h) in self.histograms.read().expect("telemetry lock poisoned").iter() {
            let name = escape_metric_name(name);
            lines.push(format!("{name}.count {}", h.count()));
            lines.push(format!("{name}.sum {}", h.sum()));
            lines.push(format!("{name}.p50 {}", h.p50()));
            lines.push(format!("{name}.p99 {}", h.p99()));
        }
        lines.sort();
        lines
    }

    /// [`Registry::render_lines`] joined with trailing newlines.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for line in self.render_lines() {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Escape a metric name for the plain-text exposition format: any
/// character outside `[A-Za-z0-9_.]` becomes `_`, so names are always a
/// single whitespace-free token and line parsing stays unambiguous.
pub fn escape_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '.' { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_sets_and_renders() {
        let registry = Registry::with_clock(Arc::new(TestClock::new()));
        let g = registry.gauge("catalog.segments");
        g.set(5);
        g.set(3);
        assert_eq!(g.get(), 3, "gauges overwrite, not accumulate");
        assert_eq!(registry.gauge("catalog.segments").get(), 3, "handles shared per name");
        assert!(registry.render_lines().contains(&"catalog.segments 3".to_string()));
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_readouts_are_exact_integer_math() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4] {
            h.record_nanos(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 10);
        // rank(0.5) = ceil(2.5) = 3 → third-smallest sample lives in
        // bucket [2,3] → upper bound 3.
        assert_eq!(h.p50(), 3);
        // rank(0.99) = ceil(4.95) = 5 → bucket [4,7] → upper bound 7.
        assert_eq!(h.p99(), 7);
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!(Histogram::new().p50(), 0, "empty histogram reads 0");
    }

    #[test]
    fn test_clock_drives_spans_exactly() {
        let clock = Arc::new(TestClock::new());
        let registry = Registry::with_clock(clock.clone());
        {
            let _span = registry.span("stage");
            clock.advance(1000);
        }
        let h = registry.histogram("stage");
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 1000);
    }

    #[test]
    fn render_is_sorted_and_escaped() {
        let registry = Registry::with_clock(Arc::new(TestClock::new()));
        registry.counter("b.second").inc();
        registry.counter("a first/with spaces").add(2);
        registry.histogram("z.hist").record_nanos(5);
        let lines = registry.render_lines();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "lines must render pre-sorted");
        assert_eq!(lines[0], "a_first_with_spaces 2");
        assert!(lines.contains(&"b.second 1".to_string()));
        assert!(lines.contains(&"z.hist.count 1".to_string()));
        assert!(lines.contains(&"z.hist.p50 7".to_string()));
        assert!(registry.render_text().ends_with('\n'));
    }

    #[test]
    fn handles_are_shared_per_name() {
        let registry = Registry::new();
        registry.counter("x").inc();
        registry.counter("x").inc();
        assert_eq!(registry.counter("x").get(), 2);
        registry.histogram("y").record_nanos(1);
        assert_eq!(registry.histogram("y").count(), 1);
    }

    #[test]
    fn monotonic_clock_does_not_go_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }
}
