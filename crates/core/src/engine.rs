//! The query engine (the User role's search).
//!
//! Loads the key-frame feature catalog once (parsing the stored feature
//! strings back into descriptors), builds the §4.2 range index over it,
//! calibrates the distance→similarity scales, and then serves:
//!
//! - **query by frame** — extract the query frame's features, prune
//!   candidates through the range index, rank by the combined weighted
//!   similarity (or any single feature via [`FeatureWeights::single`]);
//! - **query by clip** — align the query's key-frame feature sequence
//!   against each stored video's sequence with DTW (§1's
//!   dynamic-programming similarity) and rank videos;
//! - **query by metadata** — substring match on video names.

use crate::arena::{CascadePlan, CascadeTally, DescriptorArena, QueryVectors, KINDS};
use crate::dtw::dtw_distance_abandon;
use crate::error::Result;
use crate::ingest::extract_feature_sets_parallel;
use crate::pool::{ExecPool, TopK, THREADS_AUTO};
use crate::score::ScoreCalibration;
use crate::telemetry::{Counter, Histogram, Registry};
use crate::weights::FeatureWeights;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use cbvr_features::{FeatureKind, FeatureSet};
use cbvr_imgproc::{Histogram256, RgbImage};
use cbvr_index::{paper_range, RangeIndex, RangeKey};
use cbvr_keyframe::{extract_keyframes, KeyframeConfig};
use cbvr_storage::backend::Backend;
use cbvr_storage::CbvrDatabase;
use cbvr_video::Video;
use std::collections::HashMap;

/// One catalog entry: a key frame's identity, range and features.
#[derive(Clone, Debug)]
pub struct CatalogEntry {
    /// `KEY_FRAMES` primary key.
    pub i_id: u64,
    /// Owning video.
    pub v_id: u64,
    /// Range-finder key (`MIN`/`MAX`).
    pub range: RangeKey,
    /// All seven descriptors.
    pub features: FeatureSet,
}

/// Query-frame preprocessing applied before feature extraction.
///
/// Query images arrive with arbitrary exposure; normalising them closes
/// part of the gap to catalog footage. `None` is the paper's behaviour.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum QueryPreprocess {
    /// Use the frame as submitted.
    #[default]
    None,
    /// Luma histogram equalisation ([`cbvr_imgproc::enhance::equalize_rgb`]).
    Equalize,
    /// 1% contrast stretch ([`cbvr_imgproc::enhance::stretch_contrast_rgb`]).
    StretchContrast,
}

impl QueryPreprocess {
    /// Apply to a frame.
    pub fn apply(self, frame: &RgbImage) -> RgbImage {
        match self {
            QueryPreprocess::None => frame.clone(),
            QueryPreprocess::Equalize => cbvr_imgproc::enhance::equalize_rgb(frame),
            QueryPreprocess::StretchContrast => {
                cbvr_imgproc::enhance::stretch_contrast_rgb(frame, 0.01)
            }
        }
    }
}

/// Query parameters.
#[derive(Clone, Debug)]
pub struct QueryOptions {
    /// How many results to return.
    pub k: usize,
    /// Feature weights (default: Table 1-derived combined weights).
    pub weights: FeatureWeights,
    /// Prune candidates through the range index before scoring.
    pub use_index: bool,
    /// Normalisation applied to the query frame before extraction.
    pub preprocess: QueryPreprocess,
    /// Concurrent participants for scoring and DTW on the shared
    /// [`ExecPool`] ([`THREADS_AUTO`] = all cores). Results are
    /// identical for every value — `1` is the bit-exact serial path.
    pub threads: usize,
    /// Early-abandon cascade scoring: skip the remaining distance kernels
    /// for a candidate the moment it is *proven* unable to enter the
    /// top-k (see [`DescriptorArena::cascade_score`]). Exact — ranked
    /// results are identical either way; `false` (the `--no-abandon`
    /// debug flag) exists to measure the saving and to bisect suspected
    /// bound bugs.
    pub abandon: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            k: 20,
            weights: FeatureWeights::default(),
            use_index: true,
            preprocess: QueryPreprocess::None,
            threads: THREADS_AUTO,
            abandon: true,
        }
    }
}

/// A ranked key-frame result.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameMatch {
    /// Matched key frame.
    pub i_id: u64,
    /// Its video.
    pub v_id: u64,
    /// Combined similarity in `[0, 1]`, higher is better.
    pub score: f64,
}

/// A ranked whole-video result.
#[derive(Clone, Debug, PartialEq)]
pub struct VideoMatch {
    /// Matched video.
    pub v_id: u64,
    /// DTW distance of key-frame feature sequences, lower is better.
    pub distance: f64,
}

/// Frame ranking: score descending, ties broken by `i_id` ascending.
/// Total (NaN scores compare equal, the id decides), which is what makes
/// parallel top-k selection bit-identical to the serial sort.
fn rank_frame_matches(a: &FrameMatch, b: &FrameMatch) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.i_id.cmp(&b.i_id))
}

/// Video ranking: DTW distance ascending, ties broken by `v_id` ascending.
fn rank_video_matches(a: &VideoMatch, b: &VideoMatch) -> std::cmp::Ordering {
    a.distance
        .partial_cmp(&b.distance)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.v_id.cmp(&b.v_id))
}

/// Chunk granularity for candidate scoring: small enough for stealing to
/// balance uneven chunks, large enough to amortise the claim `fetch_add`
/// and the per-chunk top-k merge.
fn scoring_chunk(len: usize) -> usize {
    (len / 64).clamp(16, 256)
}

/// Telemetry handles resolved once per engine, so per-query recording
/// is atomics only (the registry's name map is never consulted on the
/// query path). See the stage breakdown on [`QueryEngine::query_features`].
///
/// Cascade accounting (`query.scan.*`, `query.abandon.*`) is exact in
/// serial runs; in parallel runs the *results* stay bit-identical but the
/// abandon/element counts vary with chunk-claim timing (a faster-rising
/// threshold abandons earlier), so only ratios are meaningful there.
struct EngineMetrics {
    registry: Arc<Registry>,
    frame_requests: Arc<Counter>,
    frame_candidates: Arc<Counter>,
    frame_scan: Arc<Histogram>,
    frame_score: Arc<Histogram>,
    frame_merge: Arc<Histogram>,
    clip_requests: Arc<Counter>,
    clip_dtw: Arc<Histogram>,
    clip_rank: Arc<Histogram>,
    /// `query.arena.bytes` — bytes of columnar arena storage built
    /// (cumulative across rebuilds; counters are monotone).
    arena_bytes: Arc<Counter>,
    /// `query.scan.elements` — distance-kernel elements visited.
    scan_elements: Arc<Counter>,
    /// `query.scan.survivors` — candidates that survived the cascade.
    scan_survivors: Arc<Counter>,
    /// `query.abandon.<kind>` — candidates abandoned at each stage,
    /// indexed by the kind's discriminant.
    abandon_kind: [Arc<Counter>; KINDS],
    /// `query.abandon.dtw` — clip alignments cut off by the prefix-row
    /// bound.
    abandon_dtw: Arc<Counter>,
}

impl EngineMetrics {
    fn on(registry: Arc<Registry>) -> EngineMetrics {
        let mut slots: [Option<Arc<Counter>>; KINDS] = std::array::from_fn(|_| None);
        for kind in FeatureKind::ALL {
            slots[kind as usize] =
                Some(registry.counter(&format!("query.abandon.{}", kind.name())));
        }
        EngineMetrics {
            frame_requests: registry.counter("query.frame.requests"),
            frame_candidates: registry.counter("query.frame.candidates"),
            frame_scan: registry.histogram("query.frame.scan_nanos"),
            frame_score: registry.histogram("query.frame.score_nanos"),
            frame_merge: registry.histogram("query.frame.merge_nanos"),
            clip_requests: registry.counter("query.clip.requests"),
            clip_dtw: registry.histogram("query.clip.dtw_nanos"),
            clip_rank: registry.histogram("query.clip.rank_nanos"),
            arena_bytes: registry.counter("query.arena.bytes"),
            scan_elements: registry.counter("query.scan.elements"),
            scan_survivors: registry.counter("query.scan.survivors"),
            abandon_kind: slots.map(|s| s.expect("every kind registered")),
            abandon_dtw: registry.counter("query.abandon.dtw"),
            registry,
        }
    }

    /// Fold one chunk's cascade tally into the counters (once per chunk,
    /// so the hot loop touches plain integers only).
    fn flush_tally(&self, tally: &CascadeTally) {
        if tally.elements > 0 {
            self.scan_elements.add(tally.elements);
        }
        if tally.survivors > 0 {
            self.scan_survivors.add(tally.survivors);
        }
        for (k, &n) in tally.abandoned.iter().enumerate() {
            if n > 0 {
                self.abandon_kind[k].add(n);
            }
        }
    }
}

/// Shared admission threshold for parallel frame scans: the highest
/// known lower bound of the final k-th best *score*. Scores live in
/// `[0, 1]`, and non-negative IEEE doubles order identically to their
/// bit patterns, so a `fetch_max` on the bits is a lock-free running
/// maximum. Starting at 0 is equivalent to "no threshold": the cascade
/// can never prove a score below 0, so nothing is abandoned until a
/// top-k heap actually fills.
struct ScoreFloor(AtomicU64);

impl ScoreFloor {
    fn new() -> ScoreFloor {
        ScoreFloor(AtomicU64::new(0.0f64.to_bits()))
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn raise(&self, score: f64) {
        if score > 0.0 {
            self.0.fetch_max(score.to_bits(), Ordering::Relaxed);
        }
    }
}

/// Shared cutoff for parallel clip scans: the lowest known upper bound
/// of the final k-th best DTW *distance* (lower is better). Same bit
/// trick as [`ScoreFloor`], with `fetch_min` and an `∞` start.
struct DistCeil(AtomicU64);

impl DistCeil {
    fn new() -> DistCeil {
        DistCeil(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn lower(&self, distance: f64) {
        if distance >= 0.0 && !distance.is_nan() {
            self.0.fetch_min(distance.to_bits(), Ordering::Relaxed);
        }
    }
}

/// The in-memory retrieval engine.
pub struct QueryEngine {
    entries: Vec<CatalogEntry>,
    /// Columnar f32 mirror of every entry's descriptors, in entry order —
    /// the scan reads this, not `entries[i].features`.
    arena: DescriptorArena,
    index: RangeIndex<usize>,
    calibration: ScoreCalibration,
    video_names: HashMap<u64, String>,
    /// Per-video entry indices, in key-frame order.
    video_sequences: HashMap<u64, Vec<usize>>,
    metrics: EngineMetrics,
}

impl QueryEngine {
    /// Build from a database: scan `KEY_FRAMES`, parse feature strings,
    /// index and calibrate.
    pub fn from_database<B: Backend>(db: &mut CbvrDatabase<B>) -> Result<QueryEngine> {
        let mut rows = Vec::new();
        db.scan_key_frames(|row| {
            rows.push(row.clone());
            true
        })?;
        let mut entries = Vec::with_capacity(rows.len());
        for row in rows {
            let features = FeatureSet::from_feature_strings([
                (FeatureKind::ColorHistogram, row.sch.as_str()),
                (FeatureKind::Glcm, row.glcm.as_str()),
                (FeatureKind::Gabor, row.gabor.as_str()),
                (FeatureKind::Tamura, row.tamura.as_str()),
                (FeatureKind::Correlogram, row.acc.as_str()),
                (FeatureKind::Naive, row.naive.as_str()),
                (FeatureKind::Regions, row.srg.as_str()),
            ])?;
            entries.push(CatalogEntry {
                i_id: row.i_id,
                v_id: row.v_id,
                range: RangeKey::new(row.min, row.max),
                features,
            });
        }
        let names = db
            .list_videos()?
            .into_iter()
            .map(|(v_id, name, _)| (v_id, name))
            .collect();
        Ok(Self::from_catalog(entries, names))
    }

    /// Build directly from entries (the evaluation harness skips the
    /// storage round trip).
    pub fn from_catalog(entries: Vec<CatalogEntry>, video_names: HashMap<u64, String>) -> QueryEngine {
        let mut index = RangeIndex::new();
        let mut video_sequences: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, e) in entries.iter().enumerate() {
            index.insert(e.range, i);
            video_sequences.entry(e.v_id).or_default().push(i);
        }
        let refs: Vec<&FeatureSet> = entries.iter().map(|e| &e.features).collect();
        let calibration = ScoreCalibration::from_catalog(&refs);
        let mut arena = DescriptorArena::new();
        for e in &entries {
            arena.push(&e.features);
        }
        let metrics = EngineMetrics::on(Registry::global().clone());
        metrics.arena_bytes.add(arena.bytes() as u64);
        QueryEngine { entries, arena, index, calibration, video_names, video_sequences, metrics }
    }

    /// Redirect this engine's telemetry into `registry` (tests inject a
    /// [`crate::telemetry::TestClock`]-driven registry this way; production
    /// engines default to [`Registry::global`]). The arena-bytes gauge is
    /// re-recorded so the new registry sees the current arena size.
    pub fn set_telemetry(&mut self, registry: Arc<Registry>) {
        self.metrics = EngineMetrics::on(registry);
        self.metrics.arena_bytes.add(self.arena.bytes() as u64);
    }

    /// The registry this engine reports into.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.metrics.registry
    }

    /// Number of catalog entries (key frames).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Borrow an entry.
    pub fn entry(&self, i: usize) -> &CatalogEntry {
        &self.entries[i]
    }

    /// Video ids with at least one key frame.
    pub fn video_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.video_sequences.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The calibration in use (exposed for diagnostics/benches).
    pub fn calibration(&self) -> &ScoreCalibration {
        &self.calibration
    }

    /// The columnar descriptor arena (exposed for diagnostics/benches).
    pub fn arena(&self) -> &DescriptorArena {
        &self.arena
    }

    /// Combined similarity between two feature sets under `weights`.
    pub fn combined_similarity(
        &self,
        a: &FeatureSet,
        b: &FeatureSet,
        weights: &FeatureWeights,
    ) -> f64 {
        weights.combine(|kind| self.calibration.similarity(kind, a.distance(b, kind)))
    }

    /// Candidate entry indices for a query range, ascending — i.e. in
    /// arena order, so the columnar scan streams each slab forward
    /// instead of hopping between index buckets.
    fn candidates(&self, range: RangeKey, use_index: bool) -> Vec<usize> {
        if use_index {
            self.index.overlap_candidates_sorted(range)
        } else {
            (0..self.entries.len()).collect()
        }
    }

    /// Query by example frame.
    pub fn query_frame(&self, frame: &RgbImage, options: &QueryOptions) -> Vec<FrameMatch> {
        let prepared;
        let frame = if options.preprocess == QueryPreprocess::None {
            frame
        } else {
            prepared = options.preprocess.apply(frame);
            &prepared
        };
        let features = FeatureSet::extract(frame);
        let range = paper_range(&Histogram256::of_rgb_luma(frame));
        self.query_features(&features, range, options)
    }

    /// Query by pre-extracted features (the evaluation harness reuses
    /// extracted query features across sweeps).
    pub fn query_features(
        &self,
        features: &FeatureSet,
        range: RangeKey,
        options: &QueryOptions,
    ) -> Vec<FrameMatch> {
        self.metrics.frame_requests.inc();
        let candidates = {
            let _scan = self.metrics.registry.timer(&self.metrics.frame_scan);
            self.candidates(range, options.use_index)
        };
        self.metrics.frame_candidates.add(candidates.len() as u64);
        if candidates.is_empty() || options.k == 0 {
            return Vec::new();
        }
        // Candidates are scored through the arena cascade on the shared
        // pool; each chunk keeps a bounded top-k heap (O(n log k), no full
        // match vector) and folds it into the shared accumulator.
        // `rank_frame_matches` is a total order and the cascade only ever
        // abandons candidates *proven* unable to enter the top-k, so the
        // selected set — and its sorted order — is independent of how
        // chunks were claimed and of the `abandon` setting: any `threads`
        // value returns exactly the serial result.
        let plan = CascadePlan::new(&options.weights, &self.calibration);
        let query = QueryVectors::from_set(features);
        let merged = std::sync::Mutex::new(TopK::new(options.k, rank_frame_matches));
        let floor = ScoreFloor::new();
        let chunk = scoring_chunk(candidates.len());
        {
            let _score = self.metrics.registry.timer(&self.metrics.frame_score);
            ExecPool::global().run(candidates.len(), chunk, options.threads, |chunk_range| {
                let mut local = TopK::new(options.k, rank_frame_matches);
                let mut tally = CascadeTally::default();
                for &i in &candidates[chunk_range] {
                    // Threshold: the best lower bound of the final k-th
                    // best score this participant knows — its own heap's
                    // worst kept score (a k-th best over a subset never
                    // exceeds the global one) or the shared floor.
                    let threshold = if options.abandon {
                        local
                            .worst()
                            .map(|m| m.score)
                            .unwrap_or(f64::NEG_INFINITY)
                            .max(floor.get())
                    } else {
                        f64::NEG_INFINITY
                    };
                    if let Some(score) =
                        self.arena.cascade_score(&query, i, &plan, threshold, &mut tally)
                    {
                        let e = &self.entries[i];
                        local.push(FrameMatch { i_id: e.i_id, v_id: e.v_id, score });
                    }
                }
                let mut shared = merged.lock().expect("top-k accumulator poisoned");
                shared.merge(local);
                if let Some(worst) = shared.worst() {
                    floor.raise(worst.score);
                }
                drop(shared);
                self.metrics.flush_tally(&tally);
            });
        }
        let _merge = self.metrics.registry.timer(&self.metrics.frame_merge);
        merged.into_inner().expect("top-k accumulator poisoned").into_sorted()
    }

    /// How many candidates the index yields for a query frame (ablation
    /// instrumentation: candidate-set size vs the full catalog).
    pub fn candidate_count(&self, frame: &RgbImage, use_index: bool) -> usize {
        let range = paper_range(&Histogram256::of_rgb_luma(frame));
        self.candidates(range, use_index).len()
    }

    /// Query by example clip: DTW over key-frame feature sequences.
    pub fn query_video(
        &self,
        query: &Video,
        keyframe_config: &KeyframeConfig,
        options: &QueryOptions,
    ) -> Vec<VideoMatch> {
        let keyframes = extract_keyframes(query, keyframe_config);
        let frames: Vec<&RgbImage> = keyframes.iter().map(|k| &k.frame).collect();
        let query_features = extract_feature_sets_parallel(&frames, options.threads);
        self.query_feature_sequence(&query_features, options)
    }

    /// Clip query from a pre-extracted feature sequence.
    pub fn query_feature_sequence(
        &self,
        query: &[FeatureSet],
        options: &QueryOptions,
    ) -> Vec<VideoMatch> {
        self.metrics.clip_requests.inc();
        if options.k == 0 {
            return Vec::new();
        }
        // The query's quantised vectors are shared by every alignment;
        // build them once instead of once per catalog video.
        let plan = CascadePlan::new(&options.weights, &self.calibration);
        let query_vecs: Vec<QueryVectors> = query.iter().map(QueryVectors::from_set).collect();
        let videos: Vec<(&u64, &Vec<usize>)> = self.video_sequences.iter().collect();
        // One DTW per video, chunk size 1: alignments dominate the cost
        // and vary with sequence length, so fine-grained stealing
        // balances them. Each alignment runs under the exact prefix-row
        // abandon against the best known k-th-best distance; abandoned
        // videos are provably outside the top-k, so results match the
        // no-abandon path exactly (`rank_video_matches` is total, which
        // also erases the HashMap's nondeterministic iteration order).
        let merged = std::sync::Mutex::new(TopK::new(options.k, rank_video_matches));
        let ceil = DistCeil::new();
        {
            let _dtw = self.metrics.registry.timer(&self.metrics.clip_dtw);
            ExecPool::global().run(videos.len(), 1, options.threads, |chunk_range| {
                let mut local = TopK::new(options.k, rank_video_matches);
                let mut abandoned = 0u64;
                for &(&v_id, indices) in &videos[chunk_range] {
                    let cutoff = if options.abandon {
                        local.worst().map(|m| m.distance).unwrap_or(f64::INFINITY).min(ceil.get())
                    } else {
                        f64::INFINITY
                    };
                    let aligned =
                        dtw_distance_abandon(&query_vecs, indices, cutoff, |qv, &entry| {
                            1.0 - self.arena.score(qv, entry, &plan)
                        });
                    match aligned {
                        Some(distance) => local.push(VideoMatch { v_id, distance }),
                        None => abandoned += 1,
                    }
                }
                let mut shared = merged.lock().expect("top-k accumulator poisoned");
                shared.merge(local);
                if let Some(worst) = shared.worst() {
                    ceil.lower(worst.distance);
                }
                drop(shared);
                if abandoned > 0 {
                    self.metrics.abandon_dtw.add(abandoned);
                }
            });
        }
        let _rank = self.metrics.registry.timer(&self.metrics.clip_rank);
        merged.into_inner().expect("top-k accumulator poisoned").into_sorted()
    }

    /// Metadata query: case-insensitive substring match on video names.
    pub fn find_videos_by_name(&self, needle: &str) -> Vec<(u64, String)> {
        let needle = needle.to_lowercase();
        let mut out: Vec<(u64, String)> = self
            .video_names
            .iter()
            .filter(|(_, name)| name.to_lowercase().contains(&needle))
            .map(|(&id, name)| (id, name.clone()))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// The name of a video, if known.
    pub fn video_name(&self, v_id: u64) -> Option<&str> {
        self.video_names.get(&v_id).map(String::as_str)
    }

    /// Add a freshly ingested video's entries incrementally (no full
    /// rebuild). The calibration is *not* recomputed — it drifts slowly
    /// and a full rebuild (`from_database`) refreshes it; incremental
    /// adds keep interactive admin operations cheap.
    pub fn add_video(&mut self, name: &str, entries: Vec<CatalogEntry>) {
        let bytes_before = self.arena.bytes();
        for e in entries {
            let idx = self.entries.len();
            self.index.insert(e.range, idx);
            self.video_sequences.entry(e.v_id).or_default().push(idx);
            self.video_names.insert(e.v_id, name.to_string());
            self.arena.push(&e.features);
            self.entries.push(e);
        }
        let grown = self.arena.bytes().saturating_sub(bytes_before);
        if grown > 0 {
            self.metrics.arena_bytes.add(grown as u64);
        }
    }

    /// Remove a video's entries incrementally. Rebuilds the range index
    /// and sequence map over the surviving entries (cheap relative to
    /// feature extraction); calibration is left as-is.
    pub fn remove_video(&mut self, v_id: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.v_id != v_id);
        let removed = before - self.entries.len();
        if removed > 0 {
            self.video_names.remove(&v_id);
            self.index = RangeIndex::new();
            self.video_sequences.clear();
            let mut arena = DescriptorArena::new();
            for (i, e) in self.entries.iter().enumerate() {
                self.index.insert(e.range, i);
                self.video_sequences.entry(e.v_id).or_default().push(i);
                arena.push(&e.features);
            }
            self.arena = arena;
            self.metrics.arena_bytes.add(self.arena.bytes() as u64);
        }
        removed
    }

    /// Render the Fig. 7 index tree with catalog occupancy.
    pub fn render_index_tree(&self) -> String {
        self.index.render_tree()
    }

    /// Index statistics (for the ablation bench).
    pub fn index_stats(&self) -> cbvr_index::IndexStats {
        self.index.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{ingest_video, IngestConfig};
    use cbvr_video::{Category, GeneratorConfig, VideoGenerator};

    fn generator() -> VideoGenerator {
        VideoGenerator::new(GeneratorConfig {
            width: 64,
            height: 48,
            shots_per_video: 2,
            min_shot_frames: 4,
            max_shot_frames: 6,
            ..GeneratorConfig::default()
        })
        .unwrap()
    }

    fn populated_engine() -> &'static (QueryEngine, Vec<(u64, Category)>) {
        // Ingestion is expensive; build one shared fixture for the suite.
        static FIXTURE: std::sync::OnceLock<(QueryEngine, Vec<(u64, Category)>)> =
            std::sync::OnceLock::new();
        FIXTURE.get_or_init(|| {
            let mut db = cbvr_storage::CbvrDatabase::in_memory().unwrap();
            let g = generator();
            let mut labels = Vec::new();
            for (i, category) in [Category::Sports, Category::Movie, Category::ELearning]
                .iter()
                .enumerate()
            {
                for seed in 0..2u64 {
                    let video = g.generate(*category, seed + 10 * i as u64).unwrap();
                    let name = format!("{}_{seed}", category.name());
                    let report =
                        ingest_video(&mut db, &name, &video, &IngestConfig::default()).unwrap();
                    labels.push((report.v_id, *category));
                }
            }
            (QueryEngine::from_database(&mut db).unwrap(), labels)
        })
    }

    #[test]
    fn engine_loads_catalog_from_database() {
        let (engine, labels) = populated_engine();
        assert!(!engine.is_empty());
        assert_eq!(engine.video_ids().len(), labels.len());
        for (v_id, _) in labels {
            assert!(engine.video_name(*v_id).is_some());
        }
    }

    #[test]
    fn self_query_ranks_own_keyframe_first() {
        let (engine, _) = populated_engine();
        // Query with a catalog key frame's own features: its entry must
        // score 1.0 and rank first.
        let e = engine.entry(0).clone();
        let results = engine.query_features(&e.features, e.range, &QueryOptions::default());
        assert_eq!(results[0].i_id, e.i_id);
        assert!((results[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn same_category_outranks_other_categories() {
        let (engine, labels) = populated_engine();
        let g = generator();
        // A fresh sports clip (unseen seed): its frames should retrieve
        // sports key frames ahead of movie/e-learning ones.
        let probe = g.generate(Category::Sports, 999).unwrap();
        let frame = probe.frame(0).unwrap();
        let results = engine.query_frame(frame, &QueryOptions { k: 5, ..Default::default() });
        assert!(!results.is_empty());
        let category_of = |v_id: u64| labels.iter().find(|(v, _)| *v == v_id).unwrap().1;
        assert_eq!(
            category_of(results[0].v_id),
            Category::Sports,
            "top match should be sports, got {:?}",
            results
        );
    }

    #[test]
    fn index_prunes_but_no_index_is_exhaustive() {
        let (engine, _) = populated_engine();
        let g = generator();
        let probe = g.generate(Category::Movie, 777).unwrap();
        let frame = probe.frame(0).unwrap();
        let with = engine.candidate_count(frame, true);
        let without = engine.candidate_count(frame, false);
        assert_eq!(without, engine.len());
        assert!(with <= without);
    }

    #[test]
    fn results_are_sorted_and_truncated() {
        let (engine, _) = populated_engine();
        let g = generator();
        let probe = g.generate(Category::ELearning, 55).unwrap();
        let results = engine.query_frame(
            probe.frame(0).unwrap(),
            &QueryOptions { k: 3, use_index: false, ..Default::default() },
        );
        assert_eq!(results.len(), 3);
        for pair in results.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn video_query_finds_itself() {
        let (engine, labels) = populated_engine();
        // Re-generate the exact ingested clip and query with it: the same
        // video must rank first with ~zero distance.
        let g = generator();
        let target = labels[0];
        let video = g.generate(target.1, 0).unwrap();
        let results =
            engine.query_video(&video, &KeyframeConfig::default(), &QueryOptions::default());
        assert_eq!(results[0].v_id, target.0, "{results:?}");
        assert!(results[0].distance < 1e-6, "self distance {}", results[0].distance);
    }

    #[test]
    fn metadata_query_matches_substrings() {
        let (engine, _) = populated_engine();
        let hits = engine.find_videos_by_name("SPORTS");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|(_, name)| name.starts_with("sports")));
        assert!(engine.find_videos_by_name("nope").is_empty());
    }

    #[test]
    fn single_feature_weights_change_ranking_scores() {
        let (engine, _) = populated_engine();
        let e = engine.entry(1).clone();
        let combined = engine.query_features(&e.features, e.range, &QueryOptions::default());
        let histogram_only = engine.query_features(
            &e.features,
            e.range,
            &QueryOptions {
                weights: FeatureWeights::single(FeatureKind::ColorHistogram),
                ..Default::default()
            },
        );
        // Both rank the self-entry first...
        assert_eq!(combined[0].i_id, e.i_id);
        assert_eq!(histogram_only[0].i_id, e.i_id);
        // ...but score the runner-up differently in general.
        if combined.len() > 1 && histogram_only.len() > 1 {
            let c = combined.iter().find(|m| m.i_id == histogram_only[1].i_id);
            if let Some(c) = c {
                // Scores come from different similarity mixtures.
                assert!((c.score - histogram_only[1].score).abs() > 1e-12 || c.score == 1.0);
            }
        }
    }

    #[test]
    fn empty_engine_behaviour() {
        let engine = QueryEngine::from_catalog(Vec::new(), HashMap::new());
        assert!(engine.is_empty());
        let img = RgbImage::new(8, 8).unwrap();
        assert!(engine.query_frame(&img, &QueryOptions::default()).is_empty());
        assert!(engine.find_videos_by_name("x").is_empty());
        assert!(engine
            .query_feature_sequence(&[], &QueryOptions::default())
            .is_empty());
    }

    #[test]
    fn incremental_add_matches_full_rebuild_results() {
        let g = generator();
        let mut db = cbvr_storage::CbvrDatabase::in_memory().unwrap();
        let v1 = g.generate(Category::Sports, 1).unwrap();
        ingest_video(&mut db, "one", &v1, &IngestConfig::default()).unwrap();
        let mut engine = QueryEngine::from_database(&mut db).unwrap();

        // Ingest a second video, then add it incrementally.
        let v2 = g.generate(Category::Movie, 2).unwrap();
        let report = ingest_video(&mut db, "two", &v2, &IngestConfig::default()).unwrap();
        let mut fresh_entries = Vec::new();
        for &i_id in &report.keyframe_ids {
            let row = db.get_key_frame(i_id).unwrap();
            let features = cbvr_features::FeatureSet::from_feature_strings([
                (FeatureKind::ColorHistogram, row.sch.as_str()),
                (FeatureKind::Glcm, row.glcm.as_str()),
                (FeatureKind::Gabor, row.gabor.as_str()),
                (FeatureKind::Tamura, row.tamura.as_str()),
                (FeatureKind::Correlogram, row.acc.as_str()),
                (FeatureKind::Naive, row.naive.as_str()),
                (FeatureKind::Regions, row.srg.as_str()),
            ])
            .unwrap();
            fresh_entries.push(CatalogEntry {
                i_id,
                v_id: row.v_id,
                range: RangeKey::new(row.min, row.max),
                features,
            });
        }
        engine.add_video("two", fresh_entries);

        let rebuilt = QueryEngine::from_database(&mut db).unwrap();
        assert_eq!(engine.len(), rebuilt.len());
        assert_eq!(engine.video_ids(), rebuilt.video_ids());
        // Same ranking for a probe (scores may differ slightly through
        // calibration, order of the top hit must agree).
        let probe = g.generate(Category::Movie, 77).unwrap();
        let a = engine.query_frame(probe.frame(0).unwrap(), &QueryOptions::default());
        let b = rebuilt.query_frame(probe.frame(0).unwrap(), &QueryOptions::default());
        assert_eq!(a[0].i_id, b[0].i_id);
    }

    #[test]
    fn incremental_remove_excludes_video() {
        let (engine, labels) = populated_engine();
        let mut engine = QueryEngine::from_catalog(
            (0..engine.len()).map(|i| engine.entry(i).clone()).collect(),
            labels
                .iter()
                .map(|(v, c)| (*v, c.name().to_string()))
                .collect(),
        );
        let victim = labels[0].0;
        let removed = engine.remove_video(victim);
        assert!(removed > 0);
        assert!(!engine.video_ids().contains(&victim));
        assert!(engine.video_name(victim).is_none());
        assert_eq!(engine.index_stats().items, engine.len());
        // Removing again is a no-op.
        assert_eq!(engine.remove_video(victim), 0);
        // Queries never return the removed video.
        let g = generator();
        let probe = g.generate(labels[0].1, 50).unwrap();
        let results = engine.query_frame(
            probe.frame(0).unwrap(),
            &QueryOptions { k: 100, use_index: false, ..Default::default() },
        );
        assert!(results.iter().all(|m| m.v_id != victim));
    }

    #[test]
    fn preprocessing_recovers_gamma_shifted_queries() {
        let (engine, labels) = populated_engine();
        let g = generator();
        // A heavily darkened query (gamma 2.6): the raw histogram shifts
        // far from the catalog; contrast stretching pulls it back.
        let probe = g.generate(Category::ELearning, 321).unwrap();
        let dark = cbvr_imgproc::enhance::gamma_rgb(probe.frame(0).unwrap(), 2.6);
        let category_of = |v_id: u64| labels.iter().find(|(v, _)| *v == v_id).unwrap().1;

        let raw = engine.query_frame(
            &dark,
            &QueryOptions { k: 5, use_index: false, ..Default::default() },
        );
        let stretched = engine.query_frame(
            &dark,
            &QueryOptions {
                k: 5,
                use_index: false,
                preprocess: QueryPreprocess::StretchContrast,
                ..Default::default()
            },
        );
        let hits = |r: &[FrameMatch]| {
            r.iter().filter(|m| category_of(m.v_id) == Category::ELearning).count()
        };
        assert!(
            hits(&stretched) >= hits(&raw),
            "stretching should not hurt: {} vs {}",
            hits(&stretched),
            hits(&raw)
        );
        // Equalisation also runs without panicking and returns results.
        let eq = engine.query_frame(
            &dark,
            &QueryOptions { k: 5, preprocess: QueryPreprocess::Equalize, ..Default::default() },
        );
        assert!(!eq.is_empty());
    }

    #[test]
    fn index_tree_renders() {
        let (engine, _) = populated_engine();
        let tree = engine.render_index_tree();
        assert!(tree.contains("0-255 (root)"));
        let stats = engine.index_stats();
        assert_eq!(stats.items, engine.len());
    }
}
