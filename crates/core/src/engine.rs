//! The query engine (the User role's search).
//!
//! Loads the key-frame feature catalog once (parsing the stored feature
//! strings back into descriptors), builds the §4.2 range index over it,
//! calibrates the distance→similarity scales, and then serves:
//!
//! - **query by frame** — extract the query frame's features, prune
//!   candidates through the range index, rank by the combined weighted
//!   similarity (or any single feature via [`FeatureWeights::single`]);
//! - **query by clip** — align the query's key-frame feature sequence
//!   against each stored video's sequence with DTW (§1's
//!   dynamic-programming similarity) and rank videos;
//! - **query by metadata** — substring match on video names.

use crate::arena::{CascadePlan, CascadeTally, QueryVectors, KINDS};
use crate::dtw::dtw_distance_abandon;
use crate::error::Result;
use crate::ingest::extract_feature_sets_parallel;
use crate::pool::{ExecPool, TopK, THREADS_AUTO};
use crate::score::ScoreCalibration;
use crate::segment::{CatalogSnapshot, EntryRef, Segment, SnapshotCell};
use crate::telemetry::{Counter, Gauge, Histogram, Registry};
use crate::weights::FeatureWeights;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use cbvr_features::{FeatureKind, FeatureSet};
use cbvr_imgproc::{Histogram256, RgbImage};
use cbvr_index::{paper_range, RangeKey};
use cbvr_keyframe::{extract_keyframes, KeyframeConfig};
use cbvr_storage::backend::Backend;
use cbvr_storage::{CbvrDatabase, ManifestSegment};
use cbvr_video::Video;
use std::collections::{BTreeSet, HashMap};

/// One catalog entry: a key frame's identity, range and features.
#[derive(Clone, Debug)]
pub struct CatalogEntry {
    /// `KEY_FRAMES` primary key.
    pub i_id: u64,
    /// Owning video.
    pub v_id: u64,
    /// Range-finder key (`MIN`/`MAX`).
    pub range: RangeKey,
    /// All seven descriptors.
    pub features: FeatureSet,
}

/// Query-frame preprocessing applied before feature extraction.
///
/// Query images arrive with arbitrary exposure; normalising them closes
/// part of the gap to catalog footage. `None` is the paper's behaviour.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum QueryPreprocess {
    /// Use the frame as submitted.
    #[default]
    None,
    /// Luma histogram equalisation ([`cbvr_imgproc::enhance::equalize_rgb`]).
    Equalize,
    /// 1% contrast stretch ([`cbvr_imgproc::enhance::stretch_contrast_rgb`]).
    StretchContrast,
}

impl QueryPreprocess {
    /// Apply to a frame.
    pub fn apply(self, frame: &RgbImage) -> RgbImage {
        match self {
            QueryPreprocess::None => frame.clone(),
            QueryPreprocess::Equalize => cbvr_imgproc::enhance::equalize_rgb(frame),
            QueryPreprocess::StretchContrast => {
                cbvr_imgproc::enhance::stretch_contrast_rgb(frame, 0.01)
            }
        }
    }
}

/// Query parameters.
#[derive(Clone, Debug)]
pub struct QueryOptions {
    /// How many results to return.
    pub k: usize,
    /// Feature weights (default: Table 1-derived combined weights).
    pub weights: FeatureWeights,
    /// Prune candidates through the range index before scoring.
    pub use_index: bool,
    /// Normalisation applied to the query frame before extraction.
    pub preprocess: QueryPreprocess,
    /// Concurrent participants for scoring and DTW on the shared
    /// [`ExecPool`] ([`THREADS_AUTO`] = all cores). Results are
    /// identical for every value — `1` is the bit-exact serial path.
    pub threads: usize,
    /// Early-abandon cascade scoring: skip the remaining distance kernels
    /// for a candidate the moment it is *proven* unable to enter the
    /// top-k (see [`DescriptorArena::cascade_score`]). Exact — ranked
    /// results are identical either way; `false` (the `--no-abandon`
    /// debug flag) exists to measure the saving and to bisect suspected
    /// bound bugs.
    pub abandon: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            k: 20,
            weights: FeatureWeights::default(),
            use_index: true,
            preprocess: QueryPreprocess::None,
            threads: THREADS_AUTO,
            abandon: true,
        }
    }
}

/// A ranked key-frame result.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameMatch {
    /// Matched key frame.
    pub i_id: u64,
    /// Its video.
    pub v_id: u64,
    /// Combined similarity in `[0, 1]`, higher is better.
    pub score: f64,
}

/// A ranked whole-video result.
#[derive(Clone, Debug, PartialEq)]
pub struct VideoMatch {
    /// Matched video.
    pub v_id: u64,
    /// DTW distance of key-frame feature sequences, lower is better.
    pub distance: f64,
}

/// Frame ranking: score descending, ties broken by `i_id` ascending.
/// Total (NaN scores compare equal, the id decides), which is what makes
/// parallel top-k selection bit-identical to the serial sort.
fn rank_frame_matches(a: &FrameMatch, b: &FrameMatch) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.i_id.cmp(&b.i_id))
}

/// Video ranking: DTW distance ascending, ties broken by `v_id` ascending.
fn rank_video_matches(a: &VideoMatch, b: &VideoMatch) -> std::cmp::Ordering {
    a.distance
        .partial_cmp(&b.distance)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.v_id.cmp(&b.v_id))
}

/// Chunk granularity for candidate scoring: small enough for stealing to
/// balance uneven chunks, large enough to amortise the claim `fetch_add`
/// and the per-chunk top-k merge.
fn scoring_chunk(len: usize) -> usize {
    (len / 64).clamp(16, 256)
}

/// Telemetry handles resolved once per engine, so per-query recording
/// is atomics only (the registry's name map is never consulted on the
/// query path). See the stage breakdown on [`QueryEngine::query_features`].
///
/// Cascade accounting (`query.scan.*`, `query.abandon.*`) is exact in
/// serial runs; in parallel runs the *results* stay bit-identical but the
/// abandon/element counts vary with chunk-claim timing (a faster-rising
/// threshold abandons earlier), so only ratios are meaningful there.
struct EngineMetrics {
    registry: Arc<Registry>,
    frame_requests: Arc<Counter>,
    frame_candidates: Arc<Counter>,
    frame_scan: Arc<Histogram>,
    frame_score: Arc<Histogram>,
    frame_merge: Arc<Histogram>,
    clip_requests: Arc<Counter>,
    clip_dtw: Arc<Histogram>,
    clip_rank: Arc<Histogram>,
    /// `query.arena.bytes` — bytes of columnar arena storage built
    /// (cumulative across rebuilds; counters are monotone).
    arena_bytes: Arc<Counter>,
    /// `query.scan.elements` — distance-kernel elements visited.
    scan_elements: Arc<Counter>,
    /// `query.scan.survivors` — candidates that survived the cascade.
    scan_survivors: Arc<Counter>,
    /// `query.abandon.<kind>` — candidates abandoned at each stage,
    /// indexed by the kind's discriminant.
    abandon_kind: [Arc<Counter>; KINDS],
    /// `query.abandon.dtw` — clip alignments cut off by the prefix-row
    /// bound.
    abandon_dtw: Arc<Counter>,
    /// `catalog.snapshot.swaps` — snapshots published since start.
    snapshot_swaps: Arc<Counter>,
    /// `catalog.segments` — sealed segments in the current snapshot.
    segments: Arc<Gauge>,
    /// `catalog.tombstones` — tombstoned videos awaiting compaction.
    tombstones: Arc<Gauge>,
    /// `compaction.runs` — compaction passes completed.
    compaction_runs: Arc<Counter>,
    /// `compaction.rows_dropped` — tombstoned rows dropped by compaction.
    compaction_rows_dropped: Arc<Counter>,
    /// `compaction.secs` — whole seconds spent compacting (cumulative).
    compaction_secs: Arc<Counter>,
}

impl EngineMetrics {
    fn on(registry: Arc<Registry>) -> EngineMetrics {
        let mut slots: [Option<Arc<Counter>>; KINDS] = std::array::from_fn(|_| None);
        for kind in FeatureKind::ALL {
            slots[kind as usize] =
                Some(registry.counter(&format!("query.abandon.{}", kind.name())));
        }
        EngineMetrics {
            frame_requests: registry.counter("query.frame.requests"),
            frame_candidates: registry.counter("query.frame.candidates"),
            frame_scan: registry.histogram("query.frame.scan_nanos"),
            frame_score: registry.histogram("query.frame.score_nanos"),
            frame_merge: registry.histogram("query.frame.merge_nanos"),
            clip_requests: registry.counter("query.clip.requests"),
            clip_dtw: registry.histogram("query.clip.dtw_nanos"),
            clip_rank: registry.histogram("query.clip.rank_nanos"),
            arena_bytes: registry.counter("query.arena.bytes"),
            scan_elements: registry.counter("query.scan.elements"),
            scan_survivors: registry.counter("query.scan.survivors"),
            abandon_kind: slots.map(|s| s.expect("every kind registered")),
            abandon_dtw: registry.counter("query.abandon.dtw"),
            snapshot_swaps: registry.counter("catalog.snapshot.swaps"),
            segments: registry.gauge("catalog.segments"),
            tombstones: registry.gauge("catalog.tombstones"),
            compaction_runs: registry.counter("compaction.runs"),
            compaction_rows_dropped: registry.counter("compaction.rows_dropped"),
            compaction_secs: registry.counter("compaction.secs"),
            registry,
        }
    }

    /// Record the shape of a snapshot that is about to be published.
    fn observe_snapshot(&self, snapshot: &CatalogSnapshot) {
        self.segments.set(snapshot.segments().len() as u64);
        self.tombstones.set(snapshot.tombstones().len() as u64);
    }

    /// Fold one chunk's cascade tally into the counters (once per chunk,
    /// so the hot loop touches plain integers only).
    fn flush_tally(&self, tally: &CascadeTally) {
        if tally.elements > 0 {
            self.scan_elements.add(tally.elements);
        }
        if tally.survivors > 0 {
            self.scan_survivors.add(tally.survivors);
        }
        for (k, &n) in tally.abandoned.iter().enumerate() {
            if n > 0 {
                self.abandon_kind[k].add(n);
            }
        }
    }
}

/// Shared admission threshold for parallel frame scans: the highest
/// known lower bound of the final k-th best *score*. Scores live in
/// `[0, 1]`, and non-negative IEEE doubles order identically to their
/// bit patterns, so a `fetch_max` on the bits is a lock-free running
/// maximum. Starting at 0 is equivalent to "no threshold": the cascade
/// can never prove a score below 0, so nothing is abandoned until a
/// top-k heap actually fills.
struct ScoreFloor(AtomicU64);

impl ScoreFloor {
    fn new() -> ScoreFloor {
        ScoreFloor(AtomicU64::new(0.0f64.to_bits()))
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn raise(&self, score: f64) {
        if score > 0.0 {
            self.0.fetch_max(score.to_bits(), Ordering::Relaxed);
        }
    }
}

/// Shared cutoff for parallel clip scans: the lowest known upper bound
/// of the final k-th best DTW *distance* (lower is better). Same bit
/// trick as [`ScoreFloor`], with `fetch_min` and an `∞` start.
struct DistCeil(AtomicU64);

impl DistCeil {
    fn new() -> DistCeil {
        DistCeil(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn lower(&self, distance: f64) {
        if distance >= 0.0 && !distance.is_nan() {
            self.0.fetch_min(distance.to_bits(), Ordering::Relaxed);
        }
    }
}

/// What one compaction pass did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactionReport {
    /// Segments in the snapshot compaction started from.
    pub segments_before: usize,
    /// Segments in the published snapshot (the merged segment plus any
    /// segments appended concurrently while compaction ran).
    pub segments_after: usize,
    /// Tombstoned rows dropped from the catalog.
    pub rows_dropped: usize,
}

/// Per-segment diagnostics (`cbvr stats` renders one row per segment).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentStats {
    /// Segment id (monotone within one engine's lifetime).
    pub id: u64,
    /// Sealed rows in the segment.
    pub rows: usize,
    /// Rows not masked by a video tombstone.
    pub live_rows: usize,
    /// Bytes of the segment's columnar arena slabs.
    pub arena_bytes: usize,
}

/// The in-memory retrieval engine.
///
/// The catalog lives in immutable sealed [`Segment`]s referenced by an
/// atomically swapped [`CatalogSnapshot`]: queries load the snapshot once
/// (wait-free, no lock) and run entirely against it, so ingest, removal
/// and compaction never block the read path. Mutations serialise on a
/// small commit lock, build a *new* snapshot, and publish it with one
/// pointer swap. A snapshot is the concatenation of its segments in list
/// order, which keeps every result bit-identical to the old monolithic
/// engine for any segment layout and any thread count.
pub struct QueryEngine {
    snapshot: SnapshotCell,
    /// Serialises mutations (ingest appends, tombstoning, compaction
    /// publish, recalibration). Never taken on the query path.
    commit: Mutex<()>,
    /// Next segment id (ids only need to be unique within the engine;
    /// compaction uses them to tell base segments from concurrently
    /// appended ones).
    next_seg_id: AtomicU64,
    metrics: EngineMetrics,
}

/// Manifest-aligned entry groups plus the video-name map, as loaded
/// from a database scan.
type CatalogGroups = (Vec<Vec<CatalogEntry>>, HashMap<u64, String>);

impl QueryEngine {
    /// Build from a database: scan `KEY_FRAMES`, parse feature strings,
    /// group rows into segments along the WAL manifest, index and
    /// calibrate.
    pub fn from_database<B: Backend>(db: &mut CbvrDatabase<B>) -> Result<QueryEngine> {
        let (groups, names) = Self::load_groups(db)?;
        Ok(Self::from_segmented(groups, names))
    }

    /// Scan the catalog out of the database as manifest-aligned segment
    /// groups (global `i_id` order is preserved across group boundaries).
    fn load_groups<B: Backend>(db: &mut CbvrDatabase<B>) -> Result<CatalogGroups> {
        let mut rows = Vec::new();
        db.scan_key_frames(|row| {
            rows.push(row.clone());
            true
        })?;
        let mut entries = Vec::with_capacity(rows.len());
        for row in rows {
            let features = FeatureSet::from_feature_strings([
                (FeatureKind::ColorHistogram, row.sch.as_str()),
                (FeatureKind::Glcm, row.glcm.as_str()),
                (FeatureKind::Gabor, row.gabor.as_str()),
                (FeatureKind::Tamura, row.tamura.as_str()),
                (FeatureKind::Correlogram, row.acc.as_str()),
                (FeatureKind::Naive, row.naive.as_str()),
                (FeatureKind::Regions, row.srg.as_str()),
            ])?;
            entries.push(CatalogEntry {
                i_id: row.i_id,
                v_id: row.v_id,
                range: RangeKey::new(row.min, row.max),
                features,
            });
        }
        let manifest = db.list_manifest()?;
        let names = db
            .list_videos()?
            .into_iter()
            .map(|(v_id, name, _)| (v_id, name))
            .collect();
        Ok((partition_by_manifest(entries, &manifest), names))
    }

    /// Build directly from entries (the evaluation harness skips the
    /// storage round trip). Seals the whole catalog as one segment.
    pub fn from_catalog(entries: Vec<CatalogEntry>, video_names: HashMap<u64, String>) -> QueryEngine {
        Self::from_segmented(vec![entries], video_names)
    }

    /// Build from pre-partitioned entry groups, one sealed segment per
    /// non-empty group. The snapshot is the concatenation of the groups
    /// in order, and calibration samples that concatenation — so any
    /// split of the same catalog yields bit-identical query results.
    pub fn from_segmented(
        groups: Vec<Vec<CatalogEntry>>,
        video_names: HashMap<u64, String>,
    ) -> QueryEngine {
        let refs: Vec<&FeatureSet> = groups.iter().flatten().map(|e| &e.features).collect();
        let calibration = ScoreCalibration::from_catalog(&refs);
        let mut next_id = 0u64;
        let mut segments = Vec::new();
        for group in groups {
            if group.is_empty() {
                continue;
            }
            segments.push(Arc::new(Segment::seal(next_id, group)));
            next_id += 1;
        }
        let snapshot =
            CatalogSnapshot::assemble(segments, BTreeSet::new(), video_names, calibration);
        let metrics = EngineMetrics::on(Registry::global().clone());
        metrics.arena_bytes.add(snapshot.arena_bytes() as u64);
        metrics.observe_snapshot(&snapshot);
        QueryEngine {
            snapshot: SnapshotCell::new(Arc::new(snapshot)),
            commit: Mutex::new(()),
            next_seg_id: AtomicU64::new(next_id),
            metrics,
        }
    }

    /// The commit lock, recovering from poisoning: every publish installs
    /// a *complete* snapshot with one swap, so a panic between lock and
    /// publish leaves the previous snapshot fully intact and the lock is
    /// safe to re-take.
    fn commit_guard(&self) -> MutexGuard<'_, ()> {
        self.commit.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Swap `snapshot` in as the published catalog. Callers must hold the
    /// commit lock.
    fn publish(&self, snapshot: CatalogSnapshot) {
        self.metrics.observe_snapshot(&snapshot);
        self.snapshot.swap(Arc::new(snapshot));
        self.metrics.snapshot_swaps.inc();
    }

    /// Rebuild the published snapshot from the database in place (the web
    /// admin's reload). The scan and parse run off the commit lock;
    /// queries keep serving the old snapshot until the one-pointer
    /// publish. Returns the number of live entries loaded.
    pub fn reload_from_database<B: Backend>(&self, db: &mut CbvrDatabase<B>) -> Result<usize> {
        let (groups, names) = Self::load_groups(db)?;
        let refs: Vec<&FeatureSet> = groups.iter().flatten().map(|e| &e.features).collect();
        let calibration = ScoreCalibration::from_catalog(&refs);
        let _commit = self.commit_guard();
        let mut segments = Vec::new();
        for group in groups {
            if group.is_empty() {
                continue;
            }
            let id = self.next_seg_id.fetch_add(1, Ordering::Relaxed);
            segments.push(Arc::new(Segment::seal(id, group)));
        }
        let snapshot = CatalogSnapshot::assemble(segments, BTreeSet::new(), names, calibration);
        self.metrics.arena_bytes.add(snapshot.arena_bytes() as u64);
        let live = snapshot.live();
        self.publish(snapshot);
        Ok(live)
    }

    /// Redirect this engine's telemetry into `registry` (tests inject a
    /// [`crate::telemetry::TestClock`]-driven registry this way; production
    /// engines default to [`Registry::global`]). The arena-bytes counter
    /// and catalog gauges are re-recorded so the new registry sees the
    /// current catalog shape.
    pub fn set_telemetry(&mut self, registry: Arc<Registry>) {
        self.metrics = EngineMetrics::on(registry);
        let snap = self.snapshot.load();
        self.metrics.arena_bytes.add(snap.arena_bytes() as u64);
        self.metrics.observe_snapshot(&snap);
    }

    /// The registry this engine reports into.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.metrics.registry
    }

    /// Number of live catalog entries (key frames not tombstoned).
    pub fn len(&self) -> usize {
        self.snapshot.load().live()
    }

    /// True when the catalog has no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch the `i`-th live entry in global catalog order. Returns a
    /// clone: the row is owned by an immutable snapshot that may be
    /// retired at any time.
    pub fn entry(&self, i: usize) -> CatalogEntry {
        self.snapshot
            .load()
            .live_entry(i)
            .cloned()
            .expect("entry index out of bounds")
    }

    /// Video ids with at least one live key frame.
    pub fn video_ids(&self) -> Vec<u64> {
        let snap = self.snapshot.load();
        let mut ids: Vec<u64> = snap.video_sequences().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The calibration in use (exposed for diagnostics/benches). Returns
    /// a clone — the live calibration belongs to the current snapshot.
    pub fn calibration(&self) -> ScoreCalibration {
        self.snapshot.load().calibration().clone()
    }

    /// Combined similarity between two feature sets under `weights`.
    pub fn combined_similarity(
        &self,
        a: &FeatureSet,
        b: &FeatureSet,
        weights: &FeatureWeights,
    ) -> f64 {
        let snap = self.snapshot.load();
        weights.combine(|kind| snap.calibration().similarity(kind, a.distance(b, kind)))
    }

    /// Query by example frame.
    pub fn query_frame(&self, frame: &RgbImage, options: &QueryOptions) -> Vec<FrameMatch> {
        let prepared;
        let frame = if options.preprocess == QueryPreprocess::None {
            frame
        } else {
            prepared = options.preprocess.apply(frame);
            &prepared
        };
        let features = FeatureSet::extract(frame);
        let range = paper_range(&Histogram256::of_rgb_luma(frame));
        self.query_features(&features, range, options)
    }

    /// Query by pre-extracted features (the evaluation harness reuses
    /// extracted query features across sweeps).
    pub fn query_features(
        &self,
        features: &FeatureSet,
        range: RangeKey,
        options: &QueryOptions,
    ) -> Vec<FrameMatch> {
        self.metrics.frame_requests.inc();
        // One snapshot load serves the whole query: no lock is taken and
        // concurrent ingest/compaction cannot change what this query sees.
        let snap = self.snapshot.load();
        let candidates = {
            let _scan = self.metrics.registry.timer(&self.metrics.frame_scan);
            snap.candidates(range, options.use_index)
        };
        self.metrics.frame_candidates.add(candidates.len() as u64);
        if candidates.is_empty() || options.k == 0 {
            return Vec::new();
        }
        // Candidates are scored through the per-segment arena cascades on
        // the shared pool; each chunk keeps a bounded top-k heap
        // (O(n log k), no full match vector) and folds it into the shared
        // accumulator. `rank_frame_matches` is a total order and the
        // cascade only ever abandons candidates *proven* unable to enter
        // the top-k, so the selected set — and its sorted order — is
        // independent of how chunks were claimed, of the `abandon`
        // setting, and of the segment layout: any `threads` value returns
        // exactly the serial monolithic result.
        let plan = CascadePlan::new(&options.weights, snap.calibration());
        let query = QueryVectors::from_set(features);
        let merged = std::sync::Mutex::new(TopK::new(options.k, rank_frame_matches));
        let floor = ScoreFloor::new();
        let chunk = scoring_chunk(candidates.len());
        {
            let _score = self.metrics.registry.timer(&self.metrics.frame_score);
            ExecPool::global().run(candidates.len(), chunk, options.threads, |chunk_range| {
                let mut local = TopK::new(options.k, rank_frame_matches);
                let mut tally = CascadeTally::default();
                for &r in &candidates[chunk_range] {
                    // Threshold: the best lower bound of the final k-th
                    // best score this participant knows — its own heap's
                    // worst kept score (a k-th best over a subset never
                    // exceeds the global one) or the shared floor.
                    let threshold = if options.abandon {
                        local
                            .worst()
                            .map(|m| m.score)
                            .unwrap_or(f64::NEG_INFINITY)
                            .max(floor.get())
                    } else {
                        f64::NEG_INFINITY
                    };
                    let seg = snap.segment(r.segment);
                    if let Some(score) = seg.arena().cascade_score(
                        &query,
                        r.row as usize,
                        &plan,
                        threshold,
                        &mut tally,
                    ) {
                        let e = &seg.entries()[r.row as usize];
                        local.push(FrameMatch { i_id: e.i_id, v_id: e.v_id, score });
                    }
                }
                let mut shared = merged.lock().expect("top-k accumulator poisoned");
                shared.merge(local);
                if let Some(worst) = shared.worst() {
                    floor.raise(worst.score);
                }
                drop(shared);
                self.metrics.flush_tally(&tally);
            });
        }
        let _merge = self.metrics.registry.timer(&self.metrics.frame_merge);
        merged.into_inner().expect("top-k accumulator poisoned").into_sorted()
    }

    /// How many candidates the index yields for a query frame (ablation
    /// instrumentation: candidate-set size vs the full catalog).
    pub fn candidate_count(&self, frame: &RgbImage, use_index: bool) -> usize {
        let range = paper_range(&Histogram256::of_rgb_luma(frame));
        self.snapshot.load().candidates(range, use_index).len()
    }

    /// Query by example clip: DTW over key-frame feature sequences.
    pub fn query_video(
        &self,
        query: &Video,
        keyframe_config: &KeyframeConfig,
        options: &QueryOptions,
    ) -> Vec<VideoMatch> {
        let keyframes = extract_keyframes(query, keyframe_config);
        let frames: Vec<&RgbImage> = keyframes.iter().map(|k| &k.frame).collect();
        let query_features = extract_feature_sets_parallel(&frames, options.threads);
        self.query_feature_sequence(&query_features, options)
    }

    /// Clip query from a pre-extracted feature sequence.
    pub fn query_feature_sequence(
        &self,
        query: &[FeatureSet],
        options: &QueryOptions,
    ) -> Vec<VideoMatch> {
        self.metrics.clip_requests.inc();
        if options.k == 0 {
            return Vec::new();
        }
        // One snapshot load serves the whole query (see query_features).
        let snap = self.snapshot.load();
        // The query's quantised vectors are shared by every alignment;
        // build them once instead of once per catalog video.
        let plan = CascadePlan::new(&options.weights, snap.calibration());
        let query_vecs: Vec<QueryVectors> = query.iter().map(QueryVectors::from_set).collect();
        let videos: Vec<(&u64, &Vec<EntryRef>)> = snap.video_sequences().iter().collect();
        // One DTW per video, chunk size 1: alignments dominate the cost
        // and vary with sequence length, so fine-grained stealing
        // balances them. Each alignment runs under the exact prefix-row
        // abandon against the best known k-th-best distance; abandoned
        // videos are provably outside the top-k, so results match the
        // no-abandon path exactly (`rank_video_matches` is total, which
        // also erases the HashMap's nondeterministic iteration order).
        let merged = std::sync::Mutex::new(TopK::new(options.k, rank_video_matches));
        let ceil = DistCeil::new();
        {
            let _dtw = self.metrics.registry.timer(&self.metrics.clip_dtw);
            ExecPool::global().run(videos.len(), 1, options.threads, |chunk_range| {
                let mut local = TopK::new(options.k, rank_video_matches);
                let mut abandoned = 0u64;
                for &(&v_id, indices) in &videos[chunk_range] {
                    let cutoff = if options.abandon {
                        local.worst().map(|m| m.distance).unwrap_or(f64::INFINITY).min(ceil.get())
                    } else {
                        f64::INFINITY
                    };
                    let aligned =
                        dtw_distance_abandon(&query_vecs, indices, cutoff, |qv, &r: &EntryRef| {
                            1.0 - snap.segment(r.segment).arena().score(qv, r.row as usize, &plan)
                        });
                    match aligned {
                        Some(distance) => local.push(VideoMatch { v_id, distance }),
                        None => abandoned += 1,
                    }
                }
                let mut shared = merged.lock().expect("top-k accumulator poisoned");
                shared.merge(local);
                if let Some(worst) = shared.worst() {
                    ceil.lower(worst.distance);
                }
                drop(shared);
                if abandoned > 0 {
                    self.metrics.abandon_dtw.add(abandoned);
                }
            });
        }
        let _rank = self.metrics.registry.timer(&self.metrics.clip_rank);
        merged.into_inner().expect("top-k accumulator poisoned").into_sorted()
    }

    /// Metadata query: case-insensitive substring match on video names.
    pub fn find_videos_by_name(&self, needle: &str) -> Vec<(u64, String)> {
        let snap = self.snapshot.load();
        let needle = needle.to_lowercase();
        let mut out: Vec<(u64, String)> = snap
            .video_names()
            .iter()
            .filter(|(_, name)| name.to_lowercase().contains(&needle))
            .map(|(&id, name)| (id, name.clone()))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// The name of a video, if known. Returns a clone — the name belongs
    /// to the current snapshot.
    pub fn video_name(&self, v_id: u64) -> Option<String> {
        self.snapshot.load().video_names().get(&v_id).cloned()
    }

    /// Add a freshly ingested video's entries by sealing them as one new
    /// segment and publishing a snapshot that appends it — queries in
    /// flight keep their old snapshot; no read is ever blocked. The
    /// calibration is carried over, *not* recomputed — it drifts slowly
    /// as the catalog grows, and [`QueryEngine::compact`] /
    /// [`QueryEngine::recalibrate`] refresh it; incremental adds keep
    /// interactive admin operations cheap.
    pub fn add_video(&self, name: &str, entries: Vec<CatalogEntry>) {
        if entries.is_empty() {
            return;
        }
        let _commit = self.commit_guard();
        let snap = self.snapshot.load();
        let seg = Segment::seal(self.next_seg_id.fetch_add(1, Ordering::Relaxed), entries);
        self.metrics.arena_bytes.add(seg.arena().bytes() as u64);
        let mut names = snap.video_names().clone();
        let mut tombstones = snap.tombstones().clone();
        let mut resurrected = BTreeSet::new();
        for e in seg.entries() {
            names.insert(e.v_id, name.to_string());
            // Re-adding a previously removed id brings it back; its rows
            // must then be exactly the ones added now, so the old masked
            // rows are purged from their segments below rather than
            // resurrected alongside.
            if tombstones.remove(&e.v_id) {
                resurrected.insert(e.v_id);
            }
        }
        let mut segments = Vec::with_capacity(snap.segments().len() + 1);
        for old in snap.segments() {
            if resurrected.is_empty()
                || !old.entries().iter().any(|e| resurrected.contains(&e.v_id))
            {
                segments.push(Arc::clone(old));
                continue;
            }
            let kept: Vec<CatalogEntry> = old
                .entries()
                .iter()
                .filter(|e| !resurrected.contains(&e.v_id))
                .cloned()
                .collect();
            if !kept.is_empty() {
                let id = self.next_seg_id.fetch_add(1, Ordering::Relaxed);
                let rebuilt = Segment::seal(id, kept);
                self.metrics.arena_bytes.add(rebuilt.arena().bytes() as u64);
                segments.push(Arc::new(rebuilt));
            }
        }
        segments.push(Arc::new(seg));
        let next =
            CatalogSnapshot::assemble(segments, tombstones, names, snap.calibration().clone());
        self.publish(next);
    }

    /// Remove a video by tombstoning it: the published snapshot masks its
    /// rows everywhere (candidates, sequences, stats) without touching the
    /// sealed segments; compaction reclaims the space later. Returns the
    /// number of key frames removed.
    pub fn remove_video(&self, v_id: u64) -> usize {
        let _commit = self.commit_guard();
        let snap = self.snapshot.load();
        let removed = snap.video_sequences().get(&v_id).map_or(0, Vec::len);
        if removed == 0 {
            return 0;
        }
        let mut names = snap.video_names().clone();
        names.remove(&v_id);
        let mut tombstones = snap.tombstones().clone();
        tombstones.insert(v_id);
        let next = CatalogSnapshot::assemble(
            snap.segments().to_vec(),
            tombstones,
            names,
            snap.calibration().clone(),
        );
        self.publish(next);
        removed
    }

    /// Merge the catalog into one segment, dropping tombstoned rows and
    /// recomputing the calibration from the live entries (in global
    /// order, so it equals a from-scratch rebuild's calibration).
    ///
    /// The heavy work — cloning live rows, recalibrating, sealing the
    /// merged segment's arena and index — runs *off* the commit lock;
    /// queries and ingests proceed throughout. The publish step rebases
    /// over segments appended while the merge ran: the new snapshot is
    /// the merged segment followed by every segment that was not part of
    /// the base, preserving global order for those appended rows.
    pub fn compact(&self) -> CompactionReport {
        let started = self.metrics.registry.now_nanos();
        let base = self.snapshot.load();
        let base_ids: BTreeSet<u64> = base.segments().iter().map(|s| s.id()).collect();
        let segments_before = base.segments().len();
        let merged_entries = base.live_entries_cloned();
        let rows_dropped = base.rows() - merged_entries.len();
        let refs: Vec<&FeatureSet> = merged_entries.iter().map(|e| &e.features).collect();
        let calibration = ScoreCalibration::from_catalog(&refs);
        let merged = (!merged_entries.is_empty()).then(|| {
            let seg = Segment::seal(
                self.next_seg_id.fetch_add(1, Ordering::Relaxed),
                merged_entries,
            );
            self.metrics.arena_bytes.add(seg.arena().bytes() as u64);
            Arc::new(seg)
        });

        let _commit = self.commit_guard();
        let current = self.snapshot.load();
        let mut segments: Vec<Arc<Segment>> = merged.into_iter().collect();
        for seg in current.segments() {
            if !base_ids.contains(&seg.id()) {
                segments.push(Arc::clone(seg));
            }
        }
        // Keep only tombstones that still mask rows in the new segment
        // list (a video removed mid-merge still has rows in the merged
        // segment; one fully compacted away needs no tombstone).
        let present: BTreeSet<u64> = segments
            .iter()
            .flat_map(|s| s.entries().iter().map(|e| e.v_id))
            .collect();
        let tombstones: BTreeSet<u64> = current
            .tombstones()
            .iter()
            .copied()
            .filter(|v| present.contains(v))
            .collect();
        let next = CatalogSnapshot::assemble(
            segments,
            tombstones,
            current.video_names().clone(),
            calibration,
        );
        let segments_after = next.segments().len();
        self.publish(next);
        self.metrics.compaction_runs.inc();
        self.metrics.compaction_rows_dropped.add(rows_dropped as u64);
        let elapsed = self.metrics.registry.now_nanos().saturating_sub(started);
        self.metrics.compaction_secs.add(elapsed / 1_000_000_000);
        CompactionReport { segments_before, segments_after, rows_dropped }
    }

    /// Recompute the calibration from the live entries (global order) and
    /// republish the current segments unchanged. Same calibration as a
    /// from-scratch rebuild, without rebuilding arenas or indexes.
    pub fn recalibrate(&self) {
        let _commit = self.commit_guard();
        let snap = self.snapshot.load();
        let calibration = ScoreCalibration::from_catalog(&snap.live_feature_refs());
        let next = CatalogSnapshot::assemble(
            snap.segments().to_vec(),
            snap.tombstones().clone(),
            snap.video_names().clone(),
            calibration,
        );
        self.publish(next);
    }

    /// Per-segment shape of the current snapshot (`cbvr stats`).
    pub fn segment_stats(&self) -> Vec<SegmentStats> {
        let snap = self.snapshot.load();
        snap.segments()
            .iter()
            .map(|s| SegmentStats {
                id: s.id(),
                rows: s.len(),
                live_rows: s
                    .entries()
                    .iter()
                    .filter(|e| !snap.tombstones().contains(&e.v_id))
                    .count(),
                arena_bytes: s.arena().bytes(),
            })
            .collect()
    }

    /// Segments in the current snapshot.
    pub fn segment_count(&self) -> usize {
        self.snapshot.load().segments().len()
    }

    /// Tombstoned videos awaiting compaction.
    pub fn tombstone_count(&self) -> usize {
        self.snapshot.load().tombstones().len()
    }

    /// Run `f` while holding the commit lock (test hook: proves queries
    /// complete while a mutation is mid-commit, i.e. the read path takes
    /// no engine-wide lock).
    #[doc(hidden)]
    pub fn with_commit_locked<R>(&self, f: impl FnOnce() -> R) -> R {
        let _commit = self.commit_guard();
        f()
    }

    /// Render the Fig. 7 index tree with catalog occupancy (merged across
    /// segments, tombstones excluded).
    pub fn render_index_tree(&self) -> String {
        self.snapshot.load().bucket_counts().render_tree()
    }

    /// Index statistics (for the ablation bench), merged across segments
    /// with tombstoned rows excluded.
    pub fn index_stats(&self) -> cbvr_index::IndexStats {
        self.snapshot.load().bucket_counts().stats()
    }
}

/// Group a flat `i_id`-ordered catalog scan into segment groups along the
/// WAL manifest. Rows covered by the same manifest record share a group;
/// consecutive rows covered by no record (legacy databases, or rows
/// ingested before the manifest existed) are grouped together as runs.
/// Concatenating the groups in order reproduces the scan order exactly.
fn partition_by_manifest(
    entries: Vec<CatalogEntry>,
    manifest: &[ManifestSegment],
) -> Vec<Vec<CatalogEntry>> {
    let mut groups: Vec<Vec<CatalogEntry>> = Vec::new();
    let mut current: Option<Option<usize>> = None;
    let mut j = 0usize;
    for e in entries {
        while j < manifest.len() && manifest[j].max_i_id < e.i_id {
            j += 1;
        }
        let key = (j < manifest.len() && manifest[j].min_i_id <= e.i_id).then_some(j);
        if current != Some(key) {
            groups.push(Vec::new());
            current = Some(key);
        }
        groups.last_mut().expect("group pushed above").push(e);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{ingest_video, IngestConfig};
    use cbvr_video::{Category, GeneratorConfig, VideoGenerator};

    fn generator() -> VideoGenerator {
        VideoGenerator::new(GeneratorConfig {
            width: 64,
            height: 48,
            shots_per_video: 2,
            min_shot_frames: 4,
            max_shot_frames: 6,
            ..GeneratorConfig::default()
        })
        .unwrap()
    }

    fn populated_engine() -> &'static (QueryEngine, Vec<(u64, Category)>) {
        // Ingestion is expensive; build one shared fixture for the suite.
        static FIXTURE: std::sync::OnceLock<(QueryEngine, Vec<(u64, Category)>)> =
            std::sync::OnceLock::new();
        FIXTURE.get_or_init(|| {
            let mut db = cbvr_storage::CbvrDatabase::in_memory().unwrap();
            let g = generator();
            let mut labels = Vec::new();
            for (i, category) in [Category::Sports, Category::Movie, Category::ELearning]
                .iter()
                .enumerate()
            {
                for seed in 0..2u64 {
                    let video = g.generate(*category, seed + 10 * i as u64).unwrap();
                    let name = format!("{}_{seed}", category.name());
                    let report =
                        ingest_video(&mut db, &name, &video, &IngestConfig::default()).unwrap();
                    labels.push((report.v_id, *category));
                }
            }
            (QueryEngine::from_database(&mut db).unwrap(), labels)
        })
    }

    #[test]
    fn engine_loads_catalog_from_database() {
        let (engine, labels) = populated_engine();
        assert!(!engine.is_empty());
        assert_eq!(engine.video_ids().len(), labels.len());
        for (v_id, _) in labels {
            assert!(engine.video_name(*v_id).is_some());
        }
    }

    #[test]
    fn self_query_ranks_own_keyframe_first() {
        let (engine, _) = populated_engine();
        // Query with a catalog key frame's own features: its entry must
        // score 1.0 and rank first.
        let e = engine.entry(0);
        let results = engine.query_features(&e.features, e.range, &QueryOptions::default());
        assert_eq!(results[0].i_id, e.i_id);
        assert!((results[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn same_category_outranks_other_categories() {
        let (engine, labels) = populated_engine();
        let g = generator();
        // A fresh sports clip (unseen seed): its frames should retrieve
        // sports key frames ahead of movie/e-learning ones.
        let probe = g.generate(Category::Sports, 999).unwrap();
        let frame = probe.frame(0).unwrap();
        let results = engine.query_frame(frame, &QueryOptions { k: 5, ..Default::default() });
        assert!(!results.is_empty());
        let category_of = |v_id: u64| labels.iter().find(|(v, _)| *v == v_id).unwrap().1;
        assert_eq!(
            category_of(results[0].v_id),
            Category::Sports,
            "top match should be sports, got {:?}",
            results
        );
    }

    #[test]
    fn index_prunes_but_no_index_is_exhaustive() {
        let (engine, _) = populated_engine();
        let g = generator();
        let probe = g.generate(Category::Movie, 777).unwrap();
        let frame = probe.frame(0).unwrap();
        let with = engine.candidate_count(frame, true);
        let without = engine.candidate_count(frame, false);
        assert_eq!(without, engine.len());
        assert!(with <= without);
    }

    #[test]
    fn results_are_sorted_and_truncated() {
        let (engine, _) = populated_engine();
        let g = generator();
        let probe = g.generate(Category::ELearning, 55).unwrap();
        let results = engine.query_frame(
            probe.frame(0).unwrap(),
            &QueryOptions { k: 3, use_index: false, ..Default::default() },
        );
        assert_eq!(results.len(), 3);
        for pair in results.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn video_query_finds_itself() {
        let (engine, labels) = populated_engine();
        // Re-generate the exact ingested clip and query with it: the same
        // video must rank first with ~zero distance.
        let g = generator();
        let target = labels[0];
        let video = g.generate(target.1, 0).unwrap();
        let results =
            engine.query_video(&video, &KeyframeConfig::default(), &QueryOptions::default());
        assert_eq!(results[0].v_id, target.0, "{results:?}");
        assert!(results[0].distance < 1e-6, "self distance {}", results[0].distance);
    }

    #[test]
    fn metadata_query_matches_substrings() {
        let (engine, _) = populated_engine();
        let hits = engine.find_videos_by_name("SPORTS");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|(_, name)| name.starts_with("sports")));
        assert!(engine.find_videos_by_name("nope").is_empty());
    }

    #[test]
    fn single_feature_weights_change_ranking_scores() {
        let (engine, _) = populated_engine();
        let e = engine.entry(1);
        let combined = engine.query_features(&e.features, e.range, &QueryOptions::default());
        let histogram_only = engine.query_features(
            &e.features,
            e.range,
            &QueryOptions {
                weights: FeatureWeights::single(FeatureKind::ColorHistogram),
                ..Default::default()
            },
        );
        // Both rank the self-entry first...
        assert_eq!(combined[0].i_id, e.i_id);
        assert_eq!(histogram_only[0].i_id, e.i_id);
        // ...but score the runner-up differently in general.
        if combined.len() > 1 && histogram_only.len() > 1 {
            let c = combined.iter().find(|m| m.i_id == histogram_only[1].i_id);
            if let Some(c) = c {
                // Scores come from different similarity mixtures.
                assert!((c.score - histogram_only[1].score).abs() > 1e-12 || c.score == 1.0);
            }
        }
    }

    #[test]
    fn empty_engine_behaviour() {
        let engine = QueryEngine::from_catalog(Vec::new(), HashMap::new());
        assert!(engine.is_empty());
        let img = RgbImage::new(8, 8).unwrap();
        assert!(engine.query_frame(&img, &QueryOptions::default()).is_empty());
        assert!(engine.find_videos_by_name("x").is_empty());
        assert!(engine
            .query_feature_sequence(&[], &QueryOptions::default())
            .is_empty());
    }

    #[test]
    fn incremental_add_matches_full_rebuild_results() {
        let g = generator();
        let mut db = cbvr_storage::CbvrDatabase::in_memory().unwrap();
        let v1 = g.generate(Category::Sports, 1).unwrap();
        ingest_video(&mut db, "one", &v1, &IngestConfig::default()).unwrap();
        let engine = QueryEngine::from_database(&mut db).unwrap();

        // Ingest a second video, then add it incrementally.
        let v2 = g.generate(Category::Movie, 2).unwrap();
        let report = ingest_video(&mut db, "two", &v2, &IngestConfig::default()).unwrap();
        let mut fresh_entries = Vec::new();
        for &i_id in &report.keyframe_ids {
            let row = db.get_key_frame(i_id).unwrap();
            let features = cbvr_features::FeatureSet::from_feature_strings([
                (FeatureKind::ColorHistogram, row.sch.as_str()),
                (FeatureKind::Glcm, row.glcm.as_str()),
                (FeatureKind::Gabor, row.gabor.as_str()),
                (FeatureKind::Tamura, row.tamura.as_str()),
                (FeatureKind::Correlogram, row.acc.as_str()),
                (FeatureKind::Naive, row.naive.as_str()),
                (FeatureKind::Regions, row.srg.as_str()),
            ])
            .unwrap();
            fresh_entries.push(CatalogEntry {
                i_id,
                v_id: row.v_id,
                range: RangeKey::new(row.min, row.max),
                features,
            });
        }
        engine.add_video("two", fresh_entries);

        let rebuilt = QueryEngine::from_database(&mut db).unwrap();
        assert_eq!(engine.len(), rebuilt.len());
        assert_eq!(engine.video_ids(), rebuilt.video_ids());
        // Same ranking for a probe (scores may differ slightly through
        // calibration, order of the top hit must agree).
        let probe = g.generate(Category::Movie, 77).unwrap();
        let a = engine.query_frame(probe.frame(0).unwrap(), &QueryOptions::default());
        let b = rebuilt.query_frame(probe.frame(0).unwrap(), &QueryOptions::default());
        assert_eq!(a[0].i_id, b[0].i_id);
    }

    #[test]
    fn incremental_remove_excludes_video() {
        let (engine, labels) = populated_engine();
        let engine = QueryEngine::from_catalog(
            (0..engine.len()).map(|i| engine.entry(i)).collect(),
            labels
                .iter()
                .map(|(v, c)| (*v, c.name().to_string()))
                .collect(),
        );
        let victim = labels[0].0;
        let removed = engine.remove_video(victim);
        assert!(removed > 0);
        assert!(!engine.video_ids().contains(&victim));
        assert!(engine.video_name(victim).is_none());
        assert_eq!(engine.index_stats().items, engine.len());
        // Removing again is a no-op.
        assert_eq!(engine.remove_video(victim), 0);
        // Queries never return the removed video.
        let g = generator();
        let probe = g.generate(labels[0].1, 50).unwrap();
        let results = engine.query_frame(
            probe.frame(0).unwrap(),
            &QueryOptions { k: 100, use_index: false, ..Default::default() },
        );
        assert!(results.iter().all(|m| m.v_id != victim));
    }

    #[test]
    fn preprocessing_recovers_gamma_shifted_queries() {
        let (engine, labels) = populated_engine();
        let g = generator();
        // A heavily darkened query (gamma 2.6): the raw histogram shifts
        // far from the catalog; contrast stretching pulls it back.
        let probe = g.generate(Category::ELearning, 321).unwrap();
        let dark = cbvr_imgproc::enhance::gamma_rgb(probe.frame(0).unwrap(), 2.6);
        let category_of = |v_id: u64| labels.iter().find(|(v, _)| *v == v_id).unwrap().1;

        let raw = engine.query_frame(
            &dark,
            &QueryOptions { k: 5, use_index: false, ..Default::default() },
        );
        let stretched = engine.query_frame(
            &dark,
            &QueryOptions {
                k: 5,
                use_index: false,
                preprocess: QueryPreprocess::StretchContrast,
                ..Default::default()
            },
        );
        let hits = |r: &[FrameMatch]| {
            r.iter().filter(|m| category_of(m.v_id) == Category::ELearning).count()
        };
        assert!(
            hits(&stretched) >= hits(&raw),
            "stretching should not hurt: {} vs {}",
            hits(&stretched),
            hits(&raw)
        );
        // Equalisation also runs without panicking and returns results.
        let eq = engine.query_frame(
            &dark,
            &QueryOptions { k: 5, preprocess: QueryPreprocess::Equalize, ..Default::default() },
        );
        assert!(!eq.is_empty());
    }

    #[test]
    fn index_tree_renders() {
        let (engine, _) = populated_engine();
        let tree = engine.render_index_tree();
        assert!(tree.contains("0-255 (root)"));
        let stats = engine.index_stats();
        assert_eq!(stats.items, engine.len());
    }

    fn fixture_names(labels: &[(u64, Category)]) -> HashMap<u64, String> {
        labels.iter().map(|(v, c)| (*v, c.name().to_string())).collect()
    }

    fn fixture_entries(engine: &QueryEngine) -> Vec<CatalogEntry> {
        (0..engine.len()).map(|i| engine.entry(i)).collect()
    }

    #[test]
    fn segment_split_returns_bit_identical_results() {
        let (engine, labels) = populated_engine();
        let entries = fixture_entries(engine);
        let mid = entries.len() / 2;
        let split = QueryEngine::from_segmented(
            vec![entries[..mid].to_vec(), entries[mid..].to_vec()],
            fixture_names(labels),
        );
        assert_eq!(split.segment_count(), 2);
        assert_eq!(split.len(), engine.len());
        // Same calibration (sampled over the same global order) and the
        // exact same ranked matches, scores included.
        assert_eq!(split.calibration(), engine.calibration());
        let probe = engine.entry(3);
        for use_index in [false, true] {
            let opts = QueryOptions { k: 10, use_index, ..Default::default() };
            assert_eq!(
                engine.query_features(&probe.features, probe.range, &opts),
                split.query_features(&probe.features, probe.range, &opts),
            );
        }
    }

    #[test]
    fn compaction_drops_tombstones_and_matches_rebuild_calibration() {
        let (engine, labels) = populated_engine();
        let entries = fixture_entries(engine);
        let mid = entries.len() / 2;
        let seg = QueryEngine::from_segmented(
            vec![entries[..mid].to_vec(), entries[mid..].to_vec()],
            fixture_names(labels),
        );
        let victim = labels[0].0;
        let removed = seg.remove_video(victim);
        assert!(removed > 0);
        assert_eq!(seg.tombstone_count(), 1);
        let rows_before: usize = seg.segment_stats().iter().map(|s| s.rows).sum();

        let report = seg.compact();
        assert_eq!(report.segments_before, 2);
        assert_eq!(report.segments_after, 1);
        assert_eq!(report.rows_dropped, removed);
        assert_eq!(seg.tombstone_count(), 0);
        let rows_after: usize = seg.segment_stats().iter().map(|s| s.rows).sum();
        assert_eq!(rows_after, rows_before - removed);

        // Post-compaction state equals a from-scratch rebuild over the
        // survivors: same calibration, same ranked results bit-for-bit.
        let survivors: Vec<CatalogEntry> =
            entries.iter().filter(|e| e.v_id != victim).cloned().collect();
        let mut names = fixture_names(labels);
        names.remove(&victim);
        let rebuilt = QueryEngine::from_catalog(survivors, names);
        assert_eq!(seg.calibration(), rebuilt.calibration());
        let probe = engine.entry(0);
        let opts = QueryOptions { k: 100, use_index: false, ..Default::default() };
        assert_eq!(
            seg.query_features(&probe.features, probe.range, &opts),
            rebuilt.query_features(&probe.features, probe.range, &opts),
        );
    }

    #[test]
    fn readding_a_removed_video_resurrects_it() {
        let (engine, labels) = populated_engine();
        let entries = fixture_entries(engine);
        let seg = QueryEngine::from_catalog(entries.clone(), fixture_names(labels));
        let victim = labels[0].0;
        let victim_entries: Vec<CatalogEntry> =
            entries.iter().filter(|e| e.v_id == victim).cloned().collect();
        let removed = seg.remove_video(victim);
        assert_eq!(removed, victim_entries.len());
        seg.add_video("returned", victim_entries);
        assert_eq!(seg.len(), entries.len());
        assert_eq!(seg.tombstone_count(), 0);
        assert!(seg.video_ids().contains(&victim));
        assert_eq!(seg.video_name(victim).as_deref(), Some("returned"));
    }

    #[test]
    fn from_database_groups_one_segment_per_ingest() {
        let g = generator();
        let mut db = cbvr_storage::CbvrDatabase::in_memory().unwrap();
        for seed in 0..2u64 {
            let video = g.generate(Category::Sports, 40 + seed).unwrap();
            ingest_video(&mut db, &format!("v{seed}"), &video, &IngestConfig::default())
                .unwrap();
        }
        let engine = QueryEngine::from_database(&mut db).unwrap();
        assert_eq!(engine.segment_count(), 2, "{:?}", engine.segment_stats());
        assert_eq!(engine.len(), engine.segment_stats().iter().map(|s| s.rows).sum::<usize>());
    }

    #[test]
    fn partition_by_manifest_groups_runs_and_orphans() {
        let img = RgbImage::new(8, 8).unwrap();
        let features = FeatureSet::extract(&img);
        let entry = |i_id: u64| CatalogEntry {
            i_id,
            v_id: i_id,
            range: RangeKey::new(0, 255),
            features: features.clone(),
        };
        let entries: Vec<CatalogEntry> = (1..=6).map(entry).collect();
        let manifest = [
            ManifestSegment { min_i_id: 1, max_i_id: 2, rows: 2 },
            ManifestSegment { min_i_id: 5, max_i_id: 6, rows: 2 },
        ];
        let groups = partition_by_manifest(entries, &manifest);
        let ids: Vec<Vec<u64>> =
            groups.iter().map(|g| g.iter().map(|e| e.i_id).collect()).collect();
        // Manifest-covered runs become their own groups; the uncovered
        // rows 3-4 form one orphan run between them.
        assert_eq!(ids, vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
        // No manifest at all: one group holding everything.
        let flat = partition_by_manifest((1..=3).map(entry).collect(), &[]);
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].len(), 3);
    }
}
