//! Relevance feedback: adapting the combined weights from user judgments.
//!
//! The paper's system "can help users to retrieve desired video ...
//! through user interactions" (§1) and cites interactive user-oriented
//! retrieval \[12\]; its user study collects exactly the relevant /
//! not-relevant marks this module consumes. One round of feedback
//! re-weights the feature mixture toward the features that actually
//! *separate* what this user marked relevant from what they rejected —
//! a feature-level Rocchio step.
//!
//! For each feature `k`, with calibrated similarities `s_k(q, ·)`:
//!
//! ```text
//! gap_k   = mean s_k(q, relevant) − mean s_k(q, irrelevant)
//! w'_k    = w_k · (ε + max(0, gap_k))           (then renormalised)
//! ```
//!
//! Features that rank the user's positives above their negatives gain
//! weight; features that cannot tell them apart decay toward the floor
//! `ε` (never to zero — one round of feedback should adjust, not
//! amputate).

use crate::engine::QueryEngine;
use crate::weights::FeatureWeights;
use cbvr_features::{FeatureKind, FeatureSet};

/// Fraction of a feature's weight that survives even when its gap is
/// zero or negative.
const FLOOR: f64 = 0.1;

/// One round of relevance feedback.
///
/// `relevant` / `irrelevant` are the feature sets of results the user
/// marked; both may be empty (an empty side contributes a neutral mean of
/// 0, so only the other side drives the gap). The result preserves the
/// total weight of `base` so combined scores stay on the same scale.
pub fn adapt_weights(
    engine: &QueryEngine,
    query: &FeatureSet,
    relevant: &[&FeatureSet],
    irrelevant: &[&FeatureSet],
    base: &FeatureWeights,
) -> FeatureWeights {
    if relevant.is_empty() && irrelevant.is_empty() {
        return base.clone();
    }
    let mean_sim = |kind: FeatureKind, sets: &[&FeatureSet]| -> f64 {
        if sets.is_empty() {
            return 0.0;
        }
        sets.iter()
            .map(|s| engine.calibration().similarity(kind, query.distance(s, kind)))
            .sum::<f64>()
            / sets.len() as f64
    };

    let mut pairs = Vec::with_capacity(FeatureKind::ALL.len());
    let mut new_total = 0.0;
    for kind in FeatureKind::ALL {
        let w = base.get(kind);
        let gap = mean_sim(kind, relevant) - mean_sim(kind, irrelevant);
        let adjusted = w * (FLOOR + gap.max(0.0));
        pairs.push((kind, adjusted));
        new_total += adjusted;
    }
    // Renormalise to the base total; degenerate all-zero case falls back.
    let base_total = base.total();
    if new_total <= 0.0 || base_total <= 0.0 {
        return base.clone();
    }
    for (_, w) in &mut pairs {
        *w *= base_total / new_total;
    }
    FeatureWeights::from_pairs(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CatalogEntry;
    use cbvr_imgproc::{Rgb, RgbImage};
    use cbvr_index::RangeKey;
    use std::collections::HashMap;

    fn frame(seed: u8) -> RgbImage {
        RgbImage::from_fn(24, 24, |x, y| {
            Rgb::new(
                (x * 9).wrapping_add(seed as u32 * 37) as u8,
                (y * 9) as u8,
                seed.wrapping_mul(11),
            )
        })
        .unwrap()
    }

    fn engine_with(sets: &[FeatureSet]) -> QueryEngine {
        let entries: Vec<CatalogEntry> = sets
            .iter()
            .enumerate()
            .map(|(i, s)| CatalogEntry {
                i_id: i as u64 + 1,
                v_id: 1,
                range: RangeKey::new(0, 127),
                features: s.clone(),
            })
            .collect();
        QueryEngine::from_catalog(entries, HashMap::from([(1, "v".to_string())]))
    }

    #[test]
    fn no_feedback_returns_base() {
        let sets: Vec<FeatureSet> = (0..4).map(|i| FeatureSet::extract(&frame(i))).collect();
        let engine = engine_with(&sets);
        let base = FeatureWeights::default();
        let out = adapt_weights(&engine, &sets[0], &[], &[], &base);
        assert_eq!(out, base);
    }

    #[test]
    fn total_weight_is_preserved() {
        let sets: Vec<FeatureSet> = (0..6).map(|i| FeatureSet::extract(&frame(i * 20))).collect();
        let engine = engine_with(&sets);
        let base = FeatureWeights::uniform();
        let out = adapt_weights(&engine, &sets[0], &[&sets[1]], &[&sets[4], &sets[5]], &base);
        assert!((out.total() - base.total()).abs() < 1e-9);
    }

    #[test]
    fn discriminating_feature_gains_weight() {
        // Query and relevant share color (same flat hue family), the
        // irrelevant differs wildly in color but has similar texture
        // (all flat) → color features should gain on texture features.
        let query = FeatureSet::extract(&RgbImage::filled(24, 24, Rgb::new(200, 40, 40)).unwrap());
        let rel = FeatureSet::extract(&RgbImage::filled(24, 24, Rgb::new(190, 50, 45)).unwrap());
        let irr = FeatureSet::extract(&RgbImage::filled(24, 24, Rgb::new(30, 40, 220)).unwrap());
        let catalog = vec![query.clone(), rel.clone(), irr.clone()];
        let engine = engine_with(&catalog);
        let base = FeatureWeights::uniform();
        let out = adapt_weights(&engine, &query, &[&rel], &[&irr], &base);

        let color_share = out.get(FeatureKind::ColorHistogram) + out.get(FeatureKind::Naive);
        let texture_share = out.get(FeatureKind::Glcm) + out.get(FeatureKind::Gabor);
        assert!(
            color_share > texture_share,
            "color {color_share} should outweigh texture {texture_share}: {out:?}"
        );
    }

    #[test]
    fn no_weight_goes_negative_and_none_vanishes() {
        let sets: Vec<FeatureSet> = (0..5).map(|i| FeatureSet::extract(&frame(i * 40))).collect();
        let engine = engine_with(&sets);
        let base = FeatureWeights::default();
        let out = adapt_weights(&engine, &sets[0], &[&sets[1]], &[&sets[2], &sets[3]], &base);
        for kind in FeatureKind::ALL {
            if base.get(kind) > 0.0 {
                assert!(out.get(kind) > 0.0, "{kind} vanished");
            }
        }
    }

    #[test]
    fn feedback_improves_ranking_of_marked_relevant() {
        // After boosting the separating features, the relevant item's
        // combined similarity should not fall relative to the irrelevant.
        let query = FeatureSet::extract(&RgbImage::filled(24, 24, Rgb::new(220, 30, 30)).unwrap());
        let rel = FeatureSet::extract(&RgbImage::filled(24, 24, Rgb::new(210, 45, 35)).unwrap());
        let irr = FeatureSet::extract(&RgbImage::filled(24, 24, Rgb::new(20, 30, 200)).unwrap());
        let engine = engine_with(&[query.clone(), rel.clone(), irr.clone()]);
        let base = FeatureWeights::uniform();
        let adapted = adapt_weights(&engine, &query, &[&rel], &[&irr], &base);

        let margin = |w: &FeatureWeights| {
            engine.combined_similarity(&query, &rel, w) - engine.combined_similarity(&query, &irr, w)
        };
        assert!(
            margin(&adapted) >= margin(&base) - 1e-9,
            "feedback should not shrink the relevance margin: {} vs {}",
            margin(&adapted),
            margin(&base)
        );
    }
}
